//! Differential property test for the counting substrates.
//!
//! Every counting strategy — horizontal, vertical (tid-set
//! intersection), parallel, parallel-vertical (pool fan-out over
//! prefix-equivalence classes), sharded (horizontally partitioned tid
//! ranges with per-shard table merges), fp-tree (pattern growth over a
//! compressed prefix tree) — and every batch path (the default
//! per-candidate loop, the one-scan-per-level horizontal batch, the
//! prefix-sharing vertical batch, the fan-out parallel batch, the
//! projection-memoized fp-tree batch) must produce bit-identical
//! minterm counts on arbitrary databases, for candidate sets up to
//! k = 6. This is the invariant that lets the miners pick a strategy
//! freely.
//!
//! `CCS_TEST_STRATEGY` (the CI forced-strategy job) narrows the sweep
//! to one strategy's blocks, always against the horizontal reference.

use proptest::prelude::*;

use ccs::itemset::{
    FpTree, FpTreeCounter, HorizontalCounter, Itemset, MintermCounter, NoProbe, ParallelCounter,
    ParallelVerticalCounter, ParallelVerticalIndex, ShardedVerticalCounter, ShardedVerticalIndex,
    TransactionDb, VerticalCounter,
};

const N_ITEMS: u32 = 8;

fn db_strategy() -> impl Strategy<Value = TransactionDb> {
    proptest::collection::vec(proptest::collection::vec(0u32..N_ITEMS, 0..7), 0..80)
        .prop_map(|txns| TransactionDb::from_ids(N_ITEMS, txns))
}

/// Up to a dozen candidate sets of size 1..=6 over a small alphabet, so
/// shared (k−1)-prefixes — the vertical batch's equivalence classes —
/// occur often, alongside singletons and mixed sizes in one level.
fn sets_strategy() -> impl Strategy<Value = Vec<Itemset>> {
    proptest::collection::vec(
        proptest::collection::btree_set(0u32..N_ITEMS, 1..=6usize),
        1..12,
    )
    .prop_map(|sets| sets.into_iter().map(Itemset::from_ids).collect())
}

/// `CCS_TEST_STRATEGY`, when set, runs only the named strategy's blocks
/// (still against the horizontal reference) — the forced focused pass
/// CI uses, mirroring `CCS_TEST_SHARDS`.
fn strategy_enabled(name: &str) -> bool {
    match std::env::var("CCS_TEST_STRATEGY") {
        Ok(forced) => forced == name,
        Err(_) => true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn all_strategies_and_batch_paths_agree(
        (db, sets) in (db_strategy(), sets_strategy())
    ) {
        // Reference: the paper-faithful horizontal scan, one set at a time.
        let mut reference = HorizontalCounter::new(&db);
        let expected: Vec<Vec<u64>> =
            sets.iter().map(|s| reference.minterm_counts(s)).collect();

        // Horizontal batch: one scan for the whole level.
        if strategy_enabled("horizontal") {
            let mut horizontal = HorizontalCounter::new(&db);
            prop_assert_eq!(&horizontal.minterm_counts_batch(&sets), &expected);
        }

        // Vertical, per candidate and prefix-sharing batch.
        if strategy_enabled("vertical") {
            let mut vertical = VerticalCounter::new(&db);
            let vertical_singles: Vec<Vec<u64>> =
                sets.iter().map(|s| vertical.minterm_counts(s)).collect();
            prop_assert_eq!(&vertical_singles, &expected);
            prop_assert_eq!(&vertical.minterm_counts_batch(&sets), &expected);
        }

        // Parallel, across thread counts, per candidate and batched.
        if strategy_enabled("parallel") {
            for threads in [1usize, 2, 5] {
                let mut parallel = ParallelCounter::new(&db, threads);
                parallel.set_work_floor(0); // force pool dispatch even on tiny inputs
                let parallel_singles: Vec<Vec<u64>> =
                    sets.iter().map(|s| parallel.minterm_counts(s)).collect();
                prop_assert_eq!(&parallel_singles, &expected);
                prop_assert_eq!(&parallel.minterm_counts_batch(&sets), &expected);
            }
        }

        // Parallel-vertical: pool fan-out over prefix-equivalence
        // classes, swept across worker counts including the machine's
        // own parallelism, with the work floor zeroed so even these
        // small batches take the pooled path.
        if strategy_enabled("vertical-par") {
            let machine = std::thread::available_parallelism().map(|w| w.get()).unwrap_or(1);
            for workers in [1usize, 2, machine] {
                let mut index = ParallelVerticalIndex::build_with_workers(&db, workers);
                index.set_work_floor(0);
                let par_singles: Vec<Vec<u64>> =
                    sets.iter().map(|s| index.minterm_counts(s)).collect();
                prop_assert_eq!(&par_singles, &expected);
                prop_assert_eq!(&index.minterm_counts_batch(&sets), &expected);
            }

            // And the full counter wrapper (ladder at its top rung).
            let mut par_counter = ParallelVerticalCounter::with_workers(&db, 2);
            par_counter.index_mut().set_work_floor(0);
            prop_assert_eq!(&par_counter.minterm_counts_batch(&sets), &expected);
        }

        // Sharded: horizontally partitioned tid ranges, per-shard tables
        // merged elementwise. Shard counts are deliberately not powers
        // of two so shard boundaries land mid-superblock and shards get
        // unequal lengths; the work floor is zeroed so even tiny batches
        // take the pooled merge path. `CCS_TEST_SHARDS` (the CI
        // forced-shards job) narrows the sweep to that single count.
        if strategy_enabled("sharded") {
            let shard_counts: Vec<usize> = match std::env::var("CCS_TEST_SHARDS") {
                Ok(s) => vec![s.parse().expect("CCS_TEST_SHARDS must be a shard count")],
                Err(_) => vec![1, 2, 3, 7],
            };
            for shards in shard_counts {
                let mut index = ShardedVerticalIndex::build_with_shards_and_workers(&db, shards, 2);
                index.set_work_floor(0);
                let sharded_singles: Vec<Vec<u64>> =
                    sets.iter().map(|s| index.minterm_counts(s)).collect();
                prop_assert_eq!(&sharded_singles, &expected);
                prop_assert_eq!(&index.minterm_counts_batch(&sets), &expected);
            }

            // And the sharded counter wrapper at its top rung.
            let mut sharded_counter = ShardedVerticalCounter::with_shards_and_workers(&db, 3, 2);
            sharded_counter.index_mut().set_work_floor(0);
            prop_assert_eq!(&sharded_counter.minterm_counts_batch(&sets), &expected);
        }

        // FP-tree: pattern growth over the compressed prefix tree —
        // per candidate, projection-memoized batch, and the guarded
        // path under an inert probe, plus the counter wrapper at its
        // top rung.
        if strategy_enabled("fp-tree") {
            let tree = FpTree::build(&db);
            let fp_singles: Vec<Vec<u64>> =
                sets.iter().map(|s| tree.minterm_counts(s)).collect();
            prop_assert_eq!(&fp_singles, &expected);
            prop_assert_eq!(&tree.minterm_counts_batch(&sets), &expected);
            let guarded = tree.minterm_counts_batch_guarded(&sets, &NoProbe);
            prop_assert_eq!(&guarded.expect("NoProbe never interrupts"), &expected);

            let mut fp_counter = FpTreeCounter::new(&db);
            prop_assert_eq!(&fp_counter.minterm_counts_batch(&sets), &expected);
        }
    }
}
