//! Method 2's stated purpose in the paper: "to verify that our
//! algorithms do really correctly mine out all the correlation rules,
//! which are known in advance." These tests generate rule-planted data
//! and check the miners recover the ground truth.

use ccs::prelude::*;

/// Session-API stand-in for the deprecated free `mine` — same shape, so
/// the assertions below stay byte-identical to the original API's.
fn mine(
    db: &TransactionDb,
    attrs: &AttributeTable,
    q: &CorrelationQuery,
    algorithm: Algorithm,
) -> Result<MiningResult, MiningError> {
    MiningSession::new(db, attrs)
        .mine(q, &MineRequest::new(algorithm))
        .map(|o| o.result)
}

fn setup(seed: u64) -> (ccs::datagen::RulePlantedData, AttributeTable) {
    let params = RuleParams {
        n_transactions: 4_000,
        n_items: 40,
        avg_transaction_len: 8.0,
        n_rules: 5,
        rule_len: (2, 3),
        support_range: (0.7, 0.9),
        seed,
    };
    let data = generate_rules(&params);
    let attrs = AttributeTable::with_identity_prices(40);
    (data, attrs)
}

fn paper_query() -> CorrelationQuery {
    CorrelationQuery::unconstrained(MiningParams::paper())
}

/// Every within-rule pair is strongly correlated by construction (the
/// whole rule is planted atomically at 70–90 % support), so each must
/// show up in the unconstrained answer set — the minimal correlated
/// sets.
#[test]
fn unconstrained_mining_recovers_every_planted_rule() {
    for seed in [3u64, 17, 99] {
        let (data, attrs) = setup(seed);
        let result = mine(&data.db, &attrs, &paper_query(), Algorithm::BmsPlus).unwrap();
        for rule in &data.rules {
            let items: Vec<Item> = rule.items.iter().collect();
            for (i, &a) in items.iter().enumerate() {
                for &b in &items[i + 1..] {
                    let pair = Itemset::from_items([a, b]);
                    assert!(
                        result.contains(&pair),
                        "seed {seed}: planted pair {pair} of rule {} not mined",
                        rule.items
                    );
                }
            }
        }
    }
}

/// A constraint excluding a rule's items must remove exactly that
/// rule's pairs from the answers, leaving the other rules intact —
/// focus without loss.
#[test]
fn constraints_remove_only_the_targeted_rules() {
    let (data, attrs) = setup(7);
    // Forbid the items of the first rule, via an item-level domain
    // constraint (anti-monotone + succinct).
    let first = &data.rules[0];
    let constraints = ConstraintSet::new().and(Constraint::ItemDisjoint {
        items: first.items.iter().map(|i| i.id()).collect(),
        negated: false,
    });
    let q = CorrelationQuery {
        params: MiningParams::paper(),
        constraints,
    };
    let constrained = mine(&data.db, &attrs, &q, Algorithm::BmsPlusPlus).unwrap();
    // The first rule's pairs are gone…
    let items: Vec<Item> = first.items.iter().collect();
    for (i, &a) in items.iter().enumerate() {
        for &b in &items[i + 1..] {
            assert!(!constrained.contains(&Itemset::from_items([a, b])));
        }
    }
    // …while every other rule's pairs survive.
    for rule in &data.rules[1..] {
        let items: Vec<Item> = rule.items.iter().collect();
        for (i, &a) in items.iter().enumerate() {
            for &b in &items[i + 1..] {
                let pair = Itemset::from_items([a, b]);
                assert!(
                    constrained.contains(&pair),
                    "pair {pair} of untargeted rule {} lost",
                    rule.items
                );
            }
        }
    }
}

/// The level-batched engine recovers the same ground truth through
/// every counting substrate on realistic data, and batches for real:
/// one database scan per level, not one per contingency table.
#[test]
fn batched_engine_recovers_the_same_rules() {
    use ccs::core::run_bms;
    use ccs::itemset::{HorizontalCounter, VerticalCounter};
    let (data, _) = setup(23);
    let params = MiningParams::paper();
    let mut horizontal = HorizontalCounter::new(&data.db);
    let h = run_bms(&data.db, &params, &mut horizontal);
    let mut vertical = VerticalCounter::new(&data.db);
    let v = run_bms(&data.db, &params, &mut vertical);
    assert_eq!(h.sig, v.sig);
    assert_eq!(h.notsig, v.notsig);
    // Level batching: levels 2..=max each cost one scan.
    assert_eq!(h.metrics.db_scans as usize, h.metrics.max_level_reached - 1);
    assert!(h.metrics.db_scans < h.metrics.tables_built);
}
