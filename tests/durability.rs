//! Crash-safety harness for the durable checkpoint layer.
//!
//! Three kinds of adversity, each driven against real mined checkpoints:
//!
//! * **Torn media** — every strict byte prefix of a checkpoint file, and
//!   every kill-after-K torn commit, must parse to a clean
//!   [`CheckpointError::Corrupt`] (or leave the previous intact snapshot
//!   behind) — never a panic, never a silently wrong resume.
//! * **Failing sinks** — `ENOSPC`, fsync failure, short writes: the
//!   mining run itself must finish with byte-identical answers, the
//!   failure surfaces in the [`CheckpointReport`], and an atomic sink's
//!   previous snapshot survives.
//! * **Crash recovery** — for every algorithm and every counting
//!   strategy, a governed run that trips mid-mine leaves a checkpoint
//!   whose reload + resume reproduces the uninterrupted answer set
//!   bit for bit, and whose persisted resume snapshot is *equal* to the
//!   in-memory one it serialized.

// Helper fns outside `#[test]` bodies still trip `unwrap_used`; in a
// test binary a panic is the failure report.
#![allow(clippy::unwrap_used, clippy::expect_used)]

mod common;

use std::io;
use std::sync::{Arc, Mutex};

use ccs::itemset::HorizontalCounter;
use ccs::prelude::*;
use common::{attrs, db, query, resume_with_counter_guarded, sorted, FaultCounter, ALL_ALGORITHMS};
use proptest::prelude::*;

const STRATEGIES: [CountingStrategy; 5] = [
    CountingStrategy::Horizontal,
    CountingStrategy::Vertical,
    CountingStrategy::Parallel,
    CountingStrategy::VerticalPar,
    CountingStrategy::Sharded,
];

/// An in-memory sink whose storage outlives the `CheckpointPolicy` that
/// swallows it, so tests can read back what a run committed.
#[derive(Clone, Default)]
struct SharedSink {
    store: Arc<Mutex<Option<Vec<u8>>>>,
}

impl SharedSink {
    fn bytes(&self) -> Option<Vec<u8>> {
        self.store.lock().unwrap().clone()
    }
}

impl CheckpointSink for SharedSink {
    fn commit(&mut self, bytes: &[u8]) -> io::Result<()> {
        *self.store.lock().unwrap() = Some(bytes.to_vec());
        Ok(())
    }

    fn load(&mut self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.bytes())
    }
}

/// How a [`FaultSink`] misbehaves on commit.
#[derive(Clone, Copy)]
enum FaultMode {
    /// The disk is full: the atomic sink detects it before replacing the
    /// snapshot, so storage is untouched and commit errors.
    Enospc,
    /// The data never became durable: storage untouched, commit errors.
    FsyncFail,
    /// The process died K bytes into a *non-atomic* write: storage holds
    /// a torn prefix and commit errors.
    KillAfter(usize),
    /// A buggy sink silently drops the tail but reports success — the
    /// format's own checksums are the last line of defense.
    ShortWrite(usize),
}

/// A sink that injects `mode` on every commit.
#[derive(Clone)]
struct FaultSink {
    store: Arc<Mutex<Option<Vec<u8>>>>,
    mode: FaultMode,
}

impl FaultSink {
    fn new(mode: FaultMode, previous: Option<Vec<u8>>) -> FaultSink {
        FaultSink {
            store: Arc::new(Mutex::new(previous)),
            mode,
        }
    }

    fn bytes(&self) -> Option<Vec<u8>> {
        self.store.lock().unwrap().clone()
    }
}

impl CheckpointSink for FaultSink {
    fn commit(&mut self, bytes: &[u8]) -> io::Result<()> {
        match self.mode {
            FaultMode::Enospc => Err(io::ErrorKind::StorageFull.into()),
            FaultMode::FsyncFail => Err(io::Error::other("fsync failed")),
            FaultMode::KillAfter(k) => {
                *self.store.lock().unwrap() = Some(bytes[..k.min(bytes.len())].to_vec());
                Err(io::Error::other(format!("killed after {k} bytes")))
            }
            FaultMode::ShortWrite(k) => {
                *self.store.lock().unwrap() = Some(bytes[..k.min(bytes.len())].to_vec());
                Ok(())
            }
        }
    }

    fn load(&mut self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.bytes())
    }
}

/// Runs a governed (work budget 150) BMS++ mine with every-level
/// checkpointing into a [`SharedSink`] and returns the committed bytes
/// plus the run's own result.
fn governed_checkpoint_bytes(
    db: &TransactionDb,
    attrs: &AttributeTable,
    q: &CorrelationQuery,
) -> (Vec<u8>, MiningResult) {
    let sink = SharedSink::default();
    let guard = RunGuard::new(GuardLimits {
        work_budget_cells: Some(150),
        ..GuardLimits::default()
    });
    let outcome = MiningSession::new(db, attrs)
        .mine(
            q,
            &MineRequest::new(Algorithm::BmsPlusPlus)
                .guard(guard)
                .checkpoint(CheckpointPolicy::new(
                    Box::new(sink.clone()),
                    CheckpointCadence::EveryLevel,
                )),
        )
        .unwrap();
    assert!(
        !outcome.result.completion.is_complete(),
        "a 150-cell budget must truncate the planted dataset"
    );
    let report = outcome.checkpoint.clone().expect("checkpointing was on");
    assert!(report.error.is_none(), "memory sink cannot fail");
    assert!(report.written >= 1, "the trip stamp always commits");
    (sink.bytes().expect("trip stamp committed"), outcome.result)
}

#[test]
fn every_torn_prefix_of_a_mined_checkpoint_is_rejected_cleanly() {
    let db = db();
    let attrs = attrs();
    let q = query();
    let (bytes, _) = governed_checkpoint_bytes(&db, &attrs, &q);

    // The intact file parses and validates against its database.
    let ckpt = Checkpoint::from_bytes(&bytes).unwrap();
    ckpt.verify_db(&db).unwrap();

    // Every strict prefix — a crash at any byte boundary of a
    // non-atomic write — is caught by the header checks or the
    // whole-file checksum: a clean `Corrupt`, never a panic, never a
    // wrong resume.
    for k in 0..bytes.len() {
        match Checkpoint::from_bytes(&bytes[..k]) {
            Err(CheckpointError::Corrupt(_)) => {}
            other => panic!("prefix of {k} bytes: expected Corrupt, got {other:?}"),
        }
    }
}

#[test]
fn sink_faults_never_disturb_the_run_and_degrade_cleanly() {
    let db = db();
    let attrs = attrs();
    let q = query();
    let (previous, _) = governed_checkpoint_bytes(&db, &attrs, &q);

    // The reference: the same governed run with no checkpointing at all.
    let guard = || {
        RunGuard::new(GuardLimits {
            work_budget_cells: Some(150),
            ..GuardLimits::default()
        })
    };
    let reference = MiningSession::new(&db, &attrs)
        .mine(&q, &MineRequest::new(Algorithm::BmsPlusPlus).guard(guard()))
        .unwrap()
        .result;

    let torn_points = [
        0usize,
        1,
        7,
        8,
        11,
        12,
        previous.len() / 2,
        previous.len() - 1,
    ];
    let mut modes = vec![FaultMode::Enospc, FaultMode::FsyncFail];
    modes.extend(torn_points.iter().map(|&k| FaultMode::KillAfter(k)));
    modes.extend(torn_points.iter().map(|&k| FaultMode::ShortWrite(k)));

    for mode in modes {
        let sink = FaultSink::new(mode, Some(previous.clone()));
        let outcome = MiningSession::new(&db, &attrs)
            .mine(
                &q,
                &MineRequest::new(Algorithm::BmsPlusPlus)
                    .guard(guard())
                    .checkpoint(CheckpointPolicy::new(
                        Box::new(sink.clone()),
                        CheckpointCadence::EveryLevel,
                    )),
            )
            .unwrap();

        // Durability is best-effort: the mining result is bit-identical
        // to the checkpoint-free run no matter how the sink fails.
        assert_eq!(outcome.result.answers, reference.answers);
        assert_eq!(outcome.result.completion, reference.completion);

        let report = outcome.checkpoint.expect("checkpointing was on");
        match mode {
            FaultMode::Enospc | FaultMode::FsyncFail | FaultMode::KillAfter(_) => {
                assert_eq!(report.written, 0, "every commit fails in this mode");
                assert!(report.error.is_some(), "the first failure must surface");
                if matches!(mode, FaultMode::Enospc | FaultMode::FsyncFail) {
                    // An atomic sink that fails leaves the previous
                    // snapshot byte-for-byte intact and still loadable.
                    assert_eq!(sink.bytes().as_deref(), Some(previous.as_slice()));
                    Checkpoint::from_bytes(&previous).unwrap();
                }
            }
            FaultMode::ShortWrite(_) => {
                assert!(report.error.is_none(), "the sink lied about success");
            }
        }

        // Whatever the sink now holds either validates or is cleanly
        // corrupt — a reader can always tell which.
        if let Some(stored) = sink.bytes() {
            match Checkpoint::from_bytes(&stored) {
                Ok(ckpt) => ckpt.verify_db(&db).unwrap(),
                Err(CheckpointError::Corrupt(_)) => {}
                Err(other) => panic!("torn snapshot must read as Corrupt, got {other}"),
            }
        }
    }
}

#[test]
fn crash_recovery_differential_every_algorithm_and_strategy() {
    let db = db();
    let attrs = attrs();
    let q = query();
    for algorithm in ALL_ALGORITHMS {
        for strategy in STRATEGIES {
            let complete = MiningSession::new(&db, &attrs)
                .mine(&q, &MineRequest::new(algorithm).strategy(strategy))
                .unwrap()
                .result;
            assert!(complete.completion.is_complete());
            let complete_answers = sorted(&complete.answers);

            let sink = SharedSink::default();
            let guard = RunGuard::new(GuardLimits {
                work_budget_cells: Some(150),
                ..GuardLimits::default()
            });
            let outcome = MiningSession::new(&db, &attrs)
                .mine(
                    &q,
                    &MineRequest::new(algorithm)
                        .strategy(strategy)
                        .guard(guard)
                        .checkpoint(CheckpointPolicy::new(
                            Box::new(sink.clone()),
                            CheckpointCadence::EveryLevel,
                        )),
                )
                .unwrap();
            assert!(
                !outcome.result.completion.is_complete(),
                "{algorithm} {strategy:?}: 150 cells must truncate"
            );

            // Reload the durable trip stamp: it validates, names the
            // run's algorithm and database, and carries exactly the
            // sealed partial answers.
            let bytes = sink.bytes().expect("trip stamp committed");
            let ckpt = Checkpoint::from_bytes(&bytes).unwrap();
            ckpt.verify_db(&db).unwrap();
            assert_eq!(ckpt.algorithm(), algorithm, "{strategy:?}");
            assert!(
                matches!(ckpt.status, CheckpointStatus::Tripped { .. }),
                "{algorithm} {strategy:?}"
            );
            assert_eq!(
                sorted(&ckpt.answers),
                sorted(&outcome.result.answers),
                "{algorithm} {strategy:?}: persisted partial answers diverged"
            );

            // The persisted resume snapshot is *equal* to the in-memory
            // one the run returned.
            assert_eq!(
                Some(&ckpt.resume),
                outcome.result.resume.as_ref(),
                "{algorithm} {strategy:?}: resume snapshot did not round-trip"
            );

            // A fresh process resuming from the reloaded checkpoint
            // reproduces the uninterrupted answer set bit for bit.
            let resumed = MiningSession::new(&db, &attrs)
                .resume(
                    &ckpt.query,
                    &MineRequest::default().strategy(strategy),
                    ckpt.resume,
                )
                .unwrap()
                .result;
            assert!(resumed.completion.is_complete(), "{algorithm} {strategy:?}");
            assert_eq!(
                sorted(&resumed.answers),
                complete_answers,
                "{algorithm} {strategy:?}: durable resume diverged"
            );
        }
    }
}

#[test]
fn persisted_resume_matches_in_memory_resume_at_every_injection_point() {
    let db = db();
    let attrs = attrs();
    let q = query();
    for algorithm in ALL_ALGORITHMS {
        let complete_answers = {
            let complete = MiningSession::new(&db, &attrs)
                .mine(&q, &MineRequest::new(algorithm))
                .unwrap()
                .result;
            sorted(&complete.answers)
        };
        for trigger in 0..64 {
            let sink = SharedSink::default();
            let guard = RunGuard::new(GuardLimits::default());
            let mut counter = FaultCounter::new(
                HorizontalCounter::new(&db),
                guard.clone(),
                TruncationReason::WorkBudget,
                trigger,
            );
            let result = mine_on(
                &db,
                &attrs,
                &q,
                &MineRequest::new(algorithm).guard(guard.clone()).checkpoint(
                    CheckpointPolicy::new(Box::new(sink.clone()), CheckpointCadence::EveryLevel),
                ),
                &mut counter,
            )
            .unwrap();
            let Some(state) = result.resume else {
                assert!(result.completion.is_complete());
                assert!(trigger > 0, "{algorithm}: first injection must truncate");
                break;
            };

            // Persist → load: the checkpoint round-trips byte-stably and
            // reproduces the in-memory snapshot exactly.
            let bytes = sink.bytes().expect("trip stamp committed");
            let ckpt = Checkpoint::from_bytes(&bytes).unwrap();
            assert_eq!(
                ckpt.to_bytes(),
                bytes,
                "{algorithm} trigger {trigger}: double-serialize diverged"
            );
            assert_eq!(
                ckpt.resume, state,
                "{algorithm} trigger {trigger}: persisted snapshot diverged"
            );

            // Resuming from the persisted snapshot ≡ resuming from the
            // in-memory one ≡ the uninterrupted run.
            let mut in_memory_counter = HorizontalCounter::new(&db);
            let in_memory = resume_with_counter_guarded(
                &db,
                &attrs,
                &q,
                &mut in_memory_counter,
                &RunGuard::new(GuardLimits::default()),
                state,
            )
            .unwrap();
            let durable = MiningSession::new(&db, &attrs)
                .resume(&ckpt.query, &MineRequest::default(), ckpt.resume)
                .unwrap()
                .result;
            assert_eq!(
                durable.answers, in_memory.answers,
                "{algorithm} trigger {trigger}: durable and in-memory resume disagree"
            );
            assert_eq!(sorted(&durable.answers), complete_answers, "{algorithm}");
        }
    }
}

#[test]
fn golden_future_resume_format_is_format_mismatch() {
    // Pinned fixture: valid magic and file version, resume format 3 (one
    // past the current 2), arbitrary tail. A future build's checkpoint
    // must be refused with a version error, not misread as corruption.
    let bytes = include_bytes!("goldens/future_resume_format.ccs");
    match Checkpoint::from_bytes(bytes) {
        Err(CheckpointError::FormatMismatch {
            found: 3,
            expected: 2,
        }) => {}
        other => panic!("expected FormatMismatch {{ found: 3, expected: 2 }}, got {other:?}"),
    }
}

#[test]
fn golden_future_file_version_is_format_mismatch() {
    // Pinned fixture: file version 3, one past the current 2 (version 2
    // added the measure tag to the QUERY payload).
    let bytes = include_bytes!("goldens/future_file_version.ccs");
    match Checkpoint::from_bytes(bytes) {
        Err(CheckpointError::FormatMismatch {
            found: 3,
            expected: 2,
        }) => {}
        other => panic!("expected FormatMismatch {{ found: 3, expected: 2 }}, got {other:?}"),
    }
}

#[test]
fn golden_garbled_magic_is_corrupt() {
    let bytes = include_bytes!("goldens/garbled_magic.ccs");
    match Checkpoint::from_bytes(bytes) {
        Err(CheckpointError::Corrupt(_)) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn checkpoint_refuses_a_foreign_database() {
    let db = db();
    let attrs = attrs();
    let q = query();
    let (bytes, _) = governed_checkpoint_bytes(&db, &attrs, &q);
    let ckpt = Checkpoint::from_bytes(&bytes).unwrap();

    // Same item count, different content: only the fingerprint differs.
    let other = TransactionDb::from_ids(8, (0..160u32).map(|i| vec![i % 8]));
    match ckpt.verify_db(&other) {
        Err(CheckpointError::DbMismatch { .. }) => {}
        other => panic!("expected DbMismatch, got {other:?}"),
    }
}

#[test]
fn file_sink_survives_a_real_process_boundary() {
    let db = db();
    let attrs = attrs();
    let q = query();
    let dir = std::env::temp_dir().join(format!("ccs-durability-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.ccs");

    let complete = MiningSession::new(&db, &attrs)
        .mine(&q, &MineRequest::new(Algorithm::BmsStarStar))
        .unwrap()
        .result;
    let guard = RunGuard::new(GuardLimits {
        work_budget_cells: Some(150),
        ..GuardLimits::default()
    });
    let outcome = MiningSession::new(&db, &attrs)
        .mine(
            &q,
            &MineRequest::new(Algorithm::BmsStarStar)
                .guard(guard)
                .checkpoint(CheckpointPolicy::file(&path, CheckpointCadence::EveryLevel)),
        )
        .unwrap();
    assert!(!outcome.result.completion.is_complete());
    assert!(outcome.checkpoint.unwrap().error.is_none());

    // The atomic commit leaves no temp file behind, only the snapshot.
    assert!(path.exists());
    assert!(!dir.join("run.ccs.tmp").exists());

    // A "new process": nothing shared but the file path.
    let ckpt = read_checkpoint_file(&path).unwrap();
    ckpt.verify_db(&db).unwrap();
    let resumed = MiningSession::new(&db, &attrs)
        .resume(&ckpt.query, &MineRequest::default(), ckpt.resume)
        .unwrap()
        .result;
    assert_eq!(sorted(&resumed.answers), sorted(&complete.answers));

    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    /// Randomized crash points on randomized budgets: whatever run a
    /// (algorithm, budget) pair truncates, the persisted checkpoint
    /// reloads byte-stably and resumes to the uninterrupted answers.
    #[test]
    fn random_truncated_runs_round_trip_through_persistence(
        algo_idx in 0usize..6,
        budget in 40u64..400,
    ) {
        let db = db();
        let attrs = attrs();
        let q = query();
        let algorithm = ALL_ALGORITHMS[algo_idx];
        let sink = SharedSink::default();
        let guard = RunGuard::new(GuardLimits {
            work_budget_cells: Some(budget),
            ..GuardLimits::default()
        });
        let outcome = MiningSession::new(&db, &attrs)
            .mine(
                &q,
                &MineRequest::new(algorithm)
                    .guard(guard)
                    .checkpoint(CheckpointPolicy::new(
                        Box::new(sink.clone()),
                        CheckpointCadence::EveryLevel,
                    )),
            )
            .unwrap();
        if let Some(state) = outcome.result.resume {
            let bytes = sink.bytes().expect("trip stamp committed");
            let ckpt = Checkpoint::from_bytes(&bytes).unwrap();
            prop_assert_eq!(ckpt.to_bytes(), bytes);
            prop_assert_eq!(&ckpt.resume, &state);
            let complete = MiningSession::new(&db, &attrs)
                .mine(&q, &MineRequest::new(algorithm))
                .unwrap()
                .result;
            let resumed = MiningSession::new(&db, &attrs)
                .resume(&ckpt.query, &MineRequest::default(), ckpt.resume)
                .unwrap()
                .result;
            prop_assert_eq!(sorted(&resumed.answers), sorted(&complete.answers));
        }
    }
}
