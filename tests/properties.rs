//! Property-based tests: on random small databases and random
//! constraints, every level-wise algorithm must agree with the
//! exhaustive reference, the two semantics must nest, and the two
//! counting strategies must be indistinguishable.

use proptest::prelude::*;

use ccs::prelude::*;

/// Session-API stand-in for the deprecated free `mine` — same shape, so
/// the assertions below stay byte-identical to the original API's.
fn mine(
    db: &TransactionDb,
    attrs: &AttributeTable,
    q: &CorrelationQuery,
    algorithm: Algorithm,
) -> Result<MiningResult, MiningError> {
    MiningSession::new(db, attrs)
        .mine(q, &MineRequest::new(algorithm))
        .map(|o| o.result)
}

const N_ITEMS: u32 = 6;

/// A random database over 6 items: up to 60 baskets of random subsets,
/// biased so some pairs co-occur strongly (otherwise nothing is ever
/// correlated and the tests are vacuous).
fn db_strategy() -> impl Strategy<Value = TransactionDb> {
    (
        proptest::collection::vec(proptest::collection::vec(0u32..N_ITEMS, 0..5), 20..60),
        0u32..3, // a planted co-occurring pair: items (p, p+1)
        2u32..5, // how often the pair is planted (every k-th basket)
    )
        .prop_map(|(mut txns, p, every)| {
            for (i, t) in txns.iter_mut().enumerate() {
                if (i as u32).is_multiple_of(every) {
                    t.push(p);
                    t.push(p + 1);
                }
            }
            TransactionDb::from_ids(N_ITEMS, txns)
        })
}

/// A random constraint over identity prices (item i costs $i+1, so
/// thresholds in 1..=6 are meaningful).
fn constraint_strategy() -> impl Strategy<Value = Constraint> {
    (0usize..10, 1.0f64..7.0).prop_map(|(kind, c)| {
        let ids = || [(c as u32).clamp(1, N_ITEMS - 1)].into_iter().collect();
        match kind {
            0 => Constraint::max_le("price", c),
            1 => Constraint::min_ge("price", c),
            2 => Constraint::sum_le("price", c * 2.0),
            3 => Constraint::min_le("price", c),
            4 => Constraint::max_ge("price", c),
            5 => Constraint::ItemSubset {
                items: ids(),
                negated: false,
            },
            6 => Constraint::ItemSubset {
                items: ids(),
                negated: true,
            },
            7 => Constraint::ItemDisjoint {
                items: ids(),
                negated: false,
            },
            8 => Constraint::ItemDisjoint {
                items: ids(),
                negated: true,
            },
            _ => Constraint::sum_ge("price", c * 2.0),
        }
    })
}

fn query(constraints: ConstraintSet) -> CorrelationQuery {
    CorrelationQuery {
        params: MiningParams {
            confidence: 0.9,
            support_fraction: 0.15,
            max_level: 5,
            ..MiningParams::paper()
        },
        constraints,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// BMS+ and BMS++ both compute VALID_MIN, exactly (Theorem 2.1),
    /// and it matches the exhaustive reference.
    #[test]
    fn valid_min_algorithms_agree_with_naive(
        db in db_strategy(),
        c1 in constraint_strategy(),
        c2 in constraint_strategy(),
    ) {
        let attrs = AttributeTable::with_identity_prices(N_ITEMS);
        let q = query(ConstraintSet::new().and(c1).and(c2));
        let reference = mine(&db, &attrs, &q, Algorithm::Naive).unwrap().answers;
        prop_assert_eq!(
            &mine(&db, &attrs, &q, Algorithm::BmsPlus).unwrap().answers,
            &reference, "BMS+ mismatch on {}", q.constraints
        );
        prop_assert_eq!(
            &mine(&db, &attrs, &q, Algorithm::BmsPlusPlus).unwrap().answers,
            &reference, "BMS++ mismatch on {}", q.constraints
        );
    }

    /// BMS* and BMS** both compute MIN_VALID, exactly (Theorem 2.2),
    /// and it matches the exhaustive reference.
    #[test]
    fn min_valid_algorithms_agree_with_naive(
        db in db_strategy(),
        c1 in constraint_strategy(),
        c2 in constraint_strategy(),
    ) {
        let attrs = AttributeTable::with_identity_prices(N_ITEMS);
        let q = query(ConstraintSet::new().and(c1).and(c2));
        let reference = mine(&db, &attrs, &q, Algorithm::NaiveMinValid).unwrap().answers;
        prop_assert_eq!(
            &mine(&db, &attrs, &q, Algorithm::BmsStar).unwrap().answers,
            &reference, "BMS* mismatch on {}", q.constraints
        );
        prop_assert_eq!(
            &mine(&db, &attrs, &q, Algorithm::BmsStarStar).unwrap().answers,
            &reference, "BMS** mismatch on {}", q.constraints
        );
    }

    /// Theorem 1.1: VALID_MIN ⊆ MIN_VALID for any constraint mix.
    #[test]
    fn semantics_nest(
        db in db_strategy(),
        c in constraint_strategy(),
    ) {
        let attrs = AttributeTable::with_identity_prices(N_ITEMS);
        let q = query(ConstraintSet::new().and(c));
        let vm = mine(&db, &attrs, &q, Algorithm::BmsPlusPlus).unwrap();
        let mv = mine(&db, &attrs, &q, Algorithm::BmsStarStar).unwrap();
        for s in &vm.answers {
            prop_assert!(mv.contains(s), "{} missing from MIN_VALID on {}", s, q.constraints);
        }
    }

    /// Answers are actually answers: every reported set is CT-supported,
    /// correlated, valid, and mutually minimal.
    #[test]
    fn answers_satisfy_their_definition(
        db in db_strategy(),
        c in constraint_strategy(),
    ) {
        use ccs::itemset::HorizontalCounter;
        let attrs = AttributeTable::with_identity_prices(N_ITEMS);
        let q = query(ConstraintSet::new().and(c));
        let r = mine(&db, &attrs, &q, Algorithm::BmsStarStar).unwrap();
        let s_abs = q.params.support_abs(db.len());
        for set in &r.answers {
            let mut counter = HorizontalCounter::new(&db);
            let table = ContingencyTable::build(&mut counter, set);
            prop_assert!(table.is_ct_supported(s_abs, q.params.ct_fraction));
            prop_assert!(table.is_correlated(q.params.confidence));
            prop_assert!(q.constraints.satisfied(set, &attrs));
        }
        for (i, a) in r.answers.iter().enumerate() {
            for b in &r.answers[i + 1..] {
                prop_assert!(!a.is_subset_of(b) && !b.is_subset_of(a));
            }
        }
    }

    /// The vertical counting strategy is answer-for-answer identical to
    /// the horizontal one.
    #[test]
    fn counting_strategies_agree(
        db in db_strategy(),
        c in constraint_strategy(),
    ) {
        let attrs = AttributeTable::with_identity_prices(N_ITEMS);
        let q = query(ConstraintSet::new().and(c));
        for algo in Algorithm::paper_algorithms() {
            let mut session = MiningSession::new(&db, &attrs);
            let h = session
                .mine(&q, &MineRequest::new(algo).strategy(CountingStrategy::Horizontal))
                .unwrap().result.answers;
            let v = session
                .mine(&q, &MineRequest::new(algo).strategy(CountingStrategy::Vertical))
                .unwrap().result.answers;
            prop_assert_eq!(h, v, "strategy mismatch for {}", algo);
        }
    }
}
