//! Differential acceptance for the non-χ² measures: every algorithm ×
//! every counting strategy must agree with a brute-force reference that
//! recomputes all-confidence and bond *from scratch* — raw transaction
//! scans, no `ContingencyTable`, no `Engine` — and derives both answer
//! semantics literally from the definitions.
//!
//! The χ² path is covered by the pinned goldens (`kernel_equivalence`)
//! and by `fuzz_differential`; this suite is the downward-closed
//! counterpart those can't see.

#![allow(clippy::unwrap_used, clippy::expect_used)]

mod common;

use std::collections::{HashMap, HashSet};

use ccs::prelude::*;
use common::{sorted, ALL_ALGORITHMS};

const STRATEGIES: [CountingStrategy; 6] = [
    CountingStrategy::Horizontal,
    CountingStrategy::Vertical,
    CountingStrategy::Parallel,
    CountingStrategy::VerticalPar,
    CountingStrategy::Sharded,
    CountingStrategy::FpTree,
];

#[derive(Clone, Copy)]
struct Flags {
    in_space: bool, // correlated ∧ CT-supported
    valid: bool,
}

/// Recomputes one set's flags from raw transaction scans: minterm
/// counts by masking each transaction against the set, the ratio
/// statistic from the all-present cell, the marginals, and the union.
fn flags_from_scratch(
    db: &TransactionDb,
    attrs: &AttributeTable,
    q: &CorrelationQuery,
    items: &[u32],
) -> Flags {
    let k = items.len();
    let mut cells = vec![0u64; 1 << k];
    for txn in db.transactions() {
        let present: HashSet<u32> = txn.iter().map(|i| i.id()).collect();
        let mut mask = 0usize;
        for (bit, &item) in items.iter().enumerate() {
            if present.contains(&item) {
                mask |= 1 << bit;
            }
        }
        cells[mask] += 1;
    }
    let all = cells[(1 << k) - 1];
    let statistic = match q.params.measure {
        Measure::AllConfidence => {
            let max_marginal = (0..k)
                .map(|bit| {
                    cells
                        .iter()
                        .enumerate()
                        .filter(|(m, _)| m & (1 << bit) != 0)
                        .map(|(_, &c)| c)
                        .sum::<u64>()
                })
                .max()
                .unwrap_or(0);
            if max_marginal == 0 {
                0.0
            } else {
                all as f64 / max_marginal as f64
            }
        }
        Measure::Bond => {
            let union = db.len() as u64 - cells[0];
            if union == 0 {
                0.0
            } else {
                all as f64 / union as f64
            }
        }
        Measure::Chi2 => unreachable!("this suite covers the ratio measures"),
    };
    let correlated = statistic >= q.params.confidence;
    let s_abs = q.params.support_abs(db.len());
    let meeting = cells.iter().filter(|&&c| c >= s_abs).count();
    let ct_supported = meeting as f64 + 1e-9 >= q.params.ct_fraction * cells.len() as f64;
    let set = Itemset::from_ids(items.iter().copied());
    Flags {
        in_space: correlated && ct_supported,
        valid: q.constraints.satisfied(&set, attrs),
    }
}

/// Brute-force reference miner: enumerates every itemset over the item
/// basis up to `max_level`, flags each from scratch, and derives the
/// answer set by explicit minimality over proper subsets (the
/// definitions of §3; mirrors `run_naive`'s epilogue but shares no code
/// with the engine).
fn reference_answers(
    db: &TransactionDb,
    attrs: &AttributeTable,
    q: &CorrelationQuery,
    semantics: Semantics,
) -> Vec<Itemset> {
    let threshold = q.params.item_support_abs(db.len());
    let mut supports = vec![0u64; db.n_items() as usize];
    for txn in db.transactions() {
        for item in txn {
            supports[item.index()] += 1;
        }
    }
    let basis: Vec<u32> = (0..db.n_items())
        .filter(|&i| supports[i as usize] >= threshold)
        .collect();
    let top = q.params.max_level.min(basis.len());

    let mut flags: HashMap<Vec<u32>, Flags> = HashMap::new();
    let mut stack: Vec<Vec<u32>> = vec![Vec::new()];
    while let Some(prefix) = stack.pop() {
        if (2..=top).contains(&prefix.len()) {
            flags.insert(prefix.clone(), flags_from_scratch(db, attrs, q, &prefix));
        }
        if prefix.len() < top {
            let start = prefix.last().map_or(0, |&l| l + 1);
            for &item in basis.iter().filter(|&&i| i >= start) {
                let mut next = prefix.clone();
                next.push(item);
                stack.push(next);
            }
        }
    }

    let in_space = |f: &Flags| match semantics {
        Semantics::ValidMin => f.in_space,
        Semantics::MinValid => f.in_space && f.valid,
    };
    let mut answers: Vec<Itemset> = Vec::new();
    for (items, f) in &flags {
        if !in_space(f) || (semantics == Semantics::ValidMin && !f.valid) {
            continue;
        }
        let minimal = proper_subsets(items)
            .into_iter()
            .all(|s| flags.get(&s).is_none_or(|sf| !in_space(sf)));
        if minimal {
            answers.push(Itemset::from_ids(items.iter().copied()));
        }
    }
    answers.sort_unstable();
    answers
}

/// All proper subsets of size ≥ 2, each sorted ascending like its input.
fn proper_subsets(items: &[u32]) -> Vec<Vec<u32>> {
    let k = items.len();
    (1usize..(1 << k) - 1)
        .filter(|m| m.count_ones() >= 2)
        .map(|m| {
            (0..k)
                .filter(|bit| m & (1 << bit) != 0)
                .map(|bit| items[bit])
                .collect()
        })
        .collect()
}

/// A skewed database with planted modules of different tightness: a
/// perfectly bonded pair, a high-but-imperfect triple, and a pair that
/// co-occurs too rarely to pass — so thresholds separate real verdicts,
/// not just all-or-nothing ones.
fn graded_db() -> TransactionDb {
    let mut txns = Vec::new();
    for i in 0..120u32 {
        let mut t = Vec::new();
        if i % 2 == 0 {
            t.extend([0, 1]); // bond 1.0, all-confidence 1.0
        }
        if i % 3 == 0 {
            t.extend([2, 3, 4]); // tight triple…
        }
        if i % 12 == 0 {
            t.push(2); // …with item 2 also occurring alone
        }
        if i % 4 == 0 {
            t.push(5);
        }
        if i % 6 == 0 {
            t.push(6); // {5,6} overlap on every 12th basket only
        }
        if i % 5 == 0 {
            t.push(7);
        }
        txns.push(t);
    }
    TransactionDb::from_ids(8, txns)
}

fn semantics_of(algorithm: Algorithm) -> Semantics {
    match algorithm {
        Algorithm::BmsPlus | Algorithm::BmsPlusPlus | Algorithm::Naive => Semantics::ValidMin,
        Algorithm::BmsStar | Algorithm::BmsStarStar | Algorithm::NaiveMinValid => {
            Semantics::MinValid
        }
    }
}

fn check_matrix(db: &TransactionDb, attrs: &AttributeTable, q: &CorrelationQuery) {
    let reference: HashMap<Semantics, Vec<Itemset>> = [Semantics::ValidMin, Semantics::MinValid]
        .into_iter()
        .map(|s| (s, reference_answers(db, attrs, q, s)))
        .collect();
    assert!(
        !reference[&Semantics::MinValid].is_empty() || !reference[&Semantics::ValidMin].is_empty(),
        "vacuous fixture: {} threshold {} found nothing",
        q.params.measure,
        q.params.confidence
    );
    for algorithm in ALL_ALGORITHMS {
        for strategy in STRATEGIES {
            let outcome = MiningSession::new(db, attrs)
                .mine(q, &MineRequest::new(algorithm).strategy(strategy))
                .unwrap();
            assert_eq!(
                sorted(&outcome.result.answers),
                reference[&semantics_of(algorithm)],
                "{algorithm:?} × {strategy} disagrees with the from-scratch \
                 reference under {} threshold {}",
                q.params.measure,
                q.params.confidence
            );
        }
    }
}

fn query(measure: Measure, threshold: f64, constraints: ConstraintSet) -> CorrelationQuery {
    CorrelationQuery {
        params: MiningParams {
            measure,
            confidence: threshold,
            support_fraction: 0.1,
            max_level: 4,
            ..MiningParams::paper()
        },
        constraints,
    }
}

#[test]
fn all_confidence_matrix_matches_brute_force() {
    let db = graded_db();
    let attrs = AttributeTable::with_identity_prices(8);
    // The acceptance setting: all-confidence at 0.6, unconstrained.
    check_matrix(
        &db,
        &attrs,
        &query(Measure::AllConfidence, 0.6, ConstraintSet::new()),
    );
    // A looser cutoff flips more pairs into the space.
    check_matrix(
        &db,
        &attrs,
        &query(Measure::AllConfidence, 0.3, ConstraintSet::new()),
    );
}

#[test]
fn bond_matrix_matches_brute_force() {
    let db = graded_db();
    let attrs = AttributeTable::with_identity_prices(8);
    check_matrix(
        &db,
        &attrs,
        &query(Measure::Bond, 0.1, ConstraintSet::new()),
    );
    check_matrix(
        &db,
        &attrs,
        &query(Measure::Bond, 0.5, ConstraintSet::new()),
    );
}

#[test]
fn constrained_downward_queries_agree() {
    let db = graded_db();
    let attrs = AttributeTable::with_identity_prices(8);
    // Mixed constraints split the semantics: anti-monotone max ≤ plus
    // monotone sum ≥, so BMS++ pushes, BMS*/BMS** sweep a genuine
    // phase 2, and VALID_MIN ≠ MIN_VALID.
    let mixed = ConstraintSet::new()
        .and(Constraint::max_le("price", 6.0))
        .and(Constraint::sum_ge("price", 3.0));
    check_matrix(
        &db,
        &attrs,
        &query(Measure::AllConfidence, 0.6, mixed.clone()),
    );
    check_matrix(&db, &attrs, &query(Measure::Bond, 0.2, mixed));
}

#[test]
fn xor_db_stays_pairwise_under_downward_measures() {
    // The XOR-planted fixture is the hard case for χ² (pairs look
    // independent, triples are dependent); under a downward measure the
    // minimal answers are pairs by theorem, and the matrix must agree
    // on exactly which ones.
    let db = common::db();
    let attrs = common::attrs();
    check_matrix(
        &db,
        &attrs,
        &query(Measure::AllConfidence, 0.4, ConstraintSet::new()),
    );
    check_matrix(
        &db,
        &attrs,
        &query(Measure::Bond, 0.15, ConstraintSet::new()),
    );
    for algorithm in ALL_ALGORITHMS {
        let q = query(Measure::AllConfidence, 0.4, ConstraintSet::new());
        let outcome = MiningSession::new(&db, &attrs)
            .mine(&q, &MineRequest::new(algorithm))
            .unwrap();
        for set in &outcome.result.answers {
            assert_eq!(set.len(), 2, "{algorithm:?} returned non-pair {set}");
        }
    }
}
