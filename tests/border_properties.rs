//! Property tests for the solution-space borders: on random databases
//! and constraints, the sandwich membership test must match the direct
//! definition for every itemset, and the borders must be antichains of
//! actual space members.

use proptest::prelude::*;

use ccs::itemset::HorizontalCounter;
use ccs::prelude::*;

const N_ITEMS: u32 = 5;

fn db_strategy() -> impl Strategy<Value = TransactionDb> {
    (
        proptest::collection::vec(proptest::collection::vec(0u32..N_ITEMS, 0..4), 20..50),
        0u32..3,
        2u32..4,
    )
        .prop_map(|(mut txns, p, every)| {
            for (i, t) in txns.iter_mut().enumerate() {
                if (i as u32).is_multiple_of(every) {
                    t.push(p);
                    t.push(p + 1);
                }
            }
            TransactionDb::from_ids(N_ITEMS, txns)
        })
}

fn constraint_strategy() -> impl Strategy<Value = Constraint> {
    (0usize..6, 1.0f64..6.0).prop_map(|(kind, c)| match kind {
        0 => Constraint::max_le("price", c),
        1 => Constraint::min_ge("price", c),
        2 => Constraint::sum_le("price", c * 2.0),
        3 => Constraint::min_le("price", c),
        4 => Constraint::max_ge("price", c),
        _ => Constraint::sum_ge("price", c * 2.0),
    })
}

fn query(c: Constraint) -> CorrelationQuery {
    CorrelationQuery {
        params: MiningParams {
            confidence: 0.9,
            support_fraction: 0.15,
            max_level: 5, // == N_ITEMS, so sweeps never truncate
            ..MiningParams::paper()
        },
        constraints: ConstraintSet::new().and(c),
    }
}

/// Direct space membership from the definitions.
fn in_space_direct(
    db: &TransactionDb,
    q: &CorrelationQuery,
    attrs: &AttributeTable,
    set: &Itemset,
) -> bool {
    let mut counter = HorizontalCounter::new(db);
    let table = ContingencyTable::build(&mut counter, set);
    table.is_ct_supported(q.params.support_abs(db.len()), q.params.ct_fraction)
        && table.is_correlated(q.params.confidence)
        && q.constraints.satisfied(set, attrs)
}

fn all_sets() -> Vec<Itemset> {
    let mut out = Vec::new();
    for mask in 1u32..(1 << N_ITEMS) {
        if mask.count_ones() >= 2 {
            out.push(Itemset::from_ids(
                (0..N_ITEMS).filter(|i| mask & (1 << i) != 0),
            ));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn sandwich_test_matches_direct_membership(
        db in db_strategy(),
        c in constraint_strategy(),
    ) {
        let attrs = AttributeTable::with_identity_prices(N_ITEMS);
        let q = query(c);
        let mut counter = HorizontalCounter::new(&db);
        let space = solution_space(&db, &attrs, &q, &mut counter).unwrap();
        prop_assert!(!space.truncated);
        for set in all_sets() {
            prop_assert_eq!(
                space.contains(&set),
                in_space_direct(&db, &q, &attrs, &set),
                "sandwich mismatch for {} under {}", set, q.constraints
            );
        }
    }

    #[test]
    fn borders_are_antichains_of_members(
        db in db_strategy(),
        c in constraint_strategy(),
    ) {
        let attrs = AttributeTable::with_identity_prices(N_ITEMS);
        let q = query(c);
        let mut counter = HorizontalCounter::new(&db);
        let space = solution_space(&db, &attrs, &q, &mut counter).unwrap();
        for border in [&space.minimal, &space.maximal] {
            for (i, a) in border.iter().enumerate() {
                prop_assert!(in_space_direct(&db, &q, &attrs, a), "{} not a member", a);
                for b in &border[i + 1..] {
                    prop_assert!(!a.is_subset_of(b) && !b.is_subset_of(a));
                }
            }
        }
    }
}
