//! The closure lemmas everything rests on, property-tested:
//!
//! * the chi-squared statistic never decreases when an item is added
//!   (Brin et al.'s upward-closure lemma — with the fixed df = 1 cutoff
//!   this makes "correlated" monotone),
//! * CT-support is anti-monotone (downward closed),
//! * the constraint classification of Lemma 1 matches actual evaluation
//!   behaviour on random sub/supersets.

use proptest::prelude::*;

use ccs::itemset::{HorizontalCounter, Itemset, TransactionDb};
use ccs::prelude::*;

const N_ITEMS: u32 = 6;

fn db_strategy() -> impl Strategy<Value = TransactionDb> {
    proptest::collection::vec(proptest::collection::vec(0u32..N_ITEMS, 0..6), 10..60)
        .prop_map(|txns| TransactionDb::from_ids(N_ITEMS, txns))
}

/// A random itemset of size 2..=4 plus one extra item outside it.
fn set_and_extra() -> impl Strategy<Value = (Itemset, u32)> {
    (
        proptest::collection::btree_set(0u32..N_ITEMS, 2..=4),
        0u32..N_ITEMS,
    )
        .prop_filter_map("extra must be outside the set", |(ids, extra)| {
            if ids.contains(&extra) {
                None
            } else {
                Some((Itemset::from_ids(ids), extra))
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// chi²(S ∪ {x}) ≥ chi²(S): the statistic is upward closed.
    #[test]
    fn chi_squared_statistic_is_upward_closed(
        db in db_strategy(),
        (set, extra) in set_and_extra(),
    ) {
        let mut counter = HorizontalCounter::new(&db);
        let base = ContingencyTable::build(&mut counter, &set).chi_squared();
        let bigger = ContingencyTable::build(
            &mut counter,
            &set.with_item(ccs::itemset::Item::new(extra)),
        )
        .chi_squared();
        // Tiny negative slack for floating-point accumulation.
        prop_assert!(
            bigger >= base - 1e-6,
            "chi2 dropped from {base} to {bigger} adding i{extra} to {set}"
        );
    }

    /// Correlation at any confidence is monotone under item addition.
    #[test]
    fn correlation_is_monotone(
        db in db_strategy(),
        (set, extra) in set_and_extra(),
        confidence in 0.5f64..0.999,
    ) {
        let mut counter = HorizontalCounter::new(&db);
        let base = ContingencyTable::build(&mut counter, &set);
        if base.is_correlated(confidence) {
            let sup = ContingencyTable::build(
                &mut counter,
                &set.with_item(ccs::itemset::Item::new(extra)),
            );
            prop_assert!(
                sup.is_correlated(confidence),
                "superset of correlated {set} is uncorrelated at {confidence}"
            );
        }
    }

    /// CT-support is anti-monotone: a CT-supported set's subsets are
    /// CT-supported.
    #[test]
    fn ct_support_is_anti_monotone(
        db in db_strategy(),
        (set, extra) in set_and_extra(),
        s_frac in 0.0f64..0.5,
        p in 0.0f64..1.0,
    ) {
        let s_abs = (s_frac * db.len() as f64).ceil() as u64;
        let sup_set = set.with_item(ccs::itemset::Item::new(extra));
        let mut counter = HorizontalCounter::new(&db);
        let sup = ContingencyTable::build(&mut counter, &sup_set);
        if sup.is_ct_supported(s_abs, p) {
            let sub = ContingencyTable::build(&mut counter, &set);
            prop_assert!(
                sub.is_ct_supported(s_abs, p),
                "subset {set} of CT-supported {sup_set} fails CT-support (s={s_abs}, p={p})"
            );
        }
    }

    /// Lemma 1, behaviourally: an anti-monotone constraint satisfied by a
    /// set is satisfied by its subsets; a monotone one by its supersets.
    #[test]
    fn classification_matches_evaluation(
        (set, extra) in set_and_extra(),
        kind in 0usize..8,
        c in 1.0f64..12.0,
    ) {
        let attrs = AttributeTable::with_identity_prices(N_ITEMS);
        let constraint = match kind {
            0 => Constraint::max_le("price", c),
            1 => Constraint::min_ge("price", c),
            2 => Constraint::sum_le("price", c),
            3 => Constraint::agg(AggFn::Count, "price", Cmp::Le, c),
            4 => Constraint::min_le("price", c),
            5 => Constraint::max_ge("price", c),
            6 => Constraint::sum_ge("price", c),
            _ => Constraint::agg(AggFn::Count, "price", Cmp::Ge, c),
        };
        let sup_set = set.with_item(ccs::itemset::Item::new(extra));
        let sub_sat = constraint.satisfied(&set, &attrs);
        let sup_sat = constraint.satisfied(&sup_set, &attrs);
        match constraint.monotonicity() {
            Monotonicity::AntiMonotone => prop_assert!(
                !sup_sat || sub_sat,
                "anti-monotone {constraint}: superset holds but subset fails"
            ),
            Monotonicity::Monotone => prop_assert!(
                !sub_sat || sup_sat,
                "monotone {constraint}: subset holds but superset fails"
            ),
            Monotonicity::Neither => {}
        }
    }
}
