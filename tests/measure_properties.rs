//! The measure layer's contracts, property-tested — the downward
//! counterpart of `chi2_monotonicity.rs`:
//!
//! * every measure's [`MeasureContext::verdict`] agrees with a scalar
//!   recomputation of the statistic from the raw minterm counts,
//! * all-confidence and bond are anti-monotone: extending a set never
//!   flips a failing verdict to passing (exactly, no tolerance — IEEE
//!   division is monotone in each argument),
//! * the χ² verdict through the measure trait is bit-identical to the
//!   historical `is_correlated` path.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use ccs::itemset::{HorizontalCounter, Item, Itemset, TransactionDb};
use ccs::prelude::*;

const N_ITEMS: u32 = 6;

fn db_strategy() -> impl Strategy<Value = TransactionDb> {
    proptest::collection::vec(proptest::collection::vec(0u32..N_ITEMS, 0..6), 10..60)
        .prop_map(|txns| TransactionDb::from_ids(N_ITEMS, txns))
}

/// A random itemset of size 2..=4 plus one extra item outside it.
fn set_and_extra() -> impl Strategy<Value = (Itemset, u32)> {
    (
        proptest::collection::btree_set(0u32..N_ITEMS, 2..=4),
        0u32..N_ITEMS,
    )
        .prop_filter_map("extra must be outside the set", |(ids, extra)| {
            if ids.contains(&extra) {
                None
            } else {
                Some((Itemset::from_ids(ids), extra))
            }
        })
}

/// Recomputes the measure statistic from the raw cells alone — an
/// independent spelling of the definitions the `ContingencyTable`
/// methods must match.
fn statistic_from_cells(measure: Measure, cells: &[u64], n: u64) -> f64 {
    let k = cells.len().trailing_zeros() as usize;
    let all = cells[cells.len() - 1];
    match measure {
        Measure::Chi2 => {
            // Σ (O − E)² / E over cells with E > 0, with independence
            // expectations from the per-item marginal probabilities.
            let marginals: Vec<f64> = (0..k)
                .map(|bit| {
                    cells
                        .iter()
                        .enumerate()
                        .filter(|(m, _)| m & (1 << bit) != 0)
                        .map(|(_, &c)| c as f64)
                        .sum::<f64>()
                        / n as f64
                })
                .collect();
            let mut stat = 0.0;
            for (m, &count) in cells.iter().enumerate() {
                let mut e = n as f64;
                for (bit, &p) in marginals.iter().enumerate() {
                    e *= if m & (1 << bit) != 0 { p } else { 1.0 - p };
                }
                if e > 0.0 {
                    let d = count as f64 - e;
                    stat += d * d / e;
                }
            }
            stat
        }
        Measure::AllConfidence => {
            let max_marginal = (0..k)
                .map(|bit| {
                    cells
                        .iter()
                        .enumerate()
                        .filter(|(m, _)| m & (1 << bit) != 0)
                        .map(|(_, &c)| c)
                        .sum::<u64>()
                })
                .max()
                .unwrap_or(0);
            if max_marginal == 0 {
                0.0
            } else {
                all as f64 / max_marginal as f64
            }
        }
        Measure::Bond => {
            let union = n - cells[0];
            if union == 0 {
                0.0
            } else {
                all as f64 / union as f64
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// `MeasureContext::verdict` is exactly `recomputed statistic ≥
    /// critical value` for every measure on random tables.
    #[test]
    fn verdict_matches_scalar_recomputation(
        db in db_strategy(),
        (set, _) in set_and_extra(),
        threshold in 0.05f64..0.95,
    ) {
        let mut counter = HorizontalCounter::new(&db);
        let table = ContingencyTable::build(&mut counter, &set);
        let cells: Vec<u64> = table.counts().to_vec();
        for measure in Measure::ALL {
            let ctx = MeasureContext::new(measure, threshold).unwrap();
            let scratch = statistic_from_cells(measure, &cells, db.len() as u64);
            let library = ctx.statistic(&table);
            prop_assert!(
                (scratch - library).abs() <= 1e-9 * scratch.abs().max(1.0),
                "{measure}: library {library} vs from-scratch {scratch} on {set}"
            );
            prop_assert_eq!(
                ctx.verdict(&table),
                scratch >= ctx.critical_value(),
                "{} verdict disagrees with scalar recomputation on {}", measure, &set
            );
        }
    }

    /// The ratio measures never flip `false → true` when extending a set
    /// — the anti-monotonicity the downward miners' pruning rests on.
    /// Exact comparison, no floating-point slack.
    #[test]
    fn ratio_measures_are_anti_monotone(
        db in db_strategy(),
        (set, extra) in set_and_extra(),
        threshold in 0.05f64..1.0,
    ) {
        let mut counter = HorizontalCounter::new(&db);
        let base = ContingencyTable::build(&mut counter, &set);
        let sup = ContingencyTable::build(&mut counter, &set.with_item(Item::new(extra)));
        for measure in [Measure::AllConfidence, Measure::Bond] {
            let ctx = MeasureContext::new(measure, threshold).unwrap();
            prop_assert!(
                ctx.statistic(&sup) <= ctx.statistic(&base),
                "{measure} grew from {} to {} adding i{extra} to {set}",
                ctx.statistic(&base),
                ctx.statistic(&sup)
            );
            if !ctx.verdict(&base) {
                prop_assert!(
                    !ctx.verdict(&sup),
                    "{measure}: superset of failing {set} passes at {threshold}"
                );
            }
        }
    }

    /// The χ² path through the measure trait is bit-identical to the
    /// historical direct spelling.
    #[test]
    fn chi2_through_the_trait_is_bit_identical(
        db in db_strategy(),
        (set, _) in set_and_extra(),
        confidence in 0.5f64..0.999,
    ) {
        let mut counter = HorizontalCounter::new(&db);
        let table = ContingencyTable::build(&mut counter, &set);
        let ctx = MeasureContext::new(Measure::Chi2, confidence).unwrap();
        prop_assert_eq!(ctx.statistic(&table).to_bits(), table.chi_squared().to_bits());
        prop_assert_eq!(ctx.verdict(&table), table.is_correlated(confidence));
    }
}
