//! Property test: every expressible constraint survives a
//! render → parse round-trip, and parsing is stable (parse ∘ render ∘
//! parse = parse ∘ render).

use std::collections::BTreeSet;

use proptest::prelude::*;

use ccs::prelude::*;
use ccs::query::{parse_constraints, render_constraint, render_constraints};

const N_ITEMS: u32 = 8;

fn attrs() -> AttributeTable {
    let mut t = AttributeTable::new(N_ITEMS);
    t.add_numeric("price", (0..N_ITEMS).map(|i| (i + 1) as f64).collect());
    t.add_categorical(
        "type",
        &[
            "soda", "soda", "snack", "dairy", "dairy", "beer", "frozen", "beer",
        ],
    );
    t
}

fn category_set() -> impl Strategy<Value = BTreeSet<u32>> {
    // Category ids 0..5 exist in the `type` column above.
    proptest::collection::btree_set(0u32..5, 1..3)
}

fn item_set() -> impl Strategy<Value = BTreeSet<u32>> {
    proptest::collection::btree_set(0u32..N_ITEMS, 1..4)
}

fn constraint_strategy() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        (0usize..8, 0.5f64..20.0).prop_map(|(k, c)| {
            match k {
                0 => Constraint::max_le("price", c),
                1 => Constraint::max_ge("price", c),
                2 => Constraint::min_le("price", c),
                3 => Constraint::min_ge("price", c),
                4 => Constraint::sum_le("price", c),
                5 => Constraint::sum_ge("price", c),
                6 => Constraint::agg(AggFn::Count, "price", Cmp::Le, c.round()),
                _ => Constraint::Avg {
                    attr: "price".into(),
                    cmp: Cmp::Ge,
                    value: c,
                },
            }
        }),
        (category_set(), any::<bool>()).prop_map(|(categories, negated)| {
            Constraint::ConstSubset {
                attr: "type".into(),
                categories,
                negated,
            }
        }),
        (category_set(), any::<bool>()).prop_map(|(categories, negated)| {
            Constraint::Disjoint {
                attr: "type".into(),
                categories,
                negated,
            }
        }),
        (0u64..5, any::<bool>()).prop_map(|(value, le)| Constraint::CountDistinct {
            attr: "type".into(),
            cmp: if le { Cmp::Le } else { Cmp::Ge },
            value,
        }),
        (item_set(), any::<bool>())
            .prop_map(|(items, negated)| Constraint::ItemSubset { items, negated }),
        (item_set(), any::<bool>())
            .prop_map(|(items, negated)| Constraint::ItemDisjoint { items, negated }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn single_constraint_roundtrips(c in constraint_strategy()) {
        let a = attrs();
        let text = render_constraint(&c, &a).expect("renderable");
        let parsed = parse_constraints(&text, &a)
            .unwrap_or_else(|e| panic!("render produced unparseable '{text}': {e}"));
        prop_assert_eq!(parsed.constraints(), std::slice::from_ref(&c), "via '{}'", text);
    }

    #[test]
    fn conjunction_roundtrips(
        cs in proptest::collection::vec(constraint_strategy(), 0..4),
    ) {
        let a = attrs();
        let set = ConstraintSet::from_vec(cs);
        let text = render_constraints(&set, &a).expect("renderable");
        let parsed = parse_constraints(&text, &a)
            .unwrap_or_else(|e| panic!("render produced unparseable '{text}': {e}"));
        prop_assert_eq!(parsed, set, "via '{}'", text);
    }

    /// Rendering is semantics-preserving: the parsed constraint evaluates
    /// identically on random itemsets.
    #[test]
    fn roundtrip_preserves_evaluation(
        c in constraint_strategy(),
        ids in proptest::collection::btree_set(0u32..N_ITEMS, 0..5),
    ) {
        let a = attrs();
        let text = render_constraint(&c, &a).expect("renderable");
        let parsed = parse_constraints(&text, &a).expect("parseable");
        let set = Itemset::from_ids(ids);
        prop_assert_eq!(
            c.satisfied(&set, &a),
            parsed.constraints()[0].satisfied(&set, &a),
            "evaluation diverged for {} on {}", text, set
        );
    }
}
