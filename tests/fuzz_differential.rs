//! Adversarial differential fuzzer (review harness).

use proptest::prelude::*;

use ccs::prelude::*;

/// Session-API stand-in for the deprecated free `mine` — same shape, so
/// the assertions below stay byte-identical to the original API's.
fn mine(
    db: &TransactionDb,
    attrs: &AttributeTable,
    q: &CorrelationQuery,
    algorithm: Algorithm,
) -> Result<MiningResult, MiningError> {
    MiningSession::new(db, attrs)
        .mine(q, &MineRequest::new(algorithm))
        .map(|o| o.result)
}
use std::collections::BTreeSet;

const N_ITEMS: u32 = 7;

fn attrs() -> AttributeTable {
    let mut t = AttributeTable::with_identity_prices(N_ITEMS);
    t.add_categorical("type", &["a", "a", "b", "b", "c", "c", "d"]);
    t
}

fn db_strategy() -> impl Strategy<Value = TransactionDb> {
    (
        proptest::collection::vec(proptest::collection::vec(0u32..N_ITEMS, 0..6), 20..60),
        0u32..4,
        2u32..5,
        0u32..4,
        2u32..5,
    )
        .prop_map(|(mut txns, p, every, p2, every2)| {
            for (i, t) in txns.iter_mut().enumerate() {
                if (i as u32).is_multiple_of(every) {
                    t.push(p);
                    t.push(p + 1);
                    t.push(p + 2);
                    t.push((p + 3) % N_ITEMS);
                }
                if (i as u32) % every2 == 1 {
                    t.push(p2);
                    t.push(p2 + 3);
                }
            }
            TransactionDb::from_ids(N_ITEMS, txns)
        })
}

fn constraint_strategy() -> impl Strategy<Value = Constraint> {
    (
        0usize..14,
        1.0f64..8.0,
        proptest::collection::btree_set(0u32..4, 1..3),
    )
        .prop_map(|(kind, c, cats)| {
            let ids: BTreeSet<u32> = cats.iter().map(|&x| x.min(N_ITEMS - 1)).collect();
            match kind {
                0 => Constraint::max_le("price", c),
                1 => Constraint::min_ge("price", c),
                2 => Constraint::sum_le("price", c * 2.0),
                3 => Constraint::min_le("price", c),
                4 => Constraint::max_ge("price", c),
                5 => Constraint::sum_ge("price", c * 2.0),
                6 => Constraint::ItemSubset {
                    items: ids,
                    negated: false,
                },
                7 => Constraint::ItemSubset {
                    items: ids,
                    negated: true,
                },
                8 => Constraint::ItemDisjoint {
                    items: ids,
                    negated: false,
                },
                9 => Constraint::ItemDisjoint {
                    items: ids,
                    negated: true,
                },
                10 => Constraint::ConstSubset {
                    attr: "type".into(),
                    categories: ids,
                    negated: false,
                },
                11 => Constraint::Disjoint {
                    attr: "type".into(),
                    categories: ids,
                    negated: false,
                },
                12 => Constraint::Disjoint {
                    attr: "type".into(),
                    categories: ids,
                    negated: true,
                },
                _ => Constraint::CountDistinct {
                    attr: "type".into(),
                    cmp: if c < 4.0 { Cmp::Le } else { Cmp::Ge },
                    value: (c as u64 % 3) + 1,
                },
            }
        })
}

fn params_strategy() -> impl Strategy<Value = MiningParams> {
    (
        0.8f64..0.99,
        0.03f64..0.3,
        0.05f64..0.5,
        0.0f64..0.25,
        3usize..7,
    )
        .prop_map(
            |(confidence, support_fraction, ct_fraction, min_item_support, max_level)| {
                MiningParams {
                    confidence,
                    support_fraction,
                    ct_fraction,
                    min_item_support,
                    max_level,
                    ..MiningParams::paper()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 2048, ..ProptestConfig::default() })]

    #[test]
    fn all_algorithms_agree_with_naive(
        db in db_strategy(),
        c1 in constraint_strategy(),
        c2 in constraint_strategy(),
        sum_lo in 4.0f64..26.0,
        params in params_strategy(),
    ) {
        let attrs = attrs();
        // A strong monotone constraint forces MIN_VALID answers above the
        // correlation border, exercising the upward sweeps deeply.
        let c3 = Constraint::sum_ge("price", sum_lo);
        let q = CorrelationQuery { params, constraints: ConstraintSet::new().and(c1).and(c2).and(c3) };
        let vm_ref = mine(&db, &attrs, &q, Algorithm::Naive).unwrap().answers;
        let mv_ref = mine(&db, &attrs, &q, Algorithm::NaiveMinValid).unwrap().answers;
        prop_assert_eq!(
            &mine(&db, &attrs, &q, Algorithm::BmsPlus).unwrap().answers,
            &vm_ref, "BMS+ mismatch on {}", q.constraints
        );
        prop_assert_eq!(
            &mine(&db, &attrs, &q, Algorithm::BmsPlusPlus).unwrap().answers,
            &vm_ref, "BMS++ mismatch on {}", q.constraints
        );
        prop_assert_eq!(
            &mine(&db, &attrs, &q, Algorithm::BmsStar).unwrap().answers,
            &mv_ref, "BMS* mismatch on {}", q.constraints
        );
        prop_assert_eq!(
            &mine(&db, &attrs, &q, Algorithm::BmsStarStar).unwrap().answers,
            &mv_ref, "BMS** mismatch on {}", q.constraints
        );
    }
}
