//! Fault-injection harness for the resource-governed mining runtime.
//!
//! A [`FaultCounter`] decorates the real horizontal counter and, at a
//! chosen guarded-batch index, simulates resource exhaustion — a passed
//! deadline, an exhausted work budget, a memory-budget trip, or external
//! cancellation — exactly the way the production paths do (via
//! [`RunGuard::trip`], the probe's `note_memory_trip`, or the
//! cancellation flag), then abandons the batch.
//!
//! For every algorithm and every injection point, the truncated run must
//! uphold the guard contract:
//!
//! (a) **soundness** — every reported answer also appears in the
//!     unguarded run's answer set (so it is a genuine, minimal member of
//!     the semantics' answer set);
//! (b) **mutual minimality** — no reported answer is a subset of
//!     another;
//! (c) **resumability** — continuing from the returned [`ResumeState`]
//!     under an untripped guard reproduces the complete answer set
//!     exactly.
//!
//! Injection indices sweep from 0 upward until the run completes, so
//! every checkpoint — including the boundary between BMS*/BMS** phase 1
//! and their phase-2 sweeps — sees each fault kind.

// Helper fns outside `#[test]` bodies still trip `unwrap_used`; in a
// test binary a panic is the failure report.
#![allow(clippy::unwrap_used, clippy::expect_used)]

mod common;

use std::time::Duration;

use ccs::itemset::{HorizontalCounter, MintermCounter};
use ccs::prelude::*;
use common::{
    attrs, db, fptree_factory, horizontal_factory, mine, mine_with_counter_guarded,
    mine_with_guard, query, resume_with_counter_guarded, sharded_factory, sorted,
    vertical_par_factory, CounterFactory, FaultCounter, ALL_ALGORITHMS,
};

/// Injects `fault` at guarded-batch index 0, 1, 2, … until the run
/// completes, asserting the guard contract (soundness, minimality,
/// exact-resume) at every truncation point. Returns how many injection
/// points truncated the run.
fn sweep(algorithm: Algorithm, fault: TruncationReason) -> usize {
    sweep_with(algorithm, fault, horizontal_factory)
}

/// [`sweep`] with the decorated counter (and the resume counter) built
/// by `factory`, so the same injection schedule can run against any
/// counting substrate.
fn sweep_with(algorithm: Algorithm, fault: TruncationReason, factory: CounterFactory) -> usize {
    let db = db();
    let attrs = attrs();
    let q = query();
    let complete = mine(&db, &attrs, &q, algorithm).unwrap();
    assert!(complete.completion.is_complete());
    let complete_answers = sorted(&complete.answers);
    assert!(
        !complete_answers.is_empty(),
        "{algorithm}: the planted dataset must yield answers"
    );

    for trigger in 0..64 {
        let guard = RunGuard::new(GuardLimits::default());
        let mut counter = FaultCounter::new(factory(&db), guard.clone(), fault, trigger);
        let result =
            mine_with_counter_guarded(&db, &attrs, &q, algorithm, &mut counter, &guard).unwrap();
        match result.completion {
            Completion::Complete => {
                // The injection point lies beyond the last guarded batch:
                // the run never saw the fault and must match the
                // unguarded answer byte for byte.
                assert_eq!(sorted(&result.answers), complete_answers, "{algorithm}");
                assert!(result.resume.is_none());
                assert!(
                    trigger > 0,
                    "{algorithm}: the very first injection must truncate"
                );
                return trigger;
            }
            Completion::Truncated {
                reason,
                frontier_level,
                sets_evaluated,
            } => {
                assert_eq!(reason, fault, "{algorithm} trigger {trigger}");
                assert!(frontier_level >= 1, "{algorithm} trigger {trigger}");
                // Metrics must account exactly for the work the wrapped
                // counter really did, even though the level aborted
                // mid-batch.
                assert_eq!(
                    sets_evaluated,
                    counter.stats().tables_built,
                    "{algorithm} trigger {trigger}: sets_evaluated out of sync"
                );
                // (a) Soundness: partial ⊆ unguarded.
                for s in &result.answers {
                    assert!(
                        complete.answers.contains(s),
                        "{algorithm} trigger {trigger}: unsound partial answer {s}"
                    );
                }
                // (b) Mutual minimality.
                for (i, a) in result.answers.iter().enumerate() {
                    for b in &result.answers[i + 1..] {
                        assert!(
                            !a.is_subset_of(b) && !b.is_subset_of(a),
                            "{algorithm} trigger {trigger}: {a} and {b} are nested"
                        );
                    }
                }
                // (c) Resume-from-frontier reproduces the complete
                // answer exactly.
                let state = result
                    .resume
                    .expect("truncated runs carry a resume snapshot");
                assert_eq!(state.algorithm(), algorithm);
                let resume_guard = RunGuard::new(GuardLimits::default());
                let mut resume_counter = factory(&db);
                let resumed = resume_with_counter_guarded(
                    &db,
                    &attrs,
                    &q,
                    &mut resume_counter,
                    &resume_guard,
                    state,
                )
                .unwrap();
                assert!(
                    resumed.completion.is_complete(),
                    "{algorithm} trigger {trigger}: resume under an untripped guard must finish"
                );
                assert_eq!(
                    sorted(&resumed.answers),
                    complete_answers,
                    "{algorithm} trigger {trigger}: resume diverged from the unguarded run"
                );
            }
        }
    }
    panic!("{algorithm}: more than 64 guarded batches on the toy dataset");
}

#[test]
fn work_budget_faults_every_injection_point() {
    for algorithm in ALL_ALGORITHMS {
        let truncating = sweep(algorithm, TruncationReason::WorkBudget);
        assert!(
            truncating >= 2,
            "{algorithm}: expected at least two guarded batches, found {truncating}"
        );
    }
}

#[test]
fn deadline_faults_every_injection_point() {
    for algorithm in Algorithm::paper_algorithms() {
        sweep(algorithm, TruncationReason::Deadline);
    }
}

#[test]
fn cancellation_faults_every_injection_point() {
    // The sweep drives the cancellation flag through every checkpoint,
    // including the boundary between BMS*/BMS** phase 1 and the phase-2
    // upward sweep: with a monotone `sum ≥` in the query, both phases
    // run guarded batches, so the later injection indices land inside
    // phase 2 and prove it observes the guard.
    for algorithm in [Algorithm::BmsStar, Algorithm::BmsStarStar] {
        sweep(algorithm, TruncationReason::Cancelled);
    }
}

#[test]
fn memory_faults_every_injection_point() {
    // Injected through the probe's `note_memory_trip`, the path a
    // fallback-less counter takes when its arena budget is exceeded.
    for algorithm in [Algorithm::BmsPlus, Algorithm::BmsPlusPlus] {
        sweep(algorithm, TruncationReason::MemoryBudget);
    }
}

#[test]
fn armed_guard_without_limits_matches_unguarded_run() {
    let db = db();
    let attrs = attrs();
    let q = query();
    for algorithm in ALL_ALGORITHMS {
        let unguarded = mine(&db, &attrs, &q, algorithm).unwrap();
        let guard = RunGuard::new(GuardLimits::default());
        let guarded = mine_with_guard(
            &db,
            &attrs,
            &q,
            algorithm,
            CountingStrategy::Horizontal,
            &guard,
        )
        .unwrap();
        assert!(guarded.completion.is_complete());
        assert!(guarded.resume.is_none());
        assert_eq!(guarded.answers, unguarded.answers, "{algorithm}");
    }
}

#[test]
fn zero_work_budget_truncates_empty_at_level_one() {
    let db = db();
    let attrs = attrs();
    let q = query();
    for algorithm in ALL_ALGORITHMS {
        let guard = RunGuard::new(GuardLimits {
            work_budget_cells: Some(0),
            ..GuardLimits::default()
        });
        let result = mine_with_guard(
            &db,
            &attrs,
            &q,
            algorithm,
            CountingStrategy::Horizontal,
            &guard,
        )
        .unwrap();
        match result.completion {
            Completion::Truncated {
                reason: TruncationReason::WorkBudget,
                frontier_level,
                ..
            } => assert_eq!(frontier_level, 1, "{algorithm}"),
            other => panic!("{algorithm}: expected a work-budget truncation, got {other}"),
        }
        assert!(result.answers.is_empty(), "{algorithm}");
        // Even a nothing-done snapshot must resume to the full answer.
        let complete = mine(&db, &attrs, &q, algorithm).unwrap();
        let state = result.resume.expect("snapshot");
        let mut counter = HorizontalCounter::new(&db);
        let resumed = resume_with_counter_guarded(
            &db,
            &attrs,
            &q,
            &mut counter,
            &RunGuard::new(GuardLimits::default()),
            state,
        )
        .unwrap();
        assert_eq!(
            sorted(&resumed.answers),
            sorted(&complete.answers),
            "{algorithm}"
        );
    }
}

#[test]
fn already_expired_deadline_truncates_before_any_counting() {
    let db = db();
    let attrs = attrs();
    let q = query();
    for algorithm in Algorithm::paper_algorithms() {
        let guard = RunGuard::new(GuardLimits {
            timeout: Some(Duration::ZERO),
            ..GuardLimits::default()
        });
        let result = mine_with_guard(
            &db,
            &attrs,
            &q,
            algorithm,
            CountingStrategy::Horizontal,
            &guard,
        )
        .unwrap();
        assert_eq!(
            result.completion.truncation_reason(),
            Some(TruncationReason::Deadline),
            "{algorithm}"
        );
        assert!(result.answers.is_empty(), "{algorithm}");
        assert_eq!(result.metrics.tables_built, 0, "{algorithm}");
    }
}

#[test]
fn cancelled_before_start_truncates_immediately() {
    let db = db();
    let attrs = attrs();
    let q = query();
    let guard = RunGuard::new(GuardLimits::default());
    guard.cancel();
    let result = mine_with_guard(
        &db,
        &attrs,
        &q,
        Algorithm::BmsStarStar,
        CountingStrategy::Horizontal,
        &guard,
    )
    .unwrap();
    assert_eq!(
        result.completion.truncation_reason(),
        Some(TruncationReason::Cancelled)
    );
    assert!(result.answers.is_empty());
}

#[test]
fn tight_memory_budget_degrades_vertical_counting_without_truncation() {
    let db = db();
    let attrs = attrs();
    let q = query();
    for algorithm in Algorithm::paper_algorithms() {
        let unguarded = mine(&db, &attrs, &q, algorithm).unwrap();
        let guard = RunGuard::new(GuardLimits {
            memory_budget_bytes: Some(1),
            ..GuardLimits::default()
        });
        let result = mine_with_guard(
            &db,
            &attrs,
            &q,
            algorithm,
            CountingStrategy::Vertical,
            &guard,
        )
        .unwrap();
        // The vertical counter has a cheaper strategy to fall back on,
        // so a memory trip degrades instead of truncating.
        assert!(result.completion.is_complete(), "{algorithm}");
        assert!(
            result.metrics.degraded_batches > 0,
            "{algorithm}: expected degraded batches under a 1-byte arena budget"
        );
        assert_eq!(
            sorted(&result.answers),
            sorted(&unguarded.answers),
            "{algorithm}: degraded counting changed the answers"
        );
    }
}

#[test]
fn parallel_vertical_faults_every_injection_point() {
    // The full trip-at-every-batch-index sweep with the pooled
    // parallel-vertical counter underneath (work floor zeroed so every
    // batch fans out over the pool): partial answers stay sound, and
    // resuming — also on the pooled counter — reproduces the complete
    // answer set exactly.
    for algorithm in ALL_ALGORITHMS {
        let truncating = sweep_with(
            algorithm,
            TruncationReason::WorkBudget,
            vertical_par_factory,
        );
        assert!(
            truncating >= 2,
            "{algorithm}: expected at least two guarded batches, found {truncating}"
        );
    }
    for algorithm in [Algorithm::BmsStar, Algorithm::BmsStarStar] {
        sweep_with(algorithm, TruncationReason::Cancelled, vertical_par_factory);
    }
}

#[test]
fn sharded_faults_every_injection_point() {
    // The trip-at-every-batch-index sweep over the sharded counter:
    // partial answers stay sound and mutually minimal, and resuming —
    // also on a sharded counter — reproduces the complete answer set
    // exactly.
    for algorithm in ALL_ALGORITHMS {
        let truncating = sweep_with(algorithm, TruncationReason::WorkBudget, sharded_factory);
        assert!(
            truncating >= 2,
            "{algorithm}: expected at least two guarded batches, found {truncating}"
        );
    }
    for algorithm in [Algorithm::BmsStar, Algorithm::BmsStarStar] {
        sweep_with(algorithm, TruncationReason::Cancelled, sharded_factory);
    }
}

#[test]
fn real_work_budget_trips_mid_shard_soundly() {
    // A genuine cell budget tripping *inside* the sharded guarded
    // batch: classes whose per-shard tables were only partially
    // delivered must be discarded wholesale, completed classes are
    // kept, partial answers stay sound, and resume is exact.
    let db = db();
    let attrs = attrs();
    let q = query();
    for algorithm in Algorithm::paper_algorithms() {
        let complete = mine(&db, &attrs, &q, algorithm).unwrap();
        for budget in [1u64, 40, 150, 400, 1000] {
            let guard = RunGuard::new(GuardLimits {
                work_budget_cells: Some(budget),
                ..GuardLimits::default()
            });
            let mut counter = sharded_factory(&db);
            let result =
                mine_with_counter_guarded(&db, &attrs, &q, algorithm, &mut counter, &guard)
                    .unwrap();
            for s in &result.answers {
                assert!(
                    complete.answers.contains(s),
                    "{algorithm} budget {budget}: unsound partial answer {s}"
                );
            }
            let Some(state) = result.resume else {
                assert!(
                    result.completion.is_complete(),
                    "{algorithm} budget {budget}: no snapshot on a truncated run"
                );
                continue;
            };
            let mut resume_counter = sharded_factory(&db);
            let resumed = resume_with_counter_guarded(
                &db,
                &attrs,
                &q,
                &mut resume_counter,
                &RunGuard::new(GuardLimits::default()),
                state,
            )
            .unwrap();
            assert_eq!(
                sorted(&resumed.answers),
                sorted(&complete.answers),
                "{algorithm} budget {budget}: sharded resume diverged"
            );
        }
    }
}

#[test]
fn tight_memory_budget_degrades_sharded_counting_without_truncation() {
    // The sharded ladder: a budget that fits one full-range arena but
    // not the per-shard sum degrades to the sequential vertical index; a
    // 1-byte budget degrades all the way to horizontal. Neither
    // truncates, and both keep the answers bit-identical.
    let db = db();
    let attrs = attrs();
    let q = query();
    for algorithm in [Algorithm::BmsPlusPlus, Algorithm::BmsStarStar] {
        let unguarded = mine(&db, &attrs, &q, algorithm).unwrap();
        for budget in [1usize, 64 * 1024] {
            let guard = RunGuard::new(GuardLimits {
                memory_budget_bytes: Some(budget),
                ..GuardLimits::default()
            });
            let mut counter = sharded_factory(&db);
            let result =
                mine_with_counter_guarded(&db, &attrs, &q, algorithm, &mut counter, &guard)
                    .unwrap();
            assert!(
                result.completion.is_complete(),
                "{algorithm} budget {budget}: the ladder must degrade, not truncate"
            );
            assert_eq!(
                sorted(&result.answers),
                sorted(&unguarded.answers),
                "{algorithm} budget {budget}: degraded counting changed the answers"
            );
        }
    }
}

#[test]
fn fptree_faults_every_injection_point() {
    // The trip-at-every-batch-index sweep over the pattern-growth
    // counter: partial answers stay sound and mutually minimal, and
    // resuming — also on an FP-tree counter — reproduces the complete
    // answer set exactly.
    for algorithm in ALL_ALGORITHMS {
        let truncating = sweep_with(algorithm, TruncationReason::WorkBudget, fptree_factory);
        assert!(
            truncating >= 2,
            "{algorithm}: expected at least two guarded batches, found {truncating}"
        );
    }
    for algorithm in [Algorithm::BmsStar, Algorithm::BmsStarStar] {
        sweep_with(algorithm, TruncationReason::Cancelled, fptree_factory);
    }
}

#[test]
fn real_work_budget_trips_mid_projection_soundly() {
    // A genuine cell budget tripping at the FP-tree's projection
    // boundaries: candidates whose conditional walks were in flight are
    // discarded wholesale, completed candidates are kept, partial
    // answers stay sound, and resume is exact.
    let db = db();
    let attrs = attrs();
    let q = query();
    for algorithm in Algorithm::paper_algorithms() {
        let complete = mine(&db, &attrs, &q, algorithm).unwrap();
        for budget in [1u64, 40, 150, 400, 1000] {
            let guard = RunGuard::new(GuardLimits {
                work_budget_cells: Some(budget),
                ..GuardLimits::default()
            });
            let mut counter = fptree_factory(&db);
            let result =
                mine_with_counter_guarded(&db, &attrs, &q, algorithm, &mut counter, &guard)
                    .unwrap();
            for s in &result.answers {
                assert!(
                    complete.answers.contains(s),
                    "{algorithm} budget {budget}: unsound partial answer {s}"
                );
            }
            let Some(state) = result.resume else {
                assert!(
                    result.completion.is_complete(),
                    "{algorithm} budget {budget}: no snapshot on a truncated run"
                );
                continue;
            };
            let mut resume_counter = fptree_factory(&db);
            let resumed = resume_with_counter_guarded(
                &db,
                &attrs,
                &q,
                &mut resume_counter,
                &RunGuard::new(GuardLimits::default()),
                state,
            )
            .unwrap();
            assert_eq!(
                sorted(&resumed.answers),
                sorted(&complete.answers),
                "{algorithm} budget {budget}: fp-tree resume diverged"
            );
        }
    }
}

#[test]
fn tight_memory_budget_degrades_fptree_counting_without_truncation() {
    // The FP-tree ladder: a budget the memoized projections overflow
    // drops to the lazily built vertical twin, and a 1-byte budget falls
    // through to horizontal scans. Neither truncates, and both keep the
    // answers bit-identical to the unguarded run.
    let db = db();
    let attrs = attrs();
    let q = query();
    for algorithm in [Algorithm::BmsPlusPlus, Algorithm::BmsStarStar] {
        let unguarded = mine(&db, &attrs, &q, algorithm).unwrap();
        for budget in [1usize, 64 * 1024] {
            let guard = RunGuard::new(GuardLimits {
                memory_budget_bytes: Some(budget),
                ..GuardLimits::default()
            });
            let mut counter = fptree_factory(&db);
            let result =
                mine_with_counter_guarded(&db, &attrs, &q, algorithm, &mut counter, &guard)
                    .unwrap();
            assert!(
                result.completion.is_complete(),
                "{algorithm} budget {budget}: the ladder must degrade, not truncate"
            );
            assert_eq!(
                sorted(&result.answers),
                sorted(&unguarded.answers),
                "{algorithm} budget {budget}: degraded counting changed the answers"
            );
            if budget == 1 {
                assert!(
                    counter.stats().degraded_batches > 0,
                    "{algorithm}: a 1-byte arena must force the ladder down"
                );
            }
        }
    }
}

#[test]
fn real_work_budget_trips_mid_pooled_batch_soundly() {
    // Not an injected fault: a genuine cell budget that trips *inside*
    // the pooled guarded batch, exercising first-trip-wins draining —
    // the tripped run keeps every completed prefix class, stays sound,
    // and resumes exactly. Budgets sweep from tiny to
    // nearly-the-whole-run so the trip lands at many different points
    // within and between batches.
    let db = db();
    let attrs = attrs();
    let q = query();
    for algorithm in Algorithm::paper_algorithms() {
        let complete = mine(&db, &attrs, &q, algorithm).unwrap();
        for budget in [1u64, 40, 150, 400, 1000] {
            let guard = RunGuard::new(GuardLimits {
                work_budget_cells: Some(budget),
                ..GuardLimits::default()
            });
            let mut counter = vertical_par_factory(&db);
            let result =
                mine_with_counter_guarded(&db, &attrs, &q, algorithm, &mut counter, &guard)
                    .unwrap();
            for s in &result.answers {
                assert!(
                    complete.answers.contains(s),
                    "{algorithm} budget {budget}: unsound partial answer {s}"
                );
            }
            let Some(state) = result.resume else {
                assert!(
                    result.completion.is_complete(),
                    "{algorithm} budget {budget}: no snapshot on a truncated run"
                );
                continue;
            };
            let mut resume_counter = vertical_par_factory(&db);
            let resumed = resume_with_counter_guarded(
                &db,
                &attrs,
                &q,
                &mut resume_counter,
                &RunGuard::new(GuardLimits::default()),
                state,
            )
            .unwrap();
            assert_eq!(
                sorted(&resumed.answers),
                sorted(&complete.answers),
                "{algorithm} budget {budget}: pooled resume diverged"
            );
        }
    }
}

#[test]
fn tight_memory_budget_degrades_pooled_counting_without_truncation() {
    // The parallel-vertical ladder: a budget that fits one arena but not
    // one per worker degrades to sequential vertical; a 1-byte budget
    // degrades all the way to horizontal. Neither truncates, and both
    // keep the answers bit-identical.
    let db = db();
    let attrs = attrs();
    let q = query();
    for algorithm in [Algorithm::BmsPlusPlus, Algorithm::BmsStarStar] {
        let unguarded = mine(&db, &attrs, &q, algorithm).unwrap();
        for budget in [1usize, 64 * 1024] {
            let guard = RunGuard::new(GuardLimits {
                memory_budget_bytes: Some(budget),
                ..GuardLimits::default()
            });
            let mut counter = vertical_par_factory(&db);
            let result =
                mine_with_counter_guarded(&db, &attrs, &q, algorithm, &mut counter, &guard)
                    .unwrap();
            assert!(
                result.completion.is_complete(),
                "{algorithm} budget {budget}: the ladder must degrade, not truncate"
            );
            assert_eq!(
                sorted(&result.answers),
                sorted(&unguarded.answers),
                "{algorithm} budget {budget}: degraded counting changed the answers"
            );
        }
    }
}

#[test]
fn real_work_budget_truncates_and_resumes_exactly() {
    // Not an injected fault: an actual cell budget small enough to stop
    // the run partway, exercising the organic charge-then-trip path.
    let db = db();
    let attrs = attrs();
    let q = query();
    for algorithm in Algorithm::paper_algorithms() {
        let complete = mine(&db, &attrs, &q, algorithm).unwrap();
        let guard = RunGuard::new(GuardLimits {
            work_budget_cells: Some(150),
            ..GuardLimits::default()
        });
        let result = mine_with_guard(
            &db,
            &attrs,
            &q,
            algorithm,
            CountingStrategy::Horizontal,
            &guard,
        )
        .unwrap();
        let Completion::Truncated { reason, .. } = result.completion else {
            panic!("{algorithm}: 150 cells cannot cover the run");
        };
        assert_eq!(reason, TruncationReason::WorkBudget, "{algorithm}");
        for s in &result.answers {
            assert!(complete.answers.contains(s), "{algorithm}: unsound {s}");
        }
        let state = result.resume.expect("snapshot");
        let mut counter = HorizontalCounter::new(&db);
        let resumed = resume_with_counter_guarded(
            &db,
            &attrs,
            &q,
            &mut counter,
            &RunGuard::new(GuardLimits::default()),
            state,
        )
        .unwrap();
        assert_eq!(
            sorted(&resumed.answers),
            sorted(&complete.answers),
            "{algorithm}"
        );
    }
}

#[test]
fn resume_rejects_foreign_snapshot_shapes() {
    // A snapshot stamped with the retired pre-kernel format tag must be
    // refused outright — its frontier encoding predates the unified
    // kernel and cannot be reinterpreted — and a resume request naming a
    // different algorithm than the snapshot pins must be refused too.
    let db = db();
    let attrs = attrs();
    let q = query();
    let guard = RunGuard::new(GuardLimits {
        work_budget_cells: Some(0),
        ..GuardLimits::default()
    });
    let result = mine_with_guard(
        &db,
        &attrs,
        &q,
        Algorithm::BmsPlusPlus,
        CountingStrategy::Horizontal,
        &guard,
    )
    .unwrap();
    let state = result.resume.expect("zero budget must truncate");
    assert_eq!(state.format(), 2, "current snapshots carry format 2");

    let stale = state.with_format(1);
    let err = MiningSession::new(&db, &attrs)
        .resume(&q, &MineRequest::default(), stale)
        .unwrap_err();
    assert!(
        matches!(
            err,
            MiningError::ResumeFormatMismatch {
                found: 1,
                expected: 2
            }
        ),
        "wrong rejection: {err}"
    );
    assert!(
        err.to_string().contains("format 1"),
        "the error must name the stale format: {err}"
    );

    let err = MiningSession::new(&db, &attrs)
        .resume(&q, &MineRequest::new(Algorithm::BmsStar), state.clone())
        .unwrap_err();
    assert!(
        matches!(err, MiningError::ResumeMismatch { .. }),
        "wrong rejection: {err}"
    );

    // The untampered snapshot still resumes to the complete answer set.
    let complete = mine(&db, &attrs, &q, Algorithm::BmsPlusPlus).unwrap();
    let resumed = MiningSession::new(&db, &attrs)
        .resume(&q, &MineRequest::default(), state)
        .unwrap()
        .result;
    assert_eq!(sorted(&resumed.answers), sorted(&complete.answers));
}
