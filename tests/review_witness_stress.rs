//! Review harness: stress the witness-class shortcut paths.

use ccs::prelude::*;

/// Session-API stand-in for the deprecated free `mine` — same shape, so
/// the assertions below stay byte-identical to the original API's.
fn mine(
    db: &TransactionDb,
    attrs: &AttributeTable,
    q: &CorrelationQuery,
    algorithm: Algorithm,
) -> Result<MiningResult, MiningError> {
    MiningSession::new(db, attrs)
        .mine(q, &MineRequest::new(algorithm))
        .map(|o| o.result)
}
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_ITEMS: u32 = 8;

fn random_db(seed: u64) -> TransactionDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(20..80);
    // Plant several overlapping correlated groups among NON-witness items
    // (high ids) plus noise, so minimal correlated sets can be witness-free.
    let groups: Vec<Vec<u32>> = (0..rng.gen_range(1..4))
        .map(|_| {
            let k = rng.gen_range(2..4);
            let mut g = Vec::new();
            while g.len() < k {
                let i = rng.gen_range(1..N_ITEMS);
                if !g.contains(&i) {
                    g.push(i);
                }
            }
            g
        })
        .collect();
    let txns: Vec<Vec<u32>> = (0..n)
        .map(|_| {
            let mut t = Vec::new();
            for g in &groups {
                if rng.gen_bool(0.4) {
                    t.extend(g.iter().copied());
                }
            }
            for i in 0..N_ITEMS {
                if rng.gen_bool(0.25) {
                    t.push(i);
                }
            }
            t
        })
        .collect();
    TransactionDb::from_ids(N_ITEMS, txns)
}

#[test]
fn witness_class_paths_agree_with_naive() {
    let attrs = AttributeTable::with_identity_prices(N_ITEMS);
    for seed in 0..400u64 {
        let db = random_db(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        let params = MiningParams {
            confidence: 0.9,
            support_fraction: [0.05, 0.1, 0.2][rng.gen_range(0..3)],
            ct_fraction: [0.125, 0.25, 0.375][rng.gen_range(0..3)],
            max_level: 6,
            ..MiningParams::paper()
        };
        // Witness class = {item 0} only (price 1): min(price) <= 1.
        // Occasionally widen or add an AM / monotone residual constraint.
        let mut cs = match seed % 4 {
            0 => ConstraintSet::new().and(Constraint::min_le("price", 1.0)),
            1 => ConstraintSet::new().and(Constraint::ItemSubset {
                items: [0u32, 1].into_iter().collect(),
                negated: false,
            }),
            2 => ConstraintSet::new()
                .and(Constraint::min_le("price", 2.0))
                .and(Constraint::max_ge("price", 7.0)),
            _ => ConstraintSet::new().and(Constraint::max_ge("price", 8.0)),
        };
        if seed % 3 == 0 {
            cs = cs.and(Constraint::sum_le("price", 14.0));
        }
        if seed % 5 == 0 {
            cs = cs.and(Constraint::sum_ge("price", 6.0));
        }
        if seed % 7 == 0 {
            cs = cs.and(Constraint::max_le("price", 7.0));
        }
        let q = CorrelationQuery {
            params,
            constraints: cs,
        };
        let vm = mine(&db, &attrs, &q, Algorithm::Naive).unwrap().answers;
        let pp = mine(&db, &attrs, &q, Algorithm::BmsPlusPlus)
            .unwrap()
            .answers;
        assert_eq!(pp, vm, "BMS++ vs naive, seed {seed}, {}", q.constraints);
        let plus = mine(&db, &attrs, &q, Algorithm::BmsPlus).unwrap().answers;
        assert_eq!(plus, vm, "BMS+ vs naive, seed {seed}");
        let mv = mine(&db, &attrs, &q, Algorithm::NaiveMinValid)
            .unwrap()
            .answers;
        let ss = mine(&db, &attrs, &q, Algorithm::BmsStarStar)
            .unwrap()
            .answers;
        assert_eq!(ss, mv, "BMS** vs naive, seed {seed}, {}", q.constraints);
        let star = mine(&db, &attrs, &q, Algorithm::BmsStar).unwrap().answers;
        assert_eq!(star, mv, "BMS* vs naive, seed {seed}");
    }
}
