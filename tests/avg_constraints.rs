//! §6 of the paper (future work): `avg` constraints are neither monotone
//! nor anti-monotone — their solution space "may not be a single region
//! and instead may have holes in it". These tests pin down that
//! behaviour and the library's contract around it: level-wise miners
//! refuse such queries, the exhaustive miner answers them literally.

use ccs::prelude::*;

/// Session-API stand-in for the deprecated free `mine` — same shape, so
/// the assertions below stay byte-identical to the original API's.
fn mine(
    db: &TransactionDb,
    attrs: &AttributeTable,
    q: &CorrelationQuery,
    algorithm: Algorithm,
) -> Result<MiningResult, MiningError> {
    MiningSession::new(db, attrs)
        .mine(q, &MineRequest::new(algorithm))
        .map(|o| o.result)
}

/// avg(price) over identity prices exhibits a hole along a chain:
/// {1} → avg 2 ✓, {1,4} → avg 3.5 ✗, {0,1,4} → avg 3 ✓ for the bound
/// avg ≤ 3.
#[test]
fn avg_solution_space_has_holes() {
    let attrs = AttributeTable::with_identity_prices(6);
    let c = Constraint::Avg {
        attr: "price".into(),
        cmp: Cmp::Le,
        value: 3.0,
    };
    let small = Itemset::from_ids([1]); // avg 2
    let mid = Itemset::from_ids([1, 4]); // avg 3.5
    let large = Itemset::from_ids([0, 1, 4]); // avg 3
    assert!(c.satisfied(&small, &attrs));
    assert!(!c.satisfied(&mid, &attrs));
    assert!(c.satisfied(&large, &attrs));
    assert!(small.is_subset_of(&mid) && mid.is_subset_of(&large));
    assert_eq!(c.monotonicity(), Monotonicity::Neither);
}

fn db() -> TransactionDb {
    // Two perfectly correlated pairs: cheap {0,1} and pricey {3,4};
    // a correlated triple region via {0,1,4}.
    let mut txns = Vec::new();
    for i in 0..90u32 {
        let mut t = Vec::new();
        if i % 2 == 0 {
            t.extend([0, 1]);
        }
        if i % 3 == 0 {
            t.extend([3, 4]);
        }
        txns.push(t);
    }
    TransactionDb::from_ids(5, txns)
}

fn query(value: f64) -> CorrelationQuery {
    CorrelationQuery {
        params: MiningParams {
            support_fraction: 0.1,
            ..MiningParams::paper()
        },
        constraints: ConstraintSet::new().and(Constraint::Avg {
            attr: "price".into(),
            cmp: Cmp::Le,
            value,
        }),
    }
}

#[test]
fn level_wise_miners_refuse_avg_queries() {
    let db = db();
    let attrs = AttributeTable::with_identity_prices(5);
    for algo in Algorithm::paper_algorithms() {
        assert!(matches!(
            mine(&db, &attrs, &query(3.0), algo),
            Err(MiningError::NonMonotoneConstraint)
        ));
    }
}

#[test]
fn naive_miner_answers_avg_queries_literally() {
    let db = db();
    let attrs = AttributeTable::with_identity_prices(5);
    // avg ≤ 2: only the cheap pair {0,1} (avg 1.5) qualifies.
    let r = mine(&db, &attrs, &query(2.0), Algorithm::NaiveMinValid).unwrap();
    assert_eq!(r.answers, vec![Itemset::from_ids([0, 1])]);
    // avg ≤ 5: both correlated pairs qualify.
    let r = mine(&db, &attrs, &query(5.0), Algorithm::NaiveMinValid).unwrap();
    assert!(r.contains(&Itemset::from_ids([0, 1])));
    assert!(r.contains(&Itemset::from_ids([3, 4])));
}

#[test]
fn avg_valid_min_and_min_valid_still_nest() {
    // Even for holey spaces the two literal definitions nest.
    let db = db();
    let attrs = AttributeTable::with_identity_prices(5);
    for value in [2.0, 3.0, 4.5, 5.0] {
        let vm = mine(&db, &attrs, &query(value), Algorithm::Naive).unwrap();
        let mv = mine(&db, &attrs, &query(value), Algorithm::NaiveMinValid).unwrap();
        for s in &vm.answers {
            assert!(mv.contains(s), "avg ≤ {value}: {s} in VALID_MIN only");
        }
    }
}
