//! Differential test for the static analyzer's normalization: mining the
//! *normalized* conjunction must produce exactly the answers of mining
//! the *raw* conjunction, for all five algorithms.
//!
//! The miners' public entry points normalize internally (inside
//! `dispatch`), so this test deliberately goes through the raw
//! `run_*` functions — the only paths that take a query verbatim —
//! with the normalized conjunction built explicitly via `analyze`.
//! Going through `mine()` on both sides would compare the normalizer
//! against itself and prove nothing.
//!
//! Two extra obligations ride along:
//!
//! * when the verdict is `Unsatisfiable`, exhaustive mining of the *raw*
//!   conjunction must come back empty — a wrongly-unsatisfiable verdict
//!   would otherwise silently discard answers;
//! * a `Trivial` verdict means the normalized set is empty or equivalent,
//!   which the main equality check already witnesses.

// Helper fns outside `#[test]` bodies still trip `unwrap_used`; in a
// test binary a panic is the failure report.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeSet;

use proptest::prelude::*;

use ccs::core::{run_bms_plus, run_bms_plus_plus, run_bms_star, run_bms_star_star, run_naive};
use ccs::itemset::HorizontalCounter;
use ccs::prelude::*;

const N_ITEMS: u32 = 6;

fn attrs() -> AttributeTable {
    let mut t = AttributeTable::with_identity_prices(N_ITEMS);
    t.add_categorical("type", &["a", "a", "b", "b", "c", "c"]);
    t
}

fn db_strategy() -> impl Strategy<Value = TransactionDb> {
    (
        proptest::collection::vec(proptest::collection::vec(0u32..N_ITEMS, 0..5), 20..50),
        0u32..3,
        2u32..5,
    )
        .prop_map(|(mut txns, p, every)| {
            for (i, t) in txns.iter_mut().enumerate() {
                if (i as u32).is_multiple_of(every) {
                    t.push(p);
                    t.push(p + 1);
                    t.push((p + 2) % N_ITEMS);
                }
            }
            TransactionDb::from_ids(N_ITEMS, txns)
        })
}

/// Constraints biased toward overlap: same attribute, close thresholds,
/// so duplicate/subsumption/interval rules actually fire.
fn constraint_strategy() -> impl Strategy<Value = Constraint> {
    (
        0usize..12,
        1.0f64..8.0,
        proptest::collection::btree_set(0u32..3, 1..3),
    )
        .prop_map(|(kind, v, ids)| {
            let cats: BTreeSet<u32> = ids.clone();
            match kind {
                0 => Constraint::max_le("price", v),
                1 => Constraint::max_le("price", v + 2.0), // frequent subsumption pairs
                2 => Constraint::min_ge("price", v / 2.0),
                3 => Constraint::sum_le("price", v * 2.0),
                4 => Constraint::sum_ge("price", v),
                5 => Constraint::min_le("price", v),
                6 => Constraint::max_ge("price", v),
                7 => Constraint::ConstSubset {
                    attr: "type".into(),
                    categories: cats,
                    negated: false,
                },
                8 => Constraint::Disjoint {
                    attr: "type".into(),
                    categories: cats,
                    negated: false,
                },
                9 => Constraint::ItemSubset {
                    items: ids,
                    negated: false,
                },
                10 => Constraint::ItemDisjoint {
                    items: ids,
                    negated: true,
                },
                _ => Constraint::CountDistinct {
                    attr: "type".into(),
                    cmp: if v < 4.0 { Cmp::Le } else { Cmp::Ge },
                    value: (v as u64 % 3) + 1,
                },
            }
        })
}

fn params() -> MiningParams {
    MiningParams {
        confidence: 0.9,
        support_fraction: 0.1,
        ct_fraction: 0.2,
        max_level: 5,
        ..MiningParams::paper()
    }
}

/// Runs one raw (non-normalizing) algorithm entry point.
fn run_raw(
    db: &TransactionDb,
    attrs: &AttributeTable,
    q: &CorrelationQuery,
    which: usize,
) -> Vec<Itemset> {
    let mut counter = HorizontalCounter::new(db);
    let result = match which {
        0 => run_bms_plus(db, attrs, q, &mut counter),
        1 => run_bms_plus_plus(db, attrs, q, &mut counter),
        2 => run_bms_star(db, attrs, q, &mut counter),
        3 => run_bms_star_star(db, attrs, q, &mut counter),
        _ => run_naive(db, attrs, q, Semantics::ValidMin, &mut counter),
    };
    result.unwrap().answers
}

const ALGO_NAMES: [&str; 5] = ["BMS+", "BMS++", "BMS*", "BMS**", "naive"];

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn normalized_conjunction_mines_identically(
        db in db_strategy(),
        c1 in constraint_strategy(),
        c2 in constraint_strategy(),
        c3 in constraint_strategy(),
    ) {
        let attrs = attrs();
        let raw_cs = ConstraintSet::new().and(c1).and(c2).and(c3);
        let analysis = analyze(&raw_cs, &attrs).unwrap();

        let raw_q = CorrelationQuery { params: params(), constraints: raw_cs };
        if analysis.verdict.is_unsatisfiable() {
            // Soundness of the verdict itself: the exhaustive miner on the
            // RAW conjunction must find nothing.
            let ground_truth = run_raw(&db, &attrs, &raw_q, 4);
            prop_assert!(
                ground_truth.is_empty(),
                "analyzer called {} unsatisfiable, but naive mining found {} answers",
                raw_q.constraints, ground_truth.len()
            );
            continue;
        }

        let norm_q = CorrelationQuery {
            params: params(),
            constraints: analysis.normalized.clone(),
        };
        for (which, name) in ALGO_NAMES.iter().enumerate() {
            let raw = run_raw(&db, &attrs, &raw_q, which);
            let norm = run_raw(&db, &attrs, &norm_q, which);
            prop_assert_eq!(
                &raw, &norm,
                "{} answers diverge: raw [{}] vs normalized [{}]",
                name, &raw_q.constraints, &norm_q.constraints
            );
        }
    }
}
