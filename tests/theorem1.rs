//! Integration tests for Theorem 1 of the paper: the relationship
//! between the two answer-set semantics, exercised through the full
//! public API across crates.

use ccs::prelude::*;

/// Session-API stand-in for the deprecated free `mine` — same shape, so
/// the assertions below stay byte-identical to the original API's.
fn mine(
    db: &TransactionDb,
    attrs: &AttributeTable,
    q: &CorrelationQuery,
    algorithm: Algorithm,
) -> Result<MiningResult, MiningError> {
    MiningSession::new(db, attrs)
        .mine(q, &MineRequest::new(algorithm))
        .map(|o| o.result)
}

/// Milk(“$1”)–bread(“$2”) always co-occur; cheese(“$5”) is independent
/// of both, so pair correlations stop at {milk, bread}. The monotone
/// constraint max(price) ≥ 5 invalidates that pair, and only the triple
/// {milk, bread, cheese} recovers validity — the paper's §2.2 example
/// as a concrete database.
fn divergence_db() -> TransactionDb {
    let mut txns = Vec::new();
    for i in 0..120u32 {
        let mut t = Vec::new();
        if i % 2 == 0 {
            t.extend([0, 1]);
        }
        if i % 4 <= 1 {
            t.push(4);
        }
        if i % 3 == 0 {
            t.push(2);
        }
        if i % 5 == 0 {
            t.push(3);
        }
        txns.push(t);
    }
    TransactionDb::from_ids(5, txns)
}

fn params() -> MiningParams {
    MiningParams {
        support_fraction: 0.1,
        ..MiningParams::paper()
    }
}

#[test]
fn valid_min_is_always_contained_in_min_valid() {
    let db = divergence_db();
    let attrs = AttributeTable::with_identity_prices(5);
    for constraint in [
        Constraint::max_ge("price", 5.0),
        Constraint::sum_ge("price", 6.0),
        Constraint::min_le("price", 2.0),
        Constraint::max_le("price", 4.0),
        Constraint::sum_le("price", 8.0),
    ] {
        let q = CorrelationQuery {
            params: params(),
            constraints: ConstraintSet::new().and(constraint),
        };
        let vm = mine(&db, &attrs, &q, Algorithm::BmsPlusPlus).unwrap();
        let mv = mine(&db, &attrs, &q, Algorithm::BmsStarStar).unwrap();
        for s in &vm.answers {
            assert!(
                mv.contains(s),
                "{s} in VALID_MIN but not MIN_VALID ({})",
                q.constraints
            );
        }
    }
}

#[test]
fn monotone_constraint_separates_the_semantics() {
    let db = divergence_db();
    let attrs = AttributeTable::with_identity_prices(5);
    let q = CorrelationQuery {
        params: params(),
        constraints: ConstraintSet::new().and(Constraint::max_ge("price", 5.0)),
    };
    let vm = mine(&db, &attrs, &q, Algorithm::BmsPlusPlus).unwrap();
    let mv = mine(&db, &attrs, &q, Algorithm::BmsStarStar).unwrap();
    // The correlated pair {milk, bread} is too cheap; no pair involving
    // cheese is correlated; so VALID_MIN is empty…
    assert!(vm.answers.is_empty(), "VALID_MIN = {:?}", vm.answers);
    // …while MIN_VALID grows the pair until cheese joins.
    assert_eq!(mv.answers, vec![Itemset::from_ids([0, 1, 4])]);
}

#[test]
fn anti_monotone_constraints_collapse_the_semantics() {
    // Theorem 1.2: with only anti-monotone constraints the two answer
    // sets coincide, for every algorithm pair.
    let db = divergence_db();
    let attrs = AttributeTable::with_identity_prices(5);
    for constraint in [
        Constraint::max_le("price", 3.0),
        Constraint::sum_le("price", 4.0),
        Constraint::min_ge("price", 1.0),
    ] {
        let q = CorrelationQuery {
            params: params(),
            constraints: ConstraintSet::new().and(constraint),
        };
        assert!(q.constraints.all_anti_monotone());
        let answers: Vec<Vec<Itemset>> = Algorithm::paper_algorithms()
            .iter()
            .map(|&a| mine(&db, &attrs, &q, a).unwrap().answers)
            .collect();
        for (i, a) in answers.iter().enumerate().skip(1) {
            assert_eq!(
                &answers[0], a,
                "algorithm #{i} diverged on {}",
                q.constraints
            );
        }
    }
}

#[test]
fn level_wise_algorithms_match_the_exhaustive_reference() {
    let db = divergence_db();
    let attrs = AttributeTable::with_identity_prices(5);
    for constraint in [
        Constraint::max_ge("price", 5.0),
        Constraint::min_le("price", 1.0),
        Constraint::sum_ge("price", 7.0),
        Constraint::max_le("price", 4.0),
    ] {
        let q = CorrelationQuery {
            params: params(),
            constraints: ConstraintSet::new().and(constraint),
        };
        let naive_vm = mine(&db, &attrs, &q, Algorithm::Naive).unwrap();
        let naive_mv = mine(&db, &attrs, &q, Algorithm::NaiveMinValid).unwrap();
        for algo in [Algorithm::BmsPlus, Algorithm::BmsPlusPlus] {
            assert_eq!(
                mine(&db, &attrs, &q, algo).unwrap().answers,
                naive_vm.answers,
                "{algo} vs naive on {}",
                q.constraints
            );
        }
        for algo in [Algorithm::BmsStar, Algorithm::BmsStarStar] {
            assert_eq!(
                mine(&db, &attrs, &q, algo).unwrap().answers,
                naive_mv.answers,
                "{algo} vs naive on {}",
                q.constraints
            );
        }
    }
}

#[test]
fn avg_queries_route_to_the_naive_miner_only() {
    let db = divergence_db();
    let attrs = AttributeTable::with_identity_prices(5);
    let q = CorrelationQuery {
        params: params(),
        constraints: ConstraintSet::new().and(Constraint::Avg {
            attr: "price".into(),
            cmp: Cmp::Le,
            value: 2.0,
        }),
    };
    for algo in Algorithm::paper_algorithms() {
        assert!(matches!(
            mine(&db, &attrs, &q, algo),
            Err(MiningError::NonMonotoneConstraint)
        ));
    }
    let r = mine(&db, &attrs, &q, Algorithm::NaiveMinValid).unwrap();
    // {milk, bread} has avg price 1.5 ≤ 2 and is the only correlated
    // set over cheap items.
    assert_eq!(r.answers, vec![Itemset::from_ids([0, 1])]);
}
