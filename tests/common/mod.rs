//! Shared fixtures for the fault-injection suites: the planted XOR
//! dataset, the mixed-constraint query, the session-API stand-ins, the
//! counter factories, and the [`FaultCounter`] decorator that simulates
//! resource exhaustion at a chosen guarded-batch index. Used by
//! `guard_faults.rs` (guard contract) and `durability.rs` (crash-safe
//! checkpointing).

// Each test binary uses a subset of these helpers; helper fns outside
// `#[test]` bodies still trip `unwrap_used`, and in a test binary a
// panic is the failure report.
#![allow(dead_code, clippy::unwrap_used, clippy::expect_used)]

use ccs::itemset::{
    BatchInterrupted, CountProbe, CountingStats, FpTreeCounter, HorizontalCounter, MintermCounter,
    ParallelVerticalCounter, ShardedVerticalCounter,
};
use ccs::prelude::*;

/// Session-API stand-ins with the shapes of the retired free-function
/// matrix, so the sweeps keep their original call sites.
pub fn mine(
    db: &TransactionDb,
    attrs: &AttributeTable,
    q: &CorrelationQuery,
    algorithm: Algorithm,
) -> Result<MiningResult, MiningError> {
    MiningSession::new(db, attrs)
        .mine(q, &MineRequest::new(algorithm))
        .map(|o| o.result)
}

pub fn mine_with_guard(
    db: &TransactionDb,
    attrs: &AttributeTable,
    q: &CorrelationQuery,
    algorithm: Algorithm,
    strategy: CountingStrategy,
    guard: &RunGuard,
) -> Result<MiningResult, MiningError> {
    MiningSession::new(db, attrs)
        .mine(
            q,
            &MineRequest::new(algorithm)
                .strategy(strategy)
                .guard(guard.clone()),
        )
        .map(|o| o.result)
}

pub fn mine_with_counter_guarded<C: MintermCounter>(
    db: &TransactionDb,
    attrs: &AttributeTable,
    q: &CorrelationQuery,
    algorithm: Algorithm,
    counter: &mut C,
    guard: &RunGuard,
) -> Result<MiningResult, MiningError> {
    mine_on(
        db,
        attrs,
        q,
        &MineRequest::new(algorithm).guard(guard.clone()),
        counter,
    )
}

pub fn resume_with_counter_guarded<C: MintermCounter>(
    db: &TransactionDb,
    attrs: &AttributeTable,
    q: &CorrelationQuery,
    counter: &mut C,
    guard: &RunGuard,
    state: ResumeState,
) -> Result<MiningResult, MiningError> {
    resume_on(
        db,
        attrs,
        q,
        &MineRequest::default().guard(guard.clone()),
        counter,
        state,
    )
}

/// Builds the real counter a fault sweep decorates; boxed so one sweep
/// harness can run the horizontal reference and the pooled counters
/// through identical injection schedules.
pub type CounterFactory = fn(&TransactionDb) -> Box<dyn MintermCounter + '_>;

pub fn horizontal_factory(db: &TransactionDb) -> Box<dyn MintermCounter + '_> {
    Box::new(HorizontalCounter::new(db))
}

/// A 2-worker pooled vertical counter with its work floor zeroed, so
/// even the toy dataset's batches take the pool fan-out path.
pub fn vertical_par_factory(db: &TransactionDb) -> Box<dyn MintermCounter + '_> {
    let mut counter = ParallelVerticalCounter::with_workers(db, 2);
    counter.index_mut().set_work_floor(0);
    Box::new(counter)
}

/// A 3-shard, 2-worker sharded vertical counter with its work floor
/// zeroed: three shards on two workers guarantees at least one worker
/// owns multiple shards, and the odd shard count leaves unequal shard
/// lengths, so trips land mid-shard with other shards still in flight.
pub fn sharded_factory(db: &TransactionDb) -> Box<dyn MintermCounter + '_> {
    let mut counter = ShardedVerticalCounter::with_shards_and_workers(db, 3, 2);
    counter.index_mut().set_work_floor(0);
    Box::new(counter)
}

/// The pattern-growth counter: candidates answered from conditional
/// projections of a compressed prefix tree, interruption at projection
/// boundaries.
pub fn fptree_factory(db: &TransactionDb) -> Box<dyn MintermCounter + '_> {
    Box::new(FpTreeCounter::new(db))
}

/// Every counting substrate the durability differential must cover: the
/// six concrete strategies, as sweep-compatible factories.
pub const ALL_FACTORIES: [(&str, CounterFactory); 6] = [
    ("horizontal", horizontal_factory),
    ("vertical", |db| {
        Box::new(ccs::itemset::VerticalCounter::new(db))
    }),
    ("parallel", |db| {
        Box::new(ccs::itemset::ParallelCounter::new(db, 2))
    }),
    ("vertical-par", vertical_par_factory),
    ("sharded", sharded_factory),
    ("fp-tree", fptree_factory),
];

/// Wraps a real counter; at guarded-batch call number `trigger` it
/// simulates `fault` and abandons the batch without doing any work.
pub struct FaultCounter<C> {
    inner: C,
    guard: RunGuard,
    fault: TruncationReason,
    trigger: usize,
    batches_seen: usize,
}

impl<C: MintermCounter> FaultCounter<C> {
    pub fn new(inner: C, guard: RunGuard, fault: TruncationReason, trigger: usize) -> Self {
        FaultCounter {
            inner,
            guard,
            fault,
            trigger,
            batches_seen: 0,
        }
    }
}

impl<C: MintermCounter> MintermCounter for FaultCounter<C> {
    fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64> {
        self.inner.minterm_counts(set)
    }

    fn minterm_counts_batch(&mut self, sets: &[Itemset]) -> Vec<Vec<u64>> {
        self.inner.minterm_counts_batch(sets)
    }

    fn minterm_counts_batch_guarded(
        &mut self,
        sets: &[Itemset],
        probe: &dyn CountProbe,
    ) -> Result<Vec<Vec<u64>>, BatchInterrupted> {
        let index = self.batches_seen;
        self.batches_seen += 1;
        if index == self.trigger {
            match self.fault {
                TruncationReason::Cancelled => self.guard.cancel(),
                TruncationReason::MemoryBudget => probe.note_memory_trip(),
                other => self.guard.trip(other),
            }
            return Err(BatchInterrupted::default());
        }
        self.inner.minterm_counts_batch_guarded(sets, probe)
    }

    fn n_transactions(&self) -> usize {
        self.inner.n_transactions()
    }

    fn stats(&self) -> CountingStats {
        self.inner.stats()
    }
}

/// Two XOR-planted modules — `{0, 1, 2}` with item 2 present iff exactly
/// one of 0/1 is, and `{3, 4, 5}` likewise — plus a plain correlated pair
/// `{6, 7}`. The XOR triples are pairwise independent but strongly
/// three-way dependent, so their pairs stay below the significance
/// threshold at level 2 and every miner (including constraint-pushing
/// BMS++) grows genuine level-3 and level-4 candidates: multiple guarded
/// batches per run, with scratch-hungry deep batches for the vertical
/// counter.
pub fn db() -> TransactionDb {
    let mut txns = Vec::new();
    for i in 0..160u32 {
        let mut t = Vec::new();
        let (a, b) = (i & 1, (i >> 1) & 1);
        if a == 1 {
            t.push(0);
        }
        if b == 1 {
            t.push(1);
        }
        if a ^ b == 1 {
            t.push(2);
        }
        let (c, d) = ((i >> 2) & 1, (i >> 3) & 1);
        if c == 1 {
            t.push(3);
        }
        if d == 1 {
            t.push(4);
        }
        if c ^ d == 1 {
            t.push(5);
        }
        if i % 5 == 0 {
            t.extend([6, 7]);
        }
        txns.push(t);
    }
    TransactionDb::from_ids(8, txns)
}

/// Mixed constraints: one anti-monotone (`max ≤`) and one monotone
/// (`sum ≥`), so BMS++ pushes, BMS*/BMS** run a genuine phase-2 sweep,
/// and `VALID_MIN` ≠ `MIN_VALID`.
pub fn query() -> CorrelationQuery {
    CorrelationQuery {
        params: MiningParams {
            confidence: 0.9,
            support_fraction: 0.1,
            max_level: 4,
            ..MiningParams::paper()
        },
        constraints: ConstraintSet::new()
            .and(Constraint::max_le("price", 7.0))
            .and(Constraint::sum_ge("price", 3.0)),
    }
}

pub fn attrs() -> AttributeTable {
    AttributeTable::with_identity_prices(8)
}

pub fn sorted(answers: &[Itemset]) -> Vec<Itemset> {
    let mut v = answers.to_vec();
    v.sort_unstable();
    v
}

pub const ALL_ALGORITHMS: [Algorithm; 6] = [
    Algorithm::BmsPlus,
    Algorithm::BmsPlusPlus,
    Algorithm::BmsStar,
    Algorithm::BmsStarStar,
    Algorithm::Naive,
    Algorithm::NaiveMinValid,
];
