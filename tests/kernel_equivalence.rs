//! Golden differential suite for the levelwise kernel.
//!
//! Snapshots every miner's exact output — sorted answer sets plus the
//! deterministic work metrics — on three small fixed databases crossed
//! with four query shapes, and compares each run against a checked-in
//! golden file generated from the pre-kernel implementations. Any
//! behavioural drift in the kernel/policy refactor (a reordered
//! prefilter, a lost cache hit, an off-by-one level mark) shows up as a
//! line-level diff here.
//!
//! The suite also asserts, independently of the goldens:
//!
//! * answers are bit-identical across every counting strategy,
//! * answer sets are mutually minimal (no nested pairs).
//!
//! Regenerate after an *intentional* behaviour change with
//! `UPDATE_GOLDENS=1 cargo test --test kernel_equivalence`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::fmt::Write as _;
use std::path::PathBuf;

use ccs::core::{run_bms, BmsOutput};
use ccs::itemset::HorizontalCounter;
use ccs::prelude::*;

/// Perfectly-correlated pair {0,1} plus sparse fill — the smallest shape.
fn pair_db() -> TransactionDb {
    let mut txns = Vec::new();
    for i in 0..50 {
        let mut t = Vec::new();
        if i % 2 == 0 {
            t.extend([0u32, 1]);
        }
        if i % 5 == 0 {
            t.push(2);
        }
        txns.push(t);
    }
    TransactionDb::from_ids(3, txns)
}

/// Two overlapping correlated modules over 8 items: many same-prefix
/// candidates per level, so batching and the verdict cache see traffic.
fn modular_db() -> TransactionDb {
    let mut txns = Vec::new();
    for i in 0..120u32 {
        let mut t = Vec::new();
        if i % 2 == 0 {
            t.extend([0, 1, 2, 3]);
        }
        if i % 3 == 0 {
            t.extend([3, 4, 5, 6]);
        }
        if i % 5 == 0 {
            t.push(7);
        }
        if i % 7 == 0 {
            t.extend([1, 5]);
        }
        t.sort_unstable();
        t.dedup();
        txns.push(t);
    }
    TransactionDb::from_ids(8, txns)
}

/// Two XOR-planted triples plus a plain pair: pairwise-independent items
/// that only turn significant at level 3, forcing genuine deep levels.
fn xor_db() -> TransactionDb {
    let mut txns = Vec::new();
    for i in 0..160u32 {
        let mut t = Vec::new();
        let (a, b) = (i & 1, (i >> 1) & 1);
        if a == 1 {
            t.push(0);
        }
        if b == 1 {
            t.push(1);
        }
        if a ^ b == 1 {
            t.push(2);
        }
        let (c, d) = ((i >> 2) & 1, (i >> 3) & 1);
        if c == 1 {
            t.push(3);
        }
        if d == 1 {
            t.push(4);
        }
        if c ^ d == 1 {
            t.push(5);
        }
        if i % 5 == 0 {
            t.extend([6, 7]);
        }
        txns.push(t);
    }
    TransactionDb::from_ids(8, txns)
}

/// Measure override for this run: `CCS_TEST_MEASURE`, when set (CLI
/// names), reruns the whole matrix under that correlation measure at
/// its default threshold and compares against a per-measure golden
/// (`kernel_equivalence.<measure>.golden`). The default χ² golden file
/// is never touched by a forced run, so the plain leg still certifies
/// that χ²-through-the-measure-layer is bit-identical.
fn forced_measure() -> Option<Measure> {
    std::env::var("CCS_TEST_MEASURE").ok().map(|s| {
        s.parse()
            .expect("CCS_TEST_MEASURE must name a correlation measure")
    })
}

fn params() -> MiningParams {
    let measure = forced_measure().unwrap_or(Measure::Chi2);
    MiningParams {
        measure,
        confidence: if measure == Measure::Chi2 {
            0.9
        } else {
            measure.default_threshold()
        },
        support_fraction: 0.1,
        max_level: 4,
        ..MiningParams::paper()
    }
}

/// The four query shapes: unconstrained, anti-monotone only, monotone
/// only, and mixed (both classes, so `VALID_MIN` ≠ `MIN_VALID` and the
/// two-phase miners run genuine phase-2 sweeps).
fn query_shapes() -> Vec<(&'static str, ConstraintSet)> {
    vec![
        ("none", ConstraintSet::new()),
        (
            "am",
            ConstraintSet::new().and(Constraint::max_le("price", 6.0)),
        ),
        (
            "m",
            ConstraintSet::new().and(Constraint::sum_ge("price", 3.0)),
        ),
        (
            "mixed",
            ConstraintSet::new()
                .and(Constraint::max_le("price", 7.0))
                .and(Constraint::sum_ge("price", 3.0)),
        ),
    ]
}

const ALGORITHMS: [Algorithm; 6] = [
    Algorithm::BmsPlus,
    Algorithm::BmsPlusPlus,
    Algorithm::BmsStar,
    Algorithm::BmsStarStar,
    Algorithm::Naive,
    Algorithm::NaiveMinValid,
];

fn fmt_sets(sets: &[Itemset]) -> String {
    let each: Vec<String> = sets
        .iter()
        .map(|s| {
            let ids: Vec<String> = s.iter().map(|i| i.0.to_string()).collect();
            ids.join(".")
        })
        .collect();
    format!("[{}]", each.join(" "))
}

fn fmt_metrics(m: &MiningMetrics) -> String {
    format!(
        "cand={} tables={} pruned={} scans={} txns={} cells={} hits={} degraded={} maxlvl={} sig={} notsig={}",
        m.candidates_generated,
        m.tables_built,
        m.pruned_before_count,
        m.db_scans,
        m.transactions_visited,
        m.cells_counted,
        m.cache_hits,
        m.degraded_batches,
        m.max_level_reached,
        m.sig_size,
        m.notsig_size,
    )
}

fn assert_mutually_minimal(context: &str, answers: &[Itemset]) {
    for (i, a) in answers.iter().enumerate() {
        for b in &answers[i + 1..] {
            assert!(
                !a.is_subset_of(b) && !b.is_subset_of(a),
                "{context}: nested answers {a} and {b}"
            );
        }
    }
}

/// One run per algorithm with the paper-faithful horizontal counter —
/// the configuration whose metrics the goldens pin down.
fn mine_horizontal(
    db: &TransactionDb,
    attrs: &AttributeTable,
    q: &CorrelationQuery,
    algorithm: Algorithm,
) -> MiningResult {
    MiningSession::new(db, attrs)
        .mine(q, &MineRequest::new(algorithm))
        .unwrap()
        .result
}

/// Shard-count override for this run: `CCS_TEST_SHARDS`, when set,
/// forces every non-horizontal strategy onto that many tid-range shards
/// (the CI forced-shards job exports 3, a count that never divides the
/// fixture sizes evenly). It also routes `Auto` to the sharded engine,
/// so the forced run exercises sharding across the whole matrix.
fn forced_shards() -> Option<usize> {
    std::env::var("CCS_TEST_SHARDS")
        .ok()
        .map(|s| s.parse().expect("CCS_TEST_SHARDS must be a shard count"))
}

/// Strategy override for this run: `CCS_TEST_STRATEGY`, when set,
/// narrows the cross-strategy comparison to that single strategy (CLI
/// names), so CI can run a focused forced pass — the fp-tree job
/// exports `fp-tree`, driving pattern-growth counting through the whole
/// algorithm × database × query matrix against the horizontal
/// reference.
fn forced_strategy() -> Option<CountingStrategy> {
    std::env::var("CCS_TEST_STRATEGY").ok().map(|s| {
        s.parse()
            .expect("CCS_TEST_STRATEGY must name a counting strategy")
    })
}

/// Same query under a non-default strategy; only the answers must match.
fn mine_with(
    db: &TransactionDb,
    attrs: &AttributeTable,
    q: &CorrelationQuery,
    algorithm: Algorithm,
    strategy: CountingStrategy,
) -> MiningResult {
    let mut request = MineRequest::new(algorithm).strategy(strategy);
    if let Some(shards) = forced_shards() {
        request = request.shards(shards);
    }
    MiningSession::new(db, attrs)
        .mine(q, &request)
        .unwrap()
        .result
}

fn baseline_bms(db: &TransactionDb) -> BmsOutput {
    let mut counter = HorizontalCounter::new(db);
    run_bms(db, &params(), &mut counter)
}

/// Renders the full golden transcript: one line per
/// (database × query shape × algorithm), plus one BMS-baseline line per
/// database.
fn render_transcript() -> String {
    let mut out = String::new();
    let databases: [(&str, TransactionDb); 3] = [
        ("pair", pair_db()),
        ("modular", modular_db()),
        ("xor", xor_db()),
    ];
    for (db_name, db) in &databases {
        let attrs = AttributeTable::with_identity_prices(db.n_items());
        let baseline = baseline_bms(db);
        let _ = writeln!(
            out,
            "{db_name}/-/BMS sig={} level1={} {}",
            fmt_sets(&baseline.sig),
            baseline.level1.len(),
            fmt_metrics(&baseline.metrics),
        );
        for (shape, constraints) in query_shapes() {
            let q = CorrelationQuery {
                params: params(),
                constraints,
            };
            for algorithm in ALGORITHMS {
                let context = format!("{db_name}/{shape}/{algorithm}");
                let r = mine_horizontal(db, &attrs, &q, algorithm);
                assert!(r.completion.is_complete(), "{context}: truncated");
                assert_mutually_minimal(&context, &r.answers);
                let strategies = match forced_strategy() {
                    Some(s) => vec![s],
                    None => vec![
                        CountingStrategy::Vertical,
                        CountingStrategy::Parallel,
                        CountingStrategy::VerticalPar,
                        CountingStrategy::Sharded,
                        CountingStrategy::FpTree,
                        CountingStrategy::Auto,
                    ],
                };
                for strategy in strategies {
                    let v = mine_with(db, &attrs, &q, algorithm, strategy);
                    assert_eq!(
                        r.answers, v.answers,
                        "{context}: {strategy} diverged from horizontal"
                    );
                }
                let _ = writeln!(
                    out,
                    "{context} answers={} {}",
                    fmt_sets(&r.answers),
                    fmt_metrics(&r.metrics),
                );
            }
        }
    }
    out
}

fn golden_path() -> PathBuf {
    let file = match forced_measure() {
        Some(m) if m != Measure::Chi2 => format!("kernel_equivalence.{}.golden", m.name()),
        _ => "kernel_equivalence.golden".to_owned(),
    };
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
        .join(file)
}

#[test]
fn miners_match_the_golden_transcript() {
    let transcript = render_transcript();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &transcript).unwrap();
        eprintln!(
            "wrote {} ({} lines)",
            path.display(),
            transcript.lines().count()
        );
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDENS=1",
            path.display()
        )
    });
    if transcript != golden {
        // Line-level diff: point straight at the drifted run.
        for (i, (got, want)) in transcript.lines().zip(golden.lines()).enumerate() {
            assert_eq!(
                got,
                want,
                "golden mismatch at line {} (left = this build, right = golden)",
                i + 1
            );
        }
        assert_eq!(
            transcript.lines().count(),
            golden.lines().count(),
            "transcript length changed"
        );
        panic!("transcript differs from golden in whitespace only");
    }
}
