//! Offline stand-in for `criterion` 0.5 (see `vendor/README.md`).
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — over a simple wall-clock measurement loop:
//! warm up briefly, pick an iteration count targeting ~0.1 s per sample,
//! then report the median per-iteration time over `sample_size` samples.
//! No statistics beyond min/median/max, no HTML reports, no baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `apriori_gen/400`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` display form, as in real criterion.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A bare id with no parameter component.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Runs the timed closure; handed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_one<R: FnMut(&mut Bencher)>(routine: &mut R, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    b.elapsed
}

/// Measures one benchmark and prints a single summary line.
fn run_bench<R: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut routine: R) {
    // Calibrate: grow the iteration count until one sample costs >= 10 ms,
    // then scale to ~0.3 s per sample (capped to keep total time sane).
    let mut iters: u64 = 1;
    let per_iter = loop {
        let t = time_one(&mut routine, iters);
        if t >= Duration::from_millis(10) || iters >= 1 << 20 {
            break t.as_secs_f64() / iters as f64;
        }
        iters *= 4;
    };
    let target = 0.1_f64;
    iters = ((target / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

    let mut samples: Vec<f64> = (0..sample_size.max(3))
        .map(|_| time_one(&mut routine, iters).as_secs_f64() / iters as f64)
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!(
        "{name:<55} time: [{} {} {}]",
        format_time(lo),
        format_time(median),
        format_time(hi)
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.3} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// The top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, routine: R) -> &mut Self {
        run_bench(id, self.default_sample_size, routine);
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.id, self.default_sample_size, |b| routine(b, input));
        self
    }

    /// Opens a named group; benchmarks in it are prefixed `name/`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _parent: self,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` as `group_name/id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, routine: R) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, routine);
        self
    }

    /// Benchmarks `routine` with a borrowed input as `group_name/id`.
    pub fn bench_with_input<I, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            routine(b, input)
        });
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// Bundles bench functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(n: u64) -> u64 {
        (0..n).fold(0, |acc, x| acc ^ x.wrapping_mul(0x9E37_79B9))
    }

    #[test]
    fn bencher_records_elapsed_time() {
        let mut b = Bencher {
            iters: 1000,
            elapsed: Duration::ZERO,
        };
        b.iter(|| work(100));
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn full_api_surface_compiles_and_runs() {
        let mut c = Criterion {
            default_sample_size: 3,
        };
        c.bench_function("unit/work", |b| b.iter(|| work(10)));
        c.bench_with_input(BenchmarkId::new("unit/param", 32), &32u64, |b, &n| {
            b.iter(|| work(n))
        });
        let mut group = c.benchmark_group("unit/group");
        group.sample_size(3);
        group.bench_function("inner", |b| b.iter(|| work(10)));
        group.bench_with_input(BenchmarkId::new("with_input", 8), &8u64, |b, &n| {
            b.iter(|| work(n))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}
