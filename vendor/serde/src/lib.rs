//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! The workspace derives `Serialize` / `Deserialize` on its data types as
//! API surface for downstream users, but never serializes anything itself
//! — so the traits here are markers, satisfied by the no-op impls the
//! vendored `serde_derive` emits. Swapping the real serde back in is a
//! one-line change in the workspace `Cargo.toml`.

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
