//! Offline stand-in for `thiserror-impl`.
//!
//! This workspace pins all third-party dependencies to vendored,
//! network-free implementations (see `vendor/README.md`). The derive
//! implements the subset of `#[derive(thiserror::Error)]` the workspace
//! uses:
//!
//! * enums with unit, tuple, and named-field variants, and structs with
//!   named fields;
//! * `#[error("…")]` format strings with implicit named-field capture
//!   (`{field}`), positional selectors (`{0}`, `{1:?}`), and `{{`/`}}`
//!   escapes;
//! * `#[from]` on a single-field variant (generates both the `From` impl
//!   and `Error::source`), and `#[source]` (source only).
//!
//! Generic error types, `#[error(transparent)]`, and backtrace capture
//! are not implemented — nothing in the workspace needs them — and
//! generics produce a `compile_error!` rather than silently-broken impls.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a variant or struct.
struct Field {
    /// Binding name used in patterns: the field name, or `_i` for the
    /// `i`-th tuple field.
    binding: String,
    /// Named-struct field name (`None` for tuple fields).
    name: Option<String>,
    /// Source text of the field's type.
    ty: String,
    has_from: bool,
    has_source: bool,
}

/// One parsed enum variant (or, with `name == ""` unused, the body of a
/// struct).
struct Variant {
    name: String,
    /// `None` → unit variant; `Some((named, fields))` otherwise.
    fields: Option<(bool, Vec<Field>)>,
    /// The `#[error("…")]` literal, verbatim (quotes included).
    format: Option<String>,
}

/// Derives `Display`, `std::error::Error`, and `From` impls in the style
/// of the real `thiserror` crate.
#[proc_macro_derive(Error, attributes(error, from, source, backtrace))]
pub fn derive_error(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("::core::compile_error!({msg:?});")
            .parse()
            .expect("valid compile_error tokens"),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    let mut item_error_attr: Option<String> = None;

    // Walk the item header: attributes (capturing `#[error(…)]` for the
    // struct form), visibility, then the `struct`/`enum` keyword.
    let mut kind = None;
    while i < tokens.len() {
        if let Some((attr, next)) = parse_attr(&tokens, i) {
            if let Some(fmt) = attr {
                item_error_attr = Some(fmt);
            }
            i = next;
            continue;
        }
        if let TokenTree::Ident(id) = &tokens[i] {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                kind = Some(s);
                i += 1;
                break;
            }
        }
        i += 1;
    }
    let kind = kind.ok_or("thiserror stand-in: expected a struct or enum")?;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("thiserror stand-in: missing type name".into()),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err("thiserror stand-in: generic error types are not supported".into());
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => return Err("thiserror stand-in: expected a brace-delimited body".into()),
    };

    let variants = if kind == "enum" {
        parse_enum_body(body)?
    } else {
        vec![Variant {
            name: String::new(),
            fields: Some((true, parse_fields(body, true)?)),
            format: item_error_attr,
        }]
    };

    let mut out = String::new();
    render_display(&mut out, &name, kind == "enum", &variants)?;
    render_source(&mut out, &name, kind == "enum", &variants);
    render_from(&mut out, &name, kind == "enum", &variants);
    out.parse()
        .map_err(|e| format!("thiserror stand-in: generated invalid tokens: {e:?}"))
}

/// Parses one `#[…]` attribute at `tokens[i]`. Returns
/// `Some((error_format, next_index))` when an attribute is present;
/// `error_format` is the `#[error("…")]` literal if that is what it was.
fn parse_attr(tokens: &[TokenTree], i: usize) -> Option<(Option<String>, usize)> {
    match (tokens.get(i), tokens.get(i + 1)) {
        (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
            if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let fmt = match (inner.first(), inner.get(1)) {
                (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
                    if id.to_string() == "error" =>
                {
                    args.stream().into_iter().next().and_then(|t| match t {
                        TokenTree::Literal(l) => Some(l.to_string()),
                        _ => None,
                    })
                }
                _ => None,
            };
            Some((fmt, i + 2))
        }
        _ => None,
    }
}

fn parse_enum_body(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let mut format = None;
        while let Some((attr, next)) = parse_attr(&tokens, i) {
            if let Some(fmt) = attr {
                format = Some(fmt);
            }
            i = next;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => {
                return Err(format!(
                    "thiserror stand-in: expected a variant name, found `{other}`"
                ))
            }
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Some((false, parse_fields(g.stream(), false)?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some((true, parse_fields(g.stream(), true)?))
            }
            _ => None,
        };
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant {
            name,
            fields,
            format,
        });
    }
    Ok(variants)
}

/// Parses a comma-separated field list (top-level commas only; commas
/// inside `<…>` belong to the type).
fn parse_fields(body: TokenStream, named: bool) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    let mut index = 0usize;
    while i < tokens.len() {
        let mut has_from = false;
        let mut has_source = false;
        while let Some((_, next)) = parse_attr(&tokens, i) {
            if let (Some(TokenTree::Punct(_)), Some(TokenTree::Group(g))) =
                (tokens.get(i), tokens.get(i + 1))
            {
                let mut inner = g.stream().into_iter();
                if let Some(TokenTree::Ident(id)) = inner.next() {
                    match id.to_string().as_str() {
                        "from" => has_from = true,
                        "source" => has_source = true,
                        _ => {}
                    }
                }
            }
            i = next;
        }
        // Visibility: `pub` with an optional `(crate)`/`(super)` group.
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = if named {
            let n = match tokens.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return Err("thiserror stand-in: expected a field name".into()),
            };
            i += 1;
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                _ => return Err("thiserror stand-in: expected `:` after field name".into()),
            }
            Some(n)
        } else {
            None
        };
        // The type: tokens up to the next top-level comma.
        let mut ty = String::new();
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            if !ty.is_empty() {
                ty.push(' ');
            }
            ty.push_str(&tokens[i].to_string());
            i += 1;
        }
        let binding = match &name {
            Some(n) => n.clone(),
            None => format!("_{index}"),
        };
        fields.push(Field {
            binding,
            name,
            ty,
            has_from,
            has_source,
        });
        index += 1;
    }
    Ok(fields)
}

/// Rewrites positional selectors in an `#[error("…")]` literal so the
/// string works with implicit named-argument capture against tuple-field
/// bindings: `{0}` → `{_0}`, `{1:?}` → `{_1:?}`. `{{`/`}}` escapes and
/// named captures pass through untouched.
fn rewrite_positional(lit: &str) -> String {
    let chars: Vec<char> = lit.chars().collect();
    let mut out = String::with_capacity(lit.len() + 4);
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '{' {
            if chars.get(i + 1) == Some(&'{') {
                out.push_str("{{");
                i += 2;
                continue;
            }
            let start = i + 1;
            let mut end = start;
            while end < chars.len() && chars[end] != '}' && chars[end] != ':' {
                end += 1;
            }
            let arg: String = chars[start..end].iter().collect();
            out.push('{');
            if !arg.is_empty() && arg.chars().all(|d| d.is_ascii_digit()) {
                out.push('_');
            }
            out.push_str(&arg);
            i = end;
            continue;
        }
        if c == '}' && chars.get(i + 1) == Some(&'}') {
            out.push_str("}}");
            i += 2;
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

fn pattern(type_name: &str, is_enum: bool, v: &Variant) -> String {
    let path = if is_enum {
        format!("{type_name}::{}", v.name)
    } else {
        "Self".to_string()
    };
    match &v.fields {
        None => path,
        Some((true, fields)) => {
            let list: Vec<&str> = fields.iter().map(|f| f.binding.as_str()).collect();
            format!("{path} {{ {} }}", list.join(", "))
        }
        Some((false, fields)) => {
            let list: Vec<&str> = fields.iter().map(|f| f.binding.as_str()).collect();
            format!("{path}({})", list.join(", "))
        }
    }
}

fn render_display(
    out: &mut String,
    name: &str,
    is_enum: bool,
    variants: &[Variant],
) -> Result<(), String> {
    out.push_str(&format!(
        "impl ::core::fmt::Display for {name} {{\n\
         #[allow(unused_variables, clippy::used_underscore_binding)]\n\
         fn fmt(&self, __formatter: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
         match self {{\n"
    ));
    for v in variants {
        let fmt = v.format.as_ref().ok_or_else(|| {
            format!(
                "thiserror stand-in: missing #[error(\"…\")] attribute on `{}`",
                if v.name.is_empty() { name } else { &v.name }
            )
        })?;
        out.push_str(&format!(
            "{} => ::core::write!(__formatter, {}),\n",
            pattern(name, is_enum, v),
            rewrite_positional(fmt)
        ));
    }
    out.push_str("}\n}\n}\n");
    Ok(())
}

fn render_source(out: &mut String, name: &str, is_enum: bool, variants: &[Variant]) {
    let mut arms = String::new();
    for v in variants {
        if let Some((_, fields)) = &v.fields {
            if let Some(f) = fields.iter().find(|f| f.has_from || f.has_source) {
                arms.push_str(&format!(
                    "{} => ::core::option::Option::Some({} as &(dyn ::std::error::Error + 'static)),\n",
                    pattern(name, is_enum, v),
                    f.binding
                ));
            }
        }
    }
    out.push_str(&format!(
        "impl ::std::error::Error for {name} {{\n\
         #[allow(unused_variables, unreachable_patterns, clippy::match_single_binding)]\n\
         fn source(&self) -> ::core::option::Option<&(dyn ::std::error::Error + 'static)> {{\n\
         match self {{\n\
         {arms}_ => ::core::option::Option::None,\n\
         }}\n}}\n}}\n"
    ));
}

fn render_from(out: &mut String, name: &str, is_enum: bool, variants: &[Variant]) {
    for v in variants {
        let Some((named, fields)) = &v.fields else {
            continue;
        };
        let Some(f) = fields.iter().find(|f| f.has_from) else {
            continue;
        };
        if !is_enum || fields.len() != 1 {
            // The real crate supports from-plus-backtrace shapes; the
            // workspace only ever uses a single-field enum variant.
            continue;
        }
        let construct = if *named {
            format!(
                "{name}::{} {{ {}: value }}",
                v.name,
                f.name.as_deref().unwrap_or("")
            )
        } else {
            format!("{name}::{}(value)", v.name)
        };
        out.push_str(&format!(
            "impl ::core::convert::From<{ty}> for {name} {{\n\
             fn from(value: {ty}) -> Self {{ {construct} }}\n\
             }}\n",
            ty = f.ty
        ));
    }
}
