//! Offline stand-in for `proptest` 1 (see `vendor/README.md`).
//!
//! Re-implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_filter_map` /
//! `boxed`, range and tuple strategies, `collection::{vec, btree_set}`,
//! [`prelude::any`], `prop_oneof!`, and the `proptest!` test macro with
//! `#![proptest_config(...)]`. Differences from the real crate:
//!
//! * generation is plain random sampling from a fixed seed — no shrinking
//!   and no persistence (`*.proptest-regressions` files are ignored);
//! * `prop_assert!` family forwards to `assert!` (panics instead of
//!   returning `TestCaseError`).
//!
//! Every test case is still fully deterministic: the runner derives its
//! RNG seed from the test function name, so failures reproduce exactly.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Runner configuration; the workspace only ever overrides `cases`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
        /// Upper bound on strategy rejections before the runner gives up.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// The deterministic RNG handed to strategies.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// A generator seeded from `name` (FNV-1a), so each test gets an
        /// independent but reproducible stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    use rand::Rng;

    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    ///
    /// `generate` returning `None` means the draw was rejected (e.g. a
    /// `prop_filter_map` miss); the runner retries with fresh randomness.
    pub trait Strategy {
        type Value;

        /// Draws one value, or `None` to reject this attempt.
        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Keeps only values `f` maps to `Some`, rejecting the rest.
        fn prop_filter_map<U, F>(self, _reason: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<U>,
        {
            FilterMap { inner: self, f }
        }

        /// Erases the concrete strategy type (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> Option<U> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> Option<U> {
            self.inner.generate(rng).and_then(&self.f)
        }
    }

    /// Always produces a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    (self.start < self.end).then(|| rng.gen_range(self.clone()))
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    (self.start() <= self.end()).then(|| rng.gen_range(self.clone()))
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    Some(($(self.$idx.generate(rng)?,)+))
                }
            }
        };
    }
    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// Draws a full-domain value of `A` ([`crate::prelude::any`]).
    pub struct Any<A>(pub(crate) PhantomData<A>);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.gen())
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(rng.gen())
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.min..=self.max)
        }
    }

    /// `proptest::collection::vec`: a `Vec` of `size` draws from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `proptest::collection::btree_set`: a set of `size` *distinct* draws.
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Duplicates don't grow the set, so allow extra attempts; a
            // too-small element domain surfaces as a rejection (None).
            for _ in 0..(target * 8 + 16) {
                if out.len() == target {
                    break;
                }
                out.insert(self.elem.generate(rng)?);
            }
            (out.len() >= self.size.min).then_some(out)
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    use std::marker::PhantomData;

    /// `any::<T>()`: the full-domain strategy for `T`.
    pub fn any<A>() -> crate::strategy::Any<A>
    where
        crate::strategy::Any<A>: Strategy<Value = A>,
    {
        crate::strategy::Any(PhantomData)
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Rejections (`None` draws) retry with fresh randomness, bounded by
/// `Config::max_global_rejects`; accepted cases run until `Config::cases`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(
                        let $arg = match $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut rng,
                        ) {
                            Some(value) => value,
                            None => {
                                rejected += 1;
                                assert!(
                                    rejected < config.max_global_rejects,
                                    "proptest: too many strategy rejections ({rejected})",
                                );
                                continue;
                            }
                        };
                    )*
                    accepted += 1;
                    $body
                }
            }
        )*
    };
    // Without a config attribute, run with the defaults.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Stand-in `prop_assert!`: panics (via `assert!`) instead of returning
/// a `TestCaseError`, which is equivalent under this runner.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Doc comments and multi-binding signatures must both parse.
        #[test]
        fn ranges_and_tuples(
            (a, b) in (0u32..10, 5usize..9),
            flip in any::<bool>(),
        ) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b), "b = {}", b);
            let _ = flip;
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u32..100, 0..4),
            s in crate::collection::btree_set(0u32..5, 1..3),
        ) {
            prop_assert!(v.len() < 4);
            prop_assert!((1..=2).contains(&s.len()), "set {:?}", s);
        }

        #[test]
        fn oneof_and_filter_map_compose(
            x in prop_oneof![
                (0u32..3).prop_map(|v| v * 100),
                (10u32..13).prop_filter_map("odd only", |v| (v % 2 == 1).then_some(v)),
            ],
        ) {
            prop_assert!(x == 0 || x == 100 || x == 200 || x == 11, "x = {}", x);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let strat = (0u64..1_000_000).prop_map(|v| v);
        let mut r1 = crate::test_runner::TestRng::for_test("alpha");
        let mut r2 = crate::test_runner::TestRng::for_test("alpha");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }
}
