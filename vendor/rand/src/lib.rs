//! Offline stand-in for `rand` 0.8 (see `vendor/README.md`).
//!
//! Implements the exact API surface the workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`,
//! `gen_range`, and `gen_bool` — over a xoshiro256** generator seeded
//! through SplitMix64 (the same seeding scheme rand's `seed_from_u64`
//! documents). Streams are NOT bit-compatible with the real crate, but
//! every consumer in this workspace only requires determinism under a
//! fixed seed, which this provides.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution: uniform over the
/// type's natural unit domain (`[0, 1)` for floats, fair coin for bool).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer / float types with uniform range sampling.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. `lo < hi` checked by the caller.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. `lo <= hi` checked by the caller.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add(bounded_u128(rng, span) as $t)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add(bounded_u128(rng, span) as $t)
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by widening multiply (Lemire); `span`
/// fits in 64 bits for every integer type above.
fn bounded_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64();
    }
    let span = span as u64;
    // Debiased: retry while in the unrepresentable low zone.
    let zone = span.wrapping_neg() % span;
    loop {
        let wide = (rng.next_u64() as u128) * (span as u128);
        if (wide as u64) >= zone {
            return (wide >> 64) as u64;
        }
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_range(rng, lo, hi)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f32::sample(rng) * (hi - lo)
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_range(rng, lo, hi)
    }
}

/// A range argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_range_inclusive(rng, lo, hi)
    }
}

/// The user-facing sampling methods, blanket-implemented for every
/// [`RngCore`] (mirrors rand 0.8).
pub trait Rng: RngCore {
    /// A value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// A biased coin: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool needs p in [0, 1], got {p}"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// SplitMix64. Statistically strong and sub-nanosecond per draw;
    /// not bit-compatible with the real crate's ChaCha12-based `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = r.gen_range(0..=4);
            assert!(y <= 4);
            let f: f64 = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_in_range_and_cover() {
        let mut r = StdRng::seed_from_u64(2);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "samples never reached the distribution tails");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!(
            (28_000..32_000).contains(&hits),
            "got {hits} of 100k at p=0.3"
        );
    }

    #[test]
    fn small_ranges_are_unbiased_enough() {
        let mut r = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[r.gen_range(0usize..5)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket counts {counts:?}");
        }
    }
}
