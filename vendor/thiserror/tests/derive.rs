//! Behavioral tests for the vendored `thiserror` derive: every shape the
//! workspace error types use must round-trip through Display / source /
//! From exactly as the real crate would render it.

use thiserror::Error;

#[derive(Debug, Clone, PartialEq, Error)]
enum Inner {
    #[error("inner boom")]
    Boom,
}

#[derive(Debug, Clone, PartialEq, Error)]
enum Outer {
    /// Unit variant with brace escapes and multi-line text.
    #[error("plain failure with {{literal braces}}")]
    Plain,
    /// Named fields captured implicitly.
    #[error("item {item} outside universe 0..{n_items}")]
    OutOfRange { item: u32, n_items: u32 },
    /// Positional selectors, including a format spec.
    #[error("bad token '{0}' (debug {0:?}) at {1}")]
    BadToken(String, usize),
    /// `#[from]` generates both `From` and `source()`.
    #[error("wrapped: {0}")]
    Wrapped(#[from] Inner),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Error)]
#[error("unexpected character '{ch}' at offset {offset}")]
struct CharError {
    ch: char,
    offset: usize,
}

#[test]
fn unit_variant_display_keeps_escapes() {
    assert_eq!(
        Outer::Plain.to_string(),
        "plain failure with {literal braces}"
    );
}

#[test]
fn named_fields_interpolate() {
    let e = Outer::OutOfRange {
        item: 9,
        n_items: 4,
    };
    assert_eq!(e.to_string(), "item 9 outside universe 0..4");
}

#[test]
fn positional_fields_interpolate_with_specs() {
    let e = Outer::BadToken("&&".into(), 17);
    assert_eq!(e.to_string(), "bad token '&&' (debug \"&&\") at 17");
}

#[test]
fn from_attribute_generates_from_impl() {
    let e: Outer = Inner::Boom.into();
    assert_eq!(e, Outer::Wrapped(Inner::Boom));
    assert_eq!(e.to_string(), "wrapped: inner boom");
}

#[test]
fn from_attribute_generates_source() {
    use std::error::Error as _;
    let e: Outer = Inner::Boom.into();
    let src = e.source().expect("wrapped error exposes a source");
    assert_eq!(src.to_string(), "inner boom");
    assert!(Outer::Plain.source().is_none());
}

#[test]
fn struct_with_named_fields() {
    use std::error::Error as _;
    let e = CharError { ch: '%', offset: 3 };
    assert_eq!(e.to_string(), "unexpected character '%' at offset 3");
    assert!(e.source().is_none());
}

#[test]
fn error_trait_object_compatible() {
    let boxed: Box<dyn std::error::Error> = Box::new(Outer::Plain);
    assert_eq!(boxed.to_string(), "plain failure with {literal braces}");
}
