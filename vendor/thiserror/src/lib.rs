//! Offline stand-in for the `thiserror` facade crate.
//!
//! Re-exports the vendored derive under the same path the real crate
//! uses (`thiserror::Error`), so workspace code written against the real
//! API compiles unchanged. See `vendor/README.md` for ground rules and
//! `thiserror-impl` for the supported derive subset.

pub use thiserror_impl::Error;
