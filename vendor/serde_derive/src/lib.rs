//! Offline stand-in for `serde_derive`.
//!
//! This workspace pins all third-party dependencies to vendored,
//! network-free implementations (see `vendor/README.md`). Nothing in the
//! workspace serializes data through serde — the `#[derive(Serialize,
//! Deserialize)]` attributes on core types exist so downstream users can
//! opt in later. These derive macros therefore only need to *accept* the
//! attribute grammar (including the `#[serde(...)]` helper attribute) and
//! emit marker-trait impls.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the identifier following `struct` or `enum` and any generics,
/// skipping attributes and visibility. Returns `(name, has_generics)`.
fn type_name(input: &TokenStream) -> Option<(String, bool)> {
    let mut tokens = input.clone().into_iter().peekable();
    let mut name = None;
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                if let Some(TokenTree::Ident(n)) = tokens.next() {
                    name = Some(n.to_string());
                    break;
                }
            }
        }
    }
    let has_generics = matches!(
        tokens.peek(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<'
    );
    name.map(|n| (n, has_generics))
}

/// Derives the vendored marker `Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(&input) {
        // Generic types would need bounds plumbing; no workspace type
        // using the derive is generic, so plain impls suffice.
        Some((name, false)) => format!("impl serde::Serialize for {name} {{}}")
            .parse()
            .expect("valid impl tokens"),
        _ => TokenStream::new(),
    }
}

/// Derives the vendored marker `Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some((name, false)) => format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .expect("valid impl tokens"),
        _ => TokenStream::new(),
    }
}
