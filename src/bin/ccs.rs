//! `ccs` — command-line constrained correlation mining.
//!
//! ```text
//! ccs generate --method rules --baskets 5000 --items 100 --seed 7 --db data.baskets
//! ccs attrs    --items 100 --db data.attrs            # identity prices
//! ccs mine     --db data.baskets --attrs data.attrs \
//!              --query "correlated & ct_supported & max(S.price) <= 50" \
//!              --algorithm bms++
//! ccs stats    --db data.baskets
//! ```

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::process::ExitCode;

use ccs::dataset::{read_attrs, read_db, write_attrs, write_db};
use ccs::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (recognized, result) = match args.first().map(String::as_str) {
        Some("generate") => (true, cmd_generate(&args[1..])),
        Some("attrs") => (true, cmd_attrs(&args[1..])),
        Some("mine") => (true, cmd_mine(&args[1..])),
        Some("stats") => (true, cmd_stats(&args[1..])),
        Some("--help") | Some("-h") | None => {
            print_usage();
            (true, Ok(()))
        }
        Some(other) => (false, Err(format!("unknown command '{other}'"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            if !recognized {
                eprintln!();
                print_usage();
            }
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage:
  ccs generate --method quest|rules --baskets <N> --items <N> [--seed <n>] --db <file>
  ccs attrs    --items <N> --db <file>                 write identity-price attributes
  ccs mine     --db <file> [--attrs <file>] --query <q> [--algorithm <a>]
               [--support <f>] [--ct <f>] [--confidence <f>] [--strategy <s>]
               algorithms: bms+ bms++ bms* bms** naive naive-min-valid
               strategies: horizontal vertical parallel
  ccs stats    --db <file>                             print database statistics"
    );
}

/// Minimal flag parser: `--key value` pairs only.
struct Flags<'a>(&'a [String]);

impl Flags<'_> {
    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required flag {key}"))
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value '{v}' for {key}")),
        }
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let method = flags.require("--method")?;
    let baskets: usize = flags.parse_or("--baskets", 10_000)?;
    let items: u32 = flags.parse_or("--items", 100)?;
    let seed: u64 = flags.parse_or("--seed", 42)?;
    let out_path = flags.require("--db")?;

    let db = match method {
        "quest" => generate_quest(&QuestParams::small(baskets, items, seed)),
        "rules" => {
            let data = generate_rules(&RuleParams::small(baskets, items, seed));
            eprintln!("planted rules:");
            for r in &data.rules {
                eprintln!("  {} (support {:.2})", r.items, r.support);
            }
            data.db
        }
        other => return Err(format!("unknown method '{other}' (quest|rules)")),
    };
    let file = File::create(out_path).map_err(|e| format!("create {out_path}: {e}"))?;
    let mut w = BufWriter::new(file);
    write_db(&db, &mut w).map_err(|e| format!("write {out_path}: {e}"))?;
    eprintln!(
        "wrote {} baskets over {} items to {out_path}",
        db.len(),
        db.n_items()
    );
    Ok(())
}

fn cmd_attrs(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let items: u32 = flags
        .require("--items")?
        .parse()
        .map_err(|_| "bad value for --items".to_owned())?;
    let out_path = flags.require("--db")?;
    let attrs = AttributeTable::with_identity_prices(items);
    let file = File::create(out_path).map_err(|e| format!("create {out_path}: {e}"))?;
    let mut w = BufWriter::new(file);
    write_attrs(&attrs, &mut w).map_err(|e| format!("write {out_path}: {e}"))?;
    eprintln!("wrote identity-price attributes for {items} items to {out_path}");
    Ok(())
}

fn load_db(path: &str) -> Result<TransactionDb, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    read_db(BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))
}

fn cmd_mine(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let db = load_db(flags.require("--db")?)?;
    let attrs = match flags.get("--attrs") {
        Some(path) => {
            let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
            read_attrs(BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))?
        }
        None => AttributeTable::with_identity_prices(db.n_items()),
    };
    let query_text = flags.get("--query").unwrap_or("correlated & ct_supported");
    let constraints = parse_constraints(query_text, &attrs).map_err(|e| format!("query: {e}"))?;
    let algorithm = match flags.get("--algorithm").unwrap_or("bms++") {
        "bms+" => Algorithm::BmsPlus,
        "bms++" => Algorithm::BmsPlusPlus,
        "bms*" => Algorithm::BmsStar,
        "bms**" => Algorithm::BmsStarStar,
        "naive" => Algorithm::Naive,
        "naive-min-valid" => Algorithm::NaiveMinValid,
        other => return Err(format!("unknown algorithm '{other}'")),
    };
    let strategy = match flags.get("--strategy").unwrap_or("horizontal") {
        "horizontal" => CountingStrategy::Horizontal,
        "vertical" => CountingStrategy::Vertical,
        "parallel" => CountingStrategy::Parallel,
        other => return Err(format!("unknown strategy '{other}'")),
    };
    let params = MiningParams {
        confidence: flags.parse_or("--confidence", 0.9)?,
        support_fraction: flags.parse_or("--support", 0.25)?,
        ct_fraction: flags.parse_or("--ct", 0.25)?,
        min_item_support: flags.parse_or("--min-item-support", 0.0)?,
        max_level: flags.parse_or("--max-level", 8)?,
    };
    let query = CorrelationQuery {
        params,
        constraints,
    };
    let result =
        mine_with_strategy(&db, &attrs, &query, algorithm, strategy).map_err(|e| e.to_string())?;
    let stdout = io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    for set in &result.answers {
        // A closed pipe (e.g. `ccs mine … | head`) is a normal way for
        // the reader to stop — finish quietly instead of panicking.
        if writeln!(out, "{set}").is_err() {
            return Ok(());
        }
    }
    drop(out);
    eprintln!(
        "{} answers ({}), {} tables built, {:.3}s",
        result.answers.len(),
        result.semantics,
        result.metrics.tables_built,
        result.metrics.elapsed.as_secs_f64()
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let db = load_db(flags.require("--db")?)?;
    println!("baskets:          {}", db.len());
    println!("items:            {}", db.n_items());
    println!("avg basket size:  {:.2}", db.avg_transaction_len());
    println!("max basket size:  {}", db.max_transaction_len());
    let supports = db.item_supports();
    let nonzero = supports.iter().filter(|&&s| s > 0).count();
    println!("items occurring:  {nonzero}");
    if let Some((item, &support)) = supports.iter().enumerate().max_by_key(|(_, &s)| s) {
        println!(
            "most frequent:    i{item} ({support} baskets, {:.1}%)",
            100.0 * support as f64 / db.len().max(1) as f64
        );
    }
    Ok(())
}
