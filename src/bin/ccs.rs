//! `ccs` — command-line constrained correlation mining.
//!
//! ```text
//! ccs generate --method rules --baskets 5000 --items 100 --seed 7 --db data.baskets
//! ccs attrs    --items 100 --db data.attrs            # identity prices
//! ccs analyze  --query "max(S.price) <= 2 & min(S.price) >= 5" --items 100
//! ccs mine     --db data.baskets --attrs data.attrs \
//!              --query "correlated & ct_supported & max(S.price) <= 50" \
//!              --algorithm bms++ --explain
//! ccs stats    --db data.baskets
//! ```

// The binary carries exactly one `unsafe` block — the raw `signal(2)`
// binding in `sigint` — and that module opts back in explicitly.
#![deny(unsafe_code)]
// The CLI must stay on the current library surface: the deprecated
// `mine*`/`resume*` shims are compile errors here (CI runs a dedicated
// `-D deprecated` job over the binary and the bench crate too).
#![deny(deprecated)]

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::process::ExitCode;
use std::time::Duration;

use ccs::dataset::{read_attrs, read_db, write_attrs, write_db};
use ccs::prelude::*;

/// Exit codes: 0 = complete answer set (or satisfiable analysis), 2 =
/// sound but truncated answer set (budget/deadline/Ctrl-C), 3 = `ccs
/// analyze` proved the query unsatisfiable, 1 = error.
const EXIT_TRUNCATED: u8 = 2;
const EXIT_ERROR: u8 = 1;
const EXIT_UNSATISFIABLE: u8 = 3;

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next();
    let rest: Vec<String> = argv.collect();
    let (recognized, result) = match cmd.as_deref() {
        Some("generate") => (true, cmd_generate(&rest).map(|()| ExitCode::SUCCESS)),
        Some("attrs") => (true, cmd_attrs(&rest).map(|()| ExitCode::SUCCESS)),
        Some("analyze") => (true, cmd_analyze(&rest)),
        Some("mine") => (true, cmd_mine(&rest)),
        Some("resume") => (true, cmd_resume(&rest)),
        Some("stats") => (true, cmd_stats(&rest).map(|()| ExitCode::SUCCESS)),
        Some("--help") | Some("-h") | None => {
            print_usage();
            (true, Ok(ExitCode::SUCCESS))
        }
        Some(other) => (false, Err(format!("unknown command '{other}'"))),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            if !recognized {
                eprintln!();
                print_usage();
            }
            ExitCode::from(EXIT_ERROR)
        }
    }
}

/// Prints to stdout, finishing quietly when the reader has closed the
/// pipe (e.g. `ccs stats … | head`) instead of panicking like
/// `println!` would.
fn print_quietly(text: &str) {
    let _ = io::stdout().write_all(text.as_bytes());
}

fn print_usage() {
    eprintln!(
        "usage:
  ccs generate --method quest|rules --baskets <N> --items <N> [--seed <n>] --db <file>
  ccs attrs    --items <N> --db <file>                 write identity-price attributes
  ccs analyze  --query <q> (--attrs <file> | --db <file> | --items <N>) [--json]
               static query analysis before any counting: satisfiability
               verdict with a minimal conflicting core, normalization,
               and a per-constraint push plan
               exits 0 when satisfiable or trivial, 3 when unsatisfiable
  ccs mine     --db <file> [--attrs <file>] --query <q> [--algorithm <a>]
               [--measure chi2|all-confidence|bond] [--threshold <f>]
               [--support <f>] [--ct <f>] [--confidence <f>] [--counting <s>]
               [--threads <N>] [--shards <N>] [--timeout <secs>]
               [--max-cells <N>] [--max-mem-mb <N>] [--explain]
               [--checkpoint <file>] [--checkpoint-every <N>]
               algorithms: bms+ bms++ bms* bms** naive naive-min-valid
               measures:   chi2 (default; --confidence is its threshold
                           spelling), all-confidence, bond — --threshold
                           sets the cutoff for any measure
               counting:   horizontal vertical parallel vertical-par
                           sharded fp-tree auto (--strategy is accepted
                           as an alias; --shards N splits the tid range)
               --checkpoint stamps a crash-safe snapshot at every level
               boundary (every Nth with --checkpoint-every) and on any
               budget trip, so a truncated or killed run can continue
               exits 0 when complete, 2 when truncated by a budget or Ctrl-C
  ccs resume   <checkpoint> --db <file> [--attrs <file>] [--query <q>]
               [--counting <s>] [--threads <N>] [--shards <N>]
               [--timeout <secs>] [--max-cells <N>] [--max-mem-mb <N>]
               continue an interrupted run from its checkpoint file; the
               snapshot pins the algorithm and the original query, and the
               database must fingerprint-match the one the run started on.
               a corrupt or format-skewed checkpoint restarts from scratch
               (with a warning) when --query is given, else exits 1.
               keeps stamping into the same file; exits 0 / 2 like mine
  ccs stats    --db <file>                             print database statistics"
    );
}

/// Installs a SIGINT handler that flips a cancellation flag, so Ctrl-C
/// turns the current mining run into a sound truncated result instead of
/// killing the process. Raw `signal(2)` via a hand-declared binding — no
/// libc crate in this workspace. This module is the only place the
/// binary opts out of its `deny(unsafe_code)`.
#[cfg(unix)]
#[allow(unsafe_code)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};

    static CANCEL: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    extern "C" fn on_sigint(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        if let Some(flag) = CANCEL.get() {
            flag.store(true, Ordering::Relaxed);
        }
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;

    pub fn install() -> Arc<AtomicBool> {
        let flag = CANCEL
            .get_or_init(|| Arc::new(AtomicBool::new(false)))
            .clone();
        // SAFETY: `signal` is the POSIX `signal(2)` function, declared by
        // hand with the handler passed as `usize` (an `extern "C" fn(i32)`
        // pointer is ABI-compatible with `void (*)(int)` on every
        // supported unix target). The handler is registered *before* any
        // mining starts and does only async-signal-safe work — a single
        // relaxed atomic store. `CANCEL` is initialised via `get_or_init`
        // before `signal` is called, so a SIGINT arriving in the
        // registration window either runs the process default (terminate —
        // the run has not started, nothing is lost) or finds the flag
        // already initialised; the handler can never observe a
        // partially-built `OnceLock` because `get_or_init` completes
        // first on this thread, and no other thread exists yet.
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
        flag
    }
}

#[cfg(not(unix))]
mod sigint {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    pub fn install() -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(false))
    }
}

/// Minimal flag parser: `--key value` and `--key=value` pairs, plus
/// valueless boolean switches (`--json`, `--explain`). Construction
/// walks the whole argument list and rejects misspelled or stray flags
/// up front — a silently ignored `--timeout` would leave the user
/// believing a budget is armed.
struct Flags<'a> {
    args: &'a [String],
    switches: &'static [&'static str],
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String], known: &[&str]) -> Result<Self, String> {
        Self::with_switches(args, known, &[])
    }

    fn with_switches(
        args: &'a [String],
        known: &[&str],
        switches: &'static [&'static str],
    ) -> Result<Self, String> {
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let arg = arg.as_str();
            if !arg.starts_with("--") {
                return Err(format!("unexpected argument '{arg}'"));
            }
            let (key, has_inline_value) = match arg.split_once('=') {
                Some((k, _)) => (k, true),
                None => (arg, false),
            };
            if switches.contains(&key) {
                if has_inline_value {
                    return Err(format!("{key} takes no value"));
                }
                continue;
            }
            if !known.contains(&key) {
                return Err(format!("unknown flag '{key}'"));
            }
            if !has_inline_value && it.next().is_none() {
                return Err(format!("missing value for {key}"));
            }
        }
        Ok(Flags { args, switches })
    }

    fn get(&self, key: &str) -> Option<&str> {
        let mut args = self.args.iter();
        while let Some(a) = args.next() {
            if a == key {
                return args.next().map(String::as_str);
            }
            if let Some(v) = a.strip_prefix(key).and_then(|r| r.strip_prefix('=')) {
                return Some(v);
            }
        }
        None
    }

    /// `true` iff the boolean switch `key` appears.
    fn has(&self, key: &str) -> bool {
        debug_assert!(self.switches.contains(&key));
        self.args.iter().any(|a| a == key)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required flag {key}"))
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value '{v}' for {key}")),
        }
    }

    fn parse_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("bad value '{v}' for {key}")),
        }
    }
}

/// Rejects out-of-range statistical parameters with an error instead of
/// letting `MiningParams::validate` assert-panic deep in the run. The
/// threshold check routes through `measure_context()`, the single
/// validation point, so the CLI and the library agree on each measure's
/// range.
fn check_params(params: &MiningParams) -> Result<(), String> {
    if let Err(e) = params.measure_context() {
        return Err(e.to_string());
    }
    for (name, v) in [
        ("--support", params.support_fraction),
        ("--ct", params.ct_fraction),
        ("--min-item-support", params.min_item_support),
    ] {
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("{name} must be in [0, 1], got {v}"));
        }
    }
    if params.max_level < 2 {
        return Err(format!(
            "--max-level must be at least 2, got {}",
            params.max_level
        ));
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let flags = Flags::new(
        args,
        &["--method", "--baskets", "--items", "--seed", "--db"],
    )?;
    let method = flags.require("--method")?;
    let baskets: usize = flags.parse_or("--baskets", 10_000)?;
    let items: u32 = flags.parse_or("--items", 100)?;
    let seed: u64 = flags.parse_or("--seed", 42)?;
    let out_path = flags.require("--db")?;

    if items == 0 {
        return Err("--items must be at least 1".to_owned());
    }
    let db = match method {
        "quest" => generate_quest(&QuestParams::small(baskets, items, seed)),
        "rules" => {
            let p = RuleParams::small(baskets, items, seed);
            // `generate_rules` plants disjoint rules and asserts there is
            // room for them; turn that into a flag error up front.
            let needed = p.n_rules * p.rule_len.1;
            if needed > items as usize {
                return Err(format!(
                    "--items {items} is too small for the rules method, \
                     which plants {} disjoint rules of up to {} items; \
                     need at least {needed}",
                    p.n_rules, p.rule_len.1
                ));
            }
            let data = generate_rules(&p);
            eprintln!("planted rules:");
            for r in &data.rules {
                eprintln!("  {} (support {:.2})", r.items, r.support);
            }
            data.db
        }
        other => return Err(format!("unknown method '{other}' (quest|rules)")),
    };
    let file = File::create(out_path).map_err(|e| format!("create {out_path}: {e}"))?;
    let mut w = BufWriter::new(file);
    write_db(&db, &mut w).map_err(|e| format!("write {out_path}: {e}"))?;
    eprintln!(
        "wrote {} baskets over {} items to {out_path}",
        db.len(),
        db.n_items()
    );
    Ok(())
}

fn cmd_attrs(args: &[String]) -> Result<(), String> {
    let flags = Flags::new(args, &["--items", "--db"])?;
    let items: u32 = flags
        .require("--items")?
        .parse()
        .map_err(|_| "bad value for --items".to_owned())?;
    let out_path = flags.require("--db")?;
    let attrs = AttributeTable::with_identity_prices(items);
    let file = File::create(out_path).map_err(|e| format!("create {out_path}: {e}"))?;
    let mut w = BufWriter::new(file);
    write_attrs(&attrs, &mut w).map_err(|e| format!("write {out_path}: {e}"))?;
    eprintln!("wrote identity-price attributes for {items} items to {out_path}");
    Ok(())
}

fn load_db(path: &str) -> Result<TransactionDb, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    read_db(BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))
}

fn load_attrs(path: &str) -> Result<AttributeTable, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    read_attrs(BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))
}

fn cmd_analyze(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::with_switches(
        args,
        &["--query", "--attrs", "--db", "--items"],
        &["--json"],
    )?;
    let query_text = flags.require("--query")?;
    let attrs = if let Some(path) = flags.get("--attrs") {
        load_attrs(path)?
    } else if let Some(items) = flags.parse_opt::<u32>("--items")? {
        AttributeTable::with_identity_prices(items)
    } else if let Some(path) = flags.get("--db") {
        AttributeTable::with_identity_prices(load_db(path)?.n_items())
    } else {
        return Err(
            "analyze needs an attribute universe: --attrs <file>, --db <file>, or --items <N>"
                .to_owned(),
        );
    };
    let parsed = parse_query(query_text, &attrs).map_err(|e| format!("query: {e}"))?;
    let analysis = analyze_spanned(&parsed.constraints, &parsed.spans, &attrs)
        .map_err(|e| format!("analyze: {e}"))?;
    if flags.has("--json") {
        print_quietly(&format!("{}\n", analysis.to_json()));
    } else {
        print_quietly(&analysis.render(Some(query_text)));
    }
    if analysis.verdict.is_unsatisfiable() {
        Ok(ExitCode::from(EXIT_UNSATISFIABLE))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// Parses the counting flags shared by `mine` and `resume`.
fn parse_counting(flags: &Flags<'_>) -> Result<MiningOptions, String> {
    // `--counting` is the canonical flag; `--strategy` remains as an
    // alias for scripts written against older releases.
    let strategy: CountingStrategy = flags
        .get("--counting")
        .or_else(|| flags.get("--strategy"))
        .unwrap_or("horizontal")
        .parse()?;
    let threads: Option<usize> = flags.parse_opt("--threads")?;
    if threads == Some(0) {
        return Err("--threads must be at least 1".to_owned());
    }
    let shards: Option<usize> = flags.parse_opt("--shards")?;
    if shards == Some(0) {
        return Err("--shards must be at least 1".to_owned());
    }
    Ok(MiningOptions {
        strategy,
        threads,
        shards,
    })
}

/// Builds the run guard shared by `mine` and `resume`: budgets from the
/// flags, cancellation from Ctrl-C. The guard is armed whenever any of
/// these are in play.
fn parse_guard(flags: &Flags<'_>) -> Result<RunGuard, String> {
    let timeout_secs: Option<f64> = flags.parse_opt("--timeout")?;
    if let Some(secs) = timeout_secs {
        if !secs.is_finite() || secs < 0.0 {
            return Err(format!(
                "--timeout must be a non-negative number, got {secs}"
            ));
        }
    }
    let limits = GuardLimits {
        timeout: timeout_secs.map(Duration::from_secs_f64),
        work_budget_cells: flags.parse_opt("--max-cells")?,
        memory_budget_bytes: flags
            .parse_opt::<usize>("--max-mem-mb")?
            .map(|mb| mb.saturating_mul(1024 * 1024)),
    };
    let cancel = sigint::install();
    Ok(RunGuard::with_cancel_flag(limits, cancel))
}

/// The durability policy for `--checkpoint` / `--checkpoint-every`.
fn parse_checkpoint(flags: &Flags<'_>) -> Result<Option<CheckpointPolicy>, String> {
    let every: Option<usize> = flags.parse_opt("--checkpoint-every")?;
    if every == Some(0) {
        return Err("--checkpoint-every must be at least 1".to_owned());
    }
    let Some(path) = flags.get("--checkpoint") else {
        if every.is_some() {
            return Err("--checkpoint-every needs --checkpoint <file>".to_owned());
        }
        return Ok(None);
    };
    let cadence = match every {
        None | Some(1) => CheckpointCadence::EveryLevel,
        Some(n) => CheckpointCadence::EveryLevels(n),
    };
    Ok(Some(CheckpointPolicy::file(path, cadence)))
}

/// Prints the answers and the run summary, returning the process exit
/// code: 0 for a complete answer set, 2 for a sound truncated one.
/// `requested` is the strategy the command line asked for: when it was
/// `auto`, the summary names the concrete strategy the run resolved to,
/// so the routing decision is visible.
fn emit_outcome(
    outcome: &MineOutcome,
    requested: CountingStrategy,
    checkpoint_path: Option<&str>,
) -> Result<ExitCode, String> {
    let result = &outcome.result;
    if requested == CountingStrategy::Auto {
        eprintln!("auto counting resolved to {}", outcome.strategy);
    }
    let stdout = io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    for set in &result.answers {
        // A closed pipe (e.g. `ccs mine … | head`) is a normal way for
        // the reader to stop — finish quietly instead of panicking.
        if writeln!(out, "{set}").is_err() {
            return Ok(ExitCode::SUCCESS);
        }
    }
    drop(out);
    eprintln!(
        "{} answers ({}), {} tables built, {} cells counted, {:.3}s",
        result.answers.len(),
        result.semantics,
        result.metrics.tables_built,
        result.metrics.cells_counted,
        result.metrics.elapsed.as_secs_f64()
    );
    if result.metrics.degraded_batches > 0 {
        eprintln!(
            "memory budget: counting stepped down the degradation ladder for {} batch(es)",
            result.metrics.degraded_batches
        );
    }
    if let Some(report) = &outcome.checkpoint {
        if let Some(error) = &report.error {
            eprintln!("warning: checkpoint write failed: {error}");
        }
    }
    if result.completion.is_complete() {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "run {}; the answers above are sound but possibly incomplete",
            result.completion
        );
        if let Some(path) = checkpoint_path {
            if outcome
                .checkpoint
                .as_ref()
                .is_some_and(|r| r.written > 0 && r.error.is_none())
            {
                eprintln!("continue with: ccs resume {path} --db <file>");
            }
        }
        Ok(ExitCode::from(EXIT_TRUNCATED))
    }
}

fn cmd_mine(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::with_switches(
        args,
        &[
            "--db",
            "--attrs",
            "--query",
            "--algorithm",
            "--counting",
            "--strategy",
            "--threads",
            "--shards",
            "--measure",
            "--threshold",
            "--confidence",
            "--support",
            "--ct",
            "--min-item-support",
            "--max-level",
            "--timeout",
            "--max-cells",
            "--max-mem-mb",
            "--checkpoint",
            "--checkpoint-every",
        ],
        &["--explain"],
    )?;
    let db = load_db(flags.require("--db")?)?;
    let attrs = match flags.get("--attrs") {
        Some(path) => load_attrs(path)?,
        None => AttributeTable::with_identity_prices(db.n_items()),
    };
    let query_text = flags.get("--query").unwrap_or("correlated & ct_supported");
    let parsed = parse_query(query_text, &attrs).map_err(|e| format!("query: {e}"))?;
    let algorithm = match flags.get("--algorithm").unwrap_or("bms++") {
        "bms+" => Algorithm::BmsPlus,
        "bms++" => Algorithm::BmsPlusPlus,
        "bms*" => Algorithm::BmsStar,
        "bms**" => Algorithm::BmsStarStar,
        "naive" => Algorithm::Naive,
        "naive-min-valid" => Algorithm::NaiveMinValid,
        other => return Err(format!("unknown algorithm '{other}'")),
    };
    let options = parse_counting(&flags)?;
    let measure: Measure = flags
        .get("--measure")
        .unwrap_or("chi2")
        .parse()
        .map_err(|e| format!("--measure: {e}"))?;
    // `--threshold` is the measure-neutral spelling of the cutoff;
    // `--confidence` remains the historical χ² spelling of the same
    // field. Accepting both at once would silently shadow one of them.
    let threshold = match (
        flags.parse_opt::<f64>("--threshold")?,
        flags.parse_opt::<f64>("--confidence")?,
    ) {
        (Some(_), Some(_)) => {
            return Err(
                "--threshold and --confidence are two spellings of the same cutoff; \
                 pass only one"
                    .to_owned(),
            )
        }
        (Some(t), None) => t,
        (None, Some(c)) => {
            if measure != Measure::Chi2 {
                return Err(format!(
                    "--confidence is the chi2 spelling of the cutoff; \
                     use --threshold with --measure {measure}"
                ));
            }
            c
        }
        (None, None) => measure.default_threshold(),
    };
    let params = MiningParams {
        measure,
        confidence: threshold,
        support_fraction: flags.parse_or("--support", 0.25)?,
        ct_fraction: flags.parse_or("--ct", 0.25)?,
        min_item_support: flags.parse_or("--min-item-support", 0.0)?,
        max_level: flags.parse_or("--max-level", 8)?,
    };
    check_params(&params)?;
    if flags.has("--explain") {
        let analysis = analyze_for_measure(
            &parsed.constraints,
            &parsed.spans,
            &attrs,
            measure.monotonicity(),
        )
        .map_err(|e| format!("analyze: {e}"))?;
        eprintln!(
            "measure: {} (threshold {}) — {}",
            measure,
            params.confidence,
            measure.monotonicity().describe()
        );
        eprint!("{}", analysis.render(Some(query_text)));
    }
    let constraints = parsed.constraints;
    let query = CorrelationQuery {
        params,
        constraints,
    };
    let guard = parse_guard(&flags)?;
    let checkpoint_path = flags.get("--checkpoint");

    let mut request = MineRequest::new(algorithm).options(options).guard(guard);
    if let Some(policy) = parse_checkpoint(&flags)? {
        request = request.checkpoint(policy);
    }
    let outcome = MiningSession::new(&db, &attrs)
        .mine(&query, &request)
        .map_err(|e| e.to_string())?;
    emit_outcome(&outcome, options.strategy, checkpoint_path)
}

fn cmd_resume(args: &[String]) -> Result<ExitCode, String> {
    let Some((path, rest)) = args.split_first().filter(|(p, _)| !p.starts_with("--")) else {
        return Err(
            "resume needs a checkpoint file: ccs resume <checkpoint> --db <file>".to_owned(),
        );
    };
    let flags = Flags::new(
        rest,
        &[
            "--db",
            "--attrs",
            "--query",
            "--algorithm",
            "--counting",
            "--strategy",
            "--threads",
            "--shards",
            "--timeout",
            "--max-cells",
            "--max-mem-mb",
            "--checkpoint-every",
        ],
    )?;
    let db = load_db(flags.require("--db")?)?;
    let attrs = match flags.get("--attrs") {
        Some(p) => load_attrs(p)?,
        None => AttributeTable::with_identity_prices(db.n_items()),
    };
    let options = parse_counting(&flags)?;
    let guard = parse_guard(&flags)?;
    let every: Option<usize> = flags.parse_opt("--checkpoint-every")?;
    if every == Some(0) {
        return Err("--checkpoint-every must be at least 1".to_owned());
    }
    let cadence = match every {
        None | Some(1) => CheckpointCadence::EveryLevel,
        Some(n) => CheckpointCadence::EveryLevels(n),
    };
    // The resumed run keeps stamping into the same file, so a second
    // interruption is just another `ccs resume`.
    let request = MineRequest::default()
        .options(options)
        .guard(guard)
        .checkpoint(CheckpointPolicy::file(path, cadence));

    let checkpoint = match read_checkpoint_file(path) {
        Ok(ckpt) => ckpt,
        Err(e @ (CheckpointError::Corrupt(_) | CheckpointError::FormatMismatch { .. })) => {
            // The degrade path: an unreadable checkpoint must never
            // panic or silently mis-resume. With a query we can restart
            // the run from scratch; without one, fail cleanly.
            let Some(query_text) = flags.get("--query") else {
                return Err(format!(
                    "{e}; pass --query <q> to restart the run from scratch"
                ));
            };
            eprintln!("warning: {e}; restarting from scratch");
            let parsed = parse_query(query_text, &attrs).map_err(|e| format!("query: {e}"))?;
            // The original run's parameters are unreadable along with the
            // checkpoint; restart under `ccs mine`'s defaults (which are
            // the paper's, including the χ² measure).
            let query = CorrelationQuery {
                params: MiningParams::paper(),
                constraints: parsed.constraints,
            };
            let algorithm = match flags.get("--algorithm").unwrap_or("bms++") {
                "bms+" => Algorithm::BmsPlus,
                "bms++" => Algorithm::BmsPlusPlus,
                "bms*" => Algorithm::BmsStar,
                "bms**" => Algorithm::BmsStarStar,
                "naive" => Algorithm::Naive,
                "naive-min-valid" => Algorithm::NaiveMinValid,
                other => return Err(format!("unknown algorithm '{other}'")),
            };
            let request = request.algorithm(algorithm);
            let outcome = MiningSession::new(&db, &attrs)
                .mine(&query, &request)
                .map_err(|e| e.to_string())?;
            return emit_outcome(&outcome, options.strategy, Some(path));
        }
        Err(e) => return Err(e.to_string()),
    };
    checkpoint.verify_db(&db).map_err(|e| e.to_string())?;
    eprintln!(
        "resuming {} from {path} ({})",
        checkpoint.algorithm().name(),
        match checkpoint.status {
            CheckpointStatus::InProgress { level } => format!("mid-run stamp at level {level}"),
            CheckpointStatus::Tripped {
                reason,
                frontier_level,
                ..
            } => format!("tripped ({reason}) at level {frontier_level}"),
        }
    );
    let outcome = MiningSession::new(&db, &attrs)
        .resume(&checkpoint.query, &request, checkpoint.resume)
        .map_err(|e| e.to_string())?;
    emit_outcome(&outcome, options.strategy, Some(path))
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = Flags::new(args, &["--db"])?;
    let db = load_db(flags.require("--db")?)?;
    let supports = db.item_supports();
    let nonzero = supports.iter().filter(|&&s| s > 0).count();
    let mut text = format!(
        "baskets:          {}\n\
         items:            {}\n\
         avg basket size:  {:.2}\n\
         max basket size:  {}\n\
         items occurring:  {nonzero}\n",
        db.len(),
        db.n_items(),
        db.avg_transaction_len(),
        db.max_transaction_len()
    );
    if let Some((item, &support)) = supports.iter().enumerate().max_by_key(|(_, &s)| s) {
        text.push_str(&format!(
            "most frequent:    i{item} ({support} baskets, {:.1}%)\n",
            100.0 * support as f64 / db.len().max(1) as f64
        ));
    }
    print_quietly(&text);
    Ok(())
}
