//! On-disk text formats for basket databases and attribute tables.
//!
//! Deliberately trivial, line-oriented, and diff-friendly — the kind of
//! format you can produce from a SQL export with one `awk` line:
//!
//! ```text
//! # ccs basket database
//! items 1000
//! 0 17 23 999
//! 4 17
//!
//! ```
//!
//! (one basket per line, space-separated item ids; blank lines are empty
//! baskets; `#` lines are comments). Attribute tables:
//!
//! ```text
//! # ccs attributes
//! items 4
//! numeric price 1 2.5 3 9
//! categorical type soda soda beer dairy
//! ```
//!
//! Used by the `ccs` CLI binary; also convenient for test fixtures.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

use crate::constraints::AttributeTable;
use crate::itemset::TransactionDb;

/// A parse error for the dataset text formats.
#[derive(Debug)]
pub enum DatasetError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structurally malformed input.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Io(e) => write!(f, "i/o error: {e}"),
            DatasetError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<io::Error> for DatasetError {
    fn from(e: io::Error) -> Self {
        DatasetError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> DatasetError {
    DatasetError::Parse {
        line,
        message: message.into(),
    }
}

/// Writes a database in the basket text format.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_db<W: Write>(db: &TransactionDb, out: &mut W) -> io::Result<()> {
    writeln!(out, "# ccs basket database")?;
    writeln!(out, "items {}", db.n_items())?;
    for t in db.transactions() {
        let mut first = true;
        for item in t {
            if !first {
                write!(out, " ")?;
            }
            write!(out, "{}", item.id())?;
            first = false;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Reads a database in the basket text format.
///
/// # Errors
///
/// Returns [`DatasetError`] on I/O failures or malformed input
/// (missing/duplicate `items` header, non-numeric ids, ids outside the
/// declared universe).
pub fn read_db<R: Read>(input: R) -> Result<TransactionDb, DatasetError> {
    let reader = BufReader::new(input);
    let mut n_items: Option<u32> = None;
    let mut txns: Vec<Vec<u32>> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            continue;
        }
        let n = match n_items {
            Some(n) => n,
            None => {
                if trimmed.is_empty() {
                    continue;
                }
                let mut parts = trimmed.split_whitespace();
                if parts.next() != Some("items") {
                    return Err(parse_err(lineno, "expected 'items <N>' header"));
                }
                let n: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "expected a number after 'items'"))?;
                n_items = Some(n);
                continue;
            }
        };
        let mut basket = Vec::new();
        for tok in trimmed.split_whitespace() {
            let id: u32 = tok
                .parse()
                .map_err(|_| parse_err(lineno, format!("bad item id '{tok}'")))?;
            if id >= n {
                return Err(parse_err(
                    lineno,
                    format!("item {id} outside universe 0..{n}"),
                ));
            }
            basket.push(id);
        }
        txns.push(basket);
    }
    let n = n_items.ok_or_else(|| parse_err(0, "missing 'items <N>' header"))?;
    Ok(TransactionDb::from_ids(n, txns))
}

/// Writes an attribute table in the attributes text format.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_attrs<W: Write>(attrs: &AttributeTable, out: &mut W) -> io::Result<()> {
    writeln!(out, "# ccs attributes")?;
    writeln!(out, "items {}", attrs.n_items())?;
    for name in attrs.numeric_names() {
        write!(out, "numeric {name}")?;
        // The name comes from the table's own listing — lookup is
        // infallible.
        #[allow(clippy::expect_used)]
        // ccs-lint: allow(no-panic-in-io-paths, reason = "name comes from the table's own listing; lookup is infallible")
        for v in attrs.numeric(name).expect("listed name") {
            write!(out, " {v}")?;
        }
        writeln!(out)?;
    }
    for name in attrs.categorical_names() {
        #[allow(clippy::expect_used)]
        // ccs-lint: allow(no-panic-in-io-paths, reason = "name comes from the table's own listing; lookup is infallible")
        let col = attrs.categorical(name).expect("listed name");
        write!(out, "categorical {name}")?;
        for &id in col.values() {
            write!(out, " {}", col.label(id))?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Reads an attribute table in the attributes text format.
///
/// # Errors
///
/// Returns [`DatasetError`] on I/O failures or malformed input (missing
/// header, wrong value counts, non-numeric values in `numeric` columns).
pub fn read_attrs<R: Read>(input: R) -> Result<AttributeTable, DatasetError> {
    let reader = BufReader::new(input);
    let mut table: Option<AttributeTable> = None;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let Some(keyword) = parts.next() else {
            continue; // unreachable: blank lines were skipped above
        };
        match (keyword, &mut table) {
            ("items", None) => {
                let n: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "expected a number after 'items'"))?;
                table = Some(AttributeTable::new(n));
            }
            ("items", Some(_)) => return Err(parse_err(lineno, "duplicate 'items' header")),
            (kw @ ("numeric" | "categorical"), Some(t)) => {
                let name = parts
                    .next()
                    .ok_or_else(|| parse_err(lineno, format!("'{kw}' needs a column name")))?;
                let values: Vec<&str> = parts.collect();
                if values.len() != t.n_items() as usize {
                    return Err(parse_err(
                        lineno,
                        format!(
                            "column '{name}' has {} values, need {}",
                            values.len(),
                            t.n_items()
                        ),
                    ));
                }
                if kw == "numeric" {
                    let parsed: Result<Vec<f64>, _> =
                        values.iter().map(|v| v.parse::<f64>()).collect();
                    let parsed = parsed
                        .map_err(|_| parse_err(lineno, format!("non-numeric value in '{name}'")))?;
                    t.add_numeric(name, parsed);
                } else {
                    t.add_categorical(name, &values);
                }
            }
            (_, None) => return Err(parse_err(lineno, "expected 'items <N>' header first")),
            (other, _) => {
                return Err(parse_err(lineno, format!("unknown keyword '{other}'")));
            }
        }
    }
    table.ok_or_else(|| parse_err(0, "missing 'items <N>' header"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_roundtrip() {
        let db = TransactionDb::from_ids(5, vec![vec![0, 2, 4], vec![], vec![1]]);
        let mut buf = Vec::new();
        write_db(&db, &mut buf).unwrap();
        let back = read_db(buf.as_slice()).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn db_rejects_out_of_universe_item() {
        let err = read_db("items 3\n0 5\n".as_bytes()).unwrap_err();
        assert!(matches!(err, DatasetError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn db_rejects_missing_header() {
        assert!(read_db("0 1\n".as_bytes()).is_err());
        assert!(read_db("".as_bytes()).is_err());
    }

    #[test]
    fn db_skips_comments_and_leading_blanks() {
        let db = read_db("# hello\n\nitems 2\n0 1\n# mid comment\n1\n".as_bytes()).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.n_items(), 2);
    }

    #[test]
    fn attrs_roundtrip() {
        let mut attrs = AttributeTable::new(3);
        attrs.add_numeric("price", vec![1.5, 2.0, 3.25]);
        attrs.add_categorical("type", &["soda", "beer", "soda"]);
        let mut buf = Vec::new();
        write_attrs(&attrs, &mut buf).unwrap();
        let back = read_attrs(buf.as_slice()).unwrap();
        assert_eq!(attrs, back);
    }

    #[test]
    fn attrs_error_cases() {
        assert!(read_attrs("numeric price 1 2\n".as_bytes()).is_err()); // no header
        assert!(read_attrs("items 2\nnumeric price 1\n".as_bytes()).is_err()); // count
        assert!(read_attrs("items 2\nnumeric price a b\n".as_bytes()).is_err()); // non-numeric
        assert!(read_attrs("items 2\nitems 2\n".as_bytes()).is_err()); // dup header
        assert!(read_attrs("items 2\nboolean x 0 1\n".as_bytes()).is_err()); // keyword
    }
}
