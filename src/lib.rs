//! # ccs — constrained correlated set mining
//!
//! A production-quality Rust reproduction of *Efficient Mining of
//! Constrained Correlated Sets* (Grahne, Lakshmanan & Wang, ICDE 2000):
//! chi-squared correlation mining à la Brin–Motwani–Silverstein, extended
//! with a constraint framework (monotone / anti-monotone / succinct) and
//! the four algorithms BMS+, BMS++, BMS*, BMS** for the two answer-set
//! semantics `VALID_MIN` and `MIN_VALID`.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`itemset`] — items, itemsets, transaction databases, tid-sets,
//!   candidate generation,
//! * [`stats`] — chi-squared machinery and contingency tables,
//! * [`constraints`] — the constraint language, classification, and
//!   succinctness machinery,
//! * [`datagen`] — the paper's two synthetic data generators,
//! * [`core`] — the mining algorithms,
//! * [`query`] — a textual query language,
//! * [`dataset`] — line-oriented on-disk text formats for the `ccs` CLI.
//!
//! ## Quickstart
//!
//! ```
//! use ccs::prelude::*;
//!
//! // A small market-basket database over 4 items: items 0 and 1 always
//! // co-occur; 2 and 3 are independent fill.
//! let db = TransactionDb::from_ids(4, (0..40).map(|i| {
//!     let mut t = vec![];
//!     if i % 2 == 0 { t.extend([0, 1]); }
//!     if i % 3 == 0 { t.push(2); }
//!     if i % 5 == 0 { t.push(3); }
//!     t
//! }));
//! let attrs = AttributeTable::with_identity_prices(4);
//!
//! let query = CorrelationQuery {
//!     params: MiningParams { support_fraction: 0.1, ..MiningParams::paper() },
//!     constraints: ConstraintSet::new().and(Constraint::max_le("price", 3.0)),
//! };
//! let mut session = MiningSession::new(&db, &attrs);
//! let outcome = session.mine(&query, &MineRequest::new(Algorithm::BmsPlusPlus)).unwrap();
//! assert!(outcome.result.contains(&Itemset::from_ids([0, 1])));
//! ```

pub mod dataset;

pub use ccs_constraints as constraints;
pub use ccs_core as core;
pub use ccs_datagen as datagen;
pub use ccs_itemset as itemset;
pub use ccs_query as query;
pub use ccs_stats as stats;

/// One-stop imports for applications.
pub mod prelude {
    pub use ccs_constraints::{
        analyze, analyze_for_measure, analyze_spanned, AggFn, AttributeTable, Cmp, Constraint,
        ConstraintSet, Monotonicity, QueryAnalysis, QueryVerdict, Span,
    };
    pub use ccs_core::{
        discover_causality, fingerprint_db, mine_on, read_checkpoint_file, resume_on,
        solution_space, write_checkpoint_file, Algorithm, CausalAnalysis, CausalFinding,
        Checkpoint, CheckpointCadence, CheckpointError, CheckpointPolicy, CheckpointReport,
        CheckpointSink, CheckpointStatus, Completion, CorrelationQuery, CountingStrategy,
        DbFingerprint, FileSink, GuardLimits, MemorySink, MineOutcome, MineRequest, MiningError,
        MiningMetrics, MiningOptions, MiningParams, MiningResult, MiningSession, ResumeState,
        RunGuard, Semantics, SolutionSpace, TruncationReason,
    };
    pub use ccs_datagen::{generate_quest, generate_rules, QuestParams, RuleParams};
    pub use ccs_itemset::{Item, Itemset, TransactionDb};
    pub use ccs_query::{parse_constraints, parse_query, ParsedQuery};
    pub use ccs_stats::{
        ContingencyTable, Measure, MeasureContext, MeasureError, MonotonicityClass,
    };
}
