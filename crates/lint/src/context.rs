//! Lightweight item-path tracking over the token stream.
//!
//! The rule engine needs three structural facts the lexer alone cannot
//! give: whether a token sits inside `#[cfg(test)]` / `#[test]` code,
//! whether it sits inside an `impl … AddAssign …` block (the one
//! sanctioned home of field-wise [`CountingStats`] merges), and the
//! header of the `fn` item a token belongs to. All three come from one
//! brace-matching pass — no parse tree, matching the hand-rolled house
//! style.
//!
//! [`CountingStats`]: ../rules/index.html

use crate::lexer::{Tok, TokKind};

/// Per-significant-token structural flags, indexed in lockstep with the
/// significant-token vector handed to [`analyze`].
pub struct Context {
    /// Token is inside an item gated by `#[cfg(test)]` / `#[test]`.
    pub in_test: Vec<bool>,
    /// Token is inside an `impl` block whose header names `AddAssign`.
    pub in_addassign_impl: Vec<bool>,
}

/// What a pending attribute run has told us about the next item.
#[derive(Default, Clone, Copy)]
struct Pending {
    test: bool,
    addassign_impl: bool,
}

/// One entry per open `{`.
#[derive(Clone, Copy)]
struct Block {
    test: bool,
    addassign: bool,
}

/// Computes structural flags for `sig`, the significant (non-trivia)
/// tokens of a file.
pub fn analyze(src: &str, sig: &[Tok]) -> Context {
    let mut in_test = vec![false; sig.len()];
    let mut in_addassign = vec![false; sig.len()];
    let mut stack: Vec<Block> = Vec::new();
    let mut pending = Pending::default();
    let mut i = 0usize;
    while i < sig.len() {
        let t = sig[i];
        let text = t.text(src);
        let top = stack.last().copied().unwrap_or(Block {
            test: false,
            addassign: false,
        });
        in_test[i] = top.test;
        in_addassign[i] = top.addassign;
        match (t.kind, text) {
            // An attribute: `#[…]` (or inner `#![…]`). Scan its bracket
            // range; `test` anywhere inside covers `#[test]`,
            // `#[cfg(test)]`, and `#[cfg(all(test, …))]`.
            (TokKind::Punct, "#") => {
                let mut j = i + 1;
                if j < sig.len() && sig[j].text(src) == "!" {
                    j += 1;
                }
                if j < sig.len() && sig[j].text(src) == "[" {
                    let mut depth = 0usize;
                    let mut has_test = false;
                    while j < sig.len() {
                        match sig[j].text(src) {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            "test" if sig[j].kind == TokKind::Ident => has_test = true,
                            _ => {}
                        }
                        j += 1;
                    }
                    if has_test {
                        pending.test = true;
                    }
                    i = j + 1;
                    continue;
                }
            }
            // An `impl` header: peek ahead to its opening brace and look
            // for `AddAssign` in the header (covers `impl AddAssign for T`
            // and `impl ops::AddAssign<&T> for T`).
            (TokKind::Ident, "impl") => {
                let mut j = i + 1;
                while j < sig.len() && !matches!(sig[j].text(src), "{" | ";") {
                    if sig[j].kind == TokKind::Ident && sig[j].text(src) == "AddAssign" {
                        pending.addassign_impl = true;
                    }
                    j += 1;
                }
            }
            (TokKind::Punct, "{") => {
                stack.push(Block {
                    test: top.test || pending.test,
                    addassign: top.addassign || pending.addassign_impl,
                });
                pending = Pending::default();
            }
            (TokKind::Punct, "}") => {
                stack.pop();
            }
            // `#[cfg(test)] use foo;` — an item that never opens a brace
            // drops its pending attributes at the terminating semicolon.
            (TokKind::Punct, ";") => {
                pending = Pending::default();
            }
            _ => {}
        }
        i += 1;
    }
    Context {
        in_test,
        in_addassign_impl: in_addassign,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx_of(src: &str) -> (Vec<Tok>, Context) {
        let sig: Vec<Tok> = lex(src).into_iter().filter(|t| !t.is_trivia()).collect();
        let ctx = analyze(src, &sig);
        (sig, ctx)
    }

    fn flag_at_ident(src: &str, ident: &str, flags: &[bool], sig: &[Tok]) -> bool {
        let idx = sig
            .iter()
            .position(|t| t.text(src) == ident)
            .unwrap_or_else(|| panic!("ident {ident} not found"));
        flags[idx]
    }

    #[test]
    fn cfg_test_module_is_test_code() {
        let src = "fn real() { body(); }\n#[cfg(test)]\nmod tests { fn t() { probe(); } }\nfn after() { tail(); }";
        let (sig, ctx) = ctx_of(src);
        assert!(!flag_at_ident(src, "body", &ctx.in_test, &sig));
        assert!(flag_at_ident(src, "probe", &ctx.in_test, &sig));
        assert!(!flag_at_ident(src, "tail", &ctx.in_test, &sig));
    }

    #[test]
    fn test_attribute_covers_one_fn() {
        let src = "#[test]\nfn t() { probe(); }\nfn real() { body(); }";
        let (sig, ctx) = ctx_of(src);
        assert!(flag_at_ident(src, "probe", &ctx.in_test, &sig));
        assert!(!flag_at_ident(src, "body", &ctx.in_test, &sig));
    }

    #[test]
    fn cfg_test_use_does_not_leak() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() { body(); }";
        let (sig, ctx) = ctx_of(src);
        assert!(!flag_at_ident(src, "body", &ctx.in_test, &sig));
    }

    #[test]
    fn addassign_impl_region() {
        let src = "impl std::ops::AddAssign<&Stats> for Stats {\n fn add_assign(&mut self, r: &Stats) { merge(); } }\nfn outside() { other(); }";
        let (sig, ctx) = ctx_of(src);
        assert!(flag_at_ident(src, "merge", &ctx.in_addassign_impl, &sig));
        assert!(!flag_at_ident(src, "other", &ctx.in_addassign_impl, &sig));
    }

    #[test]
    fn non_addassign_impl_is_not_flagged() {
        let src = "impl Stats { fn merge_like(&mut self) { body(); } }";
        let (sig, ctx) = ctx_of(src);
        assert!(!flag_at_ident(src, "body", &ctx.in_addassign_impl, &sig));
    }
}
