//! `ccs-lint` — a span-diagnostic architectural lint engine.
//!
//! The workspace's correctness story rests on invariants the type system
//! cannot see: the levelwise kernel owns the single level loop and
//! `ResumeState` stamping site (DESIGN.md §11), every byte of checkpoint
//! I/O stays inside `persist.rs` (§12), `CountingStats` merges through
//! one `AddAssign`, guarded entry points thread a probe, I/O paths fail
//! as values, and wall clocks are read only in `guard.rs`. These used to
//! be ~40 lines of CI `grep` — blind to comments, strings, and
//! `#[cfg(test)]`, and silent about *why* a hit matters.
//!
//! This crate replaces the greps with token-level rules over a lossless
//! Rust lexer ([`lexer`]), structural context from a brace-matching pass
//! ([`context`]), a typed rule table ([`rules`]), and caret-rendered
//! diagnostics with an auditable suppression protocol ([`diag`]). The
//! whole pipeline is hand-rolled — no dependencies — in the same house
//! style as the query lexer and the constraint analyzer.

pub mod context;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod vendor;

use std::io;
use std::path::Path;

use diag::{LineIndex, Suppression, Violation};
use lexer::Tok;

/// The lint result for one file.
pub struct LintedFile {
    /// Workspace-relative path, unix separators.
    pub path: String,
    /// The file's source, kept for caret rendering.
    pub src: String,
    /// Violations that survived suppression, in span order.
    pub violations: Vec<Violation>,
    /// How many findings a valid `allow(...)` silenced.
    pub suppressed: usize,
}

/// Integration tests, examples, and benches exercise public APIs; the
/// engine treats their whole files as test code (the resume-stamp rule
/// still applies there — see [`rules`]).
fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("examples/")
        || path.contains("/tests/")
        || path.contains("/examples/")
        || path.contains("/benches/")
}

/// Lints one file's source as if it lived at `path` (workspace-relative,
/// unix separators). The path drives rule scoping, which is what lets
/// fixture files pretend to be `crates/core/src/…`.
pub fn lint_source(path: &str, src: &str) -> LintedFile {
    let toks = lexer::lex(src);
    let sig: Vec<Tok> = toks.iter().copied().filter(|t| !t.is_trivia()).collect();
    let mut ctx = context::analyze(src, &sig);
    if is_test_path(path) {
        for flag in &mut ctx.in_test {
            *flag = true;
        }
    }
    let index = LineIndex::new(src);
    let findings = rules::check_file(path, src, &sig, &ctx);
    let (suppressions, mut meta) = collect_suppressions(src, &toks, &sig, &index);

    let mut suppressed = 0usize;
    let mut violations: Vec<Violation> = Vec::new();
    for f in findings {
        let line = index.line_of(f.span.0);
        let silenced = suppressions
            .iter()
            .any(|s| s.reason.is_some() && s.rule == f.rule && s.target_line == line);
        if silenced {
            suppressed += 1;
            continue;
        }
        violations.push(to_violation(path, &index, f.rule, f.span, f.message));
    }
    for (span, message) in meta.drain(..) {
        violations.push(to_violation(
            path,
            &index,
            "suppression-requires-reason",
            span,
            message,
        ));
    }
    violations.sort_by_key(|v| (v.span.0, v.rule));
    LintedFile {
        path: path.to_owned(),
        src: src.to_owned(),
        violations,
        suppressed,
    }
}

fn to_violation(
    path: &str,
    index: &LineIndex,
    rule: &'static str,
    span: (usize, usize),
    message: String,
) -> Violation {
    let why = rules::rule(rule).map_or("", |r| r.why);
    Violation {
        rule,
        path: path.to_owned(),
        line: index.line_of(span.0),
        col: index.col_of(span.0),
        span,
        message,
        why,
    }
}

/// Finds every `ccs-lint: allow(...)` comment, resolves the line each one
/// covers, and validates it against the meta-rule: the named rule must
/// exist and the reason is mandatory. Invalid allows come back as
/// meta-findings (they can never be suppressed themselves).
fn collect_suppressions(
    src: &str,
    toks: &[Tok],
    sig: &[Tok],
    index: &LineIndex,
) -> (Vec<Suppression>, Vec<((usize, usize), String)>) {
    let mut out = Vec::new();
    let mut meta = Vec::new();
    for t in toks {
        if !matches!(
            t.kind,
            lexer::TokKind::LineComment | lexer::TokKind::BlockComment
        ) {
            continue;
        }
        let text = t.text(src);
        // Doc comments describe the protocol; only plain comments invoke
        // it. (Otherwise this crate's own docs would be suppressions.)
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!")
        {
            continue;
        }
        let Some((rule, reason)) = diag::parse_suppression(text) else {
            continue;
        };
        let comment_line = index.line_of(t.start);
        // Trailing comments cover their own line; standalone comments
        // cover the next line that holds code.
        let trailing = sig
            .iter()
            .any(|s| s.start < t.start && index.line_of(s.start) == comment_line);
        let target_line = if trailing {
            comment_line
        } else {
            sig.iter()
                .find(|s| s.start >= t.end)
                .map_or(comment_line, |s| index.line_of(s.start))
        };
        let span = (t.start, t.end);
        if rule == "suppression-requires-reason" {
            meta.push((
                span,
                "the suppression meta-rule cannot itself be allowed".to_owned(),
            ));
        } else if rules::rule(&rule).is_none() {
            meta.push((
                span,
                format!("`allow({rule})` names a rule ccs-lint does not know"),
            ));
        } else if reason.is_none() {
            meta.push((
                span,
                format!("`allow({rule})` without a reason — reasons are mandatory"),
            ));
        }
        out.push(Suppression {
            rule,
            reason,
            span,
            target_line,
        });
    }
    (out, meta)
}

/// Directory names the tree walk never descends into.
const SKIP_DIRS: &[&str] = &["target", "vendor", "node_modules"];

/// Walks `root` and lints every `.rs` file, returning per-file results in
/// path order. Skips build output, `vendor/` (covered by `--vendor`
/// hashing instead), dot-directories, and the lint crate's own seeded
/// fixtures.
pub fn lint_tree(root: &Path) -> io::Result<Vec<LintedFile>> {
    let mut paths = Vec::new();
    collect_rs_files(root, root, &mut paths)?;
    paths.sort();
    let mut out = Vec::new();
    for rel in paths {
        let bytes = std::fs::read(root.join(&rel))?;
        let src = String::from_utf8_lossy(&bytes).into_owned();
        out.push(lint_source(&rel, &src));
    }
    Ok(out)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            let rel = rel_path(root, &path);
            if rel == "crates/lint/tests/fixtures" {
                continue; // seeded violations — linted by the golden tests
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel_path(root, &path));
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let s = rel.to_string_lossy();
    if std::path::MAIN_SEPARATOR == '/' {
        s.into_owned()
    } else {
        s.replace(std::path::MAIN_SEPARATOR, "/")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_with_reason_silences_one_line() {
        let src = "fn f() -> ResumeState {\n    // ccs-lint: allow(resume-state-construction-confined, reason = \"test forge\")\n    ResumeState { format: 2 }\n}\n";
        let report = lint_source("crates/core/src/x.rs", src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn trailing_suppression_covers_its_own_line() {
        let src = "fn f(b: &[u8]) -> u8 {\n    b[0] // ccs-lint: allow(no-panic-in-io-paths, reason = \"len checked by caller\")\n}\n";
        let report = lint_source("crates/core/src/persist.rs", src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn reasonless_allow_is_itself_a_violation() {
        let src = "fn f() -> ResumeState {\n    // ccs-lint: allow(resume-state-construction-confined)\n    ResumeState { format: 2 }\n}\n";
        let report = lint_source("crates/core/src/x.rs", src);
        let rules: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"suppression-requires-reason"));
        assert!(
            rules.contains(&"resume-state-construction-confined"),
            "a reasonless allow must not silence the finding"
        );
    }

    #[test]
    fn unknown_rule_in_allow_is_flagged() {
        let src = "// ccs-lint: allow(no-such-rule, reason = \"oops\")\nfn f() {}\n";
        let report = lint_source("crates/core/src/x.rs", src);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "suppression-requires-reason");
    }

    #[test]
    fn suppression_does_not_leak_to_other_lines() {
        let src = "fn f() -> (ResumeState, ResumeState) {\n    // ccs-lint: allow(resume-state-construction-confined, reason = \"one only\")\n    let a = ResumeState { format: 2 };\n    let b = ResumeState { format: 2 };\n    (a, b)\n}\n";
        let report = lint_source("crates/core/src/x.rs", src);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn integration_test_paths_relax_most_rules_but_not_resume() {
        let src = "fn helper_guarded(x: u32) -> u32 { x }\nfn forge() -> ResumeState { ResumeState { format: 2 } }\n";
        let report = lint_source("tests/durability.rs", src);
        let rules: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec!["resume-state-construction-confined"]);
    }
}
