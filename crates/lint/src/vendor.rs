//! Vendored-dependency integrity: `ccs-lint --vendor`.
//!
//! The workspace carries offline stand-ins for its dev-dependencies under
//! `vendor/`. Nothing in the build pins their contents, so an edit there
//! — accidental or otherwise — would silently change what every test
//! links against. This module hashes each vendored tree with FNV-1a-64
//! (hand-rolled, like the CRC32 in persist.rs) and compares against the
//! lock file at `crates/lint/tests/goldens/vendor.lock`; CI fails on
//! drift, and `--vendor --update` re-pins after a deliberate change.

use std::io;
use std::path::{Path, PathBuf};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Where the pins live, relative to the workspace root.
pub const LOCK_REL: &str = "crates/lint/tests/goldens/vendor.lock";

/// FNV-1a-64 over `bytes`, continuing from `h`.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hashes one vendored tree: every file, in sorted relative-path order,
/// as `path \0 contents \0` so renames and content edits both move the
/// digest.
fn hash_tree(dir: &Path) -> io::Result<u64> {
    let mut files = Vec::new();
    collect_files(dir, dir, &mut files)?;
    files.sort();
    let mut h = FNV_OFFSET;
    for rel in files {
        h = fnv1a(h, rel.as_bytes());
        h = fnv1a(h, &[0]);
        h = fnv1a(h, &std::fs::read(dir.join(&rel))?);
        h = fnv1a(h, &[0]);
    }
    Ok(h)
}

fn collect_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_files(root, &path, out)?;
        } else {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            out.push(
                rel.to_string_lossy()
                    .replace(std::path::MAIN_SEPARATOR, "/"),
            );
        }
    }
    Ok(())
}

/// Hashes every tree under `<root>/vendor`, plus its top-level files
/// (README.md and friends) as a pseudo-tree named `.`, in name order.
pub fn hash_trees(root: &Path) -> io::Result<Vec<(String, u64)>> {
    let vendor = root.join("vendor");
    let mut names = Vec::new();
    let mut top = FNV_OFFSET;
    let mut top_files = Vec::new();
    for entry in std::fs::read_dir(&vendor)? {
        let entry = entry?;
        if entry.path().is_dir() {
            names.push(entry.file_name().to_string_lossy().into_owned());
        } else {
            top_files.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    names.sort();
    top_files.sort();
    for f in &top_files {
        top = fnv1a(top, f.as_bytes());
        top = fnv1a(top, &[0]);
        top = fnv1a(top, &std::fs::read(vendor.join(f))?);
        top = fnv1a(top, &[0]);
    }
    let mut out = vec![(".".to_owned(), top)];
    for name in names {
        out.push((name.clone(), hash_tree(&vendor.join(&name))?));
    }
    Ok(out)
}

/// Renders entries in the lock format: one `name fnv1a64:<hex16>` line
/// each, preceded by a header comment.
pub fn render_lock(entries: &[(String, u64)]) -> String {
    let mut s = String::from(
        "# Vendored-tree pins. Regenerate with: cargo run -p ccs-lint -- --vendor --update\n",
    );
    for (name, h) in entries {
        s.push_str(&format!("{name} fnv1a64:{h:016x}\n"));
    }
    s
}

/// Parses a lock file; unrecognized lines are ignored so the header
/// comment stays free-form.
pub fn parse_lock(text: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, rest)) = line.split_once(' ') else {
            continue;
        };
        let Some(hex) = rest.trim().strip_prefix("fnv1a64:") else {
            continue;
        };
        if let Ok(h) = u64::from_str_radix(hex, 16) {
            out.push((name.to_owned(), h));
        }
    }
    out
}

/// The lock file's absolute path for a workspace root.
pub fn lock_path(root: &Path) -> PathBuf {
    root.join(LOCK_REL)
}

/// Compares the current `vendor/` hashes against the lock. `Ok(vec![])`
/// means clean; a non-empty vec lists human-readable drift lines.
pub fn check(root: &Path) -> io::Result<Vec<String>> {
    let current = hash_trees(root)?;
    let lock_text = std::fs::read_to_string(lock_path(root)).unwrap_or_default();
    let pinned = parse_lock(&lock_text);
    let mut drift = Vec::new();
    if pinned.is_empty() {
        drift.push(format!(
            "{LOCK_REL} is missing or empty — run --vendor --update"
        ));
        return Ok(drift);
    }
    for (name, h) in &current {
        match pinned.iter().find(|(n, _)| n == name) {
            None => drift.push(format!("vendor/{name}: not pinned in the lock")),
            Some((_, p)) if p != h => drift.push(format!(
                "vendor/{name}: contents changed (pinned fnv1a64:{p:016x}, found fnv1a64:{h:016x})"
            )),
            Some(_) => {}
        }
    }
    for (name, _) in &pinned {
        if !current.iter().any(|(n, _)| n == name) {
            drift.push(format!("vendor/{name}: pinned but missing from the tree"));
        }
    }
    Ok(drift)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a-64 test vectors.
        assert_eq!(fnv1a(FNV_OFFSET, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(FNV_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(FNV_OFFSET, b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn lock_roundtrip() {
        let entries = vec![(".".to_owned(), 7u64), ("proptest".to_owned(), 0xdead_beef)];
        let text = render_lock(&entries);
        assert_eq!(parse_lock(&text), entries);
    }
}
