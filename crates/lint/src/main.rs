//! The `ccs-lint` binary.
//!
//! ```text
//! ccs-lint --workspace [--format text|json] [--root DIR]
//! ccs-lint --vendor [--update] [--root DIR]
//! ```
//!
//! Exit codes: `0` clean, `3` violations (or vendor drift), `2` usage
//! error, `1` I/O error — mirroring the `ccs` CLI's convention where `3`
//! is "ran fine, the answer is bad".

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ccs_lint::diag::{self, LineIndex};
use ccs_lint::{lint_tree, vendor};

const USAGE: &str = "\
usage: ccs-lint --workspace [--format text|json] [--root DIR]
       ccs-lint --vendor [--update] [--root DIR]

Lints the workspace's Rust sources against the architectural invariants
in DESIGN.md §13, or (with --vendor) checks the vendored trees against
their pinned hashes.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("ccs-lint: {msg}");
            ExitCode::from(1)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut workspace = false;
    let mut vendor_mode = false;
    let mut update = false;
    let mut format = "text".to_owned();
    let mut root_arg: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--vendor" => vendor_mode = true,
            "--update" => update = true,
            "--format" => match it.next() {
                Some(v) if v == "text" || v == "json" => format = v.clone(),
                Some(v) => return usage(&format!("unknown format `{v}`")),
                None => return usage("--format needs a value"),
            },
            "--root" => match it.next() {
                Some(v) => root_arg = Some(v.clone()),
                None => return usage("--root needs a value"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if workspace == vendor_mode {
        return usage("pick exactly one of --workspace / --vendor");
    }
    if update && !vendor_mode {
        return usage("--update only applies to --vendor");
    }

    let root = find_root(root_arg.as_deref())?;
    if vendor_mode {
        return run_vendor(&root, update);
    }
    run_workspace(&root, &format)
}

fn usage(msg: &str) -> Result<ExitCode, String> {
    eprintln!("ccs-lint: {msg}\n{USAGE}");
    Ok(ExitCode::from(2))
}

/// Finds the workspace root: `--root` verbatim, or the nearest ancestor
/// of the current directory whose `Cargo.toml` declares `[workspace]`.
fn find_root(arg: Option<&str>) -> Result<PathBuf, String> {
    if let Some(dir) = arg {
        let p = PathBuf::from(dir);
        if p.join("Cargo.toml").exists() {
            return Ok(p);
        }
        return Err(format!("--root {dir}: no Cargo.toml there"));
    }
    let mut dir = std::env::current_dir().map_err(|e| format!("current dir: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml above the current directory".to_owned());
        }
    }
}

fn run_workspace(root: &Path, format: &str) -> Result<ExitCode, String> {
    let files = lint_tree(root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    let violations: Vec<_> = files.iter().flat_map(|f| f.violations.iter()).collect();
    let suppressed: usize = files.iter().map(|f| f.suppressed).sum();
    if format == "json" {
        let all: Vec<diag::Violation> = files
            .iter()
            .flat_map(|f| f.violations.iter().cloned())
            .collect();
        println!("{}", diag::to_json(&all, files.len(), suppressed));
    } else {
        for f in &files {
            let index = LineIndex::new(&f.src);
            for v in &f.violations {
                print!("{}", diag::render(v, &f.src, &index));
                println!();
            }
        }
        println!(
            "checked {} files: {} violation{} ({} suppressed)",
            files.len(),
            violations.len(),
            if violations.len() == 1 { "" } else { "s" },
            suppressed,
        );
    }
    if violations.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(3))
    }
}

fn run_vendor(root: &Path, update: bool) -> Result<ExitCode, String> {
    if update {
        let entries = vendor::hash_trees(root).map_err(|e| format!("hashing vendor/: {e}"))?;
        let lock = vendor::lock_path(root);
        std::fs::write(&lock, vendor::render_lock(&entries))
            .map_err(|e| format!("writing {}: {e}", lock.display()))?;
        println!(
            "pinned {} vendored trees in {}",
            entries.len(),
            vendor::LOCK_REL
        );
        return Ok(ExitCode::SUCCESS);
    }
    let drift = vendor::check(root).map_err(|e| format!("hashing vendor/: {e}"))?;
    if drift.is_empty() {
        println!("vendor/ matches {}", vendor::LOCK_REL);
        Ok(ExitCode::SUCCESS)
    } else {
        for line in &drift {
            eprintln!("vendor drift: {line}");
        }
        Ok(ExitCode::from(3))
    }
}
