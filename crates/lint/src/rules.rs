//! The rule table and per-file checks.
//!
//! Every rule here replaces (and tightens) a CI grep: matching happens on
//! the significant token stream, so comments, strings, and `#[cfg(test)]`
//! code can never produce a false hit, and path scoping is explicit
//! instead of encoded in `grep -v` chains.

use crate::context::Context;
use crate::lexer::{Tok, TokKind};

/// One architectural invariant, as enforced by the engine and documented
/// in DESIGN.md §13.
pub struct Rule {
    /// Stable kebab-case id — what `allow(...)` names.
    pub id: &'static str,
    /// The invariant, one line.
    pub invariant: &'static str,
    /// Why it matters — rendered under every diagnostic.
    pub why: &'static str,
    /// The file(s) that own the invariant and are exempt.
    pub owner: &'static str,
}

/// The sanctioned home of the level loop and `ResumeState` stamping.
const KERNEL: &str = "crates/core/src/kernel.rs";
/// The one reader/writer of checkpoint bytes.
const PERSIST: &str = "crates/core/src/persist.rs";
/// The one module allowed to read wall clocks.
const GUARD: &str = "crates/core/src/guard.rs";

/// Every rule the engine knows, in severity-stable order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "level-loop-outside-kernel",
        invariant: "only the levelwise kernel iterates over `level`",
        why: "partial answers and bit-identical resumes are sound only while \
              the kernel owns the single level loop (DESIGN.md §11)",
        owner: KERNEL,
    },
    Rule {
        id: "resume-state-construction-confined",
        invariant: "`ResumeState { .. }` is built only in kernel.rs and persist.rs",
        why: "resume stamps must come from the kernel's stamping site or \
              persist.rs's validated decode, or resumes drift from the run \
              they claim to continue (DESIGN.md §11)",
        owner: "crates/core/src/kernel.rs + crates/core/src/persist.rs",
    },
    Rule {
        id: "checkpoint-io-confined",
        invariant: "checkpoint bytes and checkpoint paths are handled only in persist.rs",
        why: "the checkpoint format is crash-safe only while persist.rs is its \
              sole reader and writer — anything else bypasses magic/version/\
              checksum/fingerprint validation (DESIGN.md §12)",
        owner: PERSIST,
    },
    Rule {
        id: "counting-stats-merge-via-addassign",
        invariant: "CountingStats merges go through its one `AddAssign` impl",
        why: "a hand-rolled field-wise merge silently drops newly added \
              counters; the single AddAssign is where the compiler sees them",
        owner: "crates/itemset/src/counting.rs",
    },
    Rule {
        id: "guard-probe-protocol",
        invariant: "every `*_guarded` fn threads a `CountProbe` or `RunGuard`",
        why: "a guarded entry point that cannot observe the probe defeats \
              cooperative interruption and deadline checks",
        owner: GUARD,
    },
    Rule {
        id: "no-panic-in-io-paths",
        invariant: "persist + CLI I/O code returns errors instead of panicking",
        why: "a panic mid-checkpoint or mid-emit can tear state the durability \
              story promises to keep; I/O paths must fail as values",
        owner: "crates/core/src/persist.rs + src/",
    },
    Rule {
        id: "nondeterminism-in-kernel",
        invariant: "wall-clock reads (`Instant::now`, `SystemTime`) live only in guard.rs",
        why: "clock reads scattered through mining code make runs \
              non-reproducible; guard.rs centralizes time so tests can reason \
              about it",
        owner: GUARD,
    },
    Rule {
        id: "measure-verdict-confined",
        invariant: "`chi_squared` / `is_correlated` / `chi2_quantile` calls live only in \
                    the stats crate (the measure layer)",
        why: "a direct χ² call bypasses the run's `MeasureContext`, silently judging \
              with the wrong measure when the query asks for all-confidence or bond \
              (DESIGN.md §14)",
        owner: "crates/stats/src",
    },
    Rule {
        id: "suppression-requires-reason",
        invariant: "every `ccs-lint: allow(...)` names a known rule and carries a reason",
        why: "an allow without a reason (or naming an unknown rule) hides an \
              invariant hole from audit",
        owner: "crates/lint/src/diag.rs",
    },
];

/// Looks a rule up by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// One raw hit before suppression filtering.
pub struct Finding {
    /// The violated rule's id.
    pub rule: &'static str,
    /// Byte span of the offending tokens.
    pub span: (usize, usize),
    /// What was found.
    pub message: String,
}

/// The `CountingStats` counter fields, mirrored from
/// `crates/itemset/src/counting.rs`.
const STATS_FIELDS: &[&str] = &[
    "tables_built",
    "db_scans",
    "transactions_visited",
    "cells_counted",
    "cache_hits",
    "degraded_batches",
];

/// Identifiers that can precede `[` without forming an index expression
/// (slice patterns, array types in `as` casts, …).
const NON_INDEX_PREFIX: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "move", "as", "dyn", "where",
    "const", "static", "break", "continue",
];

fn in_crates_src(path: &str) -> bool {
    path.starts_with("crates/") && path.contains("/src/")
}

/// Runs every rule against one file. `sig` is the significant token
/// stream; `ctx` its structural flags. `path` is workspace-relative with
/// unix separators.
pub fn check_file(path: &str, src: &str, sig: &[Tok], ctx: &Context) -> Vec<Finding> {
    let mut out = Vec::new();
    check_level_loop(path, src, sig, ctx, &mut out);
    check_resume_state(path, src, sig, ctx, &mut out);
    check_checkpoint_io(path, src, sig, ctx, &mut out);
    check_stats_merge(path, src, sig, ctx, &mut out);
    check_guard_probe(path, src, sig, ctx, &mut out);
    check_no_panic(path, src, sig, ctx, &mut out);
    check_nondeterminism(path, src, sig, ctx, &mut out);
    check_measure_verdict(path, src, sig, ctx, &mut out);
    out
}

/// `level-loop-outside-kernel`: a `while`/`for` whose header mentions the
/// `level` identifier, anywhere but the kernel.
fn check_level_loop(path: &str, src: &str, sig: &[Tok], ctx: &Context, out: &mut Vec<Finding>) {
    if path == KERNEL {
        return;
    }
    for (i, t) in sig.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let kw = t.text(src);
        if kw != "while" && kw != "for" {
            continue;
        }
        // Scan the loop header: the `while` condition, or the `for`
        // binding up to `in` — `for set in level` iterates one level's
        // *contents*, which is fine anywhere; `for level in …` is the
        // level loop itself.
        for j in i + 1..sig.len().min(i + 64) {
            match sig[j].text(src) {
                "{" | ";" => break,
                "in" if kw == "for" && sig[j].kind == TokKind::Ident => break,
                "level" if sig[j].kind == TokKind::Ident => {
                    out.push(Finding {
                        rule: "level-loop-outside-kernel",
                        span: (t.start, sig[j].end),
                        message: format!("`{kw}` loop over `level` outside the levelwise kernel"),
                    });
                    break;
                }
                _ => {}
            }
        }
    }
}

/// `resume-state-construction-confined`: a `ResumeState { … }` struct
/// literal outside kernel.rs / persist.rs. Declarations (`struct`, `impl`)
/// do not count. Unlike the other rules this one fires in test code too:
/// a test forging a resume stamp is exactly the drift PR 5 banned.
fn check_resume_state(path: &str, src: &str, sig: &[Tok], _ctx: &Context, out: &mut Vec<Finding>) {
    if path == KERNEL || path == PERSIST {
        return;
    }
    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text(src) != "ResumeState" {
            continue;
        }
        let next_is_brace = sig.get(i + 1).is_some_and(|n| n.text(src) == "{");
        let prev = i.checked_sub(1).map(|p| sig[p].text(src));
        // `-> ResumeState {` is a return type followed by the fn body
        // brace, not a literal (`=> ResumeState { … }` match arms still
        // count — the `>` there follows `=`, not `-`).
        let return_type =
            prev == Some(">") && i.checked_sub(2).map(|p| sig[p].text(src)) == Some("-");
        if next_is_brace && !return_type && !matches!(prev, Some("struct" | "impl" | "for")) {
            out.push(Finding {
                rule: "resume-state-construction-confined",
                span: (t.start, sig[i + 1].end),
                message: "`ResumeState` constructed outside kernel.rs / persist.rs".to_owned(),
            });
        }
    }
}

/// `checkpoint-io-confined`: checkpoint parsing identifiers in core /
/// itemset sources, and `.ccs` path literals anywhere in `crates/*/src`
/// (the lint crate itself excepted — its rule table names the pattern).
fn check_checkpoint_io(path: &str, src: &str, sig: &[Tok], ctx: &Context, out: &mut Vec<Finding>) {
    if path == PERSIST {
        return;
    }
    let ident_scope =
        path.starts_with("crates/core/src/") || path.starts_with("crates/itemset/src/");
    let str_scope = in_crates_src(path) && !path.starts_with("crates/lint/");
    for (i, t) in sig.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        let text = t.text(src);
        if ident_scope
            && t.kind == TokKind::Ident
            && matches!(text, "from_bytes" | "ckpt_path" | "checkpoint_path")
        {
            out.push(Finding {
                rule: "checkpoint-io-confined",
                span: (t.start, t.end),
                message: format!("checkpoint handling (`{text}`) outside persist.rs"),
            });
        }
        if str_scope && matches!(t.kind, TokKind::Str | TokKind::RawStr) && text.contains(".ccs") {
            out.push(Finding {
                rule: "checkpoint-io-confined",
                span: (t.start, t.end),
                message: "checkpoint path literal (`*.ccs`) outside persist.rs".to_owned(),
            });
        }
    }
}

/// `counting-stats-merge-via-addassign`: `x.field += …field…` where
/// `field` is a `CountingStats` counter — a field-wise merge — anywhere
/// outside the sanctioned `AddAssign` impl. Plain increments
/// (`stats.db_scans += 1`) are fine.
fn check_stats_merge(_path: &str, src: &str, sig: &[Tok], ctx: &Context, out: &mut Vec<Finding>) {
    for i in 0..sig.len() {
        if ctx.in_test[i] || ctx.in_addassign_impl[i] {
            continue;
        }
        if sig[i].text(src) != "." {
            continue;
        }
        let Some(field) = sig.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        let name = field.text(src);
        if !STATS_FIELDS.contains(&name) {
            continue;
        }
        let is_pluseq = sig.get(i + 2).is_some_and(|t| t.text(src) == "+")
            && sig.get(i + 3).is_some_and(|t| t.text(src) == "=");
        if !is_pluseq {
            continue;
        }
        // The right-hand side, up to the statement end: the same field
        // name appearing there means this is a merge, not an increment.
        for j in i + 4..sig.len().min(i + 64) {
            match sig[j].text(src) {
                ";" => break,
                t if t == name && sig[j].kind == TokKind::Ident => {
                    out.push(Finding {
                        rule: "counting-stats-merge-via-addassign",
                        span: (field.start, sig[j].end),
                        message: format!(
                            "field-wise `CountingStats` merge (`{name} += …{name}`) outside \
                             the AddAssign impl"
                        ),
                    });
                    break;
                }
                _ => {}
            }
        }
    }
}

/// `guard-probe-protocol`: a `fn *_guarded(...)` whose parameter list
/// names neither `CountProbe` nor `RunGuard`.
fn check_guard_probe(_path: &str, src: &str, sig: &[Tok], ctx: &Context, out: &mut Vec<Finding>) {
    for i in 0..sig.len() {
        if ctx.in_test[i] || sig[i].text(src) != "fn" || sig[i].kind != TokKind::Ident {
            continue;
        }
        let Some(name_tok) = sig.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        let name = name_tok.text(src);
        if !name.ends_with("_guarded") {
            continue;
        }
        // Find the parameter list (skipping any generic parameters) and
        // scan it, depth-matched, for a guard-typed parameter.
        let mut j = i + 2;
        while j < sig.len().min(i + 64) && sig[j].text(src) != "(" {
            j += 1;
        }
        let mut depth = 0usize;
        let mut has_probe = false;
        while j < sig.len() {
            match sig[j].text(src) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "CountProbe" | "RunGuard" if sig[j].kind == TokKind::Ident => {
                    has_probe = true;
                }
                _ => {}
            }
            j += 1;
        }
        if !has_probe {
            out.push(Finding {
                rule: "guard-probe-protocol",
                span: (name_tok.start, name_tok.end),
                message: format!(
                    "`{name}` claims the `_guarded` contract but threads no \
                     `CountProbe`/`RunGuard`"
                ),
            });
        }
    }
}

/// `no-panic-in-io-paths`: `.unwrap()`, `.expect(…)`, panic-family
/// macros, and slice/array indexing inside persist.rs and the CLI crate.
fn check_no_panic(path: &str, src: &str, sig: &[Tok], ctx: &Context, out: &mut Vec<Finding>) {
    let in_scope = path == PERSIST
        || path == "src/lib.rs"
        || path == "src/dataset.rs"
        || path.starts_with("src/bin/");
    if !in_scope {
        return;
    }
    for (i, t) in sig.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        let text = t.text(src);
        if t.kind == TokKind::Ident && matches!(text, "unwrap" | "expect") {
            let after_dot = i.checked_sub(1).is_some_and(|p| sig[p].text(src) == ".");
            let is_call = sig.get(i + 1).is_some_and(|n| n.text(src) == "(");
            if after_dot && is_call {
                out.push(Finding {
                    rule: "no-panic-in-io-paths",
                    span: (t.start, t.end),
                    message: format!("`.{text}()` in an I/O path"),
                });
            }
        }
        if t.kind == TokKind::Ident
            && matches!(text, "panic" | "unreachable" | "todo" | "unimplemented")
            && sig.get(i + 1).is_some_and(|n| n.text(src) == "!")
        {
            out.push(Finding {
                rule: "no-panic-in-io-paths",
                span: (t.start, sig[i + 1].end),
                message: format!("`{text}!` in an I/O path"),
            });
        }
        if text == "[" {
            let Some(p) = i.checked_sub(1) else { continue };
            let prev = &sig[p];
            let prev_text = prev.text(src);
            let indexes = (prev.kind == TokKind::Ident && !NON_INDEX_PREFIX.contains(&prev_text))
                || prev_text == "]"
                || prev_text == ")";
            if indexes {
                out.push(Finding {
                    rule: "no-panic-in-io-paths",
                    span: (prev.start, t.end),
                    message: format!("slice index on `{prev_text}` can panic in an I/O path"),
                });
            }
        }
    }
}

/// `nondeterminism-in-kernel`: `Instant::now` / `SystemTime` in mining
/// code outside guard.rs.
fn check_nondeterminism(path: &str, src: &str, sig: &[Tok], ctx: &Context, out: &mut Vec<Finding>) {
    if path == GUARD
        || !(path.starts_with("crates/core/src/") || path.starts_with("crates/itemset/src/"))
    {
        return;
    }
    for (i, t) in sig.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text(src);
        if !matches!(name, "Instant" | "SystemTime") {
            continue;
        }
        // Only the `::now()` read is nondeterministic — type positions,
        // imports, and constants like `UNIX_EPOCH` read no clock.
        let now = sig.get(i + 1).is_some_and(|a| a.text(src) == ":")
            && sig.get(i + 2).is_some_and(|b| b.text(src) == ":")
            && sig.get(i + 3).is_some_and(|c| c.text(src) == "now");
        if now {
            out.push(Finding {
                rule: "nondeterminism-in-kernel",
                span: (t.start, sig[i + 3].end),
                message: format!("`{name}::now()` outside guard.rs — use `guard::wall_now()`"),
            });
        }
    }
}

/// `measure-verdict-confined`: calls to the raw χ² spellings
/// (`chi_squared(…)`, `is_correlated(…)`, `chi2_quantile(…)`) in
/// production code outside the stats crate. Everything downstream must
/// judge through `MeasureContext`, whose verdict follows the query's
/// measure; a direct call pins χ² regardless. Test code is exempt (the
/// differential suites recompute χ² on purpose), as are benches and
/// examples (outside `src/` trees).
fn check_measure_verdict(
    path: &str,
    src: &str,
    sig: &[Tok],
    ctx: &Context,
    out: &mut Vec<Finding>,
) {
    let in_scope =
        (in_crates_src(path) || path.starts_with("src/")) && !path.starts_with("crates/stats/src/");
    if !in_scope {
        return;
    }
    for (i, t) in sig.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text(src);
        if !matches!(name, "chi_squared" | "is_correlated" | "chi2_quantile") {
            continue;
        }
        // Only calls judge; a doc path or `use` item computes nothing.
        if sig.get(i + 1).is_some_and(|n| n.text(src) == "(") {
            out.push(Finding {
                rule: "measure-verdict-confined",
                span: (t.start, t.end),
                message: format!(
                    "`{name}(…)` outside the measure layer — judge through `MeasureContext`"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<&'static str> {
        let sig: Vec<Tok> = lex(src).into_iter().filter(|t| !t.is_trivia()).collect();
        let ctx = context::analyze(src, &sig);
        check_file(path, src, &sig, &ctx)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn level_loop_flags_only_real_code() {
        let hit = "fn sweep() { while level <= max { step(); } }";
        assert_eq!(
            run("crates/core/src/sweep.rs", hit),
            vec!["level-loop-outside-kernel"]
        );
        assert!(
            run("crates/core/src/kernel.rs", hit).is_empty(),
            "kernel owns the loop"
        );
        let comment = "// while level <= max\nfn f() { let s = \"for level in 0..\"; }";
        assert!(run("crates/core/src/sweep.rs", comment).is_empty());
        let test_code = "#[cfg(test)]\nmod t { fn f() { for level in 0..3 { probe(level); } } }";
        assert!(run("crates/core/src/sweep.rs", test_code).is_empty());
    }

    #[test]
    fn resume_state_literal_but_not_declaration() {
        let hit = "fn f() -> ResumeState { ResumeState { format: 2 } }";
        assert_eq!(
            run("crates/core/src/miner.rs", hit),
            vec!["resume-state-construction-confined"]
        );
        assert!(run("crates/core/src/persist.rs", hit).is_empty());
        let decl = "pub struct ResumeState { format: u16 }\nimpl ResumeState { }";
        assert!(run("crates/core/src/guard.rs", decl).is_empty());
    }

    #[test]
    fn checkpoint_io_idents_and_ccs_literals() {
        let hit = "fn f(p: &Path) { let c = from_bytes(p); }";
        assert_eq!(
            run("crates/core/src/engine.rs", hit),
            vec!["checkpoint-io-confined"]
        );
        assert!(
            run("crates/bench/src/bin/b.rs", hit).is_empty(),
            "bench drives the public API"
        );
        let lit = "fn f() { let p = dir.join(\"run.ccs\"); }";
        assert_eq!(
            run("crates/bench/src/bin/b.rs", lit),
            vec!["checkpoint-io-confined"]
        );
    }

    #[test]
    fn stats_merge_versus_increment() {
        let merge = "fn f(a: &mut S, b: &S) { a.db_scans += b.db_scans; }";
        assert_eq!(
            run("crates/itemset/src/x.rs", merge),
            vec!["counting-stats-merge-via-addassign"]
        );
        let incr = "fn f(a: &mut S) { a.db_scans += 1; a.transactions_visited += visited; }";
        assert!(run("crates/itemset/src/x.rs", incr).is_empty());
        let sanctioned =
            "impl AddAssign<&S> for S { fn add_assign(&mut self, r: &S) { self.db_scans += r.db_scans; } }";
        assert!(run("crates/itemset/src/counting.rs", sanctioned).is_empty());
    }

    #[test]
    fn guarded_fn_must_thread_probe() {
        let bad = "pub fn count_batch_guarded(db: &Db, sets: &[Itemset]) -> R { body() }";
        assert_eq!(
            run("crates/itemset/src/x.rs", bad),
            vec!["guard-probe-protocol"]
        );
        let good = "pub fn count_batch_guarded(db: &Db, probe: &dyn CountProbe) -> R { body() }";
        assert!(run("crates/itemset/src/x.rs", good).is_empty());
        let generic = "fn mine_guarded<C: Counter>(c: &mut C, guard: &RunGuard) -> R { body() }";
        assert!(run("crates/core/src/x.rs", generic).is_empty());
    }

    #[test]
    fn panic_rule_catches_all_four_shapes() {
        let src = "fn f(b: &[u8]) { let x = b[0]; r.unwrap(); r.expect(\"m\"); panic!(\"n\"); }";
        let rules = run("crates/core/src/persist.rs", src);
        assert_eq!(rules.len(), 4);
        assert!(rules.iter().all(|&r| r == "no-panic-in-io-paths"));
        assert!(
            run("crates/core/src/kernel.rs", src).is_empty(),
            "rule is path-scoped"
        );
        let patterns = "fn f(a: [u8; 2]) { let [x, y] = a; let v = vec![0; 4]; }";
        assert!(run("crates/core/src/persist.rs", patterns).is_empty());
    }

    #[test]
    fn measure_verdict_flags_calls_outside_stats() {
        let hit = "fn f(t: &ContingencyTable) -> bool { t.chi_squared() >= crit }";
        assert_eq!(
            run("crates/core/src/engine.rs", hit),
            vec!["measure-verdict-confined"]
        );
        assert!(
            run("crates/stats/src/contingency.rs", hit).is_empty(),
            "the stats crate owns the spellings"
        );
        let quantile = "fn f() -> f64 { chi2_quantile(0.95, 2) }";
        assert_eq!(
            run("src/bin/ccs.rs", quantile),
            vec!["measure-verdict-confined"]
        );
        assert!(
            run("crates/bench/benches/substrates.rs", quantile).is_empty(),
            "benches time the raw statistic on purpose"
        );
        assert!(
            run("examples/quickstart.rs", quantile).is_empty(),
            "examples may show the raw statistic"
        );
        let test_code = "#[cfg(test)]\nmod t { fn f(t: &T) { assert!(t.is_correlated(0.9)); } }";
        assert!(run("crates/core/src/border.rs", test_code).is_empty());
        let import = "use ccs_stats::chi2_quantile;\nfn f(ctx: &MeasureContext, t: &T) -> bool { ctx.verdict(t) }";
        assert!(
            run("crates/core/src/causality.rs", import).is_empty(),
            "imports and MeasureContext verdicts are fine"
        );
    }

    #[test]
    fn nondeterminism_scoped_to_mining_code() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }";
        let rules = run("crates/core/src/kernel.rs", src);
        assert_eq!(rules.len(), 2);
        assert!(
            run("crates/core/src/guard.rs", src).is_empty(),
            "guard.rs owns the clock"
        );
        assert!(
            run("crates/bench/src/bin/b.rs", src).is_empty(),
            "bench may time itself"
        );
        let ty = "struct S { start: Instant }";
        assert!(
            run("crates/core/src/kernel.rs", ty).is_empty(),
            "type position is fine"
        );
    }
}
