//! Span-anchored diagnostics: caret rendering, JSON emission, and the
//! inline suppression protocol.
//!
//! Rendering follows the `ccs analyze` house style (source line + caret
//! underline, byte-aligned — exact for ASCII sources), and the JSON
//! emitter is hand-rolled like `QueryAnalysis::to_json`: the workspace
//! intentionally carries no JSON dependency.
//!
//! Suppressions are inline comments of the form
//!
//! ```text
//! // ccs-lint: allow(rule-id, reason = "why this site is sound")
//! ```
//!
//! A trailing comment covers its own line; a standalone comment covers
//! the next line holding code. The `reason` is **mandatory** — an allow
//! without one (or naming an unknown rule) is itself a violation, so the
//! suppression ledger stays auditable.

use std::fmt::Write as _;

/// One confirmed rule violation, anchored to a byte span in one file.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule id (kebab-case, stable — see [`crate::rules`]).
    pub rule: &'static str,
    /// Workspace-relative path, unix separators.
    pub path: String,
    /// 1-based line of the span start.
    pub line: usize,
    /// 1-based byte column of the span start within its line.
    pub col: usize,
    /// Byte span in the file.
    pub span: (usize, usize),
    /// What was found at the span.
    pub message: String,
    /// Why the invariant matters (one line, from the rule table).
    pub why: &'static str,
}

/// Byte offsets of line starts; resolves spans to line/column and line
/// text.
pub struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    /// Builds the index for `src`.
    pub fn new(src: &str) -> LineIndex {
        let mut starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// 1-based line number containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        self.starts.partition_point(|&s| s <= offset)
    }

    /// 1-based byte column of `offset` within its line.
    pub fn col_of(&self, offset: usize) -> usize {
        let line = self.line_of(offset);
        offset - self.starts[line - 1] + 1
    }

    /// The text of 1-based `line` in `src`, without its newline.
    pub fn line_text<'a>(&self, src: &'a str, line: usize) -> &'a str {
        let start = self.starts.get(line - 1).copied().unwrap_or(src.len());
        let end = self
            .starts
            .get(line)
            .map_or(src.len(), |&next| next.saturating_sub(1));
        src.get(start..end.max(start))
            .unwrap_or("")
            .trim_end_matches('\r')
    }
}

/// A parsed `ccs-lint: allow(…)` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule id the comment names.
    pub rule: String,
    /// The mandatory justification, when present and non-empty.
    pub reason: Option<String>,
    /// Byte span of the comment token.
    pub span: (usize, usize),
    /// The 1-based line of code this suppression covers.
    pub target_line: usize,
}

/// Extracts a suppression from one comment's text, if it contains the
/// `ccs-lint: allow(…)` marker. Returns `None` for ordinary comments.
pub fn parse_suppression(comment: &str) -> Option<(String, Option<String>)> {
    let rest = comment.split("ccs-lint:").nth(1)?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let inside = &rest[..close];
    let (rule, tail) = match inside.split_once(',') {
        Some((r, t)) => (r.trim(), t),
        None => (inside.trim(), ""),
    };
    let reason = tail.split_once("reason").and_then(|(_, after)| {
        let after = after.trim_start().strip_prefix('=')?.trim_start();
        let after = after.strip_prefix('"')?;
        let end = after.find('"')?;
        let text = after[..end].trim();
        (!text.is_empty()).then(|| text.to_owned())
    });
    Some((rule.to_owned(), reason))
}

/// Renders one violation in the caret style.
pub fn render(v: &Violation, src: &str, index: &LineIndex) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "violation[{}]: {}", v.rule, v.message);
    let _ = writeln!(s, "  --> {}:{}:{}", v.path, v.line, v.col);
    let line_text = index.line_text(src, v.line);
    let _ = writeln!(s, "      {line_text}");
    let col0 = v.col - 1;
    let width = (v.span.1 - v.span.0)
        .min(line_text.len().saturating_sub(col0))
        .max(1);
    let mut carets = String::from("      ");
    for b in line_text.as_bytes().iter().take(col0) {
        carets.push(if *b == b'\t' { '\t' } else { ' ' });
    }
    for _ in 0..width {
        carets.push('^');
    }
    let _ = writeln!(s, "{carets}");
    let _ = writeln!(s, "  why: {}", v.why);
    s
}

/// Escapes `s` for a JSON string body (same table as the analyzer's).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The whole report as a single-line JSON object.
pub fn to_json(violations: &[Violation], files_scanned: usize, suppressed: usize) -> String {
    let mut s = String::from("{\"violations\":[");
    for (k, v) in violations.iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"span\":[{},{}],\
             \"message\":\"{}\",\"why\":\"{}\"}}",
            v.rule,
            json_escape(&v.path),
            v.line,
            v.col,
            v.span.0,
            v.span.1,
            json_escape(&v.message),
            json_escape(v.why),
        );
    }
    let _ = write!(
        s,
        "],\"files_scanned\":{files_scanned},\"suppressed\":{suppressed},\"clean\":{}}}",
        violations.is_empty()
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_index_resolves_spans() {
        let src = "ab\ncde\n\nf";
        let idx = LineIndex::new(src);
        assert_eq!(idx.line_of(0), 1);
        assert_eq!(idx.line_of(3), 2);
        assert_eq!(idx.col_of(4), 2);
        assert_eq!(idx.line_text(src, 2), "cde");
        assert_eq!(idx.line_text(src, 3), "");
        assert_eq!(idx.line_text(src, 4), "f");
    }

    #[test]
    fn suppression_parsing() {
        assert_eq!(
            parse_suppression(
                "// ccs-lint: allow(no-panic-in-io-paths, reason = \"checked above\")"
            ),
            Some((
                "no-panic-in-io-paths".to_owned(),
                Some("checked above".to_owned())
            ))
        );
        assert_eq!(
            parse_suppression("// ccs-lint: allow(some-rule)"),
            Some(("some-rule".to_owned(), None))
        );
        assert_eq!(
            parse_suppression("// ccs-lint: allow(some-rule, reason = \"\")"),
            Some(("some-rule".to_owned(), None)),
            "empty reasons do not count"
        );
        assert_eq!(parse_suppression("// ordinary comment"), None);
    }

    #[test]
    fn caret_render_is_aligned() {
        let src = "fn f() {\n    let x = broken();\n}\n";
        let idx = LineIndex::new(src);
        let start = src.find("broken").unwrap();
        let v = Violation {
            rule: "demo-rule",
            path: "src/demo.rs".into(),
            line: idx.line_of(start),
            col: idx.col_of(start),
            span: (start, start + "broken".len()),
            message: "demo".into(),
            why: "demo why",
        };
        let text = render(&v, src, &idx);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "violation[demo-rule]: demo");
        assert_eq!(lines[1], "  --> src/demo.rs:2:13");
        assert_eq!(lines[2], "          let x = broken();");
        assert_eq!(lines[3], "                  ^^^^^^");
        assert_eq!(lines[4], "  why: demo why");
    }
}
