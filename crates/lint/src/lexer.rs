//! A comment/string/raw-string-aware Rust lexer with byte spans.
//!
//! The same span ethos as `ccs_query::lexer`, applied to Rust source: every
//! token carries the byte range it came from, and the token stream is
//! *lossless* — concatenating the spans of all tokens (trivia included)
//! reproduces the input byte-for-byte. That round-trip property is what
//! makes the rule engine trustworthy where the CI greps were blind: a
//! `while level` inside a doc comment or a `"ResumeState {"` inside a
//! string literal is a [`TokKind::LineComment`] / [`TokKind::Str`] token,
//! never a false match.
//!
//! The lexer never fails. Malformed input (unterminated strings, stray
//! bytes, lone quotes) degrades to best-effort tokens that still cover
//! their bytes exactly — property-tested against arbitrary byte soup in
//! `tests/lexer_prop.rs`.

/// What a token is. Only the distinctions the rule engine needs: trivia
/// (comments, whitespace) versus significant tokens, and enough literal
/// kinds to keep pattern matching out of quoted text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier, keyword, or raw identifier (`r#type`).
    Ident,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// Numeric literal (including suffixes: `1_000u64`, `0xFF`, `2.5e-3`).
    Number,
    /// String, byte-string, or C-string literal (`"…"`, `b"…"`).
    Str,
    /// Raw (byte) string literal (`r"…"`, `r#"…"#`, `br#"…"#`).
    RawStr,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// `// …` comment, to end of line (doc comments included).
    LineComment,
    /// `/* … */` comment, nesting-aware (doc comments included).
    BlockComment,
    /// Horizontal and vertical whitespace.
    Whitespace,
    /// Any other single character (`{`, `+`, `#`, …).
    Punct,
}

/// One token: a kind plus the byte range it occupies in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    /// The token class.
    pub kind: TokKind,
    /// Byte offset where the token starts.
    pub start: usize,
    /// Byte offset one past where the token ends.
    pub end: usize,
}

impl Tok {
    /// The token's text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// `true` for comments and whitespace.
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokKind::LineComment | TokKind::BlockComment | TokKind::Whitespace
        )
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || !c.is_ascii()
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || !c.is_ascii()
}

/// The byte width of the char starting at `i` (callers guarantee `i` is a
/// char boundary — the lexer only ever stops on boundaries).
fn char_width(src: &str, i: usize) -> usize {
    src[i..].chars().next().map_or(1, char::len_utf8)
}

/// Tokenizes `src` losslessly: the returned tokens are contiguous, start
/// at 0, and end at `src.len()`.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut toks = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let start = i;
        let b = bytes[i];
        let kind = match b {
            b' ' | b'\t' | b'\n' | b'\r' => {
                while i < bytes.len() && matches!(bytes[i], b' ' | b'\t' | b'\n' | b'\r') {
                    i += 1;
                }
                TokKind::Whitespace
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += char_width(src, i);
                }
                TokKind::LineComment
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1usize;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += char_width(src, i);
                    }
                }
                TokKind::BlockComment
            }
            b'"' => {
                i = scan_string(src, i);
                TokKind::Str
            }
            b'\'' => {
                let (end, kind) = scan_quote(src, i);
                i = end;
                kind
            }
            // Literal prefixes have to be sniffed before the generic
            // identifier path: `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#`,
            // `c"…"` — but `r#type` is a raw identifier and `radius` is a
            // plain one.
            b'r' | b'b' | b'c' => match scan_prefixed_literal(src, i) {
                Some((end, kind)) => {
                    i = end;
                    kind
                }
                None => {
                    i += 1;
                    while i < bytes.len() && is_ident_continue(char_at(src, i)) {
                        i += char_width(src, i);
                    }
                    TokKind::Ident
                }
            },
            b'0'..=b'9' => {
                i = scan_number(src, i);
                TokKind::Number
            }
            _ if is_ident_start(char_at(src, i)) => {
                i += char_width(src, i);
                while i < bytes.len() && is_ident_continue(char_at(src, i)) {
                    i += char_width(src, i);
                }
                TokKind::Ident
            }
            _ => {
                i += char_width(src, i);
                TokKind::Punct
            }
        };
        toks.push(Tok {
            kind,
            start,
            end: i,
        });
    }
    toks
}

fn char_at(src: &str, i: usize) -> char {
    src[i..].chars().next().unwrap_or('\0')
}

/// Consumes a `"…"` string starting at the opening quote; handles escapes;
/// unterminated strings run to end of input.
fn scan_string(src: &str, mut i: usize) -> usize {
    let bytes = src.as_bytes();
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                i += 1;
                if i < bytes.len() {
                    i += char_width(src, i);
                }
            }
            b'"' => return i + 1,
            _ => i += char_width(src, i),
        }
    }
    i
}

/// Consumes a raw string `"…"` body given the number of `#` marks in its
/// opener; unterminated bodies run to end of input. `i` points at the
/// opening quote.
fn scan_raw_string(src: &str, mut i: usize, hashes: usize) -> usize {
    let bytes = src.as_bytes();
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&b| b == b'#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        }
        i += char_width(src, i);
    }
    i
}

/// Disambiguates `'` at `i`: lifetime (`'a`), loop label, or character
/// literal (`'x'`, `'\n'`). Unterminated char literals degrade to a short
/// [`TokKind::Char`] token rather than swallowing the rest of the file.
fn scan_quote(src: &str, start: usize) -> (usize, TokKind) {
    let bytes = src.as_bytes();
    let mut i = start + 1;
    if i >= bytes.len() {
        return (i, TokKind::Punct);
    }
    if bytes[i] == b'\\' {
        // Escape: consume `\x`, then everything up to the closing quote
        // (covers `'\n'`, `'\u{1F600}'`, `'\''`).
        i += 1;
        if i < bytes.len() {
            if bytes[i] == b'\'' {
                i += 1; // escaped quote: `'\''`
            } else {
                i += char_width(src, i);
            }
        }
        while i < bytes.len() && bytes[i] != b'\'' && bytes[i] != b'\n' {
            i += char_width(src, i);
        }
        if i < bytes.len() && bytes[i] == b'\'' {
            i += 1;
        }
        return (i, TokKind::Char);
    }
    if is_ident_start(char_at(src, i)) {
        // Could be `'a'` (char) or `'a` / `'outer` (lifetime): scan the
        // ident run and look for an immediate closing quote.
        let mut j = i + char_width(src, i);
        while j < bytes.len() && is_ident_continue(char_at(src, j)) {
            j += char_width(src, j);
        }
        if j < bytes.len() && bytes[j] == b'\'' {
            return (j + 1, TokKind::Char);
        }
        return (j, TokKind::Lifetime);
    }
    // `'('`-style: any single char then hopefully a closing quote.
    i += char_width(src, i);
    if i < bytes.len() && bytes[i] == b'\'' {
        return (i + 1, TokKind::Char);
    }
    (i, TokKind::Char)
}

/// Sniffs a literal prefix at `i` (`r`, `b`, `c`, `br`, `cr`): returns the
/// token end and kind if one matches, or `None` when this is an ordinary
/// identifier.
fn scan_prefixed_literal(src: &str, start: usize) -> Option<(usize, TokKind)> {
    let bytes = src.as_bytes();
    let mut i = start;
    let mut raw = false;
    match bytes[i] {
        b'r' => {
            raw = true;
            i += 1;
        }
        b'b' | b'c' => {
            i += 1;
            if bytes.get(i) == Some(&b'r') {
                raw = true;
                i += 1;
            }
        }
        _ => return None,
    }
    if raw {
        // `r#…`: raw string if the hashes end at a quote, raw identifier
        // otherwise (`r#type`).
        let mut hashes = 0usize;
        while bytes.get(i + hashes) == Some(&b'#') {
            hashes += 1;
        }
        if bytes.get(i + hashes) == Some(&b'"') {
            let end = scan_raw_string(src, i + hashes, hashes);
            return Some((end, TokKind::RawStr));
        }
        if hashes == 1
            && i == start + 1
            && bytes.get(i + 1).copied().map(|b| is_ident_start(b as char)) == Some(true)
        {
            // Raw identifier `r#name`.
            let mut j = i + 1;
            while j < bytes.len() && is_ident_continue(char_at(src, j)) {
                j += char_width(src, j);
            }
            return Some((j, TokKind::Ident));
        }
        return None;
    }
    match bytes.get(i) {
        Some(&b'"') => Some((scan_string(src, i), TokKind::Str)),
        Some(&b'\'') if bytes[start] == b'b' => {
            let (end, _) = scan_quote(src, i);
            Some((end, TokKind::Char))
        }
        _ => None,
    }
}

/// Consumes a numeric literal: digit run with underscores, letters
/// (suffixes, hex digits, exponents), and at most the fraction dot of a
/// float — `0..n` must lex as `0`, `..`, `n`.
fn scan_number(src: &str, mut i: usize) -> usize {
    let bytes = src.as_bytes();
    let digits = |i: &mut usize| {
        while *i < bytes.len() && (bytes[*i].is_ascii_alphanumeric() || bytes[*i] == b'_') {
            // `1e-3`: a sign directly after an exponent letter belongs to
            // the literal.
            let at = *i;
            *i += 1;
            if matches!(bytes[at], b'e' | b'E')
                && matches!(bytes.get(*i), Some(b'+') | Some(b'-'))
                && bytes.get(*i + 1).is_some_and(u8::is_ascii_digit)
            {
                *i += 1;
            }
        }
    };
    digits(&mut i);
    if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
        i += 1;
        digits(&mut i);
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn roundtrip(src: &str) {
        let toks = lex(src);
        let mut pos = 0usize;
        for t in &toks {
            assert_eq!(t.start, pos, "gap before {t:?} in {src:?}");
            assert!(t.end >= t.start);
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "tail not covered in {src:?}");
    }

    #[test]
    fn comments_and_strings_are_trivia_or_literals() {
        let src = r#"let x = "while level"; // for level in
            /* ResumeState { nested /* deeper */ } */ foo"#;
        let sig = kinds(src);
        assert_eq!(
            sig,
            vec![
                (TokKind::Ident, "let"),
                (TokKind::Ident, "x"),
                (TokKind::Punct, "="),
                (TokKind::Str, "\"while level\""),
                (TokKind::Punct, ";"),
                (TokKind::Ident, "foo"),
            ]
        );
        roundtrip(src);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let src = r###"r"a{b"# r#"with "quotes" inside"# br#"bytes"# r#type"###;
        let sig = kinds(src);
        assert_eq!(sig[0], (TokKind::RawStr, r#"r"a{b""#));
        assert_eq!(sig[1].0, TokKind::Punct); // the stray `#`
        assert_eq!(sig[2], (TokKind::RawStr, r##"r#"with "quotes" inside"#"##));
        assert_eq!(sig[3], (TokKind::RawStr, r##"br#"bytes"#"##));
        assert_eq!(sig[4], (TokKind::Ident, "r#type"));
        roundtrip(src);
    }

    #[test]
    fn lifetimes_versus_char_literals() {
        let src = "'a' 'b &'static 'outer: loop {} b'\\n' '\\'' '{'";
        let sig = kinds(src);
        assert_eq!(sig[0], (TokKind::Char, "'a'"));
        assert_eq!(sig[1], (TokKind::Lifetime, "'b"));
        assert_eq!(sig[2], (TokKind::Punct, "&"));
        assert_eq!(sig[3], (TokKind::Lifetime, "'static"));
        assert_eq!(sig[4], (TokKind::Lifetime, "'outer"));
        assert!(sig
            .iter()
            .any(|&(k, t)| k == TokKind::Char && t == "b'\\n'"));
        assert!(sig.iter().any(|&(k, t)| k == TokKind::Char && t == "'\\''"));
        assert!(sig.iter().any(|&(k, t)| k == TokKind::Char && t == "'{'"));
        roundtrip(src);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let src = "0..n 1_000u64 0xFF 2.5e-3 1. x.0";
        let sig = kinds(src);
        assert_eq!(sig[0], (TokKind::Number, "0"));
        assert_eq!(sig[1], (TokKind::Punct, "."));
        assert_eq!(sig[2], (TokKind::Punct, "."));
        assert_eq!(sig[3], (TokKind::Ident, "n"));
        assert_eq!(sig[4], (TokKind::Number, "1_000u64"));
        assert_eq!(sig[5], (TokKind::Number, "0xFF"));
        assert_eq!(sig[6], (TokKind::Number, "2.5e-3"));
        assert_eq!(sig[7], (TokKind::Number, "1"));
        roundtrip(src);
    }

    #[test]
    fn unterminated_forms_cover_their_bytes() {
        for src in [
            "\"never closed",
            "/* never closed",
            "r#\"never closed",
            "'",
            "b'",
            "let s = \"trailing \\",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn empty_and_unicode_inputs() {
        roundtrip("");
        roundtrip("état = \"café\"; // naïve");
        roundtrip("let 你好 = '好';");
        let sig = kinds("état");
        assert_eq!(sig[0].0, TokKind::Ident);
    }
}
