//! Fixture self-tests: every rule has seeded-violation fixtures whose
//! caret diagnostics and JSON reports are pinned as goldens.
//!
//! Each fixture under `tests/fixtures/*.rs` starts with a
//! `//! pretend: <path>` line naming the workspace-relative path it
//! should be linted *as* — that is what drives per-rule scoping. The
//! expected text rendering lives at `tests/goldens/<name>.txt` and the
//! JSON report at `tests/goldens/<name>.json`.
//!
//! Regenerate after an intentional diagnostic change with:
//!
//! ```text
//! CCS_LINT_BLESS=1 cargo test -p ccs-lint --test golden_diagnostics
//! ```

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use ccs_lint::diag::{to_json, LineIndex};
use ccs_lint::lint_source;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn goldens_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

/// Extracts the pretend path from a fixture's first line.
fn pretend_path(src: &str, fixture: &Path) -> String {
    src.lines()
        .next()
        .and_then(|l| l.strip_prefix("//! pretend: "))
        .unwrap_or_else(|| panic!("{} lacks a `//! pretend:` header", fixture.display()))
        .trim()
        .to_owned()
}

/// Lints one fixture and renders its full text + JSON reports.
fn run_fixture(fixture: &Path) -> (String, String, usize) {
    let src = fs::read_to_string(fixture).expect("read fixture");
    let pretend = pretend_path(&src, fixture);
    let report = lint_source(&pretend, &src);
    let index = LineIndex::new(&src);
    let mut text = String::new();
    for v in &report.violations {
        text.push_str(&ccs_lint::diag::render(v, &src, &index));
        text.push('\n');
    }
    let _ = writeln!(
        text,
        "checked 1 files: {} violations ({} suppressed)",
        report.violations.len(),
        report.suppressed,
    );
    let json = to_json(&report.violations, 1, report.suppressed);
    (text, json, report.violations.len())
}

fn check_golden(path: &Path, actual: &str) {
    if std::env::var_os("CCS_LINT_BLESS").is_some() {
        fs::write(path, actual).expect("bless golden");
        return;
    }
    let expected = fs::read_to_string(path)
        .unwrap_or_else(|_| panic!("{} missing — run with CCS_LINT_BLESS=1", path.display()));
    assert_eq!(
        expected,
        actual,
        "{} diverges from the pinned golden (CCS_LINT_BLESS=1 to re-pin)",
        path.display()
    );
}

#[test]
fn every_fixture_matches_its_goldens() {
    let mut fixtures: Vec<PathBuf> = fs::read_dir(fixtures_dir())
        .expect("fixtures dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 8,
        "expected a fixture per rule, found {}",
        fixtures.len()
    );
    for fixture in &fixtures {
        let stem = fixture.file_stem().and_then(|s| s.to_str()).expect("stem");
        let (text, json, n) = run_fixture(fixture);
        assert!(
            n > 0,
            "{stem} seeds no violations — a dead fixture proves nothing"
        );
        check_golden(&goldens_dir().join(format!("{stem}.txt")), &text);
        check_golden(&goldens_dir().join(format!("{stem}.json")), &json);
    }
}

#[test]
fn fixtures_cover_every_rule() {
    let mut seen = BTreeSet::new();
    for entry in fs::read_dir(fixtures_dir()).expect("fixtures dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_none_or(|x| x != "rs") {
            continue;
        }
        let src = fs::read_to_string(&path).expect("read fixture");
        let report = lint_source(&pretend_path(&src, &path), &src);
        seen.extend(report.violations.iter().map(|v| v.rule));
    }
    for rule in ccs_lint::rules::RULES {
        assert!(
            seen.contains(rule.id),
            "no fixture seeds a `{}` violation",
            rule.id
        );
    }
}

/// The JSON goldens stay machine-readable: minimal structural checks so
/// a rendering bug cannot be blessed in silently.
#[test]
fn json_reports_are_well_formed() {
    for entry in fs::read_dir(goldens_dir()).expect("goldens dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_none_or(|x| x != "json") {
            continue;
        }
        let text = fs::read_to_string(&path).expect("read golden");
        assert!(text.starts_with("{\"violations\":["), "{}", path.display());
        assert!(text.trim_end().ends_with('}'), "{}", path.display());
        let quotes = text.bytes().filter(|&b| b == b'"').count()
            - text.as_bytes().windows(2).filter(|w| w == b"\\\"").count();
        assert!(quotes % 2 == 0, "unbalanced quotes in {}", path.display());
    }
}
