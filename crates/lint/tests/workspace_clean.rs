//! The linchpin test: the real workspace lints clean, and the vendored
//! trees match their pins. CI runs the `ccs-lint` binary too, but having
//! this inside `cargo test` means a violation fails the ordinary test
//! suite on any machine — the invariants cannot drift between CI runs.

use std::path::{Path, PathBuf};

use ccs_lint::{lint_tree, vendor};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/lint")
        .to_path_buf()
}

#[test]
fn the_workspace_lints_clean() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").exists() && root.join("crates").is_dir(),
        "unexpected workspace layout at {}",
        root.display()
    );
    let files = lint_tree(&root).expect("walk workspace");
    assert!(
        files.len() > 50,
        "walk looks truncated: {} files",
        files.len()
    );
    let mut rendered = String::new();
    for f in &files {
        let index = ccs_lint::diag::LineIndex::new(&f.src);
        for v in &f.violations {
            rendered.push_str(&ccs_lint::diag::render(v, &f.src, &index));
            rendered.push('\n');
        }
    }
    assert!(
        rendered.is_empty(),
        "the tree has lint violations:\n{rendered}"
    );
}

#[test]
fn vendored_trees_match_their_pins() {
    let drift = vendor::check(&workspace_root()).expect("hash vendor trees");
    assert!(drift.is_empty(), "vendor drift:\n{}", drift.join("\n"));
}

#[test]
fn the_walker_sees_the_load_bearing_files() {
    // Path scoping is only meaningful if the walker actually visits the
    // owners; a future layout change must not silently blind the rules.
    let files = lint_tree(&workspace_root()).expect("walk workspace");
    for expected in [
        "crates/core/src/kernel.rs",
        "crates/core/src/persist.rs",
        "crates/core/src/guard.rs",
        "crates/itemset/src/counting.rs",
        "src/bin/ccs.rs",
    ] {
        assert!(
            files.iter().any(|f| f.path == expected),
            "walker no longer visits {expected}"
        );
    }
    // And the seeded fixtures must never leak into the workspace scan.
    assert!(
        !files.iter().any(|f| f.path.contains("tests/fixtures")),
        "fixture files leaked into the workspace scan"
    );
}
