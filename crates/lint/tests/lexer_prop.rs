//! Property tests for the lint lexer.
//!
//! The contract: [`ccs_lint::lexer::lex`] never panics, and its token
//! stream is *lossless* — tokens are contiguous, start at byte 0, and
//! end at `src.len()`, so concatenating every span reproduces the input
//! byte-for-byte. The inputs are hostile on purpose: arbitrary byte
//! soup, and fragment soup biased toward the seams where Rust lexing is
//! genuinely tricky (raw-string openers, lifetime/char ambiguity, byte
//! literals, unterminated comments, escapes).

use ccs_lint::lexer::{lex, TokKind};
use proptest::prelude::*;

/// Asserts the lossless-cover property and returns the tokens.
fn roundtrip(src: &str) -> Vec<ccs_lint::lexer::Tok> {
    let toks = lex(src);
    let mut pos = 0usize;
    for t in &toks {
        assert_eq!(t.start, pos, "gap or overlap before {t:?} in {src:?}");
        assert!(t.end > t.start, "empty token {t:?} in {src:?}");
        assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "token {t:?} splits a char in {src:?}"
        );
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "tail of {src:?} not covered");
    toks
}

proptest! {
    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let src = String::from_utf8_lossy(&bytes);
        roundtrip(&src);
    }

    #[test]
    fn seam_soup_roundtrips(parts in proptest::collection::vec(
        prop_oneof![
            // Raw-string machinery: openers, closers, stray hashes.
            Just("r"), Just("r#"), Just("r##\""), Just("\"#"), Just("#"),
            Just("br\""), Just("br#\""), Just("b\""), Just("c\""),
            // Quote seams: lifetimes vs char literals vs escapes.
            Just("'"), Just("'a"), Just("'a'"), Just("'\\"), Just("'\\''"),
            Just("b'"), Just("'static"), Just("'{'"),
            // Comment seams, including unterminated and nested.
            Just("//"), Just("/*"), Just("*/"), Just("/"), Just("/**"),
            // String bodies and escapes.
            Just("\""), Just("\\"), Just("\\\""), Just("while level"),
            // Numbers at range/float/suffix seams.
            Just("0"), Just("0."), Just(".."), Just("1e"), Just("1e-"),
            Just("2.5e-3"), Just("0xFF"), Just("1_000u64"),
            // Ordinary glue.
            Just("ident"), Just("fn"), Just("{"), Just("}"), Just("["),
            Just("]"), Just(";"), Just(" "), Just("\n"), Just("é"),
        ],
        0..24,
    )) {
        let src: String = parts.concat();
        roundtrip(&src);
    }

    #[test]
    fn trivia_classification_is_stable(parts in proptest::collection::vec(
        prop_oneof![
            Just("// line\n"), Just("/* block */"), Just("  "), Just("\t\n"),
            Just("ident"), Just("42"), Just("\"str\""), Just("'c'"),
        ],
        0..16,
    )) {
        // Significant tokens never lex as trivia and vice versa, no
        // matter how the fragments interleave comments around them.
        let src: String = parts.concat();
        for t in roundtrip(&src) {
            let text = t.text(&src);
            match t.kind {
                TokKind::Whitespace => {
                    assert!(text.chars().all(|c| c.is_ascii_whitespace()), "{text:?}");
                }
                TokKind::LineComment => assert!(text.starts_with("//"), "{text:?}"),
                TokKind::BlockComment => assert!(text.starts_with("/*"), "{text:?}"),
                _ => {}
            }
        }
    }
}
