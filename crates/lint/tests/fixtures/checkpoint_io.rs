//! pretend: crates/core/src/rogue_io.rs
//!
//! Seeded violations for `checkpoint-io-confined`. The old grep's
//! comment-exclusion (`grep -vE '^\s*//'`) could never match `grep -rn`
//! output (lines start with the file path), so it survived only because
//! no comment happened to mention these names — the lint is immune by
//! construction.

fn rogue_parse(bytes: &[u8]) -> u16 {
    // VIOLATION: checkpoint bytes have one reader, persist.rs.
    let ckpt = from_bytes(bytes);
    ckpt
}

fn rogue_path(dir: &std::path::Path) -> std::path::PathBuf {
    // VIOLATION (x3): the `ckpt_path` name (twice) and the `.ccs`
    // literal are persist.rs business.
    let ckpt_path = dir.join("run.ccs");
    ckpt_path
}

// VIOLATION: even *defining* a from_bytes here invites a second parser.
fn from_bytes(bytes: &[u8]) -> u16 {
    bytes.len() as u16
}

fn fine_mentions() {
    // from_bytes and run.ccs in a comment are not checkpoint handling,
    // and `from_bytes` inside a string is prose, not parsing:
    let _doc = "persist.rs validates before Checkpoint::from_bytes returns";
}
