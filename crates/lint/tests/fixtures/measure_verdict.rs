//! pretend: crates/core/src/rogue_verdict.rs
//!
//! Seeded violations for `measure-verdict-confined`: raw χ² spellings
//! called outside the stats crate judge with the wrong measure whenever
//! the query asks for all-confidence or bond. Production code must go
//! through `MeasureContext`; test code recomputes χ² on purpose and is
//! exempt.

use ccs_stats::{chi2_quantile, ContingencyTable, MeasureContext};

fn rogue_statistic(table: &ContingencyTable) -> f64 {
    // VIOLATION: the raw statistic ignores the run's measure.
    table.chi_squared()
}

fn rogue_verdict(table: &ContingencyTable) -> bool {
    // VIOLATION: pins the χ² test regardless of `params.measure`.
    table.is_correlated(0.9)
}

fn rogue_cutoff() -> f64 {
    // VIOLATION: quantiles are precomputed once, in `MeasureContext`.
    chi2_quantile(0.95, 2)
}

// Fine: the measure-aware spelling every production call site must use.
fn sanctioned(ctx: &MeasureContext, table: &ContingencyTable) -> bool {
    ctx.verdict(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_recomputation_is_fine() {
        let t = table();
        assert!(t.chi_squared() >= 0.0);
        assert!(t.is_correlated(0.9) || !t.is_correlated(0.99));
    }
}
