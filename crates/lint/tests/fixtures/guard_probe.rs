//! pretend: crates/itemset/src/rogue_count.rs
//!
//! Seeded violations for `guard-probe-protocol`: a `*_guarded` entry
//! point that threads no `CountProbe`/`RunGuard` cannot be interrupted,
//! which silently breaks budgets, deadlines, and Ctrl-C. (Another pure
//! grep false-negative: no shell pattern checked signatures.)

pub struct Db;
pub struct Itemset;
pub trait CountProbe {}
pub struct RunGuard;

// VIOLATION: claims the guarded contract, observes no probe.
pub fn minterm_counts_batch_guarded(db: &Db, sets: &[Itemset]) -> usize {
    let _ = (db, sets);
    0
}

pub fn fine_with_probe(db: &Db, probe: &dyn CountProbe) -> usize {
    let _ = (db, probe);
    0
}

pub fn fine_batch_guarded(db: &Db, probe: &dyn CountProbe) -> usize {
    let _ = (db, probe);
    0
}

pub fn fine_generic_guarded<C>(counter: &mut C, guard: &RunGuard) -> usize {
    let _ = (counter, guard);
    0
}
