//! pretend: src/bin/rogue.rs
//!
//! Seeded violations for `no-panic-in-io-paths`: every panic shape the
//! rule knows — `.unwrap()`, `.expect()`, `panic!`, and slice indexing —
//! plus the shapes that must NOT fire: patterns, macros, test code, and
//! the doc-comment `.unwrap()` that the old grep would have flagged.

fn rogue(args: &[String], bytes: &[u8]) -> u8 {
    // VIOLATION: index can panic on an empty argv.
    let _first = &args[0];
    // VIOLATION: unwrap in an I/O path.
    let parsed: u32 = args[1].parse().unwrap();
    // VIOLATION: expect is unwrap with an apology.
    let flag = args.first().expect("checked above");
    let _ = (parsed, flag);
    if bytes.is_empty() {
        // VIOLATION: I/O paths fail as values, not panics.
        panic!("empty input");
    }
    bytes[0]
}

/// Fine: `.unwrap()` in a doc comment is documentation, not code.
fn fine_shapes(pair: [u8; 2]) -> u8 {
    // Slice patterns and array literals are not index expressions.
    let [a, b] = pair;
    let table = [a, b, 0, 1];
    let v = vec![0u8; 4];
    a + b + table.len() as u8 + v.len() as u8
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Result<u8, ()> = Ok(1);
        assert_eq!(v.unwrap(), 1);
    }
}
