//! pretend: crates/core/src/rogue_clock.rs
//!
//! Seeded violations for `nondeterminism-in-kernel`: wall-clock reads
//! outside guard.rs make mining runs unreproducible. Type-position
//! `Instant` and test-code clocks are fine. (A third grep
//! false-negative: nothing ever policed clock reads.)

use std::time::{Instant, SystemTime};

pub struct Scope {
    // Fine: `Instant` in type position reads no clock.
    pub start: Instant,
}

fn rogue_clock() -> Scope {
    Scope {
        // VIOLATION: route through guard::wall_now().
        start: Instant::now(),
    }
}

fn rogue_epoch() -> u64 {
    // VIOLATION: SystemTime is worse — it isn't even monotonic.
    match SystemTime::now().duration_since(SystemTime::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_a_test_is_fine() {
        let t0 = Instant::now();
        assert!(t0.elapsed().as_secs() < 60);
    }
}
