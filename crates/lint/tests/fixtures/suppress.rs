//! pretend: crates/core/src/suppress_demo.rs
//!
//! The suppression protocol end to end: a reasoned allow silences
//! exactly one line; an allow without a reason, naming an unknown rule,
//! or targeting the meta-rule is itself a `suppression-requires-reason`
//! violation — so the ledger of exemptions stays auditable.

use std::time::Instant;

fn fine_reasoned_allow() -> Instant {
    // ccs-lint: allow(nondeterminism-in-kernel, reason = "fixture demo of a sound suppression")
    Instant::now()
}

fn fine_trailing_allow() -> Instant {
    Instant::now() // ccs-lint: allow(nondeterminism-in-kernel, reason = "trailing form covers its own line")
}

fn rogue_reasonless() -> Instant {
    // VIOLATION (meta) + VIOLATION (nondet survives): no reason given.
    // ccs-lint: allow(nondeterminism-in-kernel)
    Instant::now()
}

fn rogue_unknown_rule() {
    // VIOLATION (meta): names a rule the engine does not know.
    // ccs-lint: allow(no-such-rule, reason = "typo'd rule id")
    let _ = 0;
}

fn rogue_meta_allow() {
    // VIOLATION (meta): the meta-rule cannot be allowed away.
    // ccs-lint: allow(suppression-requires-reason, reason = "nice try")
    let _ = 0;
}
