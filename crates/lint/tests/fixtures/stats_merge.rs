//! pretend: crates/itemset/src/rogue_merge.rs
//!
//! Seeded violations for `counting-stats-merge-via-addassign`: a
//! hand-rolled field-wise merge drops newly added counters silently.
//! Increments and the sanctioned `AddAssign` body are fine. (No grep
//! ever enforced this — a pure false-negative in the old CI surface.)

pub struct CountingStats {
    pub db_scans: u64,
    pub cache_hits: u64,
}

fn rogue_merge(into: &mut CountingStats, from: &CountingStats) {
    // VIOLATION (x2): merging outside the AddAssign impl.
    into.db_scans += from.db_scans;
    into.cache_hits += from.cache_hits;
}

fn fine_increments(stats: &mut CountingStats, visited: u64) {
    stats.db_scans += 1;
    stats.cache_hits += visited;
}

impl std::ops::AddAssign<&CountingStats> for CountingStats {
    fn add_assign(&mut self, rhs: &CountingStats) {
        // The one sanctioned field-wise merge.
        self.db_scans += rhs.db_scans;
        self.cache_hits += rhs.cache_hits;
    }
}
