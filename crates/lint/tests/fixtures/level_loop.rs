//! pretend: crates/core/src/sweep.rs
//!
//! Seeded violations for `level-loop-outside-kernel`, plus the audit
//! cases where the old CI grep got it wrong: grep flagged `while level`
//! in comments and strings (false positives it dodged only via its
//! `grep -v` comment hack, which never matched `-rn` output), and missed
//! loops in files its path glob skipped.

fn rogue_sweep(max_level: usize) {
    let mut level = 1;
    // VIOLATION: the level loop belongs to the kernel.
    while level <= max_level {
        level += 1;
    }
}

fn rogue_iter(levels: &[Vec<u32>]) {
    // VIOLATION: `for level in …` is the level loop spelled differently.
    for level in levels {
        drop(level);
    }
}

fn fine_doc_and_strings() {
    // while level <= max_level — a comment, not a loop (grep's false positive).
    let _doc = "for level in 0..max_level";
    let _raw = r"while level <= max_level { step(); }";
}

fn fine_within_one_level(level: &[u32]) -> u32 {
    let mut sum = 0;
    // Iterating one level's *contents* is fine anywhere.
    for set in level {
        sum += set;
    }
    sum
}

#[cfg(test)]
mod tests {
    #[test]
    fn simulating_levels_in_tests_is_fine() {
        for level in 0..3 {
            assert!(level < 3);
        }
    }
}
