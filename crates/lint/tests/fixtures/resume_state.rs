//! pretend: crates/core/src/forge.rs
//!
//! Seeded violations for `resume-state-construction-confined`. The old
//! grep pattern `ResumeState {` also matched the struct declaration and
//! needed a second `grep -v`; the lint knows declarations from literals.

pub struct ResumeState {
    pub format: u16,
}

impl ResumeState {
    fn describe(&self) -> u16 {
        self.format
    }
}

fn forge() -> ResumeState {
    // VIOLATION: only the kernel stamps resume state.
    ResumeState { format: 2 }
}

fn forge_in_match(cold: bool) -> Option<ResumeState> {
    match cold {
        // VIOLATION: match arms construct too (`=>` is not `->`).
        true => Some(ResumeState { format: 2 }),
        false => None,
    }
}

fn fine_type_positions(state: ResumeState) -> u16 {
    let copy: &ResumeState = &state;
    copy.describe()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forging_in_tests_is_still_a_violation() {
        // VIOLATION: this rule does not relax for test code — a forged
        // stamp in a test is exactly the drift the kernel refactor banned.
        let s = ResumeState { format: 99 };
        assert_eq!(s.format, 99);
    }
}
