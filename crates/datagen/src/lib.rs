//! # ccs-datagen — synthetic basket-data generators
//!
//! Both test-data generation methods of the paper's evaluation (§4):
//!
//! * [`quest`] — an IBM-Quest-style generator (Agrawal–Srikant VLDB'94),
//!   simulating "real world" basket data via weighted, corrupted
//!   potentially-large itemsets ("method 1"),
//! * [`rules`] — a correlation-rule-planted generator with known ground
//!   truth ("method 2"), for verifying that miners recover exactly the
//!   planted correlations,
//! * [`dist`] — the Poisson / Normal / Exponential samplers they share.
//!
//! All generation is deterministic given a seed.

#![warn(missing_docs)]

pub mod dist;
pub mod quest;
pub mod rules;

pub use quest::{generate as generate_quest, QuestParams};
pub use rules::{generate as generate_rules, PlantedRule, RuleParams, RulePlantedData};
