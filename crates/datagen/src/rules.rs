//! Correlation-rule-planted synthetic data ("method 2" of the paper's
//! experiments).
//!
//! Where the Quest generator simulates the real world, this generator
//! verifies *correctness*: data is produced from a known set of
//! correlation rules so a miner can be checked against ground truth. Per
//! §4 of the paper: ten rules; each rule's support is a random value
//! between 70% and 90% of the number of baskets; each basket contains a
//! subset of the rules (rule `i`'s items are planted with probability
//! `s_i`); random items are added when the rules do not fill the basket.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use ccs_itemset::{Item, Itemset, TransactionDb};

use crate::dist::poisson;

/// Parameters of the rule-planted generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleParams {
    /// Number of transactions to generate.
    pub n_transactions: usize,
    /// Number of items in the universe.
    pub n_items: u32,
    /// Mean transaction size (Poisson), as in method 1.
    pub avg_transaction_len: f64,
    /// Number of planted correlation rules (10 in the paper).
    pub n_rules: usize,
    /// Inclusive range of rule sizes (items per rule).
    pub rule_len: (usize, usize),
    /// Range the per-rule support fraction is drawn from
    /// (`[0.7, 0.9]` in the paper).
    pub support_range: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl RuleParams {
    /// The paper's method-2 configuration: 10 rules, supports in
    /// `[0.7, 0.9]`, `|T| = 20`, `N = 1000`.
    pub fn paper(n_transactions: usize, seed: u64) -> Self {
        RuleParams {
            n_transactions,
            n_items: 1000,
            avg_transaction_len: 20.0,
            n_rules: 10,
            rule_len: (2, 4),
            support_range: (0.7, 0.9),
            seed,
        }
    }

    /// A laptop-scale configuration preserving the shape.
    pub fn small(n_transactions: usize, n_items: u32, seed: u64) -> Self {
        RuleParams {
            n_transactions,
            n_items,
            avg_transaction_len: 10.0,
            n_rules: 4,
            rule_len: (2, 3),
            support_range: (0.7, 0.9),
            seed,
        }
    }
}

/// A planted correlation rule: its items and the support fraction it was
/// planted with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantedRule {
    /// The rule's itemset.
    pub items: Itemset,
    /// The probability with which the whole itemset was planted per
    /// basket.
    pub support: f64,
}

/// The generated database together with its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct RulePlantedData {
    /// The transaction database.
    pub db: TransactionDb,
    /// The rules the data was planted from.
    pub rules: Vec<PlantedRule>,
}

/// Generates a rule-planted database.
///
/// Rules are drawn over *disjoint* item sets (so each rule's correlation
/// signal is clean ground truth), which requires
/// `n_rules · rule_len.1 ≤ n_items`.
///
/// # Panics
///
/// Panics on degenerate parameters.
pub fn generate(params: &RuleParams) -> RulePlantedData {
    assert!(params.n_items > 0, "need at least one item");
    assert!(
        params.rule_len.0 >= 1 && params.rule_len.0 <= params.rule_len.1,
        "bad rule_len"
    );
    assert!(
        params.n_rules * params.rule_len.1 <= params.n_items as usize,
        "not enough items for {} disjoint rules of up to {} items",
        params.n_rules,
        params.rule_len.1
    );
    let (lo, hi) = params.support_range;
    assert!(
        (0.0..=1.0).contains(&lo) && lo <= hi && hi <= 1.0,
        "bad support_range"
    );

    let mut rng = StdRng::seed_from_u64(params.seed);

    // Disjoint rules over a shuffled item universe.
    let mut universe: Vec<Item> = (0..params.n_items).map(Item::new).collect();
    for i in (1..universe.len()).rev() {
        let j = rng.gen_range(0..=i);
        universe.swap(i, j);
    }
    let mut rules = Vec::with_capacity(params.n_rules);
    let mut cursor = 0usize;
    for _ in 0..params.n_rules {
        let len = rng.gen_range(params.rule_len.0..=params.rule_len.1);
        let items = Itemset::from_items(universe[cursor..cursor + len].iter().copied());
        cursor += len;
        let support = if lo == hi { lo } else { rng.gen_range(lo..hi) };
        rules.push(PlantedRule { items, support });
    }

    let mut transactions: Vec<Vec<Item>> = Vec::with_capacity(params.n_transactions);
    for _ in 0..params.n_transactions {
        let target = poisson(&mut rng, params.avg_transaction_len).max(1) as usize;
        let mut txn: Vec<Item> = Vec::with_capacity(target + params.rule_len.1);
        // Plant each rule independently with its support probability.
        for rule in &rules {
            if rng.gen::<f64>() < rule.support {
                txn.extend(rule.items.iter());
            }
        }
        // Random fill to the target size ("randomized items are picked up
        // in case the correlation rules do not generate enough items").
        let mut guard = 0;
        while txn.len() < target && guard < 10 * target + 100 {
            let candidate = Item::new(rng.gen_range(0..params.n_items));
            if !txn.contains(&candidate) {
                txn.push(candidate);
            }
            guard += 1;
        }
        transactions.push(txn);
    }

    RulePlantedData {
        db: TransactionDb::new(params.n_items, transactions),
        rules,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = RuleParams::small(300, 60, 5);
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(a.db, b.db);
        assert_eq!(a.rules, b.rules);
    }

    #[test]
    fn rules_are_disjoint_and_sized() {
        let p = RuleParams::small(10, 60, 9);
        let data = generate(&p);
        assert_eq!(data.rules.len(), p.n_rules);
        for (i, r) in data.rules.iter().enumerate() {
            assert!(r.items.len() >= p.rule_len.0 && r.items.len() <= p.rule_len.1);
            assert!((0.7..=0.9).contains(&r.support));
            for other in &data.rules[i + 1..] {
                assert!(r.items.is_disjoint_from(&other.items), "rules overlap");
            }
        }
    }

    #[test]
    fn planted_rules_reach_their_support() {
        let p = RuleParams::small(4000, 60, 17);
        let data = generate(&p);
        for rule in &data.rules {
            let measured = data.db.relative_support(&rule.items);
            // Random fill can only add occurrences, so measured ≥ planted
            // (within sampling noise), and should track it closely.
            assert!(
                measured > rule.support - 0.03,
                "rule {} support {measured} below planted {}",
                rule.items,
                rule.support
            );
        }
    }

    #[test]
    fn planted_pairs_are_positively_correlated() {
        let p = RuleParams::small(4000, 60, 23);
        let data = generate(&p);
        for rule in &data.rules {
            let items: Vec<Item> = rule.items.iter().collect();
            let (a, b) = (items[0], items[1]);
            let joint = data.db.relative_support(&Itemset::from_items([a, b]));
            let pa = data.db.relative_support(&Itemset::singleton(a));
            let pb = data.db.relative_support(&Itemset::singleton(b));
            assert!(
                joint > pa * pb,
                "pair from {} not positively associated: {joint} vs {}",
                rule.items,
                pa * pb
            );
        }
    }

    #[test]
    #[should_panic(expected = "not enough items")]
    fn too_many_rules_for_universe_rejected() {
        generate(&RuleParams {
            n_rules: 100,
            ..RuleParams::small(10, 20, 0)
        });
    }

    #[test]
    fn paper_params_shape() {
        let p = RuleParams::paper(50_000, 1);
        assert_eq!(p.n_rules, 10);
        assert_eq!(p.support_range, (0.7, 0.9));
        assert_eq!(p.n_items, 1000);
    }
}
