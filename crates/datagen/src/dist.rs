//! Random-variate samplers for the data generators.
//!
//! The Quest generator needs Poisson, Normal, and Exponential variates.
//! `rand` (the only RNG crate on this project's dependency list) provides
//! uniform sampling only, so the transforms are implemented here: Knuth's
//! product method / normal approximation for Poisson, Box–Muller for
//! Normal, and inverse-CDF for Exponential.

use rand::Rng;

/// A Poisson(λ) variate.
///
/// Uses Knuth's product-of-uniforms method for λ < 30 and a rounded
/// normal approximation `N(λ, λ)` (clamped at 0) for larger λ, which is
/// accurate far beyond what transaction-length sampling needs.
///
/// # Panics
///
/// Panics if `lambda` is not positive and finite.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda > 0.0 && lambda.is_finite(),
        "poisson needs λ > 0, got {lambda}"
    );
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product = rng.gen::<f64>();
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        let x = normal(rng, lambda, lambda.sqrt());
        x.round().max(0.0) as u64
    }
}

/// A Normal(μ, σ) variate via Box–Muller.
///
/// # Panics
///
/// Panics if `sd` is negative or either parameter is non-finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    assert!(
        sd >= 0.0 && sd.is_finite() && mean.is_finite(),
        "bad normal parameters"
    );
    // Avoid ln(0): sample u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + sd * z
}

/// An Exponential variate with the given mean (`1/rate`).
///
/// # Panics
///
/// Panics if `mean` is not positive and finite.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(
        mean > 0.0 && mean.is_finite(),
        "exponential needs mean > 0, got {mean}"
    );
    let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn poisson_mean_and_variance_small_lambda() {
        let mut r = rng();
        let lambda = 4.0;
        let n = 50_000;
        let samples: Vec<u64> = (0..n).map(|_| poisson(&mut r, lambda)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
        assert!((var - lambda).abs() < 0.2, "variance {var}");
    }

    #[test]
    fn poisson_mean_large_lambda_uses_normal_branch() {
        let mut r = rng();
        let lambda = 100.0;
        let n = 20_000;
        let mean = (0..n).map(|_| poisson(&mut r, lambda)).sum::<u64>() as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "variance {var}");
    }

    #[test]
    fn exponential_moments() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| exponential(&mut r, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<u64> = {
            let mut r = rng();
            (0..10).map(|_| poisson(&mut r, 5.0)).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng();
            (0..10).map(|_| poisson(&mut r, 5.0)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "λ > 0")]
    fn poisson_rejects_zero_lambda() {
        poisson(&mut rng(), 0.0);
    }
}
