//! IBM-Quest-style synthetic basket data ("method 1" of the paper's
//! experiments).
//!
//! Re-implements the synthetic data generator of Agrawal & Srikant ("Fast
//! Algorithms for Mining Association Rules", VLDB 1994, §4.1), which the
//! paper uses to "simulate the real world". The original is a closed-source
//! C program from IBM Almaden; this implementation follows the published
//! description (see DESIGN.md "Substitutions"):
//!
//! 1. A pool of `|L|` *potentially large itemsets* (patterns) is generated.
//!    Pattern sizes are Poisson with mean `|I|`; successive patterns reuse
//!    an exponentially-distributed fraction of the previous pattern's items
//!    (correlation level 0.5); remaining items are drawn uniformly.
//!    Each pattern gets an exponentially-distributed weight (normalized to
//!    a probability) and a *corruption level* drawn from N(0.5, 0.1²).
//! 2. Each transaction has a Poisson(`|T|`) target size and is filled by
//!    repeatedly picking a weighted random pattern, *corrupting* it (items
//!    are dropped while a uniform draw stays below the corruption level),
//!    and inserting the surviving items. An oversized final pattern is
//!    added to the transaction half the time and discarded otherwise.
//!
//! The paper's method-1 configuration is [`QuestParams::paper`]:
//! `|T| = 20`, `|I| = 4`, `N = 1000`, with `|D|` swept from 10 000 to
//! 100 000.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use ccs_itemset::{Item, TransactionDb};

use crate::dist::{exponential, normal, poisson};

/// Parameters of the Quest-style generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuestParams {
    /// `|D|`: number of transactions to generate.
    pub n_transactions: usize,
    /// `N`: number of items in the universe.
    pub n_items: u32,
    /// `|T|`: mean transaction size (Poisson).
    pub avg_transaction_len: f64,
    /// `|I|`: mean size of the potentially-large itemsets (Poisson).
    pub avg_pattern_len: f64,
    /// `|L|`: number of potentially-large itemsets in the pattern pool.
    pub n_patterns: usize,
    /// Fraction of items successive patterns share on average
    /// (exponentially distributed with this mean). 0.5 in the original.
    pub correlation: f64,
    /// Mean of the per-pattern corruption level. 0.5 in the original.
    pub corruption_mean: f64,
    /// Standard deviation of the corruption level. 0.1 in the original.
    pub corruption_sd: f64,
    /// RNG seed: generation is fully deterministic given the parameters.
    pub seed: u64,
}

impl QuestParams {
    /// The configuration of the paper's method-1 experiments:
    /// `|T| = 20`, `|I| = 4`, `N = 1000`, `|L| = 2000`.
    pub fn paper(n_transactions: usize, seed: u64) -> Self {
        QuestParams {
            n_transactions,
            n_items: 1000,
            avg_transaction_len: 20.0,
            avg_pattern_len: 4.0,
            n_patterns: 2000,
            correlation: 0.5,
            corruption_mean: 0.5,
            corruption_sd: 0.1,
            seed,
        }
    }

    /// A laptop-scale configuration preserving the paper's shape
    /// (used by unit tests and the default benchmark scale).
    pub fn small(n_transactions: usize, n_items: u32, seed: u64) -> Self {
        QuestParams {
            n_transactions,
            n_items,
            avg_transaction_len: 10.0,
            avg_pattern_len: 3.0,
            n_patterns: (n_items as usize / 2).max(10),
            correlation: 0.5,
            corruption_mean: 0.5,
            corruption_sd: 0.1,
            seed,
        }
    }
}

/// One potentially-large itemset in the pattern pool.
#[derive(Debug, Clone)]
struct Pattern {
    items: Vec<Item>,
    /// Cumulative weight, for O(log L) weighted selection.
    cumulative_weight: f64,
    corruption: f64,
}

/// Generates a transaction database per the Quest procedure.
///
/// # Panics
///
/// Panics on degenerate parameters (no items, no patterns, non-positive
/// means).
pub fn generate(params: &QuestParams) -> TransactionDb {
    assert!(params.n_items > 0, "need at least one item");
    assert!(params.n_patterns > 0, "need at least one pattern");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let patterns = generate_patterns(params, &mut rng);
    #[allow(clippy::expect_used)] // guarded by the n_patterns assert above
    let total_weight = patterns.last().expect("n_patterns > 0").cumulative_weight;

    let mut transactions: Vec<Vec<Item>> = Vec::with_capacity(params.n_transactions);
    let mut scratch: Vec<Item> = Vec::new();
    for _ in 0..params.n_transactions {
        let target = poisson(&mut rng, params.avg_transaction_len).max(1) as usize;
        let mut txn: Vec<Item> = Vec::with_capacity(target + 4);
        while txn.len() < target {
            let pat = pick_pattern(&patterns, total_weight, &mut rng);
            corrupt_into(pat, &mut scratch, &mut rng);
            if scratch.is_empty() {
                continue;
            }
            // Oversized final pattern: keep half the time, else discard
            // (the original saves it for the next transaction; a discard
            // has the same distributional effect and is simpler).
            if txn.len() + scratch.len() > target && !txn.is_empty() && rng.gen::<bool>() {
                break;
            }
            txn.extend_from_slice(&scratch);
        }
        transactions.push(txn);
    }
    TransactionDb::new(params.n_items, transactions)
}

fn generate_patterns(params: &QuestParams, rng: &mut StdRng) -> Vec<Pattern> {
    let mut patterns: Vec<Pattern> = Vec::with_capacity(params.n_patterns);
    let mut cumulative = 0.0;
    let mut prev_items: Vec<Item> = Vec::new();
    for _ in 0..params.n_patterns {
        let len =
            (poisson(rng, params.avg_pattern_len).max(1) as usize).min(params.n_items as usize);
        let mut items: Vec<Item> = Vec::with_capacity(len);
        if !prev_items.is_empty() {
            // Reuse an exponentially-distributed fraction of the previous
            // pattern, from its front (the original picks a random
            // fraction of items; front-of-shuffled is equivalent).
            let frac = exponential(rng, params.correlation).min(1.0);
            let reuse = ((frac * len as f64).round() as usize).min(prev_items.len());
            items.extend_from_slice(&prev_items[..reuse]);
        }
        while items.len() < len {
            let candidate = Item::new(rng.gen_range(0..params.n_items));
            if !items.contains(&candidate) {
                items.push(candidate);
            }
        }
        let weight = exponential(rng, 1.0);
        cumulative += weight;
        let corruption = normal(rng, params.corruption_mean, params.corruption_sd).clamp(0.0, 1.0);
        // Shuffle so the reused prefix isn't positionally biased.
        shuffle(&mut items, rng);
        prev_items = items.clone();
        patterns.push(Pattern {
            items,
            cumulative_weight: cumulative,
            corruption,
        });
    }
    patterns
}

fn pick_pattern<'a>(patterns: &'a [Pattern], total: f64, rng: &mut StdRng) -> &'a Pattern {
    let needle = rng.gen::<f64>() * total;
    let idx = patterns.partition_point(|p| p.cumulative_weight < needle);
    &patterns[idx.min(patterns.len() - 1)]
}

/// Applies Quest corruption: starting from the full pattern, items are
/// dropped one at a time while a uniform draw stays below the pattern's
/// corruption level.
fn corrupt_into(pat: &Pattern, out: &mut Vec<Item>, rng: &mut StdRng) {
    out.clear();
    out.extend_from_slice(&pat.items);
    while !out.is_empty() && rng.gen::<f64>() < pat.corruption {
        let victim = rng.gen_range(0..out.len());
        out.swap_remove(victim);
    }
}

fn shuffle(items: &mut [Item], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = QuestParams::small(200, 50, 42);
        assert_eq!(generate(&p), generate(&p));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&QuestParams::small(200, 50, 1));
        let b = generate(&QuestParams::small(200, 50, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn transaction_count_and_universe_respected() {
        let p = QuestParams::small(500, 80, 7);
        let db = generate(&p);
        assert_eq!(db.len(), 500);
        assert_eq!(db.n_items(), 80);
    }

    #[test]
    fn average_transaction_length_tracks_parameter() {
        let p = QuestParams {
            seed: 11,
            ..QuestParams::small(2000, 200, 0)
        };
        let db = generate(&p);
        let avg = db.avg_transaction_len();
        // Corruption + dedup shrink baskets a little below |T|; the mean
        // must sit in a sane band around it.
        assert!(
            avg > 0.5 * p.avg_transaction_len && avg < 1.5 * p.avg_transaction_len,
            "avg transaction length {avg} vs |T| = {}",
            p.avg_transaction_len
        );
    }

    #[test]
    fn patterns_plant_cooccurrence() {
        // With few patterns and low corruption, pattern items co-occur far
        // more often than independence predicts.
        let p = QuestParams {
            n_patterns: 5,
            corruption_mean: 0.2,
            corruption_sd: 0.05,
            ..QuestParams::small(3000, 100, 99)
        };
        let db = generate(&p);
        // Among the ten most frequent items, at least one pair must come
        // from a shared pattern and show clearly super-independent lift.
        let supports = db.item_supports();
        let mut idx: Vec<usize> = (0..supports.len()).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(supports[i]));
        let top: Vec<u32> = idx[..10].iter().map(|&i| i as u32).collect();
        let mut best_lift = 0.0f64;
        for (i, &a) in top.iter().enumerate() {
            for &b in &top[i + 1..] {
                let joint = db.relative_support(&ccs_itemset::Itemset::from_ids([a, b]));
                let independent = db.relative_support(&ccs_itemset::Itemset::from_ids([a]))
                    * db.relative_support(&ccs_itemset::Itemset::from_ids([b]));
                if independent > 0.0 {
                    best_lift = best_lift.max(joint / independent);
                }
            }
        }
        assert!(
            best_lift > 1.2,
            "expected a strongly associated pair, best lift {best_lift}"
        );
    }

    #[test]
    fn paper_params_shape() {
        let p = QuestParams::paper(10_000, 3);
        assert_eq!(p.n_items, 1000);
        assert_eq!(p.avg_transaction_len, 20.0);
        assert_eq!(p.avg_pattern_len, 4.0);
        assert_eq!(p.n_patterns, 2000);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_rejected() {
        generate(&QuestParams {
            n_items: 0,
            ..QuestParams::small(10, 10, 0)
        });
    }
}
