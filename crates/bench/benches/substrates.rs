//! Criterion microbenchmarks for the substrate crates: tid-set algebra,
//! contingency-table counting (horizontal vs vertical — the DESIGN.md §5
//! counting ablation), chi-squared machinery, and candidate generation.

use std::collections::HashSet;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use ccs_bench::DataMethod;
use ccs_itemset::{
    candidate, HorizontalCounter, Itemset, MintermCounter, ParallelCounter, ParallelVerticalIndex,
    TidSet, VerticalCounter, WorkerPool,
};
use ccs_stats::{chi2_quantile, ContingencyTable};

/// A dense miner level: all `k`-subsets of consecutive `pool`-item
/// windows until `n` candidates exist — the shape `apriori_gen`
/// produces over a correlated item module, where every prefix class is
/// full and suffix items recur across members.
fn dense_level(n_items: u32, n: usize, k: usize, pool: u32) -> Vec<Itemset> {
    let mut sets: Vec<Itemset> = Vec::with_capacity(n);
    let mut base = 0u32;
    'outer: while sets.len() < n {
        assert!(
            base + pool <= n_items,
            "not enough items for {n} dense candidates"
        );
        for mask in 0u32..(1 << pool) {
            if mask.count_ones() as usize == k {
                sets.push(Itemset::from_ids(
                    (0..pool).filter(|b| mask >> b & 1 == 1).map(|b| base + b),
                ));
                if sets.len() == n {
                    break 'outer;
                }
            }
        }
        base += pool;
    }
    sets.sort_unstable();
    sets
}

fn bench_tidset(c: &mut Criterion) {
    let n = 100_000;
    let a = TidSet::from_ids(n, (0..n).step_by(3));
    let b = TidSet::from_ids(n, (0..n).step_by(5));
    c.bench_function("tidset/intersection_count_100k", |bench| {
        bench.iter(|| black_box(&a).intersection_count(black_box(&b)))
    });
    c.bench_function("tidset/split_by_100k", |bench| {
        bench.iter(|| black_box(&a).split_by(black_box(&b)))
    });
}

fn bench_counting(c: &mut Criterion) {
    let db = DataMethod::Quest.generate(60, 5_000, 7);
    let set3 = Itemset::from_ids([1, 5, 9]);
    let mut group = c.benchmark_group("counting/table_3items_5k_baskets");
    group.bench_function("horizontal", |bench| {
        bench.iter(|| {
            let mut counter = HorizontalCounter::new(&db);
            black_box(counter.minterm_counts(black_box(&set3)))
        })
    });
    // Vertical: index built once (as the miner does), tables amortized.
    let mut vertical = VerticalCounter::new(&db);
    group.bench_function("vertical_amortized", |bench| {
        bench.iter(|| black_box(vertical.minterm_counts(black_box(&set3))))
    });
    group.finish();
}

/// The level-batched paths of every strategy against their per-candidate
/// loops: one 200-candidate level of 4-itemsets over 5k baskets.
fn bench_counting_batch(c: &mut Criterion) {
    let db = DataMethod::Quest.generate(60, 5_000, 7);
    let level = dense_level(60, 200, 4, 12);
    let mut group = c.benchmark_group("counting/level_200x4items_5k_baskets");
    group.sample_size(10);
    group.bench_function("horizontal_per_candidate", |bench| {
        bench.iter(|| {
            let mut counter = HorizontalCounter::new(&db);
            for set in &level {
                black_box(counter.minterm_counts(black_box(set)));
            }
        })
    });
    group.bench_function("horizontal_batch", |bench| {
        bench.iter(|| {
            let mut counter = HorizontalCounter::new(&db);
            black_box(counter.minterm_counts_batch(black_box(&level)))
        })
    });
    let mut vertical = VerticalCounter::new(&db);
    group.bench_function("vertical_per_candidate", |bench| {
        bench.iter(|| {
            for set in &level {
                black_box(vertical.minterm_counts(black_box(set)));
            }
        })
    });
    group.bench_function("vertical_batch", |bench| {
        bench.iter(|| black_box(vertical.minterm_counts_batch(black_box(&level))))
    });
    let mut parallel = ParallelCounter::with_available_parallelism(&db);
    group.bench_function("parallel_batch", |bench| {
        bench.iter(|| black_box(parallel.minterm_counts_batch(black_box(&level))))
    });
    let mut vertical_par = ParallelVerticalIndex::build(&db);
    vertical_par.set_work_floor(0); // measure the pooled path
    group.bench_function("vertical_par_batch", |bench| {
        bench.iter(|| black_box(vertical_par.minterm_counts_batch(black_box(&level))))
    });
    group.finish();
}

/// The pool's fixed dispatch cost, isolated from counting work: an
/// empty-class batch (every candidate is a 0/1-item set answered inline
/// by the planner, so the pool is never engaged) against a same-size
/// batch of pairs with the work floor zeroed (every class fans out).
/// The gap is what one `run`-style fan-out costs end to end — the
/// number the `POOL_WORK_FLOOR` guard exists to amortise.
fn bench_pool_dispatch(c: &mut Criterion) {
    let db = DataMethod::Quest.generate(60, 1_000, 7);
    let mut group = c.benchmark_group("pool/dispatch_overhead");
    let trivial: Vec<Itemset> = (0..32u32).map(|i| Itemset::from_ids([i % 60])).collect();
    let pairs: Vec<Itemset> = (0..32u32)
        .map(|i| Itemset::from_ids([i % 59, i % 59 + 1]))
        .collect();
    let mut index = ParallelVerticalIndex::build(&db);
    index.set_work_floor(0);
    group.bench_function("trivial_classes_inline", |bench| {
        bench.iter(|| black_box(index.minterm_counts_batch(black_box(&trivial))))
    });
    group.bench_function("pair_classes_pooled", |bench| {
        bench.iter(|| black_box(index.minterm_counts_batch(black_box(&pairs))))
    });
    // The raw pool round-trip with no counting at all: a batch of
    // no-op jobs, one per worker.
    let pool = WorkerPool::global();
    let width = pool.n_workers().max(1);
    group.bench_function("empty_job_round_trip", |bench| {
        bench.iter(|| {
            let jobs: Vec<_> = (0..width).map(|i| move || black_box(i)).collect();
            black_box(pool.run_batch(jobs))
        })
    });
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    c.bench_function("stats/chi2_quantile_df4", |bench| {
        bench.iter(|| black_box(chi2_quantile(black_box(0.9), black_box(4))))
    });
    let table = ContingencyTable::from_counts(
        Itemset::from_ids([0, 1, 2]),
        vec![500, 80, 70, 40, 60, 30, 20, 200],
    );
    c.bench_function("stats/chi_squared_8cells", |bench| {
        bench.iter(|| black_box(&table).chi_squared())
    });
}

fn bench_candidates(c: &mut Criterion) {
    // A level of 500 pairs over 50 items, as the miners see it.
    let mut level: HashSet<Itemset> = HashSet::new();
    for i in 0..50u32 {
        for j in (i + 1)..50 {
            if (i + j) % 3 != 0 {
                level.insert(Itemset::from_ids([i, j]));
            }
        }
    }
    for size in [100usize, 400] {
        let subset: HashSet<Itemset> = level.iter().take(size).cloned().collect();
        c.bench_with_input(
            BenchmarkId::new("candidate/apriori_gen", size),
            &subset,
            |bench, s| bench.iter(|| black_box(candidate::apriori_gen(black_box(s)))),
        );
    }
}

criterion_group!(
    benches,
    bench_tidset,
    bench_counting,
    bench_counting_batch,
    bench_pool_dispatch,
    bench_stats,
    bench_candidates
);
criterion_main!(benches);
