//! Criterion benchmarks for whole mining runs: the four paper algorithms
//! on both data methods, plus the horizontal-vs-vertical counting
//! ablation on a full run.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use ccs_bench::{paper_mining_params, DataMethod};
use ccs_constraints::{AttributeTable, Constraint, ConstraintSet};
use ccs_core::{
    run_bms, Algorithm, CorrelationQuery, CountingStrategy, MineRequest, MiningSession,
};
use ccs_itemset::{HorizontalCounter, ParallelCounter, VerticalCounter};

const N_ITEMS: u32 = 30;
const N_BASKETS: usize = 1_000;

fn query(constraints: ConstraintSet) -> CorrelationQuery {
    CorrelationQuery {
        params: paper_mining_params(),
        constraints,
    }
}

fn bench_algorithms(c: &mut Criterion) {
    let attrs = AttributeTable::with_identity_prices(N_ITEMS);
    for method in DataMethod::both() {
        let db = method.generate(N_ITEMS, N_BASKETS, 11);
        let mut group = c.benchmark_group(format!("mine/{}", method.label()));
        group.sample_size(10);
        // Anti-monotone + succinct constraint at 50% selectivity — the
        // Figure 1 configuration.
        let cs = ConstraintSet::new().and(Constraint::max_le("price", N_ITEMS as f64 / 2.0));
        for algo in Algorithm::paper_algorithms() {
            group.bench_with_input(
                BenchmarkId::new("am_succinct", algo.name()),
                &algo,
                |b, &a| {
                    b.iter(|| {
                        MiningSession::new(black_box(&db), &attrs)
                            .mine(
                                &query(cs.clone()),
                                &MineRequest::new(a).strategy(CountingStrategy::Horizontal),
                            )
                            .unwrap()
                    })
                },
            );
        }
        // Monotone + succinct — the Figure 5/7 configuration.
        let cs_m = ConstraintSet::new().and(Constraint::min_le("price", N_ITEMS as f64 / 2.0));
        for algo in Algorithm::paper_algorithms() {
            group.bench_with_input(
                BenchmarkId::new("mono_succinct", algo.name()),
                &algo,
                |b, &a| {
                    b.iter(|| {
                        MiningSession::new(black_box(&db), &attrs)
                            .mine(
                                &query(cs_m.clone()),
                                &MineRequest::new(a).strategy(CountingStrategy::Horizontal),
                            )
                            .unwrap()
                    })
                },
            );
        }
        group.finish();
    }
}

fn bench_counting_ablation(c: &mut Criterion) {
    let attrs = AttributeTable::with_identity_prices(N_ITEMS);
    let db = DataMethod::Quest.generate(N_ITEMS, N_BASKETS, 11);
    let cs = ConstraintSet::new().and(Constraint::max_le("price", N_ITEMS as f64 / 2.0));
    let mut group = c.benchmark_group("mine/counting_ablation_bms_plus_plus");
    group.sample_size(10);
    for (name, strategy) in [
        ("horizontal", CountingStrategy::Horizontal),
        ("vertical", CountingStrategy::Vertical),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                MiningSession::new(black_box(&db), &attrs)
                    .mine(
                        &query(cs.clone()),
                        &MineRequest::new(Algorithm::BmsPlusPlus).strategy(strategy),
                    )
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_bms_strategies(c: &mut Criterion) {
    // The baseline BMS sweep — level-batched through the engine in every
    // configuration — under each counting substrate.
    let db = DataMethod::Quest.generate(N_ITEMS, N_BASKETS, 11);
    let params = paper_mining_params();
    let mut group = c.benchmark_group("mine/bms_strategies");
    group.sample_size(10);
    group.bench_function("horizontal", |b| {
        b.iter(|| {
            let mut counter = HorizontalCounter::new(black_box(&db));
            run_bms(&db, &params, &mut counter)
        })
    });
    group.bench_function("vertical", |b| {
        b.iter(|| {
            let mut counter = VerticalCounter::new(black_box(&db));
            run_bms(&db, &params, &mut counter)
        })
    });
    group.bench_function("parallel", |b| {
        b.iter(|| {
            let mut counter = ParallelCounter::with_available_parallelism(black_box(&db));
            run_bms(&db, &params, &mut counter)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithms,
    bench_counting_ablation,
    bench_bms_strategies
);
criterion_main!(benches);
