//! Criterion benchmarks for whole mining runs: the four paper algorithms
//! on both data methods, plus the horizontal-vs-vertical counting
//! ablation on a full run.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use ccs_bench::{paper_mining_params, DataMethod};
use ccs_constraints::{AttributeTable, Constraint, ConstraintSet};
use ccs_core::{
    mine_with_strategy, run_bms, run_bms_batched, Algorithm, CorrelationQuery, CountingStrategy,
};
use ccs_itemset::HorizontalCounter;

const N_ITEMS: u32 = 30;
const N_BASKETS: usize = 1_000;

fn query(constraints: ConstraintSet) -> CorrelationQuery {
    CorrelationQuery { params: paper_mining_params(), constraints }
}

fn bench_algorithms(c: &mut Criterion) {
    let attrs = AttributeTable::with_identity_prices(N_ITEMS);
    for method in DataMethod::both() {
        let db = method.generate(N_ITEMS, N_BASKETS, 11);
        let mut group = c.benchmark_group(format!("mine/{}", method.label()));
        group.sample_size(10);
        // Anti-monotone + succinct constraint at 50% selectivity — the
        // Figure 1 configuration.
        let cs = ConstraintSet::new().and(Constraint::max_le("price", N_ITEMS as f64 / 2.0));
        for algo in Algorithm::paper_algorithms() {
            group.bench_with_input(BenchmarkId::new("am_succinct", algo.name()), &algo, |b, &a| {
                b.iter(|| {
                    mine_with_strategy(
                        black_box(&db),
                        &attrs,
                        &query(cs.clone()),
                        a,
                        CountingStrategy::Horizontal,
                    )
                    .unwrap()
                })
            });
        }
        // Monotone + succinct — the Figure 5/7 configuration.
        let cs_m = ConstraintSet::new().and(Constraint::min_le("price", N_ITEMS as f64 / 2.0));
        for algo in Algorithm::paper_algorithms() {
            group.bench_with_input(BenchmarkId::new("mono_succinct", algo.name()), &algo, |b, &a| {
                b.iter(|| {
                    mine_with_strategy(
                        black_box(&db),
                        &attrs,
                        &query(cs_m.clone()),
                        a,
                        CountingStrategy::Horizontal,
                    )
                    .unwrap()
                })
            });
        }
        group.finish();
    }
}

fn bench_counting_ablation(c: &mut Criterion) {
    let attrs = AttributeTable::with_identity_prices(N_ITEMS);
    let db = DataMethod::Quest.generate(N_ITEMS, N_BASKETS, 11);
    let cs = ConstraintSet::new().and(Constraint::max_le("price", N_ITEMS as f64 / 2.0));
    let mut group = c.benchmark_group("mine/counting_ablation_bms_plus_plus");
    group.sample_size(10);
    for (name, strategy) in [
        ("horizontal", CountingStrategy::Horizontal),
        ("vertical", CountingStrategy::Vertical),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                mine_with_strategy(
                    black_box(&db),
                    &attrs,
                    &query(cs.clone()),
                    Algorithm::BmsPlusPlus,
                    strategy,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_scan_batching(c: &mut Criterion) {
    // Per-set scans (the paper's cost model) vs one scan per level (the
    // classic Apriori engine) on the identical BMS sweep.
    let db = DataMethod::Quest.generate(N_ITEMS, N_BASKETS, 11);
    let params = paper_mining_params();
    let mut group = c.benchmark_group("mine/scan_batching_bms");
    group.sample_size(10);
    group.bench_function("per_set", |b| {
        b.iter(|| {
            let mut counter = HorizontalCounter::new(black_box(&db));
            run_bms(&db, &params, &mut counter)
        })
    });
    group.bench_function("per_level", |b| {
        b.iter(|| run_bms_batched(black_box(&db), &params))
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_counting_ablation, bench_scan_batching);
criterion_main!(benches);
