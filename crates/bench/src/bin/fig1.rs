//! Regenerates Figure 1 (a, b) of the paper. See `ccs_bench::figures`.

fn main() {
    let args = ccs_bench::HarnessArgs::parse();
    ccs_bench::figures::Figure::Fig1.run_and_save(&args);
}
