//! Regenerates Figure 2 (a, b) of the paper. See `ccs_bench::figures`.

fn main() {
    let args = ccs_bench::HarnessArgs::parse();
    ccs_bench::figures::Figure::Fig2.run_and_save(&args);
}
