//! Regenerates Figure 6 (a, b) of the paper. See `ccs_bench::figures`.

fn main() {
    let args = ccs_bench::HarnessArgs::parse();
    ccs_bench::figures::Figure::Fig6.run_and_save(&args);
}
