//! Regenerates every evaluation figure of the paper in sequence.

fn main() {
    let args = ccs_bench::HarnessArgs::parse();
    for fig in ccs_bench::figures::Figure::ALL {
        fig.run_and_save(&args);
    }
}
