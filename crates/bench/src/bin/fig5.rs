//! Regenerates Figure 5 (a, b) of the paper. See `ccs_bench::figures`.

fn main() {
    let args = ccs_bench::HarnessArgs::parse();
    ccs_bench::figures::Figure::Fig5.run_and_save(&args);
}
