//! Gathers `results/figN.csv` files into `results/REPORT.md`.
//!
//! ```text
//! cargo run --release -p ccs-bench --bin report [-- --out <dir>]
//! ```

use std::path::PathBuf;

use ccs_bench::report::{parse_csv, render_markdown};

fn main() {
    let mut dir = PathBuf::from("results");
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--out") {
        if let Some(d) = args.get(i + 1) {
            dir = PathBuf::from(d);
        }
    }
    let mut doc = String::from(
        "# Harness report\n\nGenerated from the CSVs in this directory by \
         `cargo run -p ccs-bench --bin report`.\n\n",
    );
    let mut found = 0;
    for n in 1..=8 {
        let path = dir.join(format!("fig{n}.csv"));
        if !path.exists() {
            continue;
        }
        match parse_csv(&path) {
            Ok(rows) => {
                doc.push_str(&render_markdown(&rows));
                found += 1;
            }
            Err(e) => eprintln!("skipping {}: {e}", path.display()),
        }
    }
    if found == 0 {
        eprintln!(
            "no figN.csv files under {}; run the fig binaries first",
            dir.display()
        );
        std::process::exit(2);
    }
    let out = dir.join("REPORT.md");
    std::fs::write(&out, doc).expect("write report");
    eprintln!("wrote {} ({found} figures)", out.display());
}
