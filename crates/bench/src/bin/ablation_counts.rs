//! The §3.3 cost-model validation: prints the number of sets each of
//! the four algorithms considers (`|BMS+|`, `|BMS++|`, `|BMS*|`,
//! `|BMS**|`) for each constraint class, so the analysis's orderings can
//! be checked directly:
//!
//! * `|BMS++| ≤ |BMS+|` always (up to the bounded verification tables),
//! * with anti-monotone constraints, all four compute the same answers
//!   and BMS++ considers the fewest sets,
//! * with monotone constraints, `|BMS*|` vs `|BMS**|` flips with
//!   selectivity.
//!
//! ```text
//! cargo run --release -p ccs-bench --bin ablation_counts [-- --paper]
//! ```

use ccs_bench::{measure, DataMethod, HarnessArgs};
use ccs_constraints::selectivity::threshold_for_le_selectivity;
use ccs_constraints::{AttributeTable, Constraint, ConstraintSet};
use ccs_core::Algorithm;

fn main() {
    let args = HarnessArgs::parse();
    let n_items = args.scale.n_items;
    let baskets = args.scale.fixed_baskets;
    let attrs = AttributeTable::with_identity_prices(n_items);
    let db = DataMethod::Rules.generate(n_items, baskets, args.seed);

    let classes: Vec<(&str, f64, Box<dyn Fn(f64) -> ConstraintSet>)> = vec![
        (
            "anti-monotone + succinct: max(price) <= v",
            0.0,
            Box::new({
                let attrs = attrs.clone();
                move |sel| {
                    let v = threshold_for_le_selectivity(&attrs, "price", sel);
                    ConstraintSet::new().and(Constraint::max_le("price", v))
                }
            }),
        ),
        (
            "anti-monotone: sum(price) <= maxsum",
            0.0,
            Box::new(move |sel| {
                ConstraintSet::new().and(Constraint::sum_le("price", sel * 2.0 * n_items as f64))
            }),
        ),
        (
            "monotone + succinct: min(price) <= v",
            0.0,
            Box::new({
                let attrs = attrs.clone();
                move |sel| {
                    let v = threshold_for_le_selectivity(&attrs, "price", sel);
                    ConstraintSet::new().and(Constraint::min_le("price", v))
                }
            }),
        ),
    ];

    println!("cost-model validation on rule-planted data ({n_items} items, {baskets} baskets)\n");
    for (label, _, make) in &classes {
        println!("constraint class: {label}");
        println!(
            "{:>11} {:>10} {:>10} {:>10} {:>10}",
            "selectivity", "|BMS+|", "|BMS++|", "|BMS*|", "|BMS**|"
        );
        for &sel in &[0.2, 0.5, 0.8] {
            let constraints = make(sel);
            let counts: Vec<u64> = Algorithm::paper_algorithms()
                .iter()
                .map(|&a| {
                    measure(
                        "ablation",
                        DataMethod::Rules,
                        "sel",
                        sel,
                        &db,
                        &attrs,
                        &constraints,
                        a,
                    )
                    .tables
                })
                .collect();
            println!(
                "{:>11} {:>10} {:>10} {:>10} {:>10}",
                sel, counts[0], counts[1], counts[2], counts[3]
            );
        }
        println!();
    }
}
