//! Counting-substrate throughput baseline.
//!
//! Times one miner level — 500 candidate 4-itemsets, every 4-subset of
//! a dense 12-item module as `apriori_gen` produces over correlated
//! item clusters, over a 10 000-basket Quest database — through every
//! counting strategy, per candidate and level-batched, and writes
//! `results/BENCH_counting.json` with candidates/sec and tables/sec per
//! strategy. The headline number is the prefix-sharing vertical batch's
//! speedup over per-candidate vertical counting.
//!
//! ```text
//! cargo run --release -p ccs-bench --bin counting_baseline [-- --out <dir>]
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use ccs_bench::DataMethod;
use ccs_constraints::{AttributeTable, Constraint, ConstraintSet};
use ccs_core::{
    Algorithm, CheckpointCadence, CheckpointPolicy, CorrelationQuery, CountingStrategy,
    GuardLimits, MineRequest, MiningParams, MiningSession, RunGuard,
};
use ccs_itemset::{
    FpTreeCounter, HorizontalCounter, Itemset, MintermCounter, ParallelCounter,
    ParallelVerticalCounter, ParallelVerticalIndex, ShardedVerticalCounter, ShardedVerticalIndex,
    TransactionDb, VerticalCounter,
};
use ccs_stats::{chi2_quantile, ContingencyTable, Measure, MeasureContext};

const N_ITEMS: u32 = 60;
const N_BASKETS: usize = 10_000;
const N_CANDIDATES: usize = 500;
const CANDIDATE_SIZE: usize = 4;
/// Dense-module width: C(12, 4) = 495 subsets, so 500 candidates span
/// one full module plus the start of a second.
const POOL: u32 = 12;
const REPS: usize = 7;

/// The sparse companion shape: the same transaction count spread over
/// 4× the items, so each item's tid-set is ~4× emptier and whole
/// superblocks go dark — the regime the population-hint skip targets.
const SPARSE_ITEMS: u32 = 240;
const SPARSE_CANDIDATES: usize = 200;

/// The dense low-cardinality companion shape: a small universe where
/// every basket is a union of a few correlated modules, so the whole
/// database collapses into a handful of distinct profiles. Vertical
/// counting still pays per *transaction* (bitmap words scale with
/// baskets); the FP-tree pays per *distinct profile*, which is where
/// pattern growth beats candidate intersection.
const DENSE_LC_ITEMS: u32 = 28;
const DENSE_LC_BASKETS: usize = 40_000;
const DENSE_LC_CANDIDATES: usize = 400;

/// Deterministic profile-clustered baskets: three overlapping modules
/// switched by small moduli plus one rotating tail item — 32 distinct
/// basket shapes across 40 000 transactions, avg length ≈ 14 of 28
/// items (density ≈ 0.5, exactly the shape `Auto` routes to `fp-tree`).
fn dense_low_cardinality_db() -> TransactionDb {
    let mut txns = Vec::with_capacity(DENSE_LC_BASKETS);
    for i in 0..DENSE_LC_BASKETS as u32 {
        let mut t: Vec<u32> = Vec::new();
        if i % 2 == 0 {
            t.extend(0..10);
        }
        if i % 3 == 0 {
            t.extend(8..18);
        }
        if i % 5 != 0 {
            t.extend(16..24);
        }
        t.push(24 + i % 4);
        t.sort_unstable();
        t.dedup();
        txns.push(t);
    }
    TransactionDb::from_ids(DENSE_LC_ITEMS, txns)
}

/// One dense miner level: all `k`-subsets of consecutive `pool`-item
/// windows until `n` candidates exist. This is the shape `apriori_gen`
/// produces over a correlated item module — every prefix class is full,
/// every suffix item recurs across many members — i.e. exactly the
/// NOTSIG-heavy regime level batching targets.
fn dense_level(n_items: u32, n: usize, k: usize, pool: u32) -> Vec<Itemset> {
    let mut sets: Vec<Itemset> = Vec::with_capacity(n);
    let mut base = 0u32;
    'outer: while sets.len() < n {
        assert!(
            base + pool <= n_items,
            "not enough items for {n} dense candidates"
        );
        for mask in 0u32..(1 << pool) {
            if mask.count_ones() as usize == k {
                sets.push(Itemset::from_ids(
                    (0..pool).filter(|b| mask >> b & 1 == 1).map(|b| base + b),
                ));
                if sets.len() == n {
                    break 'outer;
                }
            }
        }
        base += pool;
    }
    sets.sort_unstable();
    sets
}

/// Runs `level_pass` `REPS` times and returns the median wall-clock
/// seconds of one pass, with the counter's table delta across all reps.
fn time_level<C: MintermCounter>(
    counter: &mut C,
    level: &[Itemset],
    mut level_pass: impl FnMut(&mut C, &[Itemset]),
) -> (f64, u64) {
    let base_tables = counter.stats().tables_built;
    level_pass(counter, level); // warm-up (vertical index, page cache)
    let mut secs: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            level_pass(counter, level);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    secs.sort_unstable_by(f64::total_cmp);
    let tables = counter.stats().tables_built - base_tables;
    (secs[REPS / 2], tables / (REPS as u64 + 1))
}

/// One durability data point: a full governed BMS++ mine, median of
/// `REPS` runs, with the candidate throughput the checkpoint layer must
/// not depress.
struct OverheadPoint {
    seconds: f64,
    candidates: u64,
    stamps_per_run: u64,
}

impl OverheadPoint {
    fn candidates_per_sec(&self) -> f64 {
        self.candidates as f64 / self.seconds
    }
}

/// Times a complete mining run (armed guard both sides, so the only
/// variable is the durability layer) with an optional checkpoint policy
/// committing atomically to `ckpt_path` at every level.
fn time_mine(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    ckpt_path: Option<&Path>,
) -> OverheadPoint {
    let run = || {
        let mut request =
            MineRequest::new(Algorithm::BmsPlusPlus).guard(RunGuard::new(GuardLimits::default()));
        if let Some(path) = ckpt_path {
            request =
                request.checkpoint(CheckpointPolicy::file(path, CheckpointCadence::EveryLevel));
        }
        let outcome = MiningSession::new(db, attrs)
            .mine(query, &request)
            .expect("benchmark mine");
        assert!(outcome.result.completion.is_complete());
        let stamps = outcome.checkpoint.map_or(0, |r| {
            assert!(r.error.is_none(), "checkpoint write failed: {:?}", r.error);
            r.written
        });
        (outcome.result.metrics.candidates_generated, stamps)
    };
    let (candidates, stamps_per_run) = run(); // warm-up (page cache, pool)
    let mut secs: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(run());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    secs.sort_unstable_by(f64::total_cmp);
    OverheadPoint {
        seconds: secs[REPS / 2],
        candidates,
        stamps_per_run,
    }
}

/// How many sweeps over the prebuilt tables one verdict timing sample
/// runs: a single sweep is microseconds, so the inner loop stretches
/// each sample well past timer granularity.
const VERDICT_PASSES: usize = 200;

/// Median seconds for `VERDICT_PASSES` sweeps of `judge` over the
/// prebuilt tables — counting cost is paid once, outside the timed
/// region, so the two spellings differ only in how the verdict is
/// reached.
fn time_verdicts(
    tables: &[ContingencyTable],
    mut judge: impl FnMut(&ContingencyTable) -> bool,
) -> f64 {
    for t in tables {
        std::hint::black_box(judge(t)); // warm-up
    }
    let mut secs: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..VERDICT_PASSES {
                for t in tables {
                    std::hint::black_box(judge(t));
                }
            }
            t0.elapsed().as_secs_f64()
        })
        .collect();
    secs.sort_unstable_by(f64::total_cmp);
    secs[REPS / 2]
}

struct Row {
    name: &'static str,
    seconds: f64,
    tables_per_pass: u64,
    candidates: usize,
}

impl Row {
    fn candidates_per_sec(&self) -> f64 {
        self.candidates as f64 / self.seconds
    }

    fn tables_per_sec(&self) -> f64 {
        self.tables_per_pass as f64 / self.seconds
    }
}

fn main() {
    let mut out_dir = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            out_dir = PathBuf::from(args.next().expect("--out needs a directory"));
        }
    }

    let db = DataMethod::Quest.generate(N_ITEMS, N_BASKETS, 7);
    let level = dense_level(N_ITEMS, N_CANDIDATES, CANDIDATE_SIZE, POOL);
    assert_eq!(level.len(), N_CANDIDATES);

    let single = |counter: &mut dyn MintermCounter, level: &[Itemset]| {
        for set in level {
            std::hint::black_box(counter.minterm_counts(set));
        }
    };
    let batch = |counter: &mut dyn MintermCounter, level: &[Itemset]| {
        std::hint::black_box(counter.minterm_counts_batch(level));
    };

    let mut rows: Vec<Row> = Vec::new();
    {
        let mut c = HorizontalCounter::new(&db);
        let (s, t) = time_level(&mut c, &level, |c, l| single(c, l));
        rows.push(Row {
            name: "horizontal/per_candidate",
            seconds: s,
            tables_per_pass: t,
            candidates: N_CANDIDATES,
        });
        let (s, t) = time_level(&mut c, &level, |c, l| batch(c, l));
        rows.push(Row {
            name: "horizontal/batch",
            seconds: s,
            tables_per_pass: t,
            candidates: N_CANDIDATES,
        });
    }
    {
        let mut c = VerticalCounter::new(&db);
        let (s, t) = time_level(&mut c, &level, |c, l| single(c, l));
        rows.push(Row {
            name: "vertical/per_candidate",
            seconds: s,
            tables_per_pass: t,
            candidates: N_CANDIDATES,
        });
        let (s, t) = time_level(&mut c, &level, |c, l| batch(c, l));
        rows.push(Row {
            name: "vertical/batch",
            seconds: s,
            tables_per_pass: t,
            candidates: N_CANDIDATES,
        });
    }
    {
        let mut c = ParallelCounter::with_available_parallelism(&db);
        let (s, t) = time_level(&mut c, &level, |c, l| single(c, l));
        rows.push(Row {
            name: "parallel/per_candidate",
            seconds: s,
            tables_per_pass: t,
            candidates: N_CANDIDATES,
        });
        let (s, t) = time_level(&mut c, &level, |c, l| batch(c, l));
        rows.push(Row {
            name: "parallel/batch",
            seconds: s,
            tables_per_pass: t,
            candidates: N_CANDIDATES,
        });
    }
    {
        let mut c = ParallelVerticalCounter::new(&db);
        let (s, t) = time_level(&mut c, &level, |c, l| single(c, l));
        rows.push(Row {
            name: "vertical_par/per_candidate",
            seconds: s,
            tables_per_pass: t,
            candidates: N_CANDIDATES,
        });
        let (s, t) = time_level(&mut c, &level, |c, l| batch(c, l));
        rows.push(Row {
            name: "vertical_par/batch",
            seconds: s,
            tables_per_pass: t,
            candidates: N_CANDIDATES,
        });
    }
    {
        let mut c = ShardedVerticalCounter::new(&db);
        let (s, t) = time_level(&mut c, &level, |c, l| single(c, l));
        rows.push(Row {
            name: "sharded/per_candidate",
            seconds: s,
            tables_per_pass: t,
            candidates: N_CANDIDATES,
        });
        let (s, t) = time_level(&mut c, &level, |c, l| batch(c, l));
        rows.push(Row {
            name: "sharded/batch",
            seconds: s,
            tables_per_pass: t,
            candidates: N_CANDIDATES,
        });
    }
    {
        let mut c = FpTreeCounter::new(&db);
        let (s, t) = time_level(&mut c, &level, |c, l| single(c, l));
        rows.push(Row {
            name: "fptree/per_candidate",
            seconds: s,
            tables_per_pass: t,
            candidates: N_CANDIDATES,
        });
        let (s, t) = time_level(&mut c, &level, |c, l| batch(c, l));
        rows.push(Row {
            name: "fptree/batch",
            seconds: s,
            tables_per_pass: t,
            candidates: N_CANDIDATES,
        });
    }

    // Pool thread-scaling of the parallel-vertical batch path. On a
    // single-core host every worker count serialises onto one CPU, so
    // the curve is flat there — `available_parallelism` is recorded in
    // the JSON so readers can tell a flat machine from a flat algorithm.
    struct ScalePoint {
        workers: usize,
        seconds: f64,
    }
    let mut scaling: Vec<ScalePoint> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let mut index = ParallelVerticalIndex::build_with_workers(&db, workers);
        index.set_work_floor(0); // measure the pooled path at every width
        let pass = |index: &mut ParallelVerticalIndex, level: &[Itemset]| {
            std::hint::black_box(index.minterm_counts_batch(level));
        };
        pass(&mut index, &level); // warm-up
        let mut secs: Vec<f64> = (0..REPS)
            .map(|_| {
                let t0 = Instant::now();
                pass(&mut index, &level);
                t0.elapsed().as_secs_f64()
            })
            .collect();
        secs.sort_unstable_by(f64::total_cmp);
        scaling.push(ScalePoint {
            workers,
            seconds: secs[REPS / 2],
        });
    }

    // Shard-scaling of the sharded batch path at the global pool's
    // width: shard counts sweep past the worker count so the curve also
    // shows the merge overhead of many-small-shards.
    let mut shard_scaling: Vec<ScalePoint> = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let mut index = ShardedVerticalIndex::build_with_shards(&db, shards);
        index.set_work_floor(0); // measure the pooled path at every width
        let pass = |index: &mut ShardedVerticalIndex, level: &[Itemset]| {
            std::hint::black_box(index.minterm_counts_batch(level));
        };
        pass(&mut index, &level); // warm-up
        let mut secs: Vec<f64> = (0..REPS)
            .map(|_| {
                let t0 = Instant::now();
                pass(&mut index, &level);
                t0.elapsed().as_secs_f64()
            })
            .collect();
        secs.sort_unstable_by(f64::total_cmp);
        shard_scaling.push(ScalePoint {
            workers: shards,
            seconds: secs[REPS / 2],
        });
    }

    // The sparse companion shape, batch paths only: per-item tid-sets
    // are ~4× emptier here, so the superblock population-hint skip does
    // real work instead of merely not hurting.
    let sparse_db = DataMethod::Quest.generate(SPARSE_ITEMS, N_BASKETS, 7);
    let sparse_level = dense_level(SPARSE_ITEMS, SPARSE_CANDIDATES, CANDIDATE_SIZE, POOL);
    let mut sparse_rows: Vec<Row> = Vec::new();
    {
        let mut c = VerticalCounter::new(&sparse_db);
        let (s, t) = time_level(&mut c, &sparse_level, |c, l| batch(c, l));
        sparse_rows.push(Row {
            name: "vertical/batch",
            seconds: s,
            tables_per_pass: t,
            candidates: SPARSE_CANDIDATES,
        });
        let mut c = ParallelVerticalCounter::new(&sparse_db);
        let (s, t) = time_level(&mut c, &sparse_level, |c, l| batch(c, l));
        sparse_rows.push(Row {
            name: "vertical_par/batch",
            seconds: s,
            tables_per_pass: t,
            candidates: SPARSE_CANDIDATES,
        });
        let mut c = ShardedVerticalCounter::new(&sparse_db);
        let (s, t) = time_level(&mut c, &sparse_level, |c, l| batch(c, l));
        sparse_rows.push(Row {
            name: "sharded/batch",
            seconds: s,
            tables_per_pass: t,
            candidates: SPARSE_CANDIDATES,
        });
    }

    // The dense low-cardinality shape, batch paths: the FP-tree's home
    // turf. Candidates are drawn from one 12-item module, so the
    // projection memoizer amortizes to one conditional projection per
    // header item across the whole level.
    let lc_db = dense_low_cardinality_db();
    let lc_level = dense_level(DENSE_LC_ITEMS, DENSE_LC_CANDIDATES, CANDIDATE_SIZE, POOL);
    let mut lc_rows: Vec<Row> = Vec::new();
    {
        let mut c = VerticalCounter::new(&lc_db);
        let (s, t) = time_level(&mut c, &lc_level, |c, l| batch(c, l));
        lc_rows.push(Row {
            name: "vertical/batch",
            seconds: s,
            tables_per_pass: t,
            candidates: DENSE_LC_CANDIDATES,
        });
        let mut c = ParallelVerticalCounter::new(&lc_db);
        let (s, t) = time_level(&mut c, &lc_level, |c, l| batch(c, l));
        lc_rows.push(Row {
            name: "vertical_par/batch",
            seconds: s,
            tables_per_pass: t,
            candidates: DENSE_LC_CANDIDATES,
        });
        let mut c = FpTreeCounter::new(&lc_db);
        let (s, t) = time_level(&mut c, &lc_level, |c, l| single(c, l));
        lc_rows.push(Row {
            name: "fptree/per_candidate",
            seconds: s,
            tables_per_pass: t,
            candidates: DENSE_LC_CANDIDATES,
        });
        let (s, t) = time_level(&mut c, &lc_level, |c, l| batch(c, l));
        lc_rows.push(Row {
            name: "fptree/batch",
            seconds: s,
            tables_per_pass: t,
            candidates: DENSE_LC_CANDIDATES,
        });
    }

    // Durability overhead: a complete governed BMS++ mine on the dense
    // database, with and without every-level checkpointing into a real
    // file (atomic temp + fsync + rename per stamp). The guard is armed
    // on both sides so the only variable is the persistence layer.
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let attrs = AttributeTable::with_identity_prices(N_ITEMS);
    let mine_query = CorrelationQuery {
        params: MiningParams::paper(),
        constraints: ConstraintSet::new().and(Constraint::max_le("price", f64::from(N_ITEMS / 2))),
    };
    // ccs-lint: allow(checkpoint-io-confined, reason = "bench measures checkpoint overhead through the public CheckpointPolicy API; persist.rs still does all I/O")
    let ckpt_path = out_dir.join("bench_checkpoint.ccs");
    let no_ckpt = time_mine(&db, &attrs, &mine_query, None);
    let every_level = time_mine(&db, &attrs, &mine_query, Some(&ckpt_path));
    let _ = std::fs::remove_file(&ckpt_path);
    let overhead_pct = (every_level.seconds / no_ckpt.seconds - 1.0) * 100.0;

    // Verdict-dispatch overhead: every miner now judges correlation
    // through `MeasureContext` (enum dispatch + precomputed critical
    // value) instead of calling `chi_squared` directly. Both spellings
    // sweep the same 500 prebuilt tables, so the delta is pure dispatch
    // cost; the ratio-measure rows give the absolute scale of the
    // all-confidence and bond statistics for comparison.
    let tables: Vec<ContingencyTable> = {
        let mut c = VerticalCounter::new(&db);
        level
            .iter()
            .map(|set| ContingencyTable::build(&mut c, set))
            .collect()
    };
    // ccs-lint: allow(measure-verdict-confined, reason = "bench baseline: the pre-measure-layer direct spelling this row compares dispatch against")
    let direct_crit = chi2_quantile(0.9, 1);
    // ccs-lint: allow(measure-verdict-confined, reason = "bench baseline: the pre-measure-layer direct spelling this row compares dispatch against")
    let direct_secs = time_verdicts(&tables, |t| t.chi_squared() >= direct_crit);
    let chi2_ctx = MeasureContext::new(Measure::Chi2, 0.9).expect("chi2 context");
    let dispatch_secs = time_verdicts(&tables, |t| chi2_ctx.verdict(t));
    let verdict_overhead_pct = (dispatch_secs / direct_secs - 1.0) * 100.0;
    let allconf_ctx =
        MeasureContext::new(Measure::AllConfidence, 0.5).expect("all-confidence context");
    let allconf_secs = time_verdicts(&tables, |t| allconf_ctx.verdict(t));
    let bond_ctx = MeasureContext::new(Measure::Bond, 0.1).expect("bond context");
    let bond_secs = time_verdicts(&tables, |t| bond_ctx.verdict(t));

    let vertical_single = rows
        .iter()
        .find(|r| r.name == "vertical/per_candidate")
        .unwrap();
    let vertical_batch = rows.iter().find(|r| r.name == "vertical/batch").unwrap();
    let speedup = vertical_single.seconds / vertical_batch.seconds;
    let vertical_par_batch = rows
        .iter()
        .find(|r| r.name == "vertical_par/batch")
        .unwrap();
    let par_speedup = vertical_batch.seconds / vertical_par_batch.seconds;
    let lc_vertical_batch = lc_rows.iter().find(|r| r.name == "vertical/batch").unwrap();
    let lc_fptree_batch = lc_rows.iter().find(|r| r.name == "fptree/batch").unwrap();
    let fptree_speedup = lc_vertical_batch.seconds / lc_fptree_batch.seconds;
    let available = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(1);

    // Build provenance: the ISA surface this binary was actually
    // compiled for (cfg! probes are compile-time truth, whatever mix of
    // .cargo/config.toml and RUSTFLAGS produced it) plus the RUSTFLAGS
    // environment as seen at run time — together they make cross-box
    // comparisons (the flat 1-CPU thread_scaling caveat) self-describing.
    let target_features: Vec<&str> = [
        ("sse4.2", cfg!(target_feature = "sse4.2")),
        ("popcnt", cfg!(target_feature = "popcnt")),
        ("avx", cfg!(target_feature = "avx")),
        ("avx2", cfg!(target_feature = "avx2")),
        ("avx512f", cfg!(target_feature = "avx512f")),
    ]
    .iter()
    .filter(|(_, enabled)| *enabled)
    .map(|(name, _)| *name)
    .collect();
    let rustflags = std::env::var("RUSTFLAGS")
        .unwrap_or_else(|_| String::from("(unset; .cargo/config.toml: -C target-cpu=x86-64-v2)"));
    // What `Auto` actually picks for each bench shape on this host.
    let routing = [
        ("dense", CountingStrategy::Auto.resolve(&db, None, None)),
        (
            "sparse",
            CountingStrategy::Auto.resolve(&sparse_db, None, None),
        ),
        (
            "dense_low_cardinality",
            CountingStrategy::Auto.resolve(&lc_db, None, None),
        ),
    ];

    println!(
        "counting baseline: {N_CANDIDATES} candidates of size {CANDIDATE_SIZE}, \
         {N_BASKETS} baskets, {N_ITEMS} items (median of {REPS} passes)"
    );
    println!(
        "{:>26} {:>12} {:>16} {:>14}",
        "strategy", "seconds", "candidates/sec", "tables/sec"
    );
    for r in &rows {
        println!(
            "{:>26} {:>12.6} {:>16.0} {:>14.0}",
            r.name,
            r.seconds,
            r.candidates_per_sec(),
            r.tables_per_sec()
        );
    }
    println!("\nvertical batch speedup over per-candidate: {speedup:.2}x");
    println!("vertical_par batch speedup over vertical batch: {par_speedup:.2}x");
    println!("thread scaling (vertical_par/batch, forced pooled path):");
    for p in &scaling {
        println!(
            "  {} worker(s): {:.6}s ({:.2}x vs 1 worker)",
            p.workers,
            p.seconds,
            scaling[0].seconds / p.seconds
        );
    }
    println!("shard scaling (sharded/batch, global pool):");
    for p in &shard_scaling {
        println!(
            "  {} shard(s): {:.6}s ({:.2}x vs 1 shard)",
            p.workers,
            p.seconds,
            shard_scaling[0].seconds / p.seconds
        );
    }
    println!(
        "sparse shape ({SPARSE_ITEMS} items, {N_BASKETS} baskets, \
         {SPARSE_CANDIDATES} candidates):"
    );
    for r in &sparse_rows {
        println!(
            "{:>26} {:>12.6} {:>16.0} {:>14.0}",
            r.name,
            r.seconds,
            r.candidates_per_sec(),
            r.tables_per_sec()
        );
    }
    println!(
        "dense low-cardinality shape ({DENSE_LC_ITEMS} items, {DENSE_LC_BASKETS} baskets, \
         {DENSE_LC_CANDIDATES} candidates, ~32 distinct profiles):"
    );
    for r in &lc_rows {
        println!(
            "{:>26} {:>12.6} {:>16.0} {:>14.0}",
            r.name,
            r.seconds,
            r.candidates_per_sec(),
            r.tables_per_sec()
        );
    }
    println!(
        "fptree batch speedup over vertical batch (dense low-cardinality): {fptree_speedup:.2}x"
    );
    println!("auto routing on this host:");
    for (shape, strategy) in &routing {
        println!("  {shape}: {strategy}");
    }
    println!("checkpoint overhead (full BMS++ mine, armed guard both sides):");
    println!(
        "  no checkpoint: {:.6}s ({:.0} cand/s)",
        no_ckpt.seconds,
        no_ckpt.candidates_per_sec()
    );
    println!(
        "  every level ({} stamps/run): {:.6}s ({:.0} cand/s, {:+.1}%)",
        every_level.stamps_per_run,
        every_level.seconds,
        every_level.candidates_per_sec(),
        overhead_pct
    );
    let per_verdict = |secs: f64| secs / (VERDICT_PASSES * tables.len()) as f64 * 1e9;
    println!(
        "verdict dispatch overhead ({} tables x {VERDICT_PASSES} sweeps):",
        tables.len()
    );
    println!(
        "  direct chi2:         {:.6}s ({:.1} ns/verdict)",
        direct_secs,
        per_verdict(direct_secs)
    );
    println!(
        "  MeasureContext chi2: {:.6}s ({:.1} ns/verdict, {:+.1}%)",
        dispatch_secs,
        per_verdict(dispatch_secs),
        verdict_overhead_pct
    );
    println!(
        "  all-confidence:      {:.6}s ({:.1} ns/verdict)",
        allconf_secs,
        per_verdict(allconf_secs)
    );
    println!(
        "  bond:                {:.6}s ({:.1} ns/verdict)",
        bond_secs,
        per_verdict(bond_secs)
    );
    println!("available parallelism on this host: {available}");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{ \"items\": {N_ITEMS}, \"transactions\": {N_BASKETS}, \
         \"candidates\": {N_CANDIDATES}, \"candidate_size\": {CANDIDATE_SIZE}, \
         \"reps\": {REPS}, \"available_parallelism\": {available},"
    );
    let _ = writeln!(
        json,
        "    \"target_features\": \"{}\", \"rustflags\": \"{}\",",
        target_features.join(","),
        rustflags.replace('\\', "\\\\").replace('"', "\\\"")
    );
    let _ = writeln!(
        json,
        "    \"auto_routing\": {{ {} }} }},",
        routing
            .iter()
            .map(|(shape, strategy)| format!("\"{shape}\": \"{strategy}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    json.push_str("  \"strategies\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"median_seconds\": {:.6}, \
             \"candidates_per_sec\": {:.1}, \"tables_per_sec\": {:.1} }}{}",
            r.name,
            r.seconds,
            r.candidates_per_sec(),
            r.tables_per_sec(),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"thread_scaling\": [\n");
    for (i, p) in scaling.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"workers\": {}, \"median_seconds\": {:.6}, \
             \"speedup_vs_1_worker\": {:.2} }}{}",
            p.workers,
            p.seconds,
            scaling[0].seconds / p.seconds,
            if i + 1 < scaling.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"shard_scaling\": [\n");
    for (i, p) in shard_scaling.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"shards\": {}, \"median_seconds\": {:.6}, \
             \"speedup_vs_1_shard\": {:.2} }}{}",
            p.workers,
            p.seconds,
            shard_scaling[0].seconds / p.seconds,
            if i + 1 < shard_scaling.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"sparse\": {{ \"items\": {SPARSE_ITEMS}, \"transactions\": {N_BASKETS}, \
         \"candidates\": {SPARSE_CANDIDATES}, \"strategies\": ["
    );
    for (i, r) in sparse_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"median_seconds\": {:.6}, \
             \"candidates_per_sec\": {:.1}, \"tables_per_sec\": {:.1} }}{}",
            r.name,
            r.seconds,
            r.candidates_per_sec(),
            r.tables_per_sec(),
            if i + 1 < sparse_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ] },\n");
    let _ = writeln!(
        json,
        "  \"dense_low_cardinality\": {{ \"items\": {DENSE_LC_ITEMS}, \
         \"transactions\": {DENSE_LC_BASKETS}, \"candidates\": {DENSE_LC_CANDIDATES}, \
         \"distinct_profiles\": 32, \"strategies\": ["
    );
    for (i, r) in lc_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"median_seconds\": {:.6}, \
             \"candidates_per_sec\": {:.1}, \"tables_per_sec\": {:.1} }}{}",
            r.name,
            r.seconds,
            r.candidates_per_sec(),
            r.tables_per_sec(),
            if i + 1 < lc_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(
        json,
        "  ], \"fptree_batch_speedup_over_vertical_batch\": {fptree_speedup:.2} }},"
    );
    let _ = writeln!(
        json,
        "  \"checkpoint_overhead\": {{ \
         \"no_checkpoint\": {{ \"median_seconds\": {:.6}, \"candidates_per_sec\": {:.1} }}, \
         \"every_level\": {{ \"median_seconds\": {:.6}, \"candidates_per_sec\": {:.1}, \
         \"stamps_per_run\": {} }}, \"overhead_percent\": {:.1} }},",
        no_ckpt.seconds,
        no_ckpt.candidates_per_sec(),
        every_level.seconds,
        every_level.candidates_per_sec(),
        every_level.stamps_per_run,
        overhead_pct
    );
    let _ = writeln!(
        json,
        "  \"verdict_overhead\": {{ \"tables\": {}, \"sweeps_per_rep\": {VERDICT_PASSES}, \
         \"direct_chi2\": {{ \"median_seconds\": {:.6}, \"ns_per_verdict\": {:.1} }}, \
         \"measure_dispatch_chi2\": {{ \"median_seconds\": {:.6}, \"ns_per_verdict\": {:.1} }}, \
         \"overhead_percent\": {:.1}, \
         \"all_confidence_ns_per_verdict\": {:.1}, \"bond_ns_per_verdict\": {:.1} }},",
        tables.len(),
        direct_secs,
        per_verdict(direct_secs),
        dispatch_secs,
        per_verdict(dispatch_secs),
        verdict_overhead_pct,
        per_verdict(allconf_secs),
        per_verdict(bond_secs)
    );
    let _ = writeln!(
        json,
        "  \"vertical_batch_speedup_over_per_candidate\": {speedup:.2},"
    );
    let _ = writeln!(
        json,
        "  \"vertical_par_batch_speedup_over_vertical_batch\": {par_speedup:.2}"
    );
    json.push_str("}\n");

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let path = out_dir.join("BENCH_counting.json");
    std::fs::write(&path, json).expect("write BENCH_counting.json");
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression test for the per-scan spawn overhead: per-candidate
    /// parallel counting used to spawn a fresh set of threads for every
    /// scan, which made it the slowest strategy on the baseline shape.
    /// With the persistent pool and the sequential work floor, a
    /// one-candidate scan routes straight to the sequential kernel, so
    /// it must now track the horizontal reference. Scaled-down shape +
    /// a generous tolerance keep this timing assertion robust on noisy
    /// or single-core hosts.
    #[test]
    fn parallel_per_candidate_is_not_the_slowest_strategy() {
        let db = DataMethod::Quest.generate(N_ITEMS, 2_000, 7);
        let level = dense_level(N_ITEMS, 60, CANDIDATE_SIZE, POOL);
        let pass = |counter: &mut dyn MintermCounter| {
            let t0 = Instant::now();
            for set in &level {
                std::hint::black_box(counter.minterm_counts(set));
            }
            t0.elapsed().as_secs_f64()
        };
        let mut horizontal = HorizontalCounter::new(&db);
        let mut vertical = VerticalCounter::new(&db);
        let mut parallel = ParallelCounter::with_available_parallelism(&db);
        // Warm-up (vertical index build, page cache), then interleaved
        // rounds with the per-strategy *minimum* kept: other test
        // binaries share these cores, and min-of-rounds discards their
        // scheduling noise where a mean or median would absorb it.
        let (mut h, mut v, mut p) = (f64::MAX, f64::MAX, f64::MAX);
        for _ in 0..2 {
            pass(&mut horizontal);
            pass(&mut vertical);
            pass(&mut parallel);
        }
        for _ in 0..7 {
            h = h.min(pass(&mut horizontal));
            v = v.min(pass(&mut vertical));
            p = p.min(pass(&mut parallel));
        }
        let slowest_other = h.max(v);
        assert!(
            p <= slowest_other * 1.5,
            "parallel/per_candidate ({p:.6}s) is the slowest strategy again \
             (slowest other: {slowest_other:.6}s) — per-scan dispatch overhead is back"
        );
    }
}
