//! Regenerates Figure 7 (a, b) of the paper. See `ccs_bench::figures`.

fn main() {
    let args = ccs_bench::HarnessArgs::parse();
    ccs_bench::figures::Figure::Fig7.run_and_save(&args);
}
