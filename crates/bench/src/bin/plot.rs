//! Renders `results/figN.csv` into `results/figN.svg` (seconds) and
//! `results/figN_tables.svg` (hardware-independent work).
//!
//! ```text
//! cargo run --release -p ccs-bench --bin plot [-- --out <dir>]
//! ```

use std::path::PathBuf;

use ccs_bench::plot::{render_svg, YAxis};
use ccs_bench::report::parse_csv;

fn main() {
    let mut dir = PathBuf::from("results");
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--out") {
        if let Some(d) = args.get(i + 1) {
            dir = PathBuf::from(d);
        }
    }
    let mut rendered = 0;
    for n in 1..=8 {
        let csv = dir.join(format!("fig{n}.csv"));
        if !csv.exists() {
            continue;
        }
        match parse_csv(&csv) {
            Ok(rows) => {
                std::fs::write(
                    dir.join(format!("fig{n}.svg")),
                    render_svg(&rows, YAxis::Seconds),
                )
                .expect("write svg");
                std::fs::write(
                    dir.join(format!("fig{n}_tables.svg")),
                    render_svg(&rows, YAxis::Tables),
                )
                .expect("write svg");
                rendered += 1;
            }
            Err(e) => eprintln!("skipping {}: {e}", csv.display()),
        }
    }
    if rendered == 0 {
        eprintln!(
            "no figN.csv files under {}; run the fig binaries first",
            dir.display()
        );
        std::process::exit(2);
    }
    eprintln!("rendered {rendered} figures into {}", dir.display());
}
