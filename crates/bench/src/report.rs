//! Turning harness CSVs back into readable reports.
//!
//! `figN` binaries emit `results/figN.csv`; the `report` binary gathers
//! them into one markdown document with a pivot table per figure and
//! dataset (x values as rows, algorithms as columns), plus derived
//! speedup columns — the form the comparisons in EXPERIMENTS.md take.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::SweepRow;

/// Parses one of this crate's own CSV files back into rows.
///
/// # Errors
///
/// Returns a human-readable message on I/O or format errors.
pub fn parse_csv(path: &Path) -> Result<Vec<SweepRow>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h == SweepRow::CSV_HEADER => {}
        Some(h) => return Err(format!("{}: unexpected header '{h}'", path.display())),
        None => return Err(format!("{}: empty file", path.display())),
    }
    let mut rows = Vec::new();
    for (idx, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 9 {
            return Err(format!(
                "{}: line {} has {} fields",
                path.display(),
                idx + 2,
                f.len()
            ));
        }
        let parse_f64 = |s: &str, what: &str| {
            s.parse::<f64>()
                .map_err(|_| format!("{}: line {}: bad {what} '{s}'", path.display(), idx + 2))
        };
        let parse_u64 = |s: &str, what: &str| {
            s.parse::<u64>()
                .map_err(|_| format!("{}: line {}: bad {what} '{s}'", path.display(), idx + 2))
        };
        rows.push(SweepRow {
            figure: f[0].to_owned(),
            dataset: f[1].to_owned(),
            x_name: f[2].to_owned(),
            x: parse_f64(f[3], "x")?,
            algorithm: f[4].to_owned(),
            seconds: parse_f64(f[5], "seconds")?,
            tables: parse_u64(f[6], "tables")?,
            candidates: parse_u64(f[7], "candidates")?,
            answers: parse_u64(f[8], "answers")? as usize,
        });
    }
    Ok(rows)
}

/// Renders one figure's rows as markdown pivot tables (one per
/// dataset): x values down, per-algorithm `seconds (tables)` across,
/// and a naive-vs-best speedup column.
pub fn render_markdown(rows: &[SweepRow]) -> String {
    let mut out = String::new();
    if rows.is_empty() {
        return out;
    }
    let figure = &rows[0].figure;
    let x_name = &rows[0].x_name;
    let datasets: BTreeSet<&str> = rows.iter().map(|r| r.dataset.as_str()).collect();
    let _ = writeln!(out, "## {figure} — CPU vs {x_name}\n");
    for ds in datasets {
        let subset: Vec<&SweepRow> = rows.iter().filter(|r| r.dataset == ds).collect();
        // Preserve first-appearance algorithm order (naive first by
        // harness convention).
        let mut algos: Vec<&str> = Vec::new();
        for r in &subset {
            if !algos.contains(&r.algorithm.as_str()) {
                algos.push(&r.algorithm);
            }
        }
        let mut xs: Vec<f64> = subset.iter().map(|r| r.x).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup();

        let _ = writeln!(out, "### dataset: {ds}\n");
        let mut header = format!("| {x_name} |");
        let mut rule = String::from("|---|");
        for a in &algos {
            let _ = write!(header, " {a} s (tables) |");
            rule.push_str("---|");
        }
        header.push_str(" speedup |");
        rule.push_str("---|");
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");
        for &x in &xs {
            let mut line = format!("| {x} |");
            let mut naive_secs = None;
            let mut best_secs = f64::INFINITY;
            for a in &algos {
                match subset.iter().find(|r| r.x == x && r.algorithm == *a) {
                    Some(r) => {
                        let _ = write!(line, " {:.3} ({}) |", r.seconds, r.tables);
                        if naive_secs.is_none() {
                            naive_secs = Some(r.seconds);
                        }
                        best_secs = best_secs.min(r.seconds);
                    }
                    None => line.push_str(" — |"),
                }
            }
            let speedup = match naive_secs {
                Some(n) if best_secs > 0.0 => format!("{:.1}×", n / best_secs),
                _ => "—".to_owned(),
            };
            let _ = writeln!(out, "{line} {speedup} |");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<SweepRow> {
        vec![
            SweepRow {
                figure: "fig1".into(),
                dataset: "quest".into(),
                x_name: "baskets".into(),
                x: 500.0,
                algorithm: "BMS+".into(),
                seconds: 1.0,
                tables: 100,
                candidates: 100,
                answers: 5,
            },
            SweepRow {
                figure: "fig1".into(),
                dataset: "quest".into(),
                x_name: "baskets".into(),
                x: 500.0,
                algorithm: "BMS++".into(),
                seconds: 0.25,
                tables: 20,
                candidates: 25,
                answers: 5,
            },
        ]
    }

    #[test]
    fn csv_roundtrip_through_file() {
        let dir = std::env::temp_dir().join("ccs-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.csv");
        crate::write_csv(&path, &rows());
        let back = parse_csv(&path).unwrap();
        assert_eq!(back, rows());
    }

    #[test]
    fn parse_rejects_bad_header_and_fields() {
        let dir = std::env::temp_dir().join("ccs-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "nope\n").unwrap();
        assert!(parse_csv(&path).unwrap_err().contains("unexpected header"));
        std::fs::write(&path, format!("{}\na,b,c\n", SweepRow::CSV_HEADER)).unwrap();
        assert!(parse_csv(&path).unwrap_err().contains("fields"));
    }

    #[test]
    fn markdown_contains_pivot_and_speedup() {
        let md = render_markdown(&rows());
        assert!(md.contains("## fig1 — CPU vs baskets"));
        assert!(md.contains("### dataset: quest"));
        assert!(md.contains("| 500 |"));
        assert!(md.contains("4.0×"), "speedup missing from:\n{md}");
    }

    #[test]
    fn empty_rows_render_empty() {
        assert!(render_markdown(&[]).is_empty());
    }
}
