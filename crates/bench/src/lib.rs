//! # ccs-bench — the evaluation harness
//!
//! Regenerates every figure of the paper's §4 evaluation. Each `figN`
//! binary sweeps the same axis as the corresponding paper figure over
//! both synthetic data methods (`a` = Quest, `b` = rule-planted), runs
//! the same algorithms, and emits one CSV of
//! `(figure, dataset, x, algorithm, seconds, tables, candidates,
//! answers)` rows — the series the paper plots.
//!
//! Two scales are built in:
//!
//! * **default** — a laptop-scale configuration (60 items, ≤ 4 000
//!   baskets) that preserves the paper's cost regime: at `s = p = 25%`
//!   every pair is CT-supported (the all-absent cell carries the test),
//!   triples need two qualifying cells and mostly fail, so the sweep
//!   stops below level 4 exactly as the paper reports ("sets with less
//!   than four items").
//! * **`--paper`** — the full configuration (1 000 items, 10 000–100 000
//!   baskets). CPU-hours to days under the scan-per-table cost model, as
//!   it was in 2000.

#![warn(missing_docs)]
// The harness must measure the current library surface, never the
// deprecated `mine*`/`resume*` shims (CI runs a dedicated `-D
// deprecated` job over this crate and the CLI binary).
#![deny(deprecated)]

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use ccs_constraints::{AttributeTable, ConstraintSet};
use ccs_core::{Algorithm, CorrelationQuery, MineRequest, MiningParams, MiningSession};
use ccs_datagen::{generate_quest, generate_rules, QuestParams, RuleParams};
use ccs_itemset::TransactionDb;

/// One measured point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Figure id, e.g. `"fig1"`.
    pub figure: String,
    /// `"quest"` (the paper's data 1) or `"rules"` (data 2).
    pub dataset: String,
    /// Name of the x axis, e.g. `"baskets"` or `"selectivity"`.
    pub x_name: String,
    /// The x coordinate.
    pub x: f64,
    /// Algorithm name in the paper's notation.
    pub algorithm: String,
    /// Wall-clock seconds for the mining run.
    pub seconds: f64,
    /// Contingency tables built (the paper's "sets considered").
    pub tables: u64,
    /// Candidate sets generated.
    pub candidates: u64,
    /// Number of answers returned.
    pub answers: usize,
}

impl SweepRow {
    /// The CSV header matching [`SweepRow::to_csv`].
    pub const CSV_HEADER: &'static str =
        "figure,dataset,x_name,x,algorithm,seconds,tables,candidates,answers";

    /// One CSV line (no trailing newline).
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{},{:.4},{},{},{}",
            self.figure,
            self.dataset,
            self.x_name,
            self.x,
            self.algorithm,
            self.seconds,
            self.tables,
            self.candidates,
            self.answers
        )
    }
}

/// Writes rows as a CSV file, creating parent directories.
///
/// # Panics
///
/// Panics on I/O errors — harness binaries have no meaningful recovery.
pub fn write_csv(path: &Path, rows: &[SweepRow]) {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).expect("create results directory");
    }
    let mut out = String::with_capacity(rows.len() * 64 + 64);
    out.push_str(SweepRow::CSV_HEADER);
    out.push('\n');
    for r in rows {
        let _ = writeln!(out, "{}", r.to_csv());
    }
    fs::write(path, out).expect("write results CSV");
}

/// The scale of an experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scale {
    /// Number of items `N`.
    pub n_items: u32,
    /// The basket-count sweep (x axis of the "vs baskets" figures).
    pub basket_sweep: Vec<usize>,
    /// Fixed basket count for the selectivity figures.
    pub fixed_baskets: usize,
    /// The selectivity sweep.
    pub selectivities: Vec<f64>,
    /// `maxsum / N` multipliers for Figure 4.
    pub maxsum_multipliers: Vec<f64>,
}

impl Scale {
    /// Laptop-scale default (see crate docs).
    pub fn default_scale() -> Self {
        Scale {
            n_items: 60,
            basket_sweep: vec![500, 1000, 2000, 4000],
            fixed_baskets: 4000,
            selectivities: vec![0.1, 0.2, 0.3, 0.5, 0.8],
            maxsum_multipliers: vec![0.25, 0.5, 1.0, 2.0, 4.0],
        }
    }

    /// The paper's full configuration. Expect CPU-hours to days under
    /// the scan-per-table cost model.
    pub fn paper_scale() -> Self {
        Scale {
            n_items: 1000,
            basket_sweep: vec![10_000, 25_000, 50_000, 75_000, 100_000],
            fixed_baskets: 100_000,
            selectivities: vec![0.1, 0.2, 0.3, 0.5, 0.8],
            maxsum_multipliers: vec![0.25, 0.5, 1.0, 2.0, 4.0],
        }
    }
}

/// Which of the paper's two data-generation methods to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataMethod {
    /// Method 1: IBM-Quest-style (data "a" in the figures).
    Quest,
    /// Method 2: correlation-rule-planted (data "b").
    Rules,
}

impl DataMethod {
    /// Both methods, in the figures' (a, b) order.
    pub fn both() -> [DataMethod; 2] {
        [DataMethod::Quest, DataMethod::Rules]
    }

    /// CSV label.
    pub fn label(self) -> &'static str {
        match self {
            DataMethod::Quest => "quest",
            DataMethod::Rules => "rules",
        }
    }

    /// Generates a database of `n_baskets` baskets over `n_items` items.
    ///
    /// Basket-size and pattern parameters scale with the universe the way
    /// the paper's do (|T| = 20 at N = 1000 → |T| ≈ N/50, min 8).
    pub fn generate(self, n_items: u32, n_baskets: usize, seed: u64) -> TransactionDb {
        let avg_len = (n_items as f64 / 50.0).max(8.0);
        match self {
            DataMethod::Quest => {
                let params = QuestParams {
                    n_transactions: n_baskets,
                    n_items,
                    avg_transaction_len: avg_len,
                    avg_pattern_len: 4.0,
                    n_patterns: (n_items as usize * 2).max(20),
                    correlation: 0.5,
                    corruption_mean: 0.5,
                    corruption_sd: 0.1,
                    seed,
                };
                generate_quest(&params)
            }
            DataMethod::Rules => {
                let params = RuleParams {
                    n_transactions: n_baskets,
                    n_items,
                    avg_transaction_len: avg_len,
                    n_rules: 10.min(n_items as usize / 4),
                    rule_len: (2, 4),
                    support_range: (0.7, 0.9),
                    seed,
                };
                generate_rules(&params).db
            }
        }
    }
}

/// The paper's experimental `(α, s, p%)` = (0.9, 25%, 25%).
pub fn paper_mining_params() -> MiningParams {
    MiningParams::paper()
}

/// Runs one algorithm on one dataset and records a sweep row.
#[allow(clippy::too_many_arguments)] // mirrors the experiment grid's axes
pub fn measure(
    figure: &str,
    dataset: DataMethod,
    x_name: &str,
    x: f64,
    db: &TransactionDb,
    attrs: &AttributeTable,
    constraints: &ConstraintSet,
    algorithm: Algorithm,
) -> SweepRow {
    let query = CorrelationQuery {
        params: paper_mining_params(),
        constraints: constraints.clone(),
    };
    let result = MiningSession::new(db, attrs)
        .mine(&query, &MineRequest::new(algorithm))
        .unwrap_or_else(|e| panic!("{algorithm} failed on {figure}: {e}"))
        .result;
    SweepRow {
        figure: figure.to_owned(),
        dataset: dataset.label().to_owned(),
        x_name: x_name.to_owned(),
        x,
        algorithm: algorithm.name().to_owned(),
        seconds: result.metrics.elapsed.as_secs_f64(),
        tables: result.metrics.tables_built,
        candidates: result.metrics.candidates_generated,
        answers: result.answers.len(),
    }
}

/// Command-line options shared by every figure binary.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// The chosen scale.
    pub scale: Scale,
    /// Output directory for CSVs (default `results/`).
    pub out_dir: PathBuf,
    /// Data seed.
    pub seed: u64,
}

impl HarnessArgs {
    /// Parses `--paper`, `--out <dir>`, and `--seed <n>` from
    /// `std::env::args`. Unknown flags abort with a usage message.
    pub fn parse() -> Self {
        let mut scale = Scale::default_scale();
        let mut out_dir = PathBuf::from("results");
        let mut seed = 42u64;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--paper" => scale = Scale::paper_scale(),
                "--out" => {
                    out_dir = PathBuf::from(
                        args.next()
                            .unwrap_or_else(|| usage("--out needs a directory")),
                    )
                }
                "--seed" => {
                    seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"))
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag '{other}'")),
            }
        }
        HarnessArgs {
            scale,
            out_dir,
            seed,
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: figN [--paper] [--out <dir>] [--seed <n>]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// Prints rows as an aligned table to stdout (for eyeballing runs).
pub fn print_table(rows: &[SweepRow]) {
    println!(
        "{:<6} {:<6} {:<12} {:>10} {:<7} {:>9} {:>10} {:>10} {:>7}",
        "figure", "data", "x_name", "x", "algo", "seconds", "tables", "cands", "answers"
    );
    for r in rows {
        println!(
            "{:<6} {:<6} {:<12} {:>10} {:<7} {:>9.3} {:>10} {:>10} {:>7}",
            r.figure,
            r.dataset,
            r.x_name,
            r.x,
            r.algorithm,
            r.seconds,
            r.tables,
            r.candidates,
            r.answers
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_shape() {
        let row = SweepRow {
            figure: "fig1".into(),
            dataset: "quest".into(),
            x_name: "baskets".into(),
            x: 500.0,
            algorithm: "BMS+".into(),
            seconds: 1.25,
            tables: 42,
            candidates: 50,
            answers: 3,
        };
        assert_eq!(row.to_csv(), "fig1,quest,baskets,500,BMS+,1.2500,42,50,3");
        assert_eq!(
            SweepRow::CSV_HEADER.split(',').count(),
            row.to_csv().split(',').count()
        );
    }

    #[test]
    fn data_methods_generate_requested_shape() {
        for m in DataMethod::both() {
            let db = m.generate(40, 200, 7);
            assert_eq!(db.len(), 200, "{m:?}");
            assert_eq!(db.n_items(), 40);
        }
    }

    #[test]
    fn measure_produces_sane_row() {
        let db = DataMethod::Rules.generate(30, 300, 3);
        let attrs = AttributeTable::with_identity_prices(30);
        let row = measure(
            "figX",
            DataMethod::Rules,
            "baskets",
            300.0,
            &db,
            &attrs,
            &ConstraintSet::new(),
            Algorithm::BmsPlus,
        );
        assert!(row.tables > 0);
        assert!(row.seconds >= 0.0);
        assert_eq!(row.algorithm, "BMS+");
    }

    #[test]
    fn scales_are_ordered() {
        let d = Scale::default_scale();
        let p = Scale::paper_scale();
        assert!(d.n_items < p.n_items);
        assert!(d.fixed_baskets < p.fixed_baskets);
        assert_eq!(p.n_items, 1000);
        assert_eq!(p.fixed_baskets, 100_000);
    }
}
pub mod figures;

pub mod plot;
pub mod report;
