//! One function per evaluation figure of the paper.
//!
//! | Figure | Constraint | x axis | Algorithms |
//! |--------|-----------|--------|------------|
//! | 1 (a,b) | `max(price) ≤ v`, selectivity 50% (anti-monotone + succinct) | baskets | BMS+, BMS++, BMS** |
//! | 2 (a,b) | `max(price) ≤ v` | selectivity | BMS+, BMS++, BMS** |
//! | 3 (a,b) | `sum(price) ≤ maxsum`, selectivity 50% (anti-monotone) | baskets | BMS+, BMS++, BMS** |
//! | 4 (a,b) | `sum(price) ≤ maxsum` | maxsum | BMS+, BMS++, BMS** |
//! | 5 (a,b) | `min(price) ≤ v`, selectivity 50% (monotone + succinct) | baskets | BMS+, BMS++ |
//! | 6 (a,b) | `min(price) ≤ v` | selectivity | BMS+, BMS++ |
//! | 7 (a,b) | `min(price) ≤ v`, selectivity 50% | baskets | BMS*, BMS** |
//! | 8 (a,b) | `min(price) ≤ v` | selectivity | BMS*, BMS** |
//!
//! The `(a)` variant of each figure uses Quest data (method 1), the
//! `(b)` variant rule-planted data (method 2); the harness emits both
//! into one CSV distinguished by the `dataset` column.
//!
//! Note on the paper's notation: §4 calls the monotone + succinct
//! constraint "min(S.price) ≥ v", but by Lemma 1 `min ≥` is
//! *anti-monotone*; the monotone + succinct member of the min/max family
//! is `min(S.price) ≤ v`, which is what Figures 5–8 exercise here (and
//! what makes BMS* ≠ BMS+ in them, as the paper's discussion requires).

use ccs_constraints::selectivity::threshold_for_le_selectivity;
use ccs_constraints::{AttributeTable, Constraint, ConstraintSet};
use ccs_core::Algorithm;

use crate::{measure, write_csv, DataMethod, HarnessArgs, SweepRow};

/// The three algorithms compared on anti-monotone constraints
/// (BMS* coincides with BMS+ there, so the paper plots these three).
const AM_ALGOS: [Algorithm; 3] = [
    Algorithm::BmsPlus,
    Algorithm::BmsPlusPlus,
    Algorithm::BmsStarStar,
];
/// `VALID_MIN` pair for the monotone figures 5–6.
const VM_ALGOS: [Algorithm; 2] = [Algorithm::BmsPlus, Algorithm::BmsPlusPlus];
/// `MIN_VALID` pair for the monotone figures 7–8.
const MV_ALGOS: [Algorithm; 2] = [Algorithm::BmsStar, Algorithm::BmsStarStar];

/// All figures, for `all_figs` style drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure {
    /// Anti-monotone + succinct vs baskets.
    Fig1,
    /// Anti-monotone + succinct vs selectivity.
    Fig2,
    /// Anti-monotone (sum) vs baskets.
    Fig3,
    /// Anti-monotone (sum) vs maxsum.
    Fig4,
    /// Monotone + succinct, `VALID_MIN`, vs baskets.
    Fig5,
    /// Monotone + succinct, `VALID_MIN`, vs selectivity.
    Fig6,
    /// Monotone + succinct, `MIN_VALID`, vs baskets.
    Fig7,
    /// Monotone + succinct, `MIN_VALID`, vs selectivity.
    Fig8,
}

impl Figure {
    /// All eight figures in paper order.
    pub const ALL: [Figure; 8] = [
        Figure::Fig1,
        Figure::Fig2,
        Figure::Fig3,
        Figure::Fig4,
        Figure::Fig5,
        Figure::Fig6,
        Figure::Fig7,
        Figure::Fig8,
    ];

    /// The figure's id string (`"fig1"` …).
    pub fn name(self) -> &'static str {
        match self {
            Figure::Fig1 => "fig1",
            Figure::Fig2 => "fig2",
            Figure::Fig3 => "fig3",
            Figure::Fig4 => "fig4",
            Figure::Fig5 => "fig5",
            Figure::Fig6 => "fig6",
            Figure::Fig7 => "fig7",
            Figure::Fig8 => "fig8",
        }
    }

    /// Runs the figure's sweep and returns its rows.
    pub fn run(self, args: &HarnessArgs) -> Vec<SweepRow> {
        match self {
            Figure::Fig1 => sweep_baskets(self, args, &AM_ALGOS, |attrs| {
                let v = threshold_for_le_selectivity(attrs, "price", 0.5);
                ConstraintSet::new().and(Constraint::max_le("price", v))
            }),
            Figure::Fig2 => sweep_selectivity(self, args, &AM_ALGOS, |attrs, sel| {
                let v = threshold_for_le_selectivity(attrs, "price", sel);
                ConstraintSet::new().and(Constraint::max_le("price", v))
            }),
            Figure::Fig3 => sweep_baskets(self, args, &AM_ALGOS, |attrs| {
                let maxsum = threshold_for_le_selectivity(attrs, "price", 0.5);
                ConstraintSet::new().and(Constraint::sum_le("price", maxsum))
            }),
            Figure::Fig4 => sweep_maxsum(self, args, &AM_ALGOS),
            Figure::Fig5 => sweep_baskets(self, args, &VM_ALGOS, |attrs| {
                let v = threshold_for_le_selectivity(attrs, "price", 0.5);
                ConstraintSet::new().and(Constraint::min_le("price", v))
            }),
            Figure::Fig6 => sweep_selectivity(self, args, &VM_ALGOS, |attrs, sel| {
                let v = threshold_for_le_selectivity(attrs, "price", sel);
                ConstraintSet::new().and(Constraint::min_le("price", v))
            }),
            Figure::Fig7 => sweep_baskets(self, args, &MV_ALGOS, |attrs| {
                let v = threshold_for_le_selectivity(attrs, "price", 0.5);
                ConstraintSet::new().and(Constraint::min_le("price", v))
            }),
            Figure::Fig8 => sweep_selectivity(self, args, &MV_ALGOS, |attrs, sel| {
                let v = threshold_for_le_selectivity(attrs, "price", sel);
                ConstraintSet::new().and(Constraint::min_le("price", v))
            }),
        }
    }

    /// Runs the sweep, prints it, and writes `<out>/<name>.csv`.
    pub fn run_and_save(self, args: &HarnessArgs) -> Vec<SweepRow> {
        eprintln!(
            "running {} ({} items, up to {} baskets)…",
            self.name(),
            args.scale.n_items,
            args.scale
                .basket_sweep
                .last()
                .copied()
                .unwrap_or(args.scale.fixed_baskets)
        );
        let rows = self.run(args);
        crate::print_table(&rows);
        let path = args.out_dir.join(format!("{}.csv", self.name()));
        write_csv(&path, &rows);
        eprintln!("wrote {}", path.display());
        rows
    }
}

/// CPU usage as a function of the number of baskets, constraint fixed.
fn sweep_baskets(
    figure: Figure,
    args: &HarnessArgs,
    algorithms: &[Algorithm],
    constraint_for: impl Fn(&AttributeTable) -> ConstraintSet,
) -> Vec<SweepRow> {
    let attrs = AttributeTable::with_identity_prices(args.scale.n_items);
    let constraints = constraint_for(&attrs);
    let mut rows = Vec::new();
    for method in DataMethod::both() {
        for &n in &args.scale.basket_sweep {
            let db = method.generate(args.scale.n_items, n, args.seed);
            for &algo in algorithms {
                rows.push(measure(
                    figure.name(),
                    method,
                    "baskets",
                    n as f64,
                    &db,
                    &attrs,
                    &constraints,
                    algo,
                ));
            }
        }
    }
    rows
}

/// CPU usage as a function of constraint selectivity, baskets fixed.
fn sweep_selectivity(
    figure: Figure,
    args: &HarnessArgs,
    algorithms: &[Algorithm],
    constraint_for: impl Fn(&AttributeTable, f64) -> ConstraintSet,
) -> Vec<SweepRow> {
    let attrs = AttributeTable::with_identity_prices(args.scale.n_items);
    let mut rows = Vec::new();
    for method in DataMethod::both() {
        let db = method.generate(args.scale.n_items, args.scale.fixed_baskets, args.seed);
        for &sel in &args.scale.selectivities {
            let constraints = constraint_for(&attrs, sel);
            for &algo in algorithms {
                rows.push(measure(
                    figure.name(),
                    method,
                    "selectivity",
                    sel,
                    &db,
                    &attrs,
                    &constraints,
                    algo,
                ));
            }
        }
    }
    rows
}

/// Figure 4: CPU usage as a function of `maxsum` for
/// `sum(price) ≤ maxsum`, baskets fixed. With item `i` priced `i+1`
/// (`price ∈ 1..=N`), `maxsum = 4N` no longer prunes anything — the
/// paper's "no pruning effect from the constraint anymore" endpoint.
fn sweep_maxsum(figure: Figure, args: &HarnessArgs, algorithms: &[Algorithm]) -> Vec<SweepRow> {
    let attrs = AttributeTable::with_identity_prices(args.scale.n_items);
    let mut rows = Vec::new();
    for method in DataMethod::both() {
        let db = method.generate(args.scale.n_items, args.scale.fixed_baskets, args.seed);
        for &mult in &args.scale.maxsum_multipliers {
            let maxsum = mult * args.scale.n_items as f64;
            let constraints = ConstraintSet::new().and(Constraint::sum_le("price", maxsum));
            for &algo in algorithms {
                rows.push(measure(
                    figure.name(),
                    method,
                    "maxsum",
                    maxsum,
                    &db,
                    &attrs,
                    &constraints,
                    algo,
                ));
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use std::path::PathBuf;

    fn tiny_args() -> HarnessArgs {
        HarnessArgs {
            scale: Scale {
                n_items: 20,
                basket_sweep: vec![100, 200],
                fixed_baskets: 200,
                selectivities: vec![0.2, 0.8],
                maxsum_multipliers: vec![0.5, 4.0],
            },
            out_dir: PathBuf::from("/tmp/ccs-bench-test"),
            seed: 1,
        }
    }

    #[test]
    fn every_figure_produces_full_grid() {
        let args = tiny_args();
        for fig in Figure::ALL {
            let rows = fig.run(&args);
            let algos: usize = match fig {
                Figure::Fig1 | Figure::Fig2 | Figure::Fig3 | Figure::Fig4 => 3,
                _ => 2,
            };
            assert_eq!(rows.len(), 2 * 2 * algos, "row count for {}", fig.name());
            assert!(rows.iter().all(|r| r.figure == fig.name()));
        }
    }

    #[test]
    fn fig2_pruning_grows_with_lower_selectivity() {
        let args = tiny_args();
        let rows = Figure::Fig2.run(&args);
        // For each dataset: BMS++ tables at selectivity 0.2 must be fewer
        // than at 0.8, while BMS+ tables are unchanged (it ignores the
        // constraint for pruning).
        for ds in ["quest", "rules"] {
            let t = |sel: f64, algo: &str| {
                rows.iter()
                    .find(|r| r.dataset == ds && r.x == sel && r.algorithm == algo)
                    .unwrap()
                    .tables
            };
            assert!(
                t(0.2, "BMS++") < t(0.8, "BMS++"),
                "{ds}: BMS++ not selective"
            );
            assert_eq!(t(0.2, "BMS+"), t(0.8, "BMS+"), "{ds}: BMS+ should be flat");
        }
    }

    #[test]
    fn fig1_answers_agree_across_algorithms() {
        // All three algorithms answer the same query under anti-monotone
        // constraints (Theorem 1.2), so their answer counts must match.
        let args = tiny_args();
        let rows = Figure::Fig1.run(&args);
        for ds in ["quest", "rules"] {
            for &n in &args.scale.basket_sweep {
                let answers: Vec<usize> = rows
                    .iter()
                    .filter(|r| r.dataset == ds && r.x == n as f64)
                    .map(|r| r.answers)
                    .collect();
                assert!(
                    answers.windows(2).all(|w| w[0] == w[1]),
                    "{ds}@{n}: {answers:?}"
                );
            }
        }
    }
}
