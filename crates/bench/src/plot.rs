//! Hand-rolled SVG line charts for the figure CSVs.
//!
//! No plotting crate is on the dependency list, and the charts needed
//! here are simple: one line per (dataset, algorithm) series, linear
//! axes, a legend — the visual form of the paper's figures. The `plot`
//! binary renders `results/figN.csv` into `results/figN.svg`.

use std::fmt::Write as _;

use crate::SweepRow;

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 400.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 150.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 48.0;

/// A muted, print-friendly palette (one entry per series, cycled).
const COLORS: [&str; 6] = [
    "#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#a463f2", "#97bbf5",
];

/// Which measured quantity to plot on the y axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YAxis {
    /// Wall-clock seconds (the paper's "cpu time (s)").
    Seconds,
    /// Contingency tables built (hardware-independent work).
    Tables,
}

impl YAxis {
    fn label(self) -> &'static str {
        match self {
            YAxis::Seconds => "cpu time (s)",
            YAxis::Tables => "contingency tables",
        }
    }

    fn value(self, r: &SweepRow) -> f64 {
        match self {
            YAxis::Seconds => r.seconds,
            YAxis::Tables => r.tables as f64,
        }
    }
}

/// Renders one figure's rows as an SVG line chart, one line per
/// (dataset, algorithm) series. Returns an empty string for empty
/// input.
pub fn render_svg(rows: &[SweepRow], y_axis: YAxis) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let title = format!(
        "{} — {} vs {}",
        rows[0].figure,
        y_axis.label(),
        rows[0].x_name
    );

    // Series keyed by (dataset, algorithm), points sorted by x.
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for r in rows {
        let key = format!("{}/{}", r.dataset, r.algorithm);
        let entry = match series.iter_mut().find(|(k, _)| *k == key) {
            Some(e) => e,
            None => {
                series.push((key, Vec::new()));
                series.last_mut().expect("just pushed")
            }
        };
        entry.1.push((r.x, y_axis.value(r)));
    }
    for (_, pts) in &mut series {
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x"));
    }

    let xs: Vec<f64> = rows.iter().map(|r| r.x).collect();
    let ys: Vec<f64> = rows.iter().map(|r| y_axis.value(r)).collect();
    let (x_min, x_max) = bounds(&xs);
    let (_, y_max) = bounds(&ys);
    let y_min = 0.0; // the paper's figures all start at zero
    let y_max = if y_max <= y_min { y_min + 1.0 } else { y_max };

    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let px = |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min).max(f64::MIN_POSITIVE) * plot_w;
    let py = |y: f64| MARGIN_T + plot_h - (y - y_min) / (y_max - y_min) * plot_h;

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="12">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    let _ = write!(
        svg,
        r#"<text x="{}" y="20" text-anchor="middle" font-size="14">{title}</text>"#,
        MARGIN_L + plot_w / 2.0
    );

    // Axes.
    let _ = write!(
        svg,
        r#"<line x1="{l}" y1="{b}" x2="{r}" y2="{b}" stroke="black"/><line x1="{l}" y1="{t}" x2="{l}" y2="{b}" stroke="black"/>"#,
        l = MARGIN_L,
        r = MARGIN_L + plot_w,
        t = MARGIN_T,
        b = MARGIN_T + plot_h
    );
    // Ticks: 5 per axis.
    for i in 0..=4 {
        let fx = x_min + (x_max - x_min) * i as f64 / 4.0;
        let fy = y_min + (y_max - y_min) * i as f64 / 4.0;
        let _ = write!(
            svg,
            r#"<line x1="{x}" y1="{b}" x2="{x}" y2="{b2}" stroke="black"/><text x="{x}" y="{ty}" text-anchor="middle">{label}</text>"#,
            x = px(fx),
            b = MARGIN_T + plot_h,
            b2 = MARGIN_T + plot_h + 5.0,
            ty = MARGIN_T + plot_h + 20.0,
            label = tick_label(fx)
        );
        let _ = write!(
            svg,
            r#"<line x1="{l}" y1="{y}" x2="{l2}" y2="{y}" stroke="black"/><text x="{tx}" y="{ty}" text-anchor="end">{label}</text>"#,
            l = MARGIN_L,
            l2 = MARGIN_L - 5.0,
            y = py(fy),
            tx = MARGIN_L - 8.0,
            ty = py(fy) + 4.0,
            label = tick_label(fy)
        );
    }
    // Axis titles.
    let _ = write!(
        svg,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        HEIGHT - 8.0,
        rows[0].x_name
    );

    // Series lines + legend.
    for (idx, (name, pts)) in series.iter().enumerate() {
        let color = COLORS[idx % COLORS.len()];
        let path: String = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| {
                format!(
                    "{}{:.1},{:.1}",
                    if i == 0 { "M" } else { "L" },
                    px(x),
                    py(y)
                )
            })
            .collect();
        let _ = write!(
            svg,
            r#"<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>"#
        );
        for &(x, y) in pts {
            let _ = write!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                px(x),
                py(y)
            );
        }
        let ly = MARGIN_T + 14.0 * idx as f64;
        let _ = write!(
            svg,
            r#"<line x1="{lx}" y1="{ly}" x2="{lx2}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{tx}" y="{ty}">{name}</text>"#,
            lx = MARGIN_L + plot_w + 10.0,
            lx2 = MARGIN_L + plot_w + 30.0,
            tx = MARGIN_L + plot_w + 36.0,
            ty = ly + 4.0
        );
    }
    svg.push_str("</svg>");
    svg
}

fn bounds(values: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    (min, max)
}

fn tick_label(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{:.0}k", v / 1000.0)
    } else if v.abs() >= 10.0 || v == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<SweepRow> {
        ["BMS+", "BMS++"]
            .iter()
            .flat_map(|a| {
                [500.0, 1000.0, 2000.0].iter().map(move |&x| SweepRow {
                    figure: "fig1".into(),
                    dataset: "quest".into(),
                    x_name: "baskets".into(),
                    x,
                    algorithm: (*a).into(),
                    seconds: x / 1000.0 * if *a == "BMS+" { 1.0 } else { 0.1 },
                    tables: x as u64,
                    candidates: x as u64,
                    answers: 3,
                })
            })
            .collect()
    }

    #[test]
    fn svg_has_one_series_per_dataset_algorithm() {
        let svg = render_svg(&rows(), YAxis::Seconds);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains("quest/BMS+"));
        assert!(svg.contains("quest/BMS++"));
        assert!(svg.contains("cpu time (s)"));
    }

    #[test]
    fn tables_axis_uses_table_counts() {
        let svg = render_svg(&rows(), YAxis::Tables);
        assert!(svg.contains("contingency tables"));
    }

    #[test]
    fn empty_rows_render_empty() {
        assert!(render_svg(&[], YAxis::Seconds).is_empty());
    }

    #[test]
    fn tick_labels_are_compact() {
        assert_eq!(tick_label(4000.0), "4k");
        assert_eq!(tick_label(25.0), "25");
        assert_eq!(tick_label(0.5), "0.50");
        assert_eq!(tick_label(0.0), "0");
    }

    #[test]
    fn single_point_series_does_not_divide_by_zero() {
        let one = vec![rows()[0].clone()];
        let svg = render_svg(&one, YAxis::Seconds);
        assert!(svg.contains("<circle"));
        assert!(!svg.contains("NaN"));
    }
}
