//! # ccs-query — a textual language for constrained correlation queries
//!
//! Turns query strings written in the paper's notation into
//! [`ccs_constraints::ConstraintSet`]s:
//!
//! ```
//! use ccs_constraints::AttributeTable;
//! use ccs_query::parse_constraints;
//!
//! let mut attrs = AttributeTable::with_identity_prices(10);
//! attrs.add_categorical("type", &["soda"; 10]);
//! let cs = parse_constraints(
//!     "correlated & ct_supported & max(S.price) <= 8 & {soda} subset S.type",
//!     &attrs,
//! ).unwrap();
//! assert_eq!(cs.len(), 2);
//! ```
//!
//! See [`parser`] for the grammar.

#![warn(missing_docs)]

pub mod lexer;
pub mod parser;
pub mod render;

pub use lexer::{lex, LexError, Token};
pub use parser::{parse_constraints, parse_query, ParseError, ParsedQuery};
pub use render::{render_constraint, render_constraints, RenderError};
