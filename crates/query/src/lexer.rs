//! Tokenizer for the constrained-correlation query language.

use std::fmt;

use thiserror::Error;

/// A lexical token with its byte offset in the input.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset where the token starts (for error messages).
    pub offset: usize,
    /// Byte offset one past where the token ends.
    pub end: usize,
}

/// The tokens of the query language.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// An identifier or keyword (`max`, `price`, `subset`, `soda`, …).
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `&`
    Amp,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `|`
    Pipe,
    /// `.`
    Dot,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "'{s}'"),
            Token::Number(n) => write!(f, "{n}"),
            Token::LBrace => write!(f, "'{{'"),
            Token::RBrace => write!(f, "'}}'"),
            Token::LParen => write!(f, "'('"),
            Token::RParen => write!(f, "')'"),
            Token::Comma => write!(f, "','"),
            Token::Amp => write!(f, "'&'"),
            Token::Le => write!(f, "'<='"),
            Token::Ge => write!(f, "'>='"),
            Token::Pipe => write!(f, "'|'"),
            Token::Dot => write!(f, "'.'"),
        }
    }
}

/// A lexing error: an unexpected character.
#[derive(Debug, Clone, PartialEq, Error)]
#[error("unexpected character '{ch}' at offset {offset}")]
pub struct LexError {
    /// The offending character.
    pub ch: char,
    /// Its byte offset.
    pub offset: usize,
}

/// Tokenizes `input`.
///
/// # Errors
///
/// Returns [`LexError`] on the first unexpected character.
pub fn lex(input: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '{' => {
                out.push(Spanned {
                    token: Token::LBrace,
                    offset: i,
                    end: i + 1,
                });
                i += 1;
            }
            '}' => {
                out.push(Spanned {
                    token: Token::RBrace,
                    offset: i,
                    end: i + 1,
                });
                i += 1;
            }
            '(' => {
                out.push(Spanned {
                    token: Token::LParen,
                    offset: i,
                    end: i + 1,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    token: Token::RParen,
                    offset: i,
                    end: i + 1,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    token: Token::Comma,
                    offset: i,
                    end: i + 1,
                });
                i += 1;
            }
            '&' => {
                out.push(Spanned {
                    token: Token::Amp,
                    offset: i,
                    end: i + 1,
                });
                i += 1;
            }
            '|' => {
                out.push(Spanned {
                    token: Token::Pipe,
                    offset: i,
                    end: i + 1,
                });
                i += 1;
            }
            '.' => {
                out.push(Spanned {
                    token: Token::Dot,
                    offset: i,
                    end: i + 1,
                });
                i += 1;
            }
            '<' | '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    let token = if c == '<' { Token::Le } else { Token::Ge };
                    out.push(Spanned {
                        token,
                        offset: i,
                        end: i + 2,
                    });
                    i += 2;
                } else {
                    return Err(LexError { ch: c, offset: i });
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    // A '.' not followed by a digit terminates the number
                    // (it could be an attribute dot — numbers in queries
                    // never precede dots in practice, but be precise).
                    if bytes[i] == b'.' && (i + 1 >= bytes.len() || !bytes[i + 1].is_ascii_digit())
                    {
                        break;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                let value: f64 = text.parse().map_err(|_| LexError {
                    ch: c,
                    offset: start,
                })?;
                out.push(Spanned {
                    token: Token::Number(value),
                    offset: start,
                    end: i,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Spanned {
                    token: Token::Ident(input[start..i].to_owned()),
                    offset: start,
                    end: i,
                });
            }
            other => {
                return Err(LexError {
                    ch: other,
                    offset: i,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(input: &str) -> Vec<Token> {
        lex(input).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_aggregate_clause() {
        assert_eq!(
            tokens("max(price) <= 100"),
            vec![
                Token::Ident("max".into()),
                Token::LParen,
                Token::Ident("price".into()),
                Token::RParen,
                Token::Le,
                Token::Number(100.0),
            ]
        );
    }

    #[test]
    fn lexes_set_clause() {
        assert_eq!(
            tokens("{soda, frozen_food} subset type"),
            vec![
                Token::LBrace,
                Token::Ident("soda".into()),
                Token::Comma,
                Token::Ident("frozen_food".into()),
                Token::RBrace,
                Token::Ident("subset".into()),
                Token::Ident("type".into()),
            ]
        );
    }

    #[test]
    fn lexes_pipes_dots_and_floats() {
        assert_eq!(
            tokens("|S.type| >= 2.5"),
            vec![
                Token::Pipe,
                Token::Ident("S".into()),
                Token::Dot,
                Token::Ident("type".into()),
                Token::Pipe,
                Token::Ge,
                Token::Number(2.5),
            ]
        );
    }

    #[test]
    fn reports_bad_character_with_offset() {
        let err = lex("max(price) = 3").unwrap_err();
        assert_eq!(err.ch, '=');
        assert_eq!(err.offset, 11);
        let err = lex("max < 3").unwrap_err();
        assert_eq!(err.ch, '<');
    }

    #[test]
    fn offsets_are_recorded() {
        let spanned = lex("abc & 2.5").unwrap();
        assert_eq!((spanned[0].offset, spanned[0].end), (0, 3));
        assert_eq!((spanned[1].offset, spanned[1].end), (4, 5));
        assert_eq!((spanned[2].offset, spanned[2].end), (6, 9));
        let ge = lex(">=").unwrap();
        assert_eq!((ge[0].offset, ge[0].end), (0, 2));
    }

    #[test]
    fn empty_input_lexes_to_nothing() {
        assert!(lex("   ").unwrap().is_empty());
    }
}
