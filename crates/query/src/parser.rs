//! Recursive-descent parser for constrained correlation queries.
//!
//! The textual form mirrors the paper's notation, e.g. the §2.2 example
//! query becomes:
//!
//! ```text
//! ct_supported & correlated
//!   & {snacks} disjoint S.type
//!   & {soda, frozen_food} subset S.type
//!   & max(S.price) <= 50
//!   & sum(S.price) >= 100
//! ```
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query   := clause ('&' clause)*
//! clause  := 'correlated' | 'ct_supported'          -- markers, always implied
//!          | agg '(' attrref ')' cmp number          -- agg ∈ min|max|sum|count|avg
//!          | '|' attrref '|' cmp number              -- count-distinct
//!          | set setop attrref
//! setop   := 'subset' | 'not' 'subset' | 'disjoint' | 'intersects'
//! set     := '{' elem (',' elem)* '}'  -- elem: label, or item id when
//!                                      -- the target is 'S' itself
//! attrref := ('S' '.')? ident | 'S'
//! cmp     := '<=' | '>='
//! ```
//!
//! Category labels are resolved against the attribute table at parse
//! time, so a typo is a parse error rather than a silently-unsatisfiable
//! constraint.

use std::collections::BTreeSet;

use ccs_constraints::{AggFn, AttributeTable, Cmp, Constraint, ConstraintSet, Span};
use thiserror::Error;

use crate::lexer::{lex, LexError, Spanned, Token};

/// A parse error with enough context to point at the problem.
#[derive(Debug, Clone, PartialEq, Error)]
pub enum ParseError {
    /// Tokenization failed.
    #[error("{0}")]
    Lex(#[from] LexError),
    /// A token appeared where something else was expected.
    #[error("expected {expected}, found {found} at offset {offset}")]
    Unexpected {
        /// What was found (display form), e.g. `"','"`.
        found: String,
        /// What the parser expected.
        expected: &'static str,
        /// Byte offset of the offending token.
        offset: usize,
    },
    /// The input ended mid-clause.
    #[error("unexpected end of query, expected {expected}")]
    UnexpectedEnd {
        /// What the parser expected next.
        expected: &'static str,
    },
    /// An aggregate references an attribute that is not a numeric column.
    #[error("unknown numeric attribute '{attr}' at offset {offset}")]
    UnknownNumericAttr {
        /// The unresolved attribute name.
        attr: String,
        /// Byte offset of the attribute reference.
        offset: usize,
    },
    /// A set clause references an attribute that is not a categorical
    /// column.
    #[error("unknown categorical attribute '{attr}' at offset {offset}")]
    UnknownCategoricalAttr {
        /// The unresolved attribute name.
        attr: String,
        /// Byte offset of the attribute reference.
        offset: usize,
    },
    /// A category label does not occur in the referenced column.
    #[error("label '{label}' does not occur in attribute '{attr}' at offset {offset}")]
    UnknownLabel {
        /// The unresolved label.
        label: String,
        /// The column it was looked up in.
        attr: String,
        /// Byte offset of the label inside the set literal.
        offset: usize,
    },
    /// A set constraint on `S` itself contained a non-numeric element.
    #[error("set constraints on S take numeric item ids, found '{found}' at offset {offset}")]
    ItemIdExpected {
        /// The offending element.
        found: String,
        /// Byte offset of the element.
        offset: usize,
    },
    /// An item id in a set constraint on `S` is outside the universe.
    #[error("item {item} outside universe 0..{n_items} at offset {offset}")]
    ItemOutOfUniverse {
        /// The offending id.
        item: u32,
        /// The universe size.
        n_items: u32,
        /// Byte offset of the offending id.
        offset: usize,
    },
}

/// A parsed query: the constraint conjunction plus one byte-range
/// [`Span`] per constraint, in the same order. Markers (`correlated`,
/// `ct_supported`) contribute no constraint and no span.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedQuery {
    /// The parsed constraint conjunction.
    pub constraints: ConstraintSet,
    /// `spans[i]` covers the clause that produced `constraints[i]`.
    pub spans: Vec<Span>,
}

/// Parses a query string into a [`ConstraintSet`], resolving attribute
/// and category names against `attrs`.
///
/// The markers `correlated` and `ct_supported` are accepted and ignored
/// (every correlation query implies them).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or unresolvable names.
pub fn parse_constraints(input: &str, attrs: &AttributeTable) -> Result<ConstraintSet, ParseError> {
    parse_query(input, attrs).map(|q| q.constraints)
}

/// Parses a query string like [`parse_constraints`], additionally
/// returning the byte-range span of each constraint's clause so
/// downstream diagnostics (e.g. the static analyzer) can point back into
/// the query text.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or unresolvable names.
pub fn parse_query(input: &str, attrs: &AttributeTable) -> Result<ParsedQuery, ParseError> {
    let tokens = lex(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        attrs,
    };
    parser.query()
}

struct Parser<'a> {
    tokens: Vec<Spanned>,
    pos: usize,
    attrs: &'a AttributeTable,
}

impl Parser<'_> {
    fn query(&mut self) -> Result<ParsedQuery, ParseError> {
        let mut out = ParsedQuery {
            constraints: ConstraintSet::new(),
            spans: Vec::new(),
        };
        if self.tokens.is_empty() {
            return Ok(out);
        }
        loop {
            let start = self.tokens.get(self.pos).map_or(0, |s| s.offset);
            if let Some(c) = self.clause()? {
                // `clause` consumed at least one token, so `pos - 1`
                // indexes the clause's last token.
                let end = self.tokens[self.pos - 1].end;
                out.constraints.push(c);
                out.spans.push(Span::new(start, end));
            }
            if self.peek().is_none() {
                return Ok(out);
            }
            self.expect_amp()?;
        }
    }

    fn clause(&mut self) -> Result<Option<Constraint>, ParseError> {
        match self.peek() {
            Some(Token::Pipe) => self.count_distinct().map(Some),
            Some(Token::LBrace) => self.set_clause().map(Some),
            Some(Token::Ident(word)) => match word.as_str() {
                "correlated" | "ct_supported" => {
                    self.advance();
                    Ok(None)
                }
                "min" | "max" | "sum" | "count" | "avg" => self.aggregate().map(Some),
                _ => Err(self.unexpected("a constraint clause")),
            },
            _ => Err(self.unexpected("a constraint clause")),
        }
    }

    fn aggregate(&mut self) -> Result<Constraint, ParseError> {
        let word = self.expect_ident("an aggregate function")?;
        // `None` marks `avg`, which is not an `AggFn` (it is neither
        // monotone nor anti-monotone and gets its own constraint form).
        let agg = match word.as_str() {
            "min" => Some(AggFn::Min),
            "max" => Some(AggFn::Max),
            "sum" => Some(AggFn::Sum),
            "count" => Some(AggFn::Count),
            "avg" => None,
            _ => return Err(self.unexpected_prev("an aggregate function")),
        };
        self.expect(Token::LParen, "'('")?;
        let (attr, attr_offset) = self.attr_ref()?;
        self.expect(Token::RParen, "')'")?;
        let cmp = self.comparison()?;
        let value = self.number()?;
        // `count` ignores the attribute; `avg` and the rest need a real
        // numeric column.
        if agg != Some(AggFn::Count) && self.attrs.numeric(&attr).is_none() {
            return Err(ParseError::UnknownNumericAttr {
                attr,
                offset: attr_offset,
            });
        }
        Ok(match agg {
            Some(f) => Constraint::agg(f, attr, cmp, value),
            None => Constraint::Avg { attr, cmp, value },
        })
    }

    fn count_distinct(&mut self) -> Result<Constraint, ParseError> {
        self.expect(Token::Pipe, "'|'")?;
        let (attr, attr_offset) = self.attr_ref()?;
        self.expect(Token::Pipe, "'|'")?;
        let cmp = self.comparison()?;
        let value = self.number()?;
        if self.attrs.categorical(&attr).is_none() {
            return Err(ParseError::UnknownCategoricalAttr {
                attr,
                offset: attr_offset,
            });
        }
        Ok(Constraint::CountDistinct {
            attr,
            cmp,
            value: value as u64,
        })
    }

    fn set_clause(&mut self) -> Result<Constraint, ParseError> {
        self.expect(Token::LBrace, "'{'")?;
        let mut elems = vec![self.set_element()?];
        while self.peek() == Some(&Token::Comma) {
            self.advance();
            elems.push(self.set_element()?);
        }
        self.expect(Token::RBrace, "'}'")?;
        let op = self.expect_ident("'subset', 'not subset', 'disjoint', or 'intersects'")?;
        let (negated_subset, kind) = match op.as_str() {
            "subset" => (false, SetKind::Subset),
            "not" => {
                let next = self.expect_ident("'subset'")?;
                if next != "subset" {
                    return Err(self.unexpected_prev("'subset' after 'not'"));
                }
                (true, SetKind::Subset)
            }
            "disjoint" => (false, SetKind::Disjoint),
            "intersects" => (false, SetKind::Intersects),
            _ => return Err(self.unexpected_prev("a set operator")),
        };
        let (attr, attr_offset) = self.attr_ref()?;
        // `{3, 7} subset S` — a domain constraint on the itemset itself:
        // elements must be numeric item ids.
        if attr == "S" {
            let mut items = BTreeSet::new();
            for (e, offset) in elems {
                match e {
                    SetElem::Id(id) => {
                        if id >= self.attrs.n_items() {
                            return Err(ParseError::ItemOutOfUniverse {
                                item: id,
                                n_items: self.attrs.n_items(),
                                offset,
                            });
                        }
                        items.insert(id);
                    }
                    SetElem::Label(label) => {
                        return Err(ParseError::ItemIdExpected {
                            found: label,
                            offset,
                        });
                    }
                }
            }
            return Ok(match kind {
                SetKind::Subset => Constraint::ItemSubset {
                    items,
                    negated: negated_subset,
                },
                SetKind::Disjoint => Constraint::ItemDisjoint {
                    items,
                    negated: false,
                },
                SetKind::Intersects => Constraint::ItemDisjoint {
                    items,
                    negated: true,
                },
            });
        }
        let col =
            self.attrs
                .categorical(&attr)
                .ok_or_else(|| ParseError::UnknownCategoricalAttr {
                    attr: attr.clone(),
                    offset: attr_offset,
                })?;
        let mut categories = BTreeSet::new();
        for (e, offset) in elems {
            let label = match e {
                SetElem::Label(l) => l,
                SetElem::Id(id) => id.to_string(),
            };
            let id = col.id_of(&label).ok_or_else(|| ParseError::UnknownLabel {
                label,
                attr: attr.clone(),
                offset,
            })?;
            categories.insert(id);
        }
        Ok(match kind {
            SetKind::Subset => Constraint::ConstSubset {
                attr,
                categories,
                negated: negated_subset,
            },
            SetKind::Disjoint => Constraint::Disjoint {
                attr,
                categories,
                negated: false,
            },
            SetKind::Intersects => Constraint::Disjoint {
                attr,
                categories,
                negated: true,
            },
        })
    }

    /// One element of a `{…}` set literal (a category label or an item
    /// id), plus its byte offset for error reporting.
    fn set_element(&mut self) -> Result<(SetElem, usize), ParseError> {
        match self.next_token("a category label or item id")? {
            (Token::Ident(s), offset) => Ok((SetElem::Label(s), offset)),
            (Token::Number(n), offset) => {
                if n.fract() != 0.0 || n < 0.0 || n > u32::MAX as f64 {
                    return Err(ParseError::Unexpected {
                        found: n.to_string(),
                        expected: "an integer item id",
                        offset,
                    });
                }
                Ok((SetElem::Id(n as u32), offset))
            }
            (t, offset) => Err(ParseError::Unexpected {
                found: t.to_string(),
                expected: "a category label or item id",
                offset,
            }),
        }
    }

    /// `('S' '.')? ident`, plus the byte offset of the reference.
    fn attr_ref(&mut self) -> Result<(String, usize), ParseError> {
        let offset = self.tokens.get(self.pos).map_or(0, |s| s.offset);
        let first = self.expect_ident("an attribute name")?;
        if first == "S" && self.peek() == Some(&Token::Dot) {
            self.advance();
            let name = self.expect_ident("an attribute name after 'S.'")?;
            return Ok((name, offset));
        }
        Ok((first, offset))
    }

    fn comparison(&mut self) -> Result<Cmp, ParseError> {
        match self.next_token("'<=' or '>='")? {
            (Token::Le, _) => Ok(Cmp::Le),
            (Token::Ge, _) => Ok(Cmp::Ge),
            (t, offset) => Err(ParseError::Unexpected {
                found: t.to_string(),
                expected: "'<=' or '>='",
                offset,
            }),
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        match self.next_token("a number")? {
            (Token::Number(n), _) => Ok(n),
            (t, offset) => Err(ParseError::Unexpected {
                found: t.to_string(),
                expected: "a number",
                offset,
            }),
        }
    }

    fn expect_amp(&mut self) -> Result<(), ParseError> {
        self.expect(Token::Amp, "'&'")
    }

    fn expect(&mut self, want: Token, expected: &'static str) -> Result<(), ParseError> {
        match self.next_token(expected)? {
            (t, _) if t == want => Ok(()),
            (t, offset) => Err(ParseError::Unexpected {
                found: t.to_string(),
                expected,
                offset,
            }),
        }
    }

    fn expect_ident(&mut self, expected: &'static str) -> Result<String, ParseError> {
        match self.next_token(expected)? {
            (Token::Ident(s), _) => Ok(s),
            (t, offset) => Err(ParseError::Unexpected {
                found: t.to_string(),
                expected,
                offset,
            }),
        }
    }

    fn next_token(&mut self, expected: &'static str) -> Result<(Token, usize), ParseError> {
        let s = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or(ParseError::UnexpectedEnd { expected })?;
        self.pos += 1;
        Ok((s.token, s.offset))
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn advance(&mut self) {
        self.pos += 1;
    }

    fn unexpected(&self, expected: &'static str) -> ParseError {
        match self.tokens.get(self.pos) {
            Some(s) => ParseError::Unexpected {
                found: s.token.to_string(),
                expected,
                offset: s.offset,
            },
            None => ParseError::UnexpectedEnd { expected },
        }
    }

    fn unexpected_prev(&self, expected: &'static str) -> ParseError {
        match self.tokens.get(self.pos.saturating_sub(1)) {
            Some(s) => ParseError::Unexpected {
                found: s.token.to_string(),
                expected,
                offset: s.offset,
            },
            None => ParseError::UnexpectedEnd { expected },
        }
    }
}

enum SetKind {
    Subset,
    Disjoint,
    Intersects,
}

enum SetElem {
    Label(String),
    Id(u32),
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_itemset::Itemset;

    fn attrs() -> AttributeTable {
        let mut t = AttributeTable::new(6);
        t.add_numeric("price", vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        t.add_categorical(
            "type",
            &["soda", "soda", "snacks", "dairy", "dairy", "beer"],
        );
        t
    }

    #[test]
    fn parses_paper_example_query() {
        let a = attrs();
        let cs = parse_constraints(
            "ct_supported & correlated \
             & {snacks} disjoint S.type \
             & {soda, beer} subset S.type \
             & max(S.price) <= 50 & sum(S.price) >= 100",
            &a,
        )
        .unwrap();
        assert_eq!(cs.len(), 4);
        // Check semantics on a sample set: item 0 (soda), 5 (beer).
        let s = Itemset::from_ids([0, 5]);
        assert!(cs.constraints()[0].satisfied(&s, &a)); // no snacks
        assert!(cs.constraints()[1].satisfied(&s, &a)); // soda + beer covered
        assert!(cs.constraints()[2].satisfied(&s, &a)); // max price 6 ≤ 50
        assert!(!cs.constraints()[3].satisfied(&s, &a)); // sum 7 < 100
    }

    #[test]
    fn parses_aggregates_and_bare_attr() {
        let a = attrs();
        let cs = parse_constraints("min(price) >= 2 & count(items) <= 3", &a).unwrap();
        assert_eq!(cs.len(), 2);
        assert_eq!(cs.constraints()[0], Constraint::min_ge("price", 2.0));
    }

    #[test]
    fn parses_count_distinct_and_not_subset() {
        let a = attrs();
        let cs = parse_constraints("|S.type| <= 1 & {beer} not subset type", &a).unwrap();
        assert_eq!(cs.len(), 2);
        assert!(matches!(
            cs.constraints()[0],
            Constraint::CountDistinct { .. }
        ));
        assert!(matches!(
            cs.constraints()[1],
            Constraint::ConstSubset { negated: true, .. }
        ));
    }

    #[test]
    fn parses_intersects_and_avg() {
        let a = attrs();
        let cs = parse_constraints("{dairy} intersects type & avg(price) <= 3.5", &a).unwrap();
        assert!(matches!(
            cs.constraints()[0],
            Constraint::Disjoint { negated: true, .. }
        ));
        assert!(matches!(cs.constraints()[1], Constraint::Avg { .. }));
        assert!(cs.has_neither_monotone());
    }

    #[test]
    fn empty_query_is_unconstrained() {
        let a = attrs();
        let cs = parse_constraints("", &a).unwrap();
        assert!(cs.is_empty());
        let cs = parse_constraints("correlated & ct_supported", &a).unwrap();
        assert!(cs.is_empty());
    }

    #[test]
    fn unknown_names_are_errors() {
        let a = attrs();
        assert_eq!(
            parse_constraints("max(weight) <= 3", &a),
            Err(ParseError::UnknownNumericAttr {
                attr: "weight".into(),
                offset: 4
            })
        );
        assert_eq!(
            parse_constraints("{fish} subset type", &a),
            Err(ParseError::UnknownLabel {
                label: "fish".into(),
                attr: "type".into(),
                offset: 1
            })
        );
        assert_eq!(
            parse_constraints("{soda} subset brand", &a),
            Err(ParseError::UnknownCategoricalAttr {
                attr: "brand".into(),
                offset: 14
            })
        );
    }

    #[test]
    fn syntax_errors_carry_position() {
        let a = attrs();
        match parse_constraints("max(price) <= ", &a) {
            Err(ParseError::UnexpectedEnd { expected }) => assert_eq!(expected, "a number"),
            other => panic!("expected UnexpectedEnd, got {other:?}"),
        }
        match parse_constraints("max price) <= 3", &a) {
            Err(ParseError::Unexpected { expected, .. }) => assert_eq!(expected, "'('"),
            other => panic!("expected Unexpected, got {other:?}"),
        }
        assert!(matches!(
            parse_constraints("max(price) = 3", &a),
            Err(ParseError::Lex(_))
        ));
    }

    #[test]
    fn parses_item_level_constraints() {
        let a = attrs();
        let cs = parse_constraints(
            "{0, 5} subset S & {2} disjoint S & {1, 3} intersects S & {4} not subset S",
            &a,
        )
        .unwrap();
        assert_eq!(cs.len(), 4);
        assert!(matches!(
            cs.constraints()[0],
            Constraint::ItemSubset { negated: false, .. }
        ));
        assert!(matches!(
            cs.constraints()[1],
            Constraint::ItemDisjoint { negated: false, .. }
        ));
        assert!(matches!(
            cs.constraints()[2],
            Constraint::ItemDisjoint { negated: true, .. }
        ));
        assert!(matches!(
            cs.constraints()[3],
            Constraint::ItemSubset { negated: true, .. }
        ));
        // Semantics: {0, 5} must both be present.
        let s = Itemset::from_ids([0, 1, 5]);
        assert!(cs.constraints()[0].satisfied(&s, &a));
        assert!(!cs.constraints()[0].satisfied(&Itemset::from_ids([0, 1]), &a));
    }

    #[test]
    fn item_level_error_cases() {
        let a = attrs();
        assert_eq!(
            parse_constraints("{soda} subset S", &a),
            Err(ParseError::ItemIdExpected {
                found: "soda".into(),
                offset: 1
            })
        );
        assert_eq!(
            parse_constraints("{99} subset S", &a),
            Err(ParseError::ItemOutOfUniverse {
                item: 99,
                n_items: 6,
                offset: 1
            })
        );
        assert!(parse_constraints("{1.5} subset S", &a).is_err());
    }

    #[test]
    fn trailing_ampersand_is_an_error() {
        let a = attrs();
        assert!(parse_constraints("max(price) <= 3 &", &a).is_err());
    }

    #[test]
    fn parse_query_records_clause_spans() {
        let a = attrs();
        let input = "max(price) <= 3 & {soda} subset type";
        let q = parse_query(input, &a).unwrap();
        assert_eq!(q.constraints.len(), 2);
        assert_eq!(q.spans, vec![Span::new(0, 15), Span::new(18, 36)]);
        assert_eq!(&input[0..15], "max(price) <= 3");
        assert_eq!(&input[18..36], "{soda} subset type");
    }

    #[test]
    fn markers_contribute_no_span() {
        let a = attrs();
        let input = "correlated & max(price) <= 3 & ct_supported";
        let q = parse_query(input, &a).unwrap();
        assert_eq!(q.constraints.len(), 1);
        assert_eq!(q.spans, vec![Span::new(13, 28)]);
        assert_eq!(&input[13..28], "max(price) <= 3");
    }
}
