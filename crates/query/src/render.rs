//! Rendering constraints back to query text.
//!
//! The inverse of [`crate::parser`]: turns a [`Constraint`] /
//! [`ConstraintSet`] into a string the parser accepts, resolving
//! category ids back to their labels. `parse(render(c)) == c` for every
//! constraint the language can express — property-tested in the crate's
//! integration tests.

use std::fmt::Write as _;

use ccs_constraints::{AttributeTable, Cmp, Constraint, ConstraintSet};

/// Why a constraint could not be rendered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RenderError {
    /// A categorical constraint references an attribute missing from the
    /// table.
    UnknownCategoricalAttr(String),
    /// A category id has no label in the referenced column.
    UnknownCategoryId {
        /// The unresolvable id.
        id: u32,
        /// The column it was looked up in.
        attr: String,
    },
    /// A label contains characters the grammar cannot express (it would
    /// not survive a parse round-trip).
    UnrenderableLabel(String),
}

impl std::fmt::Display for RenderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RenderError::UnknownCategoricalAttr(a) => {
                write!(f, "unknown categorical attribute '{a}'")
            }
            RenderError::UnknownCategoryId { id, attr } => {
                write!(f, "category id {id} has no label in attribute '{attr}'")
            }
            RenderError::UnrenderableLabel(l) => {
                write!(f, "label '{l}' is not expressible in the query grammar")
            }
        }
    }
}

impl std::error::Error for RenderError {}

fn cmp_str(cmp: Cmp) -> &'static str {
    match cmp {
        Cmp::Le => "<=",
        Cmp::Ge => ">=",
    }
}

fn check_label(label: &str) -> Result<(), RenderError> {
    let ok = !label.is_empty()
        && label
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if ok {
        Ok(())
    } else {
        Err(RenderError::UnrenderableLabel(label.to_owned()))
    }
}

/// Renders one constraint as query text.
///
/// # Errors
///
/// Returns [`RenderError`] when category ids cannot be resolved to
/// grammar-compatible labels.
pub fn render_constraint(c: &Constraint, attrs: &AttributeTable) -> Result<String, RenderError> {
    let mut out = String::new();
    match c {
        Constraint::Agg {
            agg,
            attr,
            cmp,
            value,
        } => {
            let _ = write!(out, "{agg}(S.{attr}) {} {value}", cmp_str(*cmp));
        }
        Constraint::Avg { attr, cmp, value } => {
            let _ = write!(out, "avg(S.{attr}) {} {value}", cmp_str(*cmp));
        }
        Constraint::CountDistinct { attr, cmp, value } => {
            let _ = write!(out, "|S.{attr}| {} {value}", cmp_str(*cmp));
        }
        Constraint::ConstSubset {
            attr,
            categories,
            negated,
        }
        | Constraint::Disjoint {
            attr,
            categories,
            negated,
        } => {
            let col = attrs
                .categorical(attr)
                .ok_or_else(|| RenderError::UnknownCategoricalAttr(attr.clone()))?;
            out.push('{');
            for (i, &id) in categories.iter().enumerate() {
                if id as usize >= col.n_categories() {
                    return Err(RenderError::UnknownCategoryId {
                        id,
                        attr: attr.clone(),
                    });
                }
                let label = col.label(id);
                check_label(label)?;
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(label);
            }
            out.push('}');
            let op = match c {
                Constraint::ConstSubset { negated: false, .. } => "subset",
                Constraint::ConstSubset { negated: true, .. } => "not subset",
                Constraint::Disjoint { negated: false, .. } => "disjoint",
                _ => "intersects",
            };
            let _ = write!(out, " {op} S.{attr}");
            let _ = negated;
        }
        Constraint::ItemSubset { items, negated } | Constraint::ItemDisjoint { items, negated } => {
            out.push('{');
            for (i, id) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{id}");
            }
            out.push('}');
            let op = match c {
                Constraint::ItemSubset { negated: false, .. } => "subset",
                Constraint::ItemSubset { negated: true, .. } => "not subset",
                Constraint::ItemDisjoint { negated: false, .. } => "disjoint",
                _ => "intersects",
            };
            let _ = write!(out, " {op} S");
            let _ = negated;
        }
    }
    Ok(out)
}

/// Renders a conjunction as query text (with the implied markers, so the
/// output reads like the paper's queries). An empty conjunction renders
/// as just the markers.
///
/// # Errors
///
/// As [`render_constraint`].
pub fn render_constraints(
    cs: &ConstraintSet,
    attrs: &AttributeTable,
) -> Result<String, RenderError> {
    let mut out = String::from("correlated & ct_supported");
    for c in cs.constraints() {
        out.push_str(" & ");
        out.push_str(&render_constraint(c, attrs)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_constraints;
    use ccs_constraints::AggFn;
    use std::collections::BTreeSet;

    fn attrs() -> AttributeTable {
        let mut t = AttributeTable::new(6);
        t.add_numeric("price", vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        t.add_categorical("type", &["soda", "soda", "snack", "dairy", "dairy", "beer"]);
        t
    }

    fn roundtrip(c: Constraint) {
        let a = attrs();
        let text = render_constraint(&c, &a).unwrap();
        let parsed = parse_constraints(&text, &a).unwrap();
        assert_eq!(parsed.constraints(), &[c], "roundtrip through: {text}");
    }

    #[test]
    fn aggregates_roundtrip() {
        roundtrip(Constraint::max_le("price", 4.0));
        roundtrip(Constraint::min_ge("price", 2.5));
        roundtrip(Constraint::sum_ge("price", 10.0));
        roundtrip(Constraint::agg(AggFn::Count, "price", Cmp::Le, 3.0));
        roundtrip(Constraint::Avg {
            attr: "price".into(),
            cmp: Cmp::Ge,
            value: 3.5,
        });
    }

    #[test]
    fn categorical_constraints_roundtrip() {
        let a = attrs();
        let col = a.categorical("type").unwrap();
        let cats: BTreeSet<u32> = ["soda", "beer"]
            .iter()
            .map(|l| col.id_of(l).unwrap())
            .collect();
        roundtrip(Constraint::ConstSubset {
            attr: "type".into(),
            categories: cats.clone(),
            negated: false,
        });
        roundtrip(Constraint::Disjoint {
            attr: "type".into(),
            categories: cats.clone(),
            negated: true,
        });
        let single: BTreeSet<u32> = [col.id_of("snack").unwrap()].into_iter().collect();
        roundtrip(Constraint::ConstSubset {
            attr: "type".into(),
            categories: single,
            negated: true,
        });
        roundtrip(Constraint::CountDistinct {
            attr: "type".into(),
            cmp: Cmp::Le,
            value: 1,
        });
    }

    #[test]
    fn item_constraints_roundtrip() {
        let items: BTreeSet<u32> = [0u32, 3].into_iter().collect();
        roundtrip(Constraint::ItemSubset {
            items: items.clone(),
            negated: false,
        });
        roundtrip(Constraint::ItemSubset {
            items: items.clone(),
            negated: true,
        });
        roundtrip(Constraint::ItemDisjoint {
            items: items.clone(),
            negated: false,
        });
        roundtrip(Constraint::ItemDisjoint {
            items,
            negated: true,
        });
    }

    #[test]
    fn conjunction_roundtrips_with_markers() {
        let a = attrs();
        let cs = ConstraintSet::new()
            .and(Constraint::max_le("price", 5.0))
            .and(Constraint::sum_ge("price", 3.0));
        let text = render_constraints(&cs, &a).unwrap();
        assert!(text.starts_with("correlated & ct_supported & "));
        assert_eq!(parse_constraints(&text, &a).unwrap(), cs);
        // Empty conjunction: just the markers.
        let empty = render_constraints(&ConstraintSet::new(), &a).unwrap();
        assert!(parse_constraints(&empty, &a).unwrap().is_empty());
    }

    #[test]
    fn render_errors() {
        let a = attrs();
        let bad_attr = Constraint::ConstSubset {
            attr: "brand".into(),
            categories: [0u32].into_iter().collect(),
            negated: false,
        };
        assert_eq!(
            render_constraint(&bad_attr, &a),
            Err(RenderError::UnknownCategoricalAttr("brand".into()))
        );
        let bad_id = Constraint::Disjoint {
            attr: "type".into(),
            categories: [99u32].into_iter().collect(),
            negated: false,
        };
        assert_eq!(
            render_constraint(&bad_id, &a),
            Err(RenderError::UnknownCategoryId {
                id: 99,
                attr: "type".into()
            })
        );
        // A label with a space cannot be re-parsed.
        let mut t = AttributeTable::new(1);
        t.add_categorical("type", &["fizzy drink"]);
        let c = Constraint::Disjoint {
            attr: "type".into(),
            categories: [0u32].into_iter().collect(),
            negated: false,
        };
        assert_eq!(
            render_constraint(&c, &t),
            Err(RenderError::UnrenderableLabel("fizzy drink".into()))
        );
    }
}
