//! Fuzz-style robustness tests for the query front end.
//!
//! The parser is fed garbage bytes, token soup, prefix truncations of a
//! valid query, and single-byte mutations of one. The contract under
//! test: `parse_constraints` never panics — every input yields `Ok` or
//! a structured [`ccs_query::ParseError`].

use ccs_constraints::AttributeTable;
use ccs_query::parse_constraints;
use proptest::prelude::*;

fn attrs() -> AttributeTable {
    let mut t = AttributeTable::with_identity_prices(6);
    t.add_categorical("type", &["soda", "soda", "snack", "dairy", "dairy", "beer"]);
    t
}

/// A query exercising every clause form the grammar has.
const VALID: &str = "ct_supported & correlated & {snack} disjoint S.type \
                     & {soda, beer} subset S.type & {dairy} not subset S.type \
                     & max(S.price) <= 50 & sum(S.price) >= 100 \
                     & |S.type| <= 2 & {0, 3} subset S & avg(S.price) <= 4";

#[test]
fn the_exemplar_query_parses() {
    assert!(parse_constraints(VALID, &attrs()).is_ok());
}

#[test]
fn every_prefix_truncation_returns_ok_or_err() {
    let attrs = attrs();
    for end in 0..=VALID.len() {
        // VALID is pure ASCII, so every index is a char boundary.
        let _ = parse_constraints(&VALID[..end], &attrs);
    }
}

#[test]
fn unknown_aggregate_word_is_an_error_not_a_panic() {
    let err = parse_constraints("median(S.price) <= 3", &attrs()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("expected"), "unhelpful message: {msg}");
}

proptest! {
    #[test]
    fn garbage_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let input = String::from_utf8_lossy(&bytes);
        let _ = parse_constraints(&input, &attrs());
    }

    #[test]
    fn token_soup_never_panics(parts in proptest::collection::vec(
        prop_oneof![
            Just("max"), Just("min"), Just("sum"), Just("count"), Just("avg"),
            Just("("), Just(")"), Just("{"), Just("}"), Just("&"),
            Just("<="), Just(">="), Just("|"), Just("."), Just(","),
            Just("S"), Just("price"), Just("type"), Just("soda"), Just("7"),
            Just("-3"), Just("not"), Just("subset"), Just("disjoint"),
            Just("intersects"), Just("correlated"),
        ],
        0..12,
    )) {
        let input = parts.join(" ");
        let _ = parse_constraints(&input, &attrs());
    }

    #[test]
    fn single_byte_mutations_never_panic(idx in 0usize..VALID.len(), b in any::<u8>()) {
        let mut bytes = VALID.as_bytes().to_vec();
        bytes[idx] = b;
        if let Ok(s) = String::from_utf8(bytes) {
            let _ = parse_constraints(&s, &attrs());
        }
    }
}
