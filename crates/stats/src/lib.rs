//! # ccs-stats — statistics kernel for correlation mining
//!
//! From-first-principles implementations of everything the chi-squared
//! correlation test of Brin et al. (SIGMOD 1997) needs, as used by the
//! constrained miners of Grahne, Lakshmanan & Wang (ICDE 2000):
//!
//! * [`gamma`] — `ln Γ` (Lanczos) and the regularized incomplete gamma
//!   functions (series + continued fraction),
//! * [`chi2`] — chi-squared CDF, survival function (p-values), and
//!   quantiles (critical values),
//! * [`contingency`] — `2^k`-cell contingency tables over itemsets, the
//!   chi-squared independence test, and the anti-monotone CT-support
//!   significance test,
//! * [`measure`] — the pluggable correlation-measure layer (χ² /
//!   all-confidence / bond) behind one validated verdict interface.

#![warn(missing_docs)]

pub mod chi2;
pub mod contingency;
pub mod gamma;
pub mod measure;

pub use chi2::{chi2_cdf, chi2_quantile, chi2_sf};
pub use contingency::ContingencyTable;
pub use gamma::{gamma_p, gamma_q, ln_gamma};
pub use measure::{Measure, MeasureContext, MeasureError, MonotonicityClass};
