//! Gamma-family special functions, implemented from first principles.
//!
//! The chi-squared distribution needed by the correlation test is defined in
//! terms of the regularized incomplete gamma function, which in turn needs
//! `ln Γ`. No statistics crate is on this project's approved dependency
//! list, so the functions are implemented here: Lanczos approximation for
//! `ln Γ`, a power series for the lower incomplete gamma in its
//! fast-converging region, and a modified Lentz continued fraction for the
//! upper one. Accuracy is ~1e-12 over the parameter ranges the miner uses
//! (degrees of freedom up to a few thousand, statistics up to ~1e6), which
//! the unit tests pin against published table values.

/// Lanczos coefficients for g = 7, n = 9 (Numerical Recipes / Boost choice).
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// # Panics
///
/// Panics if `x <= 0` (the reflection branch is not needed by this
/// workspace and is deliberately not implemented).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos: Γ(x) = sqrt(2π) (x+g-0.5)^(x-0.5) e^-(x+g-0.5) A_g(x)
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64 - 1.0);
    }
    let t = x + LANCZOS_G - 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x - 0.5) * t.ln() - t + acc.ln()
}

/// Relative machine precision used as the series / fraction stopping bound.
const EPS: f64 = 1e-15;
/// Smallest representable magnitude guard for the Lentz algorithm.
const FPMIN: f64 = 1e-300;
/// Iteration cap; convergence is geometric so this is never reached for
/// sane inputs, but it bounds the loop against NaN poisoning.
const MAX_ITER: usize = 10_000;

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0` and `P(a, ∞) = 1`; `P` is the CDF of the Gamma(a, 1)
/// distribution.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        lower_series(a, x)
    } else {
        1.0 - upper_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)`.
///
/// Computed directly in whichever region converges fast, so small tail
/// probabilities keep full relative precision.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - lower_series(a, x)
    } else {
        upper_continued_fraction(a, x)
    }
}

/// Series expansion of `P(a, x)`, convergent for `x < a + 1`.
fn lower_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Modified Lentz evaluation of the continued fraction for `Q(a, x)`,
/// convergent for `x >= a + 1`.
fn upper_continued_fraction(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24.0_f64.ln(), 1e-11);
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        close(ln_gamma(10.0), 362_880.0_f64.ln(), 1e-10);
        // Γ(1.5) = √π / 2
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn ln_gamma_large_argument_uses_stirling_regime() {
        // ln Γ(100) = ln(99!) — compare against exact factorial in f64.
        let exact: f64 = (1..100).map(|k| (k as f64).ln()).sum();
        close(ln_gamma(100.0), exact, 1e-9);
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn gamma_p_boundaries() {
        close(gamma_p(2.5, 0.0), 0.0, 0.0);
        close(gamma_q(2.5, 0.0), 1.0, 0.0);
        // For large x the mass is all below: P → 1.
        close(gamma_p(1.0, 50.0), 1.0, 1e-12);
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // a = 1 reduces to the exponential CDF: P(1, x) = 1 - e^-x.
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
            close(gamma_q(1.0, x), (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn gamma_p_half_is_erf() {
        // P(1/2, x) = erf(√x); erf(1) = 0.8427007929497149.
        close(gamma_p(0.5, 1.0), 0.842_700_792_949_714_9, 1e-12);
        // erf(2) = 0.9953222650189527 at x = 4.
        close(gamma_p(0.5, 4.0), 0.995_322_265_018_952_7, 1e-12);
    }

    #[test]
    fn p_plus_q_is_one_across_both_regimes() {
        for &a in &[0.5, 1.0, 2.0, 7.5, 40.0] {
            for &x in &[0.01, 0.5, 1.0, a, a + 0.9, a + 1.1, 3.0 * a + 10.0] {
                let p = gamma_p(a, x);
                let q = gamma_q(a, x);
                close(p + q, 1.0, 1e-12);
                assert!((0.0..=1.0).contains(&p), "P({a},{x}) = {p} out of range");
            }
        }
    }

    #[test]
    fn gamma_p_is_monotone_in_x() {
        let a = 3.0;
        let mut prev = -1.0;
        for i in 0..200 {
            let x = i as f64 * 0.25;
            let p = gamma_p(a, x);
            assert!(p >= prev, "P({a}, {x}) decreased");
            prev = p;
        }
    }
}
