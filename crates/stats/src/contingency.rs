//! Contingency tables over itemsets, the chi-squared correlation test, and
//! the CT-support significance test.
//!
//! For a `k`-itemset `S = {s_0 < … < s_{k-1}}` the contingency table has
//! `2^k` cells, one per *minterm*: cell `c` counts the transactions that
//! contain exactly the items `{s_j | bit j of c = 1}` among `S`. Under the
//! independence hypothesis the expected count of a cell is
//! `n · Π_j p_j^{b_j} (1 − p_j)^{1−b_j}` where `p_j` is the marginal
//! frequency of `s_j`. The chi-squared statistic sums `(O−E)²/E` over all
//! cells, with `2^k − k − 1` degrees of freedom (1 for a pair, matching the
//! classical 2×2 test of Brin et al.).
//!
//! *CT-support* (contingency-table support) is the statistical-significance
//! filter of Brin et al.: at least a fraction `p` of the cells must have
//! count ≥ `s`. It is anti-monotone, while being correlated is monotone —
//! the two borders that shape the whole solution space of the paper.

use ccs_itemset::{Itemset, MintermCounter};

use crate::chi2::{chi2_quantile, chi2_sf};

/// A `2^k`-cell contingency table for a `k`-itemset.
#[derive(Debug, Clone, PartialEq)]
pub struct ContingencyTable {
    set: Itemset,
    counts: Vec<u64>,
    n: u64,
}

impl ContingencyTable {
    /// Builds the table for `set` using the given counting strategy.
    pub fn build<C: MintermCounter + ?Sized>(counter: &mut C, set: &Itemset) -> Self {
        let counts = counter.minterm_counts(set);
        Self::from_counts(set.clone(), counts)
    }

    /// Wraps precomputed minterm counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != 2^set.len()`.
    pub fn from_counts(set: Itemset, counts: Vec<u64>) -> Self {
        assert_eq!(
            counts.len(),
            1usize << set.len(),
            "a {}-itemset needs 2^{} cells, got {}",
            set.len(),
            set.len(),
            counts.len()
        );
        let n = counts.iter().sum();
        ContingencyTable { set, counts, n }
    }

    /// The itemset this table describes.
    pub fn itemset(&self) -> &Itemset {
        &self.set
    }

    /// Observed cell counts (length `2^k`, bit `j` of the index = item `j`
    /// present).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of transactions.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of cells (`2^k`).
    pub fn n_cells(&self) -> usize {
        self.counts.len()
    }

    /// Marginal frequency of the `j`-th smallest item of the set: the
    /// fraction of transactions containing it.
    pub fn marginal(&self, j: usize) -> f64 {
        if self.n == 0 {
            assert!(j < self.set.len(), "marginal index {j} out of range");
            return 0.0;
        }
        self.marginal_count(j) as f64 / self.n as f64
    }

    /// Absolute marginal count of the `j`-th smallest item of the set:
    /// the number of transactions containing it.
    pub fn marginal_count(&self, j: usize) -> u64 {
        assert!(j < self.set.len(), "marginal index {j} out of range");
        let mut present = 0u64;
        for (cell, &count) in self.counts.iter().enumerate() {
            if cell & (1 << j) != 0 {
                present += count;
            }
        }
        present
    }

    /// Expected count of cell `c` under full independence.
    pub fn expected(&self, cell: usize) -> f64 {
        let mut e = self.n as f64;
        for j in 0..self.set.len() {
            let p = self.marginal(j);
            e *= if cell & (1 << j) != 0 { p } else { 1.0 - p };
        }
        e
    }

    /// The chi-squared statistic `Σ (O − E)² / E` over cells with `E > 0`.
    ///
    /// Cells whose expectation is exactly zero (an item with marginal 0
    /// or 1) contribute nothing: such an item carries no information about
    /// dependence, and the observed count in those cells is necessarily
    /// zero as well.
    pub fn chi_squared(&self) -> f64 {
        let k = self.set.len();
        if k < 2 || self.n == 0 {
            return 0.0;
        }
        // Precompute marginals once.
        let marginals: Vec<f64> = (0..k).map(|j| self.marginal(j)).collect();
        let mut stat = 0.0;
        for (cell, &count) in self.counts.iter().enumerate() {
            let mut e = self.n as f64;
            for (j, &p) in marginals.iter().enumerate() {
                e *= if cell & (1 << j) != 0 { p } else { 1.0 - p };
            }
            if e > 0.0 {
                let diff = count as f64 - e;
                stat += diff * diff / e;
            }
        }
        stat
    }

    /// Degrees of freedom of the independence test: `2^k − k − 1`
    /// (= 1 for a 2-itemset, matching the classical 2×2 table).
    ///
    /// Degenerate for `k < 2`, where no correlation question exists.
    pub fn degrees_of_freedom(&self) -> u32 {
        let k = self.set.len() as u32;
        if k < 2 {
            0
        } else {
            (1u32 << k) - k - 1
        }
    }

    /// The p-value of the observed statistic: the probability of seeing a
    /// statistic at least this large if the items were independent.
    ///
    /// Returns `1.0` for degenerate tables (`k < 2`), which can never be
    /// correlated.
    pub fn p_value(&self) -> f64 {
        let df = self.degrees_of_freedom();
        if df == 0 {
            return 1.0;
        }
        chi2_sf(self.chi_squared(), df)
    }

    /// The correlation test at `confidence` (e.g. `0.9` in the paper's
    /// experiments): `true` iff the statistic exceeds the df = 1
    /// chi-squared quantile at that confidence.
    ///
    /// The comparison uses **one** degree of freedom at every table size,
    /// following Brin et al. and §2.1 of the paper ("a degree of freedom,
    /// which is always 1 for boolean variables"). The chi-squared
    /// statistic never decreases when an item is added, so against this
    /// *fixed* cutoff being correlated is a *monotone* (upward-closed)
    /// property — the closure every miner in this workspace exploits. A
    /// statistically orthodox test of the full-independence model would
    /// use [`ContingencyTable::degrees_of_freedom`] (see
    /// [`ContingencyTable::p_value`]) but is not upward closed.
    ///
    /// Degenerate tables (`k < 2`) are never correlated.
    pub fn is_correlated(&self, confidence: f64) -> bool {
        if self.set.len() < 2 {
            return false;
        }
        self.chi_squared() >= chi2_quantile(confidence, 1)
    }

    /// The all-confidence of the set: the all-present cell count divided
    /// by the largest marginal count — equivalently, the smallest
    /// confidence of any rule `s_j ⇒ S ∖ {s_j}`.
    ///
    /// Anti-monotone (downward closed over sets of size ≥ 2): adding an
    /// item can only shrink the numerator and grow the denominator, and
    /// IEEE division is monotone in each argument, so the value never
    /// increases — exactly, not just approximately, in `f64`.
    ///
    /// `0.0` for empty sets and when no item occurs at all.
    pub fn all_confidence(&self) -> f64 {
        let k = self.set.len();
        if k == 0 {
            return 0.0;
        }
        let max_marginal = (0..k).map(|j| self.marginal_count(j)).max().unwrap_or(0);
        if max_marginal == 0 {
            return 0.0;
        }
        self.counts[self.counts.len() - 1] as f64 / max_marginal as f64
    }

    /// The bond of the set: the all-present cell count divided by the
    /// number of transactions containing *at least one* of the items —
    /// the Jaccard similarity of the items' transaction sets.
    ///
    /// Anti-monotone for the same reason as
    /// [`ContingencyTable::all_confidence`].
    ///
    /// `0.0` for empty sets and when no item occurs at all.
    pub fn bond(&self) -> f64 {
        if self.set.is_empty() {
            return 0.0;
        }
        let union = self.n - self.counts[0];
        if union == 0 {
            return 0.0;
        }
        self.counts[self.counts.len() - 1] as f64 / union as f64
    }

    /// Fraction of cells whose observed count is at least `s`.
    pub fn ct_support_fraction(&self, s: u64) -> f64 {
        let meeting = self.counts.iter().filter(|&&c| c >= s).count();
        meeting as f64 / self.counts.len() as f64
    }

    /// The CT-support test: at least a fraction `p` of cells must have
    /// count ≥ `s`. Anti-monotone (downward closed).
    ///
    /// The comparison tolerates floating-point representation of `p`
    /// (e.g. `p = 0.25` with 4 cells requires exactly 1 cell).
    pub fn is_ct_supported(&self, s: u64, p: f64) -> bool {
        let meeting = self.counts.iter().filter(|&&c| c >= s).count();
        meeting as f64 + 1e-9 >= p * self.counts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_itemset::{HorizontalCounter, TransactionDb};

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    /// Figure B of the paper (adapted from Brin et al.): coffee ×
    /// doughnuts over 100 baskets.
    fn coffee_doughnuts() -> ContingencyTable {
        // bit 0 = coffee present, bit 1 = doughnuts present.
        // O(coffee, doughnuts) = 30, O(¬coffee, doughnuts) = 20,
        // O(coffee, ¬doughnuts) = 39, O(¬coffee, ¬doughnuts) = 11.
        ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![11, 39, 20, 30])
    }

    #[test]
    fn figure_b_marginals() {
        let t = coffee_doughnuts();
        assert_eq!(t.n(), 100);
        close(t.marginal(0), 0.69, 1e-12); // coffee row sum 69
        close(t.marginal(1), 0.50, 1e-12); // doughnuts column sum 50
    }

    #[test]
    fn figure_b_expected_counts() {
        let t = coffee_doughnuts();
        close(t.expected(0b11), 34.5, 1e-9);
        close(t.expected(0b01), 34.5, 1e-9);
        close(t.expected(0b10), 15.5, 1e-9);
        close(t.expected(0b00), 15.5, 1e-9);
    }

    #[test]
    fn figure_b_chi_squared_statistic() {
        let t = coffee_doughnuts();
        // 2·(4.5²/34.5) + 2·(4.5²/15.5) = 3.7868…
        close(t.chi_squared(), 3.786_816, 1e-5);
        assert_eq!(t.degrees_of_freedom(), 1);
        // Significant at 90% (2.706) but not at 95% (3.841).
        assert!(t.is_correlated(0.90));
        assert!(!t.is_correlated(0.95));
        let p = t.p_value();
        assert!(p > 0.05 && p < 0.10, "p-value = {p}");
    }

    #[test]
    fn independent_items_are_not_correlated() {
        // Perfectly independent 2×2: marginals 0.5/0.5, all cells 25.
        let t = ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![25, 25, 25, 25]);
        close(t.chi_squared(), 0.0, 1e-12);
        assert!(!t.is_correlated(0.9));
        close(t.p_value(), 1.0, 1e-12);
    }

    #[test]
    fn perfectly_dependent_items_have_large_statistic() {
        // Items always co-occur: cells {both, neither} only.
        let t = ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![50, 0, 0, 50]);
        close(t.chi_squared(), 100.0, 1e-9); // n·φ² with φ = 1
        assert!(t.is_correlated(0.99));
        assert!(t.p_value() < 1e-20);
    }

    #[test]
    fn degenerate_marginal_contributes_nothing() {
        // Item 1 present in every transaction: its cells with "absent" have
        // E = 0 and O = 0; statistic must be finite and zero.
        let t = ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![0, 0, 50, 50]);
        close(t.chi_squared(), 0.0, 1e-12);
        assert!(!t.is_correlated(0.9));
    }

    #[test]
    fn singleton_and_empty_tables_are_degenerate() {
        let t1 = ContingencyTable::from_counts(Itemset::from_ids([3]), vec![40, 60]);
        assert_eq!(t1.degrees_of_freedom(), 0);
        assert!(!t1.is_correlated(0.9));
        close(t1.p_value(), 1.0, 0.0);
        let t0 = ContingencyTable::from_counts(Itemset::empty(), vec![100]);
        assert_eq!(t0.degrees_of_freedom(), 0);
        close(t0.chi_squared(), 0.0, 0.0);
    }

    #[test]
    fn three_way_degrees_of_freedom() {
        let t = ContingencyTable::from_counts(
            Itemset::from_ids([0, 1, 2]),
            vec![10, 10, 10, 10, 10, 10, 10, 10],
        );
        assert_eq!(t.degrees_of_freedom(), 4); // 2^3 - 3 - 1
        close(t.chi_squared(), 0.0, 1e-9); // uniform ⇒ independent
    }

    #[test]
    fn figure_b_ratio_measures() {
        let t = coffee_doughnuts();
        // both = 30, coffee marginal = 69, doughnuts marginal = 50,
        // union = 100 − 11 = 89.
        close(t.all_confidence(), 30.0 / 69.0, 1e-12);
        close(t.bond(), 30.0 / 89.0, 1e-12);
    }

    #[test]
    fn ratio_measures_on_degenerate_tables() {
        let empty = ContingencyTable::from_counts(Itemset::empty(), vec![100]);
        close(empty.all_confidence(), 0.0, 0.0);
        close(empty.bond(), 0.0, 0.0);
        // No item ever occurs: both denominators are empty.
        let absent = ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![50, 0, 0, 0]);
        close(absent.all_confidence(), 0.0, 0.0);
        close(absent.bond(), 0.0, 0.0);
        // A singleton is its own union and marginal.
        let single = ContingencyTable::from_counts(Itemset::from_ids([3]), vec![40, 60]);
        close(single.all_confidence(), 1.0, 0.0);
        close(single.bond(), 1.0, 0.0);
    }

    #[test]
    fn perfect_co_occurrence_maximizes_ratio_measures() {
        let t = ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![50, 0, 0, 50]);
        close(t.all_confidence(), 1.0, 0.0);
        close(t.bond(), 1.0, 0.0);
    }

    #[test]
    fn ct_support_counts_cells() {
        let t = coffee_doughnuts();
        // Cells: 11, 39, 20, 30. With s = 20: 3 of 4 cells qualify.
        close(t.ct_support_fraction(20), 0.75, 1e-12);
        assert!(t.is_ct_supported(20, 0.75));
        assert!(t.is_ct_supported(20, 0.5));
        assert!(!t.is_ct_supported(20, 0.76));
        assert!(t.is_ct_supported(40, 0.0));
        assert!(!t.is_ct_supported(40, 0.25));
    }

    #[test]
    fn ct_support_tolerates_float_fraction() {
        // 4 cells, p = 0.25 ⇒ exactly one qualifying cell suffices.
        let t = ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![100, 0, 0, 0]);
        assert!(t.is_ct_supported(100, 0.25));
    }

    #[test]
    fn build_from_counter_matches_from_counts() {
        let db = TransactionDb::from_ids(2, vec![vec![0, 1], vec![0], vec![1], vec![], vec![0, 1]]);
        let mut counter = HorizontalCounter::new(&db);
        let t = ContingencyTable::build(&mut counter, &Itemset::from_ids([0, 1]));
        assert_eq!(t.counts(), &[1, 1, 1, 2]);
        assert_eq!(t.n(), 5);
    }

    #[test]
    fn chi_squared_invariance_under_item_relabeling() {
        // Swapping bit roles permutes cells but not the statistic.
        let a = ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![11, 39, 20, 30]);
        let b = ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![11, 20, 39, 30]);
        close(a.chi_squared(), b.chi_squared(), 1e-9);
    }
}
