//! Pluggable correlation measures behind one verdict interface.
//!
//! The paper's engine tests exactly one hypothesis — χ² significance
//! over the 2^k contingency table — but the correlated-pattern lineage
//! it spawned runs on other measures. This module concentrates the
//! measure choice in one place:
//!
//! * [`Measure`] — a closed dispatch enum (χ², all-confidence, bond);
//!   verdicts stay `Copy`-cheap on the hot path, no trait objects,
//! * [`MonotonicityClass`] — which way each measure's "correlated"
//!   predicate is closed in the itemset lattice, which is what the
//!   miners' pruning correctness rests on (Lemma 1 for χ²),
//! * [`MeasureContext`] — the validated, precomputed per-run criterion
//!   (generalizing the cached χ² critical value), the *only* place
//!   thresholds are range-checked.
//!
//! | Measure | Statistic | Closure |
//! |---------|-----------|---------|
//! | `chi2` | `Σ (O−E)²/E` vs the df = 1 quantile | upward (supersets stay correlated) |
//! | `all-confidence` | `O(all) / max_j O(s_j)` | downward (subsets stay correlated) |
//! | `bond` | `O(all) / O(union)` | downward (subsets stay correlated) |
//!
//! Both ratio measures are *exactly* anti-monotone in `f64`: extending a
//! set can only shrink the numerator and grow the denominator, and IEEE
//! division is correctly rounded and monotone in each argument, so the
//! statistic never increases and a verdict never flips `false → true`.

use std::fmt;
use std::str::FromStr;

use crate::chi2::chi2_quantile;
use crate::contingency::ContingencyTable;

/// Which direction a measure's "correlated" predicate is closed in the
/// itemset lattice (restricted to sets of size ≥ 2, below which no
/// correlation question exists).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MonotonicityClass {
    /// Supersets of correlated sets stay correlated — the paper's χ²
    /// Lemma 1, which BMS-family pruning exploits by extending only the
    /// *not yet* correlated frontier.
    UpwardClosed,
    /// Subsets (of size ≥ 2) of correlated sets stay correlated —
    /// all-confidence and bond. Sets that *fail* the measure are dead:
    /// no superset can recover, so miners extend only passing sets.
    DownwardClosed,
}

impl MonotonicityClass {
    /// `true` for [`MonotonicityClass::UpwardClosed`].
    pub fn is_upward(self) -> bool {
        matches!(self, MonotonicityClass::UpwardClosed)
    }

    /// `true` for [`MonotonicityClass::DownwardClosed`].
    pub fn is_downward(self) -> bool {
        matches!(self, MonotonicityClass::DownwardClosed)
    }

    /// Human-readable classification, as printed by `mine --explain`.
    pub fn describe(self) -> &'static str {
        match self {
            MonotonicityClass::UpwardClosed => "upward-closed (supersets stay correlated)",
            MonotonicityClass::DownwardClosed => {
                "downward-closed / anti-monotone (subsets stay correlated)"
            }
        }
    }
}

/// The correlation measure a mining run tests. Closed set: adding a
/// measure means adding a variant here, which forces every dispatch
/// site to handle it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Measure {
    /// The paper's χ² significance test against the fixed df = 1
    /// quantile (Brin et al.; §2.1). Threshold is the confidence level
    /// in `[0, 1)`.
    #[default]
    Chi2,
    /// `all-confidence(S) = O(all items) / max_j O(s_j)` — the smallest
    /// confidence of any rule `s_j ⇒ S∖{s_j}`. Threshold in `(0, 1]`.
    AllConfidence,
    /// `bond(S) = O(all items) / O(at least one item)` — the Jaccard
    /// similarity of the items' transaction sets. Threshold in `(0, 1]`.
    Bond,
}

impl Measure {
    /// Every supported measure, in CLI-listing order.
    pub const ALL: [Measure; 3] = [Measure::Chi2, Measure::AllConfidence, Measure::Bond];

    /// The CLI spelling (`chi2` / `all-confidence` / `bond`).
    pub fn name(self) -> &'static str {
        match self {
            Measure::Chi2 => "chi2",
            Measure::AllConfidence => "all-confidence",
            Measure::Bond => "bond",
        }
    }

    /// The closure direction of this measure's correlation predicate.
    pub fn monotonicity(self) -> MonotonicityClass {
        match self {
            Measure::Chi2 => MonotonicityClass::UpwardClosed,
            Measure::AllConfidence | Measure::Bond => MonotonicityClass::DownwardClosed,
        }
    }

    /// The raw statistic of this measure on a contingency table.
    pub fn statistic(self, table: &ContingencyTable) -> f64 {
        match self {
            Measure::Chi2 => table.chi_squared(),
            Measure::AllConfidence => table.all_confidence(),
            Measure::Bond => table.bond(),
        }
    }

    /// The valid threshold range, for error messages.
    pub fn threshold_range(self) -> &'static str {
        match self {
            Measure::Chi2 => "[0, 1)",
            Measure::AllConfidence | Measure::Bond => "(0, 1]",
        }
    }

    /// Whether `threshold` is in this measure's valid range: χ² takes a
    /// confidence level in `[0, 1)` (the quantile is undefined at 1);
    /// the ratio measures take a cutoff in `(0, 1]` (at 0 every pair of
    /// co-occurring items would pass vacuously).
    pub fn valid_threshold(self, threshold: f64) -> bool {
        match self {
            Measure::Chi2 => (0.0..1.0).contains(&threshold),
            Measure::AllConfidence | Measure::Bond => threshold > 0.0 && threshold <= 1.0,
        }
    }

    /// A sensible default threshold: the paper's 0.9 confidence for χ²,
    /// the literature's customary 0.5 for all-confidence, and 0.1 for
    /// bond (whose values shrink with set size much faster).
    pub fn default_threshold(self) -> f64 {
        match self {
            Measure::Chi2 => 0.9,
            Measure::AllConfidence => 0.5,
            Measure::Bond => 0.1,
        }
    }

    /// A stable one-byte tag for the checkpoint format (persist.rs is
    /// the only intended consumer). Tags are append-only.
    pub fn tag(self) -> u8 {
        match self {
            Measure::Chi2 => 0,
            Measure::AllConfidence => 1,
            Measure::Bond => 2,
        }
    }

    /// Inverse of [`Measure::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Measure::Chi2),
            1 => Some(Measure::AllConfidence),
            2 => Some(Measure::Bond),
            _ => None,
        }
    }
}

impl fmt::Display for Measure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Measure {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "chi2" => Ok(Measure::Chi2),
            "all-confidence" => Ok(Measure::AllConfidence),
            "bond" => Ok(Measure::Bond),
            other => Err(format!(
                "unknown measure '{other}' (expected chi2, all-confidence, or bond)"
            )),
        }
    }
}

/// An out-of-range measure threshold, rejected at
/// [`MeasureContext::new`] — the single validation point every layer
/// (params, CLI, checkpoint decode, causality) goes through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasureError {
    /// The measure whose threshold was rejected.
    pub measure: Measure,
    /// The rejected value.
    pub threshold: f64,
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} threshold must be in {}, got {}",
            self.measure,
            self.measure.threshold_range(),
            self.threshold
        )
    }
}

impl std::error::Error for MeasureError {}

/// The conditional-independence test of the causality screen stays
/// χ²-based under every measure; when the run's own threshold is not a
/// confidence level (the ratio measures), the df = 2 cutoff falls back
/// to this standard confidence.
const CI_FALLBACK_CONFIDENCE: f64 = 0.95;

/// The validated, precomputed per-run criterion of one measure: what
/// the old cached χ² critical value generalizes to.
///
/// Construction is the *only* place thresholds are range-checked (and
/// the only place `chi2_quantile` runs), so every downstream verdict —
/// including the df = 2 conditional-independence cutoff that
/// `causality` used to compute unvalidated at its call site — is
/// guaranteed panic-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasureContext {
    measure: Measure,
    threshold: f64,
    /// The value the per-set statistic is compared against: the df = 1
    /// χ² quantile for `chi2`, the threshold itself for the ratio
    /// measures.
    crit: f64,
    /// The df = 2 χ² cutoff of the conditional-independence test.
    ci_crit: f64,
}

impl MeasureContext {
    /// Validates `threshold` for `measure` and precomputes the run's
    /// critical values.
    ///
    /// # Errors
    ///
    /// [`MeasureError`] when the threshold is outside the measure's
    /// range ([`Measure::threshold_range`]).
    pub fn new(measure: Measure, threshold: f64) -> Result<Self, MeasureError> {
        if !measure.valid_threshold(threshold) {
            return Err(MeasureError { measure, threshold });
        }
        let (crit, ci_crit) = match measure {
            Measure::Chi2 => (chi2_quantile(threshold, 1), chi2_quantile(threshold, 2)),
            Measure::AllConfidence | Measure::Bond => {
                (threshold, chi2_quantile(CI_FALLBACK_CONFIDENCE, 2))
            }
        };
        Ok(MeasureContext {
            measure,
            threshold,
            crit,
            ci_crit,
        })
    }

    /// The measure this context judges with.
    pub fn measure(&self) -> Measure {
        self.measure
    }

    /// The validated threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The precomputed cutoff the statistic is compared against.
    pub fn critical_value(&self) -> f64 {
        self.crit
    }

    /// The df = 2 χ² cutoff for conditional-independence tests.
    pub fn ci_critical_value(&self) -> f64 {
        self.ci_crit
    }

    /// The raw statistic of this context's measure on `table`.
    pub fn statistic(&self, table: &ContingencyTable) -> f64 {
        self.measure.statistic(table)
    }

    /// The correlation verdict: `statistic ≥ critical value`, with
    /// degenerate tables (fewer than 2 items) never correlated.
    ///
    /// For `chi2` this is bit-identical to the historical
    /// `ContingencyTable::is_correlated(confidence)` path.
    pub fn verdict(&self, table: &ContingencyTable) -> bool {
        table.itemset().len() >= 2 && self.statistic(table) >= self.crit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_itemset::Itemset;

    fn table(ids: &[u32], counts: Vec<u64>) -> ContingencyTable {
        ContingencyTable::from_counts(Itemset::from_ids(ids.iter().copied()), counts)
    }

    #[test]
    fn chi2_verdict_matches_is_correlated() {
        // Figure B: significant at 90%, not at 95%.
        let t = table(&[0, 1], vec![11, 39, 20, 30]);
        for conf in [0.5, 0.9, 0.95, 0.99] {
            let ctx = MeasureContext::new(Measure::Chi2, conf).unwrap();
            assert_eq!(ctx.verdict(&t), t.is_correlated(conf), "confidence {conf}");
            assert_eq!(ctx.statistic(&t), t.chi_squared());
        }
    }

    #[test]
    fn ratio_measure_verdicts_compare_against_threshold() {
        // {both, only-0, only-1, neither} = {30, 39, 20, 11} re-ordered to
        // cells [neither, 0, 1, both].
        let t = table(&[0, 1], vec![11, 39, 20, 30]);
        // all-confidence = 30 / max(69, 50) = 30/69.
        let ac = MeasureContext::new(Measure::AllConfidence, 0.4).unwrap();
        assert!(ac.verdict(&t));
        let ac_high = MeasureContext::new(Measure::AllConfidence, 0.5).unwrap();
        assert!(!ac_high.verdict(&t));
        // bond = 30 / 89.
        let bond = MeasureContext::new(Measure::Bond, 0.3).unwrap();
        assert!(bond.verdict(&t));
        let bond_high = MeasureContext::new(Measure::Bond, 0.35).unwrap();
        assert!(!bond_high.verdict(&t));
    }

    #[test]
    fn degenerate_tables_are_never_correlated() {
        let t1 = table(&[3], vec![0, 100]);
        for m in Measure::ALL {
            let ctx = MeasureContext::new(m, 0.5).unwrap();
            assert!(!ctx.verdict(&t1), "{m} on a singleton");
        }
    }

    #[test]
    fn thresholds_are_validated_per_measure() {
        assert!(MeasureContext::new(Measure::Chi2, 0.0).is_ok());
        assert!(MeasureContext::new(Measure::Chi2, 1.0).is_err());
        assert!(MeasureContext::new(Measure::AllConfidence, 1.0).is_ok());
        assert!(MeasureContext::new(Measure::AllConfidence, 0.0).is_err());
        assert!(MeasureContext::new(Measure::Bond, 1.0).is_ok());
        assert!(MeasureContext::new(Measure::Bond, 1.5).is_err());
        let err = MeasureContext::new(Measure::Bond, 0.0).unwrap_err();
        assert!(err.to_string().contains("(0, 1]"), "{err}");
    }

    #[test]
    fn ci_critical_value_is_validated_at_construction() {
        // The df = 2 cutoff that causality.rs once computed unvalidated:
        // published table value at 95% is 5.991.
        let chi = MeasureContext::new(Measure::Chi2, 0.95).unwrap();
        assert!((chi.ci_critical_value() - 5.991_465).abs() < 1e-4);
        // Ratio measures fall back to the standard 95% cutoff even when
        // their own threshold (1.0) would be invalid as a confidence.
        let bond = MeasureContext::new(Measure::Bond, 1.0).unwrap();
        assert!((bond.ci_critical_value() - 5.991_465).abs() < 1e-4);
    }

    #[test]
    fn measure_round_trips_through_names_and_tags() {
        for m in Measure::ALL {
            assert_eq!(m.name().parse::<Measure>().unwrap(), m);
            assert_eq!(Measure::from_tag(m.tag()), Some(m));
            assert!(m.valid_threshold(m.default_threshold()));
        }
        assert!(Measure::from_tag(200).is_none());
        assert!("pearson".parse::<Measure>().is_err());
    }

    #[test]
    fn monotonicity_classes() {
        assert!(Measure::Chi2.monotonicity().is_upward());
        assert!(Measure::AllConfidence.monotonicity().is_downward());
        assert!(Measure::Bond.monotonicity().is_downward());
    }
}
