//! The chi-squared distribution: CDF, survival function, and quantiles.
//!
//! The correlation test of Brin et al. (and hence of every algorithm in this
//! workspace) rejects independence when an itemset's chi-squared statistic
//! exceeds the distribution's quantile at the user-chosen confidence level.
//! All three functions reduce to the regularized incomplete gamma functions
//! in [`crate::gamma`].

use crate::gamma::{gamma_p, gamma_q};

/// CDF of the chi-squared distribution with `df` degrees of freedom:
/// `Pr[X ≤ x]`.
///
/// # Panics
///
/// Panics if `df == 0` or `x < 0`.
pub fn chi2_cdf(x: f64, df: u32) -> f64 {
    assert!(df > 0, "chi-squared needs at least 1 degree of freedom");
    assert!(
        x >= 0.0,
        "chi-squared statistic must be non-negative, got {x}"
    );
    gamma_p(df as f64 / 2.0, x / 2.0)
}

/// Survival function `Pr[X > x]` — the p-value of an observed statistic
/// `x`. Computed directly (not as `1 - cdf`) so small p-values retain
/// relative precision.
pub fn chi2_sf(x: f64, df: u32) -> f64 {
    assert!(df > 0, "chi-squared needs at least 1 degree of freedom");
    assert!(
        x >= 0.0,
        "chi-squared statistic must be non-negative, got {x}"
    );
    gamma_q(df as f64 / 2.0, x / 2.0)
}

/// Quantile (inverse CDF): the smallest `x` with `Pr[X ≤ x] ≥ p`.
///
/// For a correlation test at confidence `c` (the paper uses `c = 0.9`),
/// the critical value is `chi2_quantile(c, df)`.
///
/// Solved by bracketing + bisection: ~60 iterations give full `f64`
/// precision and the function is only called once per (confidence, df)
/// pair, so speed is irrelevant.
///
/// # Panics
///
/// Panics if `df == 0` or `p ∉ [0, 1)`.
pub fn chi2_quantile(p: f64, df: u32) -> f64 {
    assert!(df > 0, "chi-squared needs at least 1 degree of freedom");
    assert!(
        (0.0..1.0).contains(&p),
        "quantile probability must be in [0, 1), got {p}"
    );
    if p == 0.0 {
        return 0.0;
    }
    // Bracket: the mean of the distribution is df, so [0, df] is a natural
    // start; double the upper bound until it covers p.
    let mut hi = (df as f64).max(1.0);
    while chi2_cdf(hi, df) < p {
        hi *= 2.0;
        assert!(hi.is_finite(), "failed to bracket chi-squared quantile");
    }
    let mut lo = 0.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if chi2_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= f64::EPSILON * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    /// Textbook critical values: chi2_quantile(conf, df).
    #[test]
    fn critical_values_match_published_tables() {
        close(chi2_quantile(0.90, 1), 2.705_543, 1e-5);
        close(chi2_quantile(0.95, 1), 3.841_459, 1e-5);
        close(chi2_quantile(0.99, 1), 6.634_897, 1e-5);
        close(chi2_quantile(0.95, 2), 5.991_465, 1e-5);
        close(chi2_quantile(0.95, 4), 9.487_729, 1e-5);
        close(chi2_quantile(0.90, 4), 7.779_440, 1e-5);
        close(chi2_quantile(0.95, 10), 18.307_038, 1e-4);
        close(chi2_quantile(0.99, 30), 50.892_181, 1e-4);
    }

    #[test]
    fn cdf_at_critical_values_recovers_confidence() {
        close(chi2_cdf(3.841_459, 1), 0.95, 1e-6);
        close(chi2_cdf(2.705_543, 1), 0.90, 1e-6);
        close(chi2_cdf(5.991_465, 2), 0.95, 1e-6);
    }

    #[test]
    fn sf_is_complement_of_cdf() {
        for &df in &[1u32, 2, 5, 17] {
            for &x in &[0.0, 0.5, 1.0, 3.0, 10.0, 40.0] {
                close(chi2_sf(x, df) + chi2_cdf(x, df), 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn sf_small_tail_keeps_relative_precision() {
        // Pr[X > 40 | df=1] ≈ 2.54e-10; a (1 - cdf) implementation would
        // lose most digits here.
        let p = chi2_sf(40.0, 1);
        assert!(p > 0.0 && p < 1e-9, "tail p-value = {p}");
        close(p / 2.539_6e-10, 1.0, 1e-3);
    }

    #[test]
    fn quantile_roundtrips_cdf() {
        for &df in &[1u32, 3, 7, 20] {
            for &p in &[0.05, 0.25, 0.5, 0.9, 0.95, 0.999] {
                let x = chi2_quantile(p, df);
                close(chi2_cdf(x, df), p, 1e-10);
            }
        }
    }

    #[test]
    fn quantile_edge_cases() {
        assert_eq!(chi2_quantile(0.0, 3), 0.0);
        assert!(chi2_quantile(0.999_999, 1) > 20.0);
    }

    #[test]
    fn df2_is_exponential_with_mean_two() {
        // χ²(2) is Exp(1/2): CDF = 1 - e^{-x/2}.
        for &x in &[0.5, 1.0, 2.0, 6.0] {
            close(chi2_cdf(x, 2), 1.0 - (-x / 2.0_f64).exp(), 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least 1 degree")]
    fn zero_df_panics() {
        chi2_cdf(1.0, 0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn quantile_rejects_one() {
        chi2_quantile(1.0, 1);
    }
}
