//! Monotonicity and succinctness classification (Lemma 1 of the paper).
//!
//! A constraint `C` is **anti-monotone** when every subset of a satisfying
//! set satisfies `C` (like CT-support), **monotone** when every superset
//! does (like being correlated). Lemma 1 shows every constraint form of the
//! language is one or the other — except `avg`, which is neither (§6).
//!
//! A constraint is **succinct** when its solution space can be written as a
//! powerset expression over selections of `Item`, which lets an algorithm
//! *generate* exactly the satisfying sets instead of generate-and-test.
//! This module reports the taxonomy; the machinery that actually exploits
//! succinctness (pruned item universes and witness classes) lives in
//! [`crate::succinct`].

use serde::{Deserialize, Serialize};

use crate::ast::{AggFn, Cmp, Constraint};

/// The direction in which a constraint is closed over the itemset lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Monotonicity {
    /// Downward closed: subsets of satisfying sets satisfy.
    AntiMonotone,
    /// Upward closed: supersets of satisfying sets satisfy.
    Monotone,
    /// Neither direction (e.g. `avg`): the solution space may have holes.
    Neither,
}

impl Constraint {
    /// The constraint's closure direction per Lemma 1.
    pub fn monotonicity(&self) -> Monotonicity {
        match self {
            Constraint::Agg { agg, cmp, .. } => match (agg, cmp) {
                // Adding items can only raise max / count / sum (non-negative
                // domain) and lower min.
                (AggFn::Max, Cmp::Le) => Monotonicity::AntiMonotone,
                (AggFn::Max, Cmp::Ge) => Monotonicity::Monotone,
                (AggFn::Min, Cmp::Ge) => Monotonicity::AntiMonotone,
                (AggFn::Min, Cmp::Le) => Monotonicity::Monotone,
                (AggFn::Sum, Cmp::Le) => Monotonicity::AntiMonotone,
                (AggFn::Sum, Cmp::Ge) => Monotonicity::Monotone,
                (AggFn::Count, Cmp::Le) => Monotonicity::AntiMonotone,
                (AggFn::Count, Cmp::Ge) => Monotonicity::Monotone,
            },
            // Covering a constant set survives adding items; not covering it
            // survives removing them.
            Constraint::ConstSubset { negated: false, .. } => Monotonicity::Monotone,
            Constraint::ConstSubset { negated: true, .. } => Monotonicity::AntiMonotone,
            // Disjointness survives removing items; intersection survives
            // adding them.
            Constraint::Disjoint { negated: false, .. } => Monotonicity::AntiMonotone,
            Constraint::Disjoint { negated: true, .. } => Monotonicity::Monotone,
            // The number of distinct categories only grows with the set.
            Constraint::CountDistinct { cmp: Cmp::Le, .. } => Monotonicity::AntiMonotone,
            Constraint::CountDistinct { cmp: Cmp::Ge, .. } => Monotonicity::Monotone,
            Constraint::Avg { .. } => Monotonicity::Neither,
            // Same logic as the categorical forms, over raw item ids.
            Constraint::ItemSubset { negated: false, .. } => Monotonicity::Monotone,
            Constraint::ItemSubset { negated: true, .. } => Monotonicity::AntiMonotone,
            Constraint::ItemDisjoint { negated: false, .. } => Monotonicity::AntiMonotone,
            Constraint::ItemDisjoint { negated: true, .. } => Monotonicity::Monotone,
        }
    }

    /// `true` iff the constraint is anti-monotone.
    pub fn is_anti_monotone(&self) -> bool {
        self.monotonicity() == Monotonicity::AntiMonotone
    }

    /// `true` iff the constraint is monotone.
    pub fn is_monotone(&self) -> bool {
        self.monotonicity() == Monotonicity::Monotone
    }

    /// `true` iff the constraint is succinct (its solution space is a
    /// powerset expression over selections of `Item`).
    ///
    /// `min`/`max` bounds, set-containment, and disjointness constraints
    /// are succinct; `sum`, `count`, count-distinct, and `avg` are not
    /// (their satisfaction depends on the combination of items, not on a
    /// per-item selection).
    pub fn is_succinct(&self) -> bool {
        match self {
            Constraint::Agg {
                agg: AggFn::Min | AggFn::Max,
                ..
            } => true,
            Constraint::Agg {
                agg: AggFn::Sum | AggFn::Count,
                ..
            } => false,
            Constraint::ConstSubset { .. } | Constraint::Disjoint { .. } => true,
            Constraint::ItemSubset { .. } | Constraint::ItemDisjoint { .. } => true,
            Constraint::CountDistinct { .. } | Constraint::Avg { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Constraint;
    use std::collections::BTreeSet;

    fn cs(ids: &[u32]) -> BTreeSet<u32> {
        ids.iter().copied().collect()
    }

    #[test]
    fn lemma_1_aggregate_classification() {
        use Monotonicity::*;
        let cases = [
            (Constraint::max_le("p", 1.0), AntiMonotone, true),
            (Constraint::max_ge("p", 1.0), Monotone, true),
            (Constraint::min_ge("p", 1.0), AntiMonotone, true),
            (Constraint::min_le("p", 1.0), Monotone, true),
            (Constraint::sum_le("p", 1.0), AntiMonotone, false),
            (Constraint::sum_ge("p", 1.0), Monotone, false),
            (
                Constraint::agg(AggFn::Count, "p", Cmp::Le, 3.0),
                AntiMonotone,
                false,
            ),
            (
                Constraint::agg(AggFn::Count, "p", Cmp::Ge, 3.0),
                Monotone,
                false,
            ),
        ];
        for (c, mono, succ) in cases {
            assert_eq!(c.monotonicity(), mono, "monotonicity of {c}");
            assert_eq!(c.is_succinct(), succ, "succinctness of {c}");
        }
    }

    #[test]
    fn set_constraint_classification() {
        let sub = Constraint::ConstSubset {
            attr: "t".into(),
            categories: cs(&[1]),
            negated: false,
        };
        assert_eq!(sub.monotonicity(), Monotonicity::Monotone);
        assert!(sub.is_succinct());

        let nsub = Constraint::ConstSubset {
            attr: "t".into(),
            categories: cs(&[1]),
            negated: true,
        };
        assert_eq!(nsub.monotonicity(), Monotonicity::AntiMonotone);
        assert!(nsub.is_succinct());

        let disj = Constraint::Disjoint {
            attr: "t".into(),
            categories: cs(&[1]),
            negated: false,
        };
        assert_eq!(disj.monotonicity(), Monotonicity::AntiMonotone);
        assert!(disj.is_succinct());

        let inter = Constraint::Disjoint {
            attr: "t".into(),
            categories: cs(&[1]),
            negated: true,
        };
        assert_eq!(inter.monotonicity(), Monotonicity::Monotone);
        assert!(inter.is_succinct());
    }

    #[test]
    fn item_level_classification() {
        use Monotonicity::*;
        let cases = [
            (
                Constraint::ItemSubset {
                    items: cs(&[1, 2]),
                    negated: false,
                },
                Monotone,
            ),
            (
                Constraint::ItemSubset {
                    items: cs(&[1]),
                    negated: true,
                },
                AntiMonotone,
            ),
            (
                Constraint::ItemDisjoint {
                    items: cs(&[1]),
                    negated: false,
                },
                AntiMonotone,
            ),
            (
                Constraint::ItemDisjoint {
                    items: cs(&[1]),
                    negated: true,
                },
                Monotone,
            ),
        ];
        for (c, mono) in cases {
            assert_eq!(c.monotonicity(), mono, "monotonicity of {c}");
            assert!(c.is_succinct(), "succinctness of {c}");
        }
    }

    #[test]
    fn extensions_classification() {
        let single = Constraint::CountDistinct {
            attr: "t".into(),
            cmp: Cmp::Le,
            value: 1,
        };
        assert_eq!(single.monotonicity(), Monotonicity::AntiMonotone);
        assert!(!single.is_succinct());

        let multi = Constraint::CountDistinct {
            attr: "t".into(),
            cmp: Cmp::Ge,
            value: 2,
        };
        assert_eq!(multi.monotonicity(), Monotonicity::Monotone);

        let avg = Constraint::Avg {
            attr: "p".into(),
            cmp: Cmp::Le,
            value: 3.0,
        };
        assert_eq!(avg.monotonicity(), Monotonicity::Neither);
        assert!(!avg.is_succinct());
    }
}
