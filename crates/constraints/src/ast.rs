//! The constraint language: AST and evaluation.
//!
//! The constraint forms follow Lemma 1 of the paper (which itself draws on
//! the language of Ng, Lakshmanan, Han & Pang, SIGMOD 1998):
//!
//! 1. `agg(S.A) θ c` with `agg ∈ {min, max, sum, count}`, `θ ∈ {≤, ≥}`,
//!    and `A` a numeric attribute with non-negative domain,
//! 2. `CS ⊆ S.A` / `CS ⊄ S.A` with `CS` a constant set of categories,
//! 3. `CS ∩ S.A = ∅` / `CS ∩ S.A ≠ ∅`,
//!
//! plus two extensions used elsewhere in the paper: `|S.A| θ c` on the
//! number of distinct attribute values (the shelf-planning constraint
//! `|S.type| = 1` from §1) and `avg(S.A) θ c` (the future-work constraint
//! of §6, which is neither monotone nor anti-monotone).
//!
//! `S.A` denotes the *set of attribute values* of the items of `S`.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};
use thiserror::Error;

use ccs_itemset::Itemset;

use crate::attr::AttributeTable;

/// An SQL-style aggregate over a numeric item attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFn {
    /// Smallest attribute value among the set's items (`+∞` for `∅`).
    Min,
    /// Largest attribute value among the set's items (`-∞` for `∅`).
    Max,
    /// Sum of attribute values (`0` for `∅`).
    Sum,
    /// Number of items in the set (the attribute is irrelevant).
    Count,
}

/// A comparison direction. Lemma 1 restricts aggregates to `≤` / `≥`;
/// equality splits into one of each (one monotone, one anti-monotone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cmp {
    /// `≤`
    Le,
    /// `≥`
    Ge,
}

impl Cmp {
    /// Applies the comparison.
    #[inline]
    pub fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Cmp::Le => lhs <= rhs,
            Cmp::Ge => lhs >= rhs,
        }
    }

    /// The opposite direction.
    pub fn flip(self) -> Cmp {
        match self {
            Cmp::Le => Cmp::Ge,
            Cmp::Ge => Cmp::Le,
        }
    }
}

/// A single constraint on an itemset `S`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Constraint {
    /// `agg(S.A) θ c`.
    Agg {
        /// The aggregate function.
        agg: AggFn,
        /// Numeric attribute name (ignored for `Count`).
        attr: String,
        /// Comparison direction.
        cmp: Cmp,
        /// The constant bound `c`.
        value: f64,
    },
    /// `CS ⊆ S.A` (`negated: false`) or `CS ⊄ S.A` (`negated: true`):
    /// the set of categories of `S`'s items must (not) cover `CS`.
    ConstSubset {
        /// Categorical attribute name.
        attr: String,
        /// The constant category-id set `CS`.
        categories: BTreeSet<u32>,
        /// `true` for the `⊄` form.
        negated: bool,
    },
    /// `CS ∩ S.A = ∅` (`negated: false`) or `CS ∩ S.A ≠ ∅`
    /// (`negated: true`).
    Disjoint {
        /// Categorical attribute name.
        attr: String,
        /// The constant category-id set `CS`.
        categories: BTreeSet<u32>,
        /// `true` for the `≠ ∅` form.
        negated: bool,
    },
    /// `|S.A| θ c`: the number of *distinct* categories among `S`'s items.
    CountDistinct {
        /// Categorical attribute name.
        attr: String,
        /// Comparison direction.
        cmp: Cmp,
        /// The bound on the number of distinct categories.
        value: u64,
    },
    /// `avg(S.A) θ c` — neither monotone nor anti-monotone (§6 of the
    /// paper). Supported in evaluation and by the naive miner only; the
    /// level-wise miners reject queries containing it.
    Avg {
        /// Numeric attribute name.
        attr: String,
        /// Comparison direction.
        cmp: Cmp,
        /// The constant bound `c`.
        value: f64,
    },
    /// `CS ⊆ S` (`negated: false`) or `CS ⊄ S` (`negated: true`) over
    /// raw item ids — the paper's domain constraints on `S` itself
    /// (e.g. "must include item 7").
    ItemSubset {
        /// The constant item-id set `CS`.
        items: BTreeSet<u32>,
        /// `true` for the `⊄` form.
        negated: bool,
    },
    /// `CS ∩ S = ∅` (`negated: false`) or `CS ∩ S ≠ ∅`
    /// (`negated: true`) over raw item ids.
    ItemDisjoint {
        /// The constant item-id set `CS`.
        items: BTreeSet<u32>,
        /// `true` for the `≠ ∅` form.
        negated: bool,
    },
}

/// An error found when validating constraints against an attribute table.
#[derive(Debug, Clone, PartialEq, Eq, Error)]
pub enum ConstraintError {
    /// A numeric attribute referenced by a constraint is not registered.
    #[error("unknown numeric attribute '{0}'")]
    UnknownNumericAttr(String),
    /// A categorical attribute referenced by a constraint is not
    /// registered.
    #[error("unknown categorical attribute '{0}'")]
    UnknownCategoricalAttr(String),
    /// A numeric attribute has negative values, violating the
    /// non-negative-domain requirement of Lemma 1 for `sum`.
    #[error("attribute '{0}' has negative values; sum constraints require a non-negative domain")]
    NegativeDomain(String),
    /// An item-level constraint mentions an id outside the universe.
    #[error("item {item} outside universe 0..{n_items}")]
    ItemOutOfUniverse {
        /// The offending item id.
        item: u32,
        /// The universe size.
        n_items: u32,
    },
}

impl Constraint {
    /// Convenience constructor: `agg(S.attr) θ c`.
    pub fn agg(agg: AggFn, attr: impl Into<String>, cmp: Cmp, value: f64) -> Self {
        Constraint::Agg {
            agg,
            attr: attr.into(),
            cmp,
            value,
        }
    }

    /// Convenience constructor: `max(S.attr) ≤ c` — the anti-monotone +
    /// succinct workhorse of the paper's experiments.
    pub fn max_le(attr: impl Into<String>, value: f64) -> Self {
        Self::agg(AggFn::Max, attr, Cmp::Le, value)
    }

    /// Convenience constructor: `sum(S.attr) ≤ c` — anti-monotone, not
    /// succinct.
    pub fn sum_le(attr: impl Into<String>, value: f64) -> Self {
        Self::agg(AggFn::Sum, attr, Cmp::Le, value)
    }

    /// Convenience constructor: `min(S.attr) ≥ c` — anti-monotone +
    /// succinct.
    pub fn min_ge(attr: impl Into<String>, value: f64) -> Self {
        Self::agg(AggFn::Min, attr, Cmp::Ge, value)
    }

    /// Convenience constructor: `min(S.attr) ≤ c` — monotone + succinct
    /// (the constraint of Figures 5–8 of the paper, there written
    /// `min(S.price) ≥ v` over the *complement* selectivity; see
    /// `ccs-bench`).
    pub fn min_le(attr: impl Into<String>, value: f64) -> Self {
        Self::agg(AggFn::Min, attr, Cmp::Le, value)
    }

    /// Convenience constructor: `max(S.attr) ≥ c` — monotone + succinct.
    pub fn max_ge(attr: impl Into<String>, value: f64) -> Self {
        Self::agg(AggFn::Max, attr, Cmp::Ge, value)
    }

    /// Convenience constructor: `sum(S.attr) ≥ c` — monotone, not
    /// succinct.
    pub fn sum_ge(attr: impl Into<String>, value: f64) -> Self {
        Self::agg(AggFn::Sum, attr, Cmp::Ge, value)
    }

    /// Checks that every attribute the constraint mentions exists in
    /// `attrs` with the right kind, and that `sum` domains are
    /// non-negative.
    pub fn validate(&self, attrs: &AttributeTable) -> Result<(), ConstraintError> {
        match self {
            Constraint::Agg {
                agg: AggFn::Count, ..
            } => Ok(()),
            Constraint::Agg { agg, attr, .. } => {
                let col = attrs
                    .numeric(attr)
                    .ok_or_else(|| ConstraintError::UnknownNumericAttr(attr.clone()))?;
                if *agg == AggFn::Sum && col.iter().any(|&v| v < 0.0) {
                    return Err(ConstraintError::NegativeDomain(attr.clone()));
                }
                Ok(())
            }
            Constraint::Avg { attr, .. } => attrs
                .numeric(attr)
                .map(|_| ())
                .ok_or_else(|| ConstraintError::UnknownNumericAttr(attr.clone())),
            Constraint::ConstSubset { attr, .. }
            | Constraint::Disjoint { attr, .. }
            | Constraint::CountDistinct { attr, .. } => attrs
                .categorical(attr)
                .map(|_| ())
                .ok_or_else(|| ConstraintError::UnknownCategoricalAttr(attr.clone())),
            Constraint::ItemSubset { items, .. } | Constraint::ItemDisjoint { items, .. } => {
                match items.iter().find(|&&i| i >= attrs.n_items()) {
                    Some(&item) => Err(ConstraintError::ItemOutOfUniverse {
                        item,
                        n_items: attrs.n_items(),
                    }),
                    None => Ok(()),
                }
            }
        }
    }

    /// Evaluates the constraint on `set`.
    ///
    /// Empty-set conventions keep the monotonicity laws intact:
    /// `min(∅) = +∞`, `max(∅) = -∞`, `sum(∅) = 0`, `count(∅) = 0`,
    /// `∅.A = ∅`. `avg(∅) θ c` is `false` (there is no average).
    ///
    /// # Panics
    ///
    /// Panics if a referenced attribute is missing; call
    /// [`Constraint::validate`] first for a fallible check.
    pub fn satisfied(&self, set: &Itemset, attrs: &AttributeTable) -> bool {
        match self {
            Constraint::Agg {
                agg,
                attr,
                cmp,
                value,
            } => {
                let lhs = match agg {
                    AggFn::Count => set.len() as f64,
                    AggFn::Min => set
                        .iter()
                        .map(|i| attrs.numeric_value(attr, i))
                        .fold(f64::INFINITY, f64::min),
                    AggFn::Max => set
                        .iter()
                        .map(|i| attrs.numeric_value(attr, i))
                        .fold(f64::NEG_INFINITY, f64::max),
                    AggFn::Sum => set.iter().map(|i| attrs.numeric_value(attr, i)).sum(),
                };
                cmp.eval(lhs, *value)
            }
            Constraint::Avg { attr, cmp, value } => {
                if set.is_empty() {
                    return false;
                }
                let sum: f64 = set.iter().map(|i| attrs.numeric_value(attr, i)).sum();
                cmp.eval(sum / set.len() as f64, *value)
            }
            Constraint::ConstSubset {
                attr,
                categories,
                negated,
            } => {
                let covered = categories
                    .iter()
                    .all(|&c| set.iter().any(|i| attrs.category_of(attr, i) == c));
                covered != *negated
            }
            Constraint::Disjoint {
                attr,
                categories,
                negated,
            } => {
                let intersects = set
                    .iter()
                    .any(|i| categories.contains(&attrs.category_of(attr, i)));
                // negated = false means "must be disjoint".
                intersects == *negated
            }
            Constraint::CountDistinct { attr, cmp, value } => {
                let distinct: BTreeSet<u32> =
                    set.iter().map(|i| attrs.category_of(attr, i)).collect();
                cmp.eval(distinct.len() as f64, *value as f64)
            }
            Constraint::ItemSubset { items, negated } => {
                let covered = items
                    .iter()
                    .all(|&i| set.contains(ccs_itemset::Item::new(i)));
                covered != *negated
            }
            Constraint::ItemDisjoint { items, negated } => {
                let intersects = set.iter().any(|i| items.contains(&i.id()));
                intersects == *negated
            }
        }
    }
}

impl fmt::Display for AggFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggFn::Min => write!(f, "min"),
            AggFn::Max => write!(f, "max"),
            AggFn::Sum => write!(f, "sum"),
            AggFn::Count => write!(f, "count"),
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cmp::Le => write!(f, "<="),
            Cmp::Ge => write!(f, ">="),
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Agg {
                agg,
                attr,
                cmp,
                value,
            } => {
                write!(f, "{agg}(S.{attr}) {cmp} {value}")
            }
            Constraint::Avg { attr, cmp, value } => write!(f, "avg(S.{attr}) {cmp} {value}"),
            Constraint::ConstSubset {
                attr,
                categories,
                negated,
            } => {
                let op = if *negated { "not subset" } else { "subset" };
                write!(f, "{categories:?} {op} S.{attr}")
            }
            Constraint::Disjoint {
                attr,
                categories,
                negated,
            } => {
                let op = if *negated { "intersects" } else { "disjoint" };
                write!(f, "{categories:?} {op} S.{attr}")
            }
            Constraint::CountDistinct { attr, cmp, value } => {
                write!(f, "|S.{attr}| {cmp} {value}")
            }
            Constraint::ItemSubset { items, negated } => {
                let op = if *negated { "not subset" } else { "subset" };
                write!(f, "{items:?} {op} S")
            }
            Constraint::ItemDisjoint { items, negated } => {
                let op = if *negated { "intersects" } else { "disjoint" };
                write!(f, "{items:?} {op} S")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_itemset::Itemset;

    fn attrs() -> AttributeTable {
        let mut t = AttributeTable::new(5);
        // prices 1..=5, types: soda, soda, snack, dairy, dairy
        t.add_numeric("price", vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        t.add_categorical("type", &["soda", "soda", "snack", "dairy", "dairy"]);
        t
    }

    fn cat_ids(attrs: &AttributeTable, labels: &[&str]) -> BTreeSet<u32> {
        let col = attrs.categorical("type").unwrap();
        labels.iter().map(|l| col.id_of(l).unwrap()).collect()
    }

    #[test]
    fn aggregate_evaluation() {
        let a = attrs();
        let s = Itemset::from_ids([0, 2, 4]); // prices 1, 3, 5
        assert!(Constraint::max_le("price", 5.0).satisfied(&s, &a));
        assert!(!Constraint::max_le("price", 4.0).satisfied(&s, &a));
        assert!(Constraint::min_ge("price", 1.0).satisfied(&s, &a));
        assert!(!Constraint::min_ge("price", 2.0).satisfied(&s, &a));
        assert!(Constraint::sum_le("price", 9.0).satisfied(&s, &a));
        assert!(!Constraint::sum_le("price", 8.0).satisfied(&s, &a));
        assert!(Constraint::sum_ge("price", 9.0).satisfied(&s, &a));
        assert!(Constraint::agg(AggFn::Count, "price", Cmp::Le, 3.0).satisfied(&s, &a));
        assert!(!Constraint::agg(AggFn::Count, "price", Cmp::Ge, 4.0).satisfied(&s, &a));
    }

    #[test]
    fn empty_set_conventions() {
        let a = attrs();
        let e = Itemset::empty();
        assert!(Constraint::max_le("price", 0.0).satisfied(&e, &a)); // max(∅) = -∞
        assert!(!Constraint::max_ge("price", 0.0).satisfied(&e, &a));
        assert!(Constraint::min_ge("price", 100.0).satisfied(&e, &a)); // min(∅) = +∞
        assert!(!Constraint::min_le("price", 100.0).satisfied(&e, &a));
        assert!(Constraint::sum_le("price", 0.0).satisfied(&e, &a)); // sum(∅) = 0
        assert!(!Constraint::Avg {
            attr: "price".into(),
            cmp: Cmp::Le,
            value: 100.0
        }
        .satisfied(&e, &a));
    }

    #[test]
    fn avg_constraint_evaluation() {
        let a = attrs();
        let s = Itemset::from_ids([0, 4]); // avg price 3
        assert!(Constraint::Avg {
            attr: "price".into(),
            cmp: Cmp::Le,
            value: 3.0
        }
        .satisfied(&s, &a));
        assert!(!Constraint::Avg {
            attr: "price".into(),
            cmp: Cmp::Ge,
            value: 3.5
        }
        .satisfied(&s, &a));
    }

    #[test]
    fn const_subset_evaluation() {
        let a = attrs();
        let need = cat_ids(&a, &["soda", "dairy"]);
        let c = Constraint::ConstSubset {
            attr: "type".into(),
            categories: need.clone(),
            negated: false,
        };
        assert!(c.satisfied(&Itemset::from_ids([0, 3]), &a)); // soda + dairy
        assert!(!c.satisfied(&Itemset::from_ids([0, 2]), &a)); // soda + snack
        let neg = Constraint::ConstSubset {
            attr: "type".into(),
            categories: need,
            negated: true,
        };
        assert!(!neg.satisfied(&Itemset::from_ids([0, 3]), &a));
        assert!(neg.satisfied(&Itemset::from_ids([0, 2]), &a));
    }

    #[test]
    fn disjoint_evaluation() {
        let a = attrs();
        let snacks = cat_ids(&a, &["snack"]);
        let no_snacks = Constraint::Disjoint {
            attr: "type".into(),
            categories: snacks.clone(),
            negated: false,
        };
        assert!(no_snacks.satisfied(&Itemset::from_ids([0, 1, 3]), &a));
        assert!(!no_snacks.satisfied(&Itemset::from_ids([0, 2]), &a));
        let some_snack = Constraint::Disjoint {
            attr: "type".into(),
            categories: snacks,
            negated: true,
        };
        assert!(some_snack.satisfied(&Itemset::from_ids([2]), &a));
        assert!(!some_snack.satisfied(&Itemset::from_ids([0]), &a));
    }

    #[test]
    fn count_distinct_shelf_planning() {
        let a = attrs();
        // |S.type| <= 1: all items of a single type.
        let single = Constraint::CountDistinct {
            attr: "type".into(),
            cmp: Cmp::Le,
            value: 1,
        };
        assert!(single.satisfied(&Itemset::from_ids([0, 1]), &a)); // both soda
        assert!(single.satisfied(&Itemset::from_ids([3, 4]), &a)); // both dairy
        assert!(!single.satisfied(&Itemset::from_ids([0, 2]), &a));
        assert!(single.satisfied(&Itemset::empty(), &a)); // 0 distinct ≤ 1
    }

    #[test]
    fn validation_catches_missing_attributes() {
        let a = attrs();
        assert!(Constraint::max_le("price", 1.0).validate(&a).is_ok());
        assert_eq!(
            Constraint::max_le("weight", 1.0).validate(&a),
            Err(ConstraintError::UnknownNumericAttr("weight".into()))
        );
        assert_eq!(
            Constraint::CountDistinct {
                attr: "brand".into(),
                cmp: Cmp::Le,
                value: 1
            }
            .validate(&a),
            Err(ConstraintError::UnknownCategoricalAttr("brand".into()))
        );
        // count ignores the attribute entirely.
        assert!(Constraint::agg(AggFn::Count, "anything", Cmp::Le, 3.0)
            .validate(&a)
            .is_ok());
    }

    #[test]
    fn validation_rejects_negative_sum_domain() {
        let mut t = AttributeTable::new(2);
        t.add_numeric("delta", vec![-1.0, 2.0]);
        assert_eq!(
            Constraint::sum_le("delta", 5.0).validate(&t),
            Err(ConstraintError::NegativeDomain("delta".into()))
        );
        // min/max over negative domains are fine.
        assert!(Constraint::max_le("delta", 5.0).validate(&t).is_ok());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            Constraint::max_le("price", 10.0).to_string(),
            "max(S.price) <= 10"
        );
        assert_eq!(
            Constraint::sum_ge("price", 2.5).to_string(),
            "sum(S.price) >= 2.5"
        );
    }
}
