//! Exploiting succinctness: pruned item universes and witness classes.
//!
//! For a *succinct* constraint the solution space is a powerset expression
//! over selections of `Item` (§2.2 of the paper). The two exploitable
//! shapes are:
//!
//! * **Anti-monotone + succinct** (`max(S.A) ≤ c`, `min(S.A) ≥ c`,
//!   `CS ∩ S.A = ∅`, singleton `CS ⊄ S.A`): the solution space is
//!   `2^I₁` for a selection `I₁ = σ_p(Item)`. [`am_allowed_items`] returns
//!   `I₁`; restricting candidate generation to it makes every generated
//!   set satisfy the constraint *by construction*, so no per-set check is
//!   ever needed — this is the "pushed deeper than anti-monotonicity"
//!   pruning of Algorithm BMS++.
//!
//! * **Monotone + succinct** (`min(S.A) ≤ c`, `max(S.A) ≥ c`,
//!   `CS ∩ S.A ≠ ∅`, `CS ⊆ S.A`): the MGF is
//!   `{X₁ ∪ … ∪ Xₘ ∪ Y | Xⱼ ⊆ σ_{pⱼ}(Item), Xⱼ ≠ ∅}` — every satisfying
//!   set must contain at least one *witness* from each required class
//!   `σ_{pⱼ}(Item)`. [`ms_witness_classes`] returns those classes. A
//!   single-class constraint can seed `L1⁺` directly (the paper's
//!   `CAND₁⁺`); a multi-class one (`CS ⊆ S.A` with `|CS| > 1`, footnote 5)
//!   needs more than one witness and must be enforced at SIG-entry time
//!   instead.
//!
//! Constraints whose succinct structure this module cannot exploit return
//! `None` and are handled by their monotonicity class alone — always
//! correct, merely less pruned.

use ccs_itemset::Item;

use crate::ast::{AggFn, Cmp, Constraint};
use crate::attr::AttributeTable;

/// For an anti-monotone succinct constraint of shape `SAT = 2^I₁`, the
/// items of `I₁` — the only items that may appear in any satisfying set.
///
/// Returns `None` when the constraint is not anti-monotone-succinct in an
/// exploitable way.
pub fn am_allowed_items(c: &Constraint, attrs: &AttributeTable) -> Option<Vec<Item>> {
    match c {
        Constraint::Agg {
            agg: AggFn::Max,
            attr,
            cmp: Cmp::Le,
            value,
        } => Some(select_numeric(attrs, attr, |v| v <= *value)),
        Constraint::Agg {
            agg: AggFn::Min,
            attr,
            cmp: Cmp::Ge,
            value,
        } => Some(select_numeric(attrs, attr, |v| v >= *value)),
        Constraint::Disjoint {
            attr,
            categories,
            negated: false,
        } => Some(select_categorical(attrs, attr, |cat| {
            !categories.contains(&cat)
        })),
        // `CS ⊄ S.A` is only a plain powerset for |CS| = 1: sets avoiding
        // that single category. For larger CS the space is a union of
        // powersets ("miss at least one of CS"), which universe pruning
        // cannot capture.
        Constraint::ConstSubset {
            attr,
            categories,
            negated: true,
        } if categories.len() == 1 => {
            #[allow(clippy::expect_used)] // guard: len() == 1
            let only = *categories.iter().next().expect("len checked");
            Some(select_categorical(attrs, attr, |cat| cat != only))
        }
        Constraint::ItemDisjoint {
            items,
            negated: false,
        } => Some(
            (0..attrs.n_items())
                .filter(|i| !items.contains(i))
                .map(Item::new)
                .collect(),
        ),
        Constraint::ItemSubset {
            items,
            negated: true,
        } if items.len() == 1 => {
            #[allow(clippy::expect_used)] // guard: len() == 1
            let only = *items.iter().next().expect("len checked");
            Some(
                (0..attrs.n_items())
                    .filter(|&i| i != only)
                    .map(Item::new)
                    .collect(),
            )
        }
        _ => None,
    }
}

/// For a monotone succinct constraint, the required witness classes: every
/// satisfying set must contain at least one item from *each* returned
/// class.
///
/// Returns `None` when the constraint is not monotone-succinct in an
/// exploitable way. A returned empty class means the constraint is
/// unsatisfiable over this item universe.
pub fn ms_witness_classes(c: &Constraint, attrs: &AttributeTable) -> Option<Vec<Vec<Item>>> {
    match c {
        Constraint::Agg {
            agg: AggFn::Min,
            attr,
            cmp: Cmp::Le,
            value,
        } => Some(vec![select_numeric(attrs, attr, |v| v <= *value)]),
        Constraint::Agg {
            agg: AggFn::Max,
            attr,
            cmp: Cmp::Ge,
            value,
        } => Some(vec![select_numeric(attrs, attr, |v| v >= *value)]),
        Constraint::Disjoint {
            attr,
            categories,
            negated: true,
        } => Some(vec![select_categorical(attrs, attr, |cat| {
            categories.contains(&cat)
        })]),
        // `CS ⊆ S.A` requires one witness per category of CS.
        Constraint::ConstSubset {
            attr,
            categories,
            negated: false,
        } => Some(
            categories
                .iter()
                .map(|&c| select_categorical(attrs, attr, |cat| cat == c))
                .collect(),
        ),
        Constraint::ItemDisjoint {
            items,
            negated: true,
        } => Some(vec![items.iter().copied().map(Item::new).collect()]),
        // `CS ⊆ S`: each required item is its own (singleton) witness
        // class.
        Constraint::ItemSubset {
            items,
            negated: false,
        } => Some(items.iter().map(|&i| vec![Item::new(i)]).collect()),
        _ => None,
    }
}

fn select_numeric(attrs: &AttributeTable, attr: &str, pred: impl Fn(f64) -> bool) -> Vec<Item> {
    let col = attrs
        .numeric(attr)
        .unwrap_or_else(|| panic!("unknown numeric attribute '{attr}'"));
    col.iter()
        .enumerate()
        .filter(|(_, &v)| pred(v))
        .map(|(i, _)| Item::new(i as u32))
        .collect()
}

fn select_categorical(attrs: &AttributeTable, attr: &str, pred: impl Fn(u32) -> bool) -> Vec<Item> {
    let col = attrs
        .categorical(attr)
        .unwrap_or_else(|| panic!("unknown categorical attribute '{attr}'"));
    col.values()
        .iter()
        .enumerate()
        .filter(|(_, &v)| pred(v))
        .map(|(i, _)| Item::new(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_itemset::Itemset;
    use std::collections::BTreeSet;

    fn attrs() -> AttributeTable {
        let mut t = AttributeTable::new(6);
        t.add_numeric("price", vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        t.add_categorical("type", &["soda", "soda", "snack", "dairy", "dairy", "beer"]);
        t
    }

    fn ids(items: &[Item]) -> Vec<u32> {
        items.iter().map(|i| i.id()).collect()
    }

    fn cat(attrs: &AttributeTable, labels: &[&str]) -> BTreeSet<u32> {
        let col = attrs.categorical("type").unwrap();
        labels.iter().map(|l| col.id_of(l).unwrap()).collect()
    }

    #[test]
    fn max_le_allowed_items() {
        let a = attrs();
        let allowed = am_allowed_items(&Constraint::max_le("price", 3.0), &a).unwrap();
        assert_eq!(ids(&allowed), vec![0, 1, 2]);
    }

    #[test]
    fn min_ge_allowed_items() {
        let a = attrs();
        let allowed = am_allowed_items(&Constraint::min_ge("price", 5.0), &a).unwrap();
        assert_eq!(ids(&allowed), vec![4, 5]);
    }

    #[test]
    fn disjoint_allowed_items() {
        let a = attrs();
        let c = Constraint::Disjoint {
            attr: "type".into(),
            categories: cat(&a, &["snack"]),
            negated: false,
        };
        let allowed = am_allowed_items(&c, &a).unwrap();
        assert_eq!(ids(&allowed), vec![0, 1, 3, 4, 5]);
    }

    #[test]
    fn singleton_not_subset_allowed_items() {
        let a = attrs();
        let c = Constraint::ConstSubset {
            attr: "type".into(),
            categories: cat(&a, &["beer"]),
            negated: true,
        };
        let allowed = am_allowed_items(&c, &a).unwrap();
        assert_eq!(ids(&allowed), vec![0, 1, 2, 3, 4]);
        // Multi-category ⊄ is not exploitable as a single universe.
        let c2 = Constraint::ConstSubset {
            attr: "type".into(),
            categories: cat(&a, &["beer", "snack"]),
            negated: true,
        };
        assert!(am_allowed_items(&c2, &a).is_none());
    }

    #[test]
    fn non_succinct_constraints_yield_no_universe() {
        let a = attrs();
        assert!(am_allowed_items(&Constraint::sum_le("price", 10.0), &a).is_none());
        // Monotone constraints have no allowed-universe either.
        assert!(am_allowed_items(&Constraint::min_le("price", 3.0), &a).is_none());
    }

    #[test]
    fn min_le_witness_class() {
        let a = attrs();
        let classes = ms_witness_classes(&Constraint::min_le("price", 2.0), &a).unwrap();
        assert_eq!(classes.len(), 1);
        assert_eq!(ids(&classes[0]), vec![0, 1]);
    }

    #[test]
    fn max_ge_witness_class() {
        let a = attrs();
        let classes = ms_witness_classes(&Constraint::max_ge("price", 6.0), &a).unwrap();
        assert_eq!(ids(&classes[0]), vec![5]);
    }

    #[test]
    fn intersects_witness_class() {
        let a = attrs();
        let c = Constraint::Disjoint {
            attr: "type".into(),
            categories: cat(&a, &["dairy"]),
            negated: true,
        };
        let classes = ms_witness_classes(&c, &a).unwrap();
        assert_eq!(ids(&classes[0]), vec![3, 4]);
    }

    #[test]
    fn const_subset_multi_witness_classes() {
        let a = attrs();
        let c = Constraint::ConstSubset {
            attr: "type".into(),
            categories: cat(&a, &["soda", "beer"]),
            negated: false,
        };
        let mut classes = ms_witness_classes(&c, &a).unwrap();
        classes.sort_by_key(|c| c.len());
        assert_eq!(classes.len(), 2);
        assert_eq!(ids(&classes[0]), vec![5]); // beer
        assert_eq!(ids(&classes[1]), vec![0, 1]); // soda
    }

    #[test]
    fn witness_semantics_match_evaluation() {
        // A set satisfies a single-class ms constraint iff it intersects
        // the witness class.
        let a = attrs();
        let c = Constraint::min_le("price", 2.0);
        let class = &ms_witness_classes(&c, &a).unwrap()[0];
        for set in [
            Itemset::from_ids([0, 5]),
            Itemset::from_ids([2, 3]),
            Itemset::from_ids([1]),
            Itemset::from_ids([4, 5]),
        ] {
            let witnessed = set.iter().any(|i| class.contains(&i));
            assert_eq!(witnessed, c.satisfied(&set, &a), "mismatch for {set}");
        }
    }

    #[test]
    fn universe_semantics_match_evaluation() {
        // A set satisfies an am-succinct constraint iff all its items are
        // in the allowed universe.
        let a = attrs();
        let c = Constraint::max_le("price", 4.0);
        let allowed = am_allowed_items(&c, &a).unwrap();
        for set in [
            Itemset::from_ids([0, 3]),
            Itemset::from_ids([0, 5]),
            Itemset::from_ids([4]),
            Itemset::from_ids([1, 2, 3]),
        ] {
            let inside = set.iter().all(|i| allowed.contains(&i));
            assert_eq!(inside, c.satisfied(&set, &a), "mismatch for {set}");
        }
    }
}
