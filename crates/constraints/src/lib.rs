//! # ccs-constraints — the constraint framework of the paper
//!
//! Constrained correlation queries attach a conjunction of constraints to
//! the correlation/CT-support conditions. This crate provides:
//!
//! * [`attr`] — per-item attribute columns (`S.price`, `S.type`, …),
//! * [`ast`] — the constraint language of Lemma 1 (+ the `avg` and
//!   count-distinct extensions) and its evaluation semantics,
//! * [`classify`] — monotone / anti-monotone / succinct classification,
//! * [`succinct`] — the member-generating-function machinery: pruned item
//!   universes for anti-monotone succinct constraints and witness classes
//!   for monotone succinct ones,
//! * [`constraint_set`] — conjunctions and the [`ConstraintAnalysis`]
//!   consumed by the constraint-pushing miners,
//! * [`selectivity`] — selectivity measurement and threshold calibration
//!   for the experiment sweeps,
//! * [`interval`] — per-attribute interval reasoning over aggregate
//!   bounds,
//! * [`analyze`] — the static query analyzer: satisfiability verdicts
//!   with minimal conflicting cores, conjunction normalization, and
//!   push-plan diagnostics, all before any counting.

#![warn(missing_docs)]

pub mod analyze;
pub mod ast;
pub mod attr;
pub mod classify;
pub mod constraint_set;
pub mod interval;
pub mod selectivity;
pub mod succinct;

pub use analyze::{
    analyze, analyze_for_measure, analyze_spanned, ConstraintReport, Diagnostic, PushRole,
    QueryAnalysis, QueryVerdict, Severity, Span,
};
pub use ast::{AggFn, Cmp, Constraint, ConstraintError};
pub use attr::{AttributeTable, CategoricalColumn};
pub use classify::Monotonicity;
pub use constraint_set::{ConstraintAnalysis, ConstraintSet};
