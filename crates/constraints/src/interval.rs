//! Per-attribute interval reasoning over aggregate bounds.
//!
//! The static analyzer ([`crate::analyze`]) folds every aggregate
//! constraint of a conjunction into a small set of intervals — one per
//! `(attribute, aggregate)` pair — and then applies algebraic relations
//! between aggregates (`min(S) ≤ avg(S) ≤ max(S)`, `sum(S) ≥ max(S)` on
//! non-negative domains, `|distinct categories| ≤ |S|`, …) to detect
//! conjunctions no itemset can satisfy. Everything here is *sound over
//! the answer space*: a reported conflict means no set of ≥ 2 items drawn
//! from the attribute table satisfies all involved constraints.

use crate::ast::Cmp;

/// Summary statistics of one numeric column, precomputed once per
/// analyzed attribute. The second-order statistics (`lo2`, `hi2`) exist
/// because answers contain at least two items: `min(S)` can never exceed
/// the second-largest value, `max(S)` can never undercut the
/// second-smallest, and `sum(S)` is at least the two smallest combined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnProfile {
    /// Smallest value in the column.
    pub lo: f64,
    /// Largest value in the column.
    pub hi: f64,
    /// Second-smallest value (counting duplicates); `None` for a
    /// single-item universe.
    pub lo2: Option<f64>,
    /// Second-largest value (counting duplicates).
    pub hi2: Option<f64>,
    /// Sum of the whole column.
    pub total: f64,
}

impl ColumnProfile {
    /// Profiles a column; `None` when the universe is empty.
    pub fn of(values: &[f64]) -> Option<Self> {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let (&lo, &hi) = (sorted.first()?, sorted.last()?);
        Some(ColumnProfile {
            lo,
            hi,
            lo2: sorted.get(1).copied(),
            hi2: sorted.len().checked_sub(2).map(|i| sorted[i]),
            total: sorted.iter().sum(),
        })
    }
}

/// One side of an interval: the bound value plus the index (into the
/// analyzed conjunction) of the constraint that imposed it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bound {
    /// The bound value.
    pub value: f64,
    /// Index of the constraint the bound came from.
    pub source: usize,
}

/// The interval a conjunction leaves for one aggregate quantity, built by
/// folding `≥` bounds into `lo` (keeping the largest) and `≤` bounds into
/// `hi` (keeping the smallest). On ties the earliest constraint wins, so
/// conflict cores are deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Interval {
    /// Tightest lower bound seen, if any.
    pub lo: Option<Bound>,
    /// Tightest upper bound seen, if any.
    pub hi: Option<Bound>,
}

impl Interval {
    /// Folds one more constraint into the interval.
    pub fn tighten(&mut self, cmp: Cmp, value: f64, source: usize) {
        let side = match cmp {
            Cmp::Ge => &mut self.lo,
            Cmp::Le => &mut self.hi,
        };
        let tighter = match (cmp, &side) {
            (_, None) => true,
            (Cmp::Ge, Some(b)) => value > b.value,
            (Cmp::Le, Some(b)) => value < b.value,
        };
        if tighter {
            *side = Some(Bound { value, source });
        }
    }

    /// The pair of bounds proving the interval empty (`lo > hi`), if so.
    /// `lo == hi` is *not* a conflict: the aggregate may land exactly on
    /// the shared bound.
    pub fn conflict(&self) -> Option<(Bound, Bound)> {
        match (self.lo, self.hi) {
            (Some(lo), Some(hi)) if lo.value > hi.value => Some((lo, hi)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_orders_statistics() {
        let p = ColumnProfile::of(&[3.0, 1.0, 2.0, 2.0]).unwrap();
        assert_eq!(p.lo, 1.0);
        assert_eq!(p.hi, 3.0);
        assert_eq!(p.lo2, Some(2.0));
        assert_eq!(p.hi2, Some(2.0)); // duplicates count
        assert_eq!(p.total, 8.0);
        assert_eq!(ColumnProfile::of(&[]), None);
        let single = ColumnProfile::of(&[5.0]).unwrap();
        assert_eq!(single.lo2, None);
        assert_eq!(single.hi2, None);
    }

    #[test]
    fn tighten_keeps_strictest_bound() {
        let mut iv = Interval::default();
        iv.tighten(Cmp::Ge, 2.0, 0);
        iv.tighten(Cmp::Ge, 5.0, 1);
        iv.tighten(Cmp::Ge, 3.0, 2);
        assert_eq!(
            iv.lo,
            Some(Bound {
                value: 5.0,
                source: 1
            })
        );
        iv.tighten(Cmp::Le, 9.0, 3);
        iv.tighten(Cmp::Le, 7.0, 4);
        assert_eq!(
            iv.hi,
            Some(Bound {
                value: 7.0,
                source: 4
            })
        );
        assert!(iv.conflict().is_none()); // [5, 7] is non-empty
    }

    #[test]
    fn ties_keep_the_earliest_source() {
        let mut iv = Interval::default();
        iv.tighten(Cmp::Le, 4.0, 0);
        iv.tighten(Cmp::Le, 4.0, 1);
        assert_eq!(iv.hi.unwrap().source, 0);
    }

    #[test]
    fn empty_interval_reports_both_culprits() {
        let mut iv = Interval::default();
        iv.tighten(Cmp::Le, 3.0, 0);
        iv.tighten(Cmp::Ge, 8.0, 1);
        let (lo, hi) = iv.conflict().unwrap();
        assert_eq!((lo.source, hi.source), (1, 0));
        // A point interval is satisfiable.
        let mut point = Interval::default();
        point.tighten(Cmp::Le, 3.0, 0);
        point.tighten(Cmp::Ge, 3.0, 1);
        assert!(point.conflict().is_none());
    }
}
