//! [`AttributeTable`]: per-item attributes referenced by constraints.
//!
//! Constraints in the paper's language talk about *attributes* of items —
//! `S.price` (numeric) and `S.type` (categorical) in all the examples. The
//! attribute table is a column store keyed by attribute name: one `f64` or
//! category id per item. Categorical values are interned so constraints
//! compare small integers, with labels kept for display and parsing.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use ccs_itemset::Item;

/// An interned categorical column: one category id per item, plus the
/// id → label dictionary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoricalColumn {
    values: Vec<u32>,
    labels: Vec<String>,
}

impl CategoricalColumn {
    /// Category id of `item`.
    #[inline]
    pub fn value(&self, item: Item) -> u32 {
        self.values[item.index()]
    }

    /// Label of a category id.
    pub fn label(&self, id: u32) -> &str {
        &self.labels[id as usize]
    }

    /// Id of a label, if the label occurs in the column.
    pub fn id_of(&self, label: &str) -> Option<u32> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| i as u32)
    }

    /// Number of distinct categories.
    pub fn n_categories(&self) -> usize {
        self.labels.len()
    }

    /// The raw id column.
    pub fn values(&self) -> &[u32] {
        &self.values
    }
}

/// Per-item attribute columns for a universe of `n_items` items.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AttributeTable {
    n_items: u32,
    numeric: BTreeMap<String, Vec<f64>>,
    categorical: BTreeMap<String, CategoricalColumn>,
}

impl AttributeTable {
    /// An empty table for a universe of `n_items` items.
    pub fn new(n_items: u32) -> Self {
        AttributeTable {
            n_items,
            numeric: BTreeMap::new(),
            categorical: BTreeMap::new(),
        }
    }

    /// Size of the item universe.
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// Registers a numeric column (e.g. `price`). Values must be finite and
    /// there must be exactly one per item.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or non-finite values.
    pub fn add_numeric(&mut self, name: impl Into<String>, values: Vec<f64>) -> &mut Self {
        let name = name.into();
        assert_eq!(
            values.len(),
            self.n_items as usize,
            "numeric attribute '{name}' needs {} values, got {}",
            self.n_items,
            values.len()
        );
        assert!(
            values.iter().all(|v| v.is_finite()),
            "numeric attribute '{name}' contains non-finite values"
        );
        self.numeric.insert(name, values);
        self
    }

    /// Registers a categorical column (e.g. `type`) from one label per
    /// item, interning the labels.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn add_categorical<S: AsRef<str>>(
        &mut self,
        name: impl Into<String>,
        item_labels: &[S],
    ) -> &mut Self {
        let name = name.into();
        assert_eq!(
            item_labels.len(),
            self.n_items as usize,
            "categorical attribute '{name}' needs {} values, got {}",
            self.n_items,
            item_labels.len()
        );
        let mut labels: Vec<String> = Vec::new();
        let mut ids: BTreeMap<&str, u32> = BTreeMap::new();
        let mut values = Vec::with_capacity(item_labels.len());
        for l in item_labels {
            let l = l.as_ref();
            let id = *ids.entry(l).or_insert_with(|| {
                labels.push(l.to_owned());
                (labels.len() - 1) as u32
            });
            values.push(id);
        }
        self.categorical
            .insert(name, CategoricalColumn { values, labels });
        self
    }

    /// The paper's standard experimental setup: `price of item i = i + 1`
    /// (so the cheapest item costs $1 and prices are all distinct).
    pub fn with_identity_prices(n_items: u32) -> Self {
        let mut t = Self::new(n_items);
        t.add_numeric("price", (0..n_items).map(|i| (i + 1) as f64).collect());
        t
    }

    /// The numeric column `name`, if registered.
    pub fn numeric(&self, name: &str) -> Option<&[f64]> {
        self.numeric.get(name).map(|v| &v[..])
    }

    /// The categorical column `name`, if registered.
    pub fn categorical(&self, name: &str) -> Option<&CategoricalColumn> {
        self.categorical.get(name)
    }

    /// Numeric value of `item` under attribute `name`.
    ///
    /// # Panics
    ///
    /// Panics if the attribute is not a registered numeric column. Call
    /// [`AttributeTable::numeric`] first for a fallible lookup.
    pub fn numeric_value(&self, name: &str, item: Item) -> f64 {
        self.numeric
            .get(name)
            .unwrap_or_else(|| panic!("unknown numeric attribute '{name}'"))[item.index()]
    }

    /// Category id of `item` under attribute `name`.
    ///
    /// # Panics
    ///
    /// Panics if the attribute is not a registered categorical column.
    pub fn category_of(&self, name: &str, item: Item) -> u32 {
        self.categorical
            .get(name)
            .unwrap_or_else(|| panic!("unknown categorical attribute '{name}'"))
            .value(item)
    }

    /// Names of all registered numeric columns.
    pub fn numeric_names(&self) -> impl Iterator<Item = &str> {
        self.numeric.keys().map(|s| s.as_str())
    }

    /// Names of all registered categorical columns.
    pub fn categorical_names(&self) -> impl Iterator<Item = &str> {
        self.categorical.keys().map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_column_roundtrip() {
        let mut t = AttributeTable::new(3);
        t.add_numeric("price", vec![1.0, 2.5, 9.0]);
        assert_eq!(t.numeric_value("price", Item(1)), 2.5);
        assert_eq!(t.numeric("price").unwrap(), &[1.0, 2.5, 9.0]);
        assert!(t.numeric("weight").is_none());
        assert_eq!(t.numeric_names().collect::<Vec<_>>(), vec!["price"]);
    }

    #[test]
    fn categorical_column_interns_labels() {
        let mut t = AttributeTable::new(4);
        t.add_categorical("type", &["soda", "snack", "soda", "dairy"]);
        let col = t.categorical("type").unwrap();
        assert_eq!(col.n_categories(), 3);
        assert_eq!(col.value(Item(0)), col.value(Item(2)));
        assert_ne!(col.value(Item(0)), col.value(Item(1)));
        assert_eq!(col.label(col.value(Item(3))), "dairy");
        assert_eq!(col.id_of("snack"), Some(col.value(Item(1))));
        assert_eq!(col.id_of("fish"), None);
        assert_eq!(t.category_of("type", Item(3)), col.value(Item(3)));
    }

    #[test]
    fn identity_prices_match_paper_setup() {
        let t = AttributeTable::with_identity_prices(5);
        assert_eq!(t.numeric_value("price", Item(0)), 1.0);
        assert_eq!(t.numeric_value("price", Item(4)), 5.0);
    }

    #[test]
    #[should_panic(expected = "needs 3 values")]
    fn length_mismatch_panics() {
        AttributeTable::new(3).add_numeric("price", vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_numeric_panics() {
        AttributeTable::new(1).add_numeric("price", vec![f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "unknown numeric attribute")]
    fn unknown_attribute_panics() {
        AttributeTable::new(1).numeric_value("price", Item(0));
    }
}
