//! Static analysis of constraint conjunctions: the "compile-time" half of
//! an interactive mining loop.
//!
//! [`analyze`] takes a parsed conjunction plus the attribute table and,
//! *before any counting*, produces:
//!
//! * a **verdict** — [`QueryVerdict::Unsatisfiable`] (with a minimal
//!   conflicting core), [`QueryVerdict::Trivial`] (tautologous given the
//!   attribute-table bounds), or [`QueryVerdict::Satisfiable`],
//! * a **normalized conjunction** — constants folded against the table,
//!   duplicates removed, subsumed constraints collapsed, mergeable set
//!   constraints unioned,
//! * a **push-plan report** — per-constraint monotonicity/succinctness
//!   (Lemma 1, via [`crate::classify`]), where each surviving constraint
//!   is exploited in BMS++/BMS** (allowed universe, witness class,
//!   residual check, post-filter), measured selectivity, and whether
//!   Theorem 1.2 makes `VALID_MIN` and `MIN_VALID` coincide.
//!
//! # Soundness contract
//!
//! The answer space of every miner is sets of **at least two items** drawn
//! from the table's universe (correlation needs a pair). All reasoning
//! here is grounded in that domain:
//!
//! * `Unsatisfiable` is reported only when *provably* no such set
//!   satisfies the conjunction — so miners may short-circuit to an empty
//!   `Complete` answer. "Satisfiable" merely means "not disproven".
//! * Every normalization step preserves the value of
//!   [`ConstraintSet::satisfied`] on every set of ≥ 2 items over the
//!   *full* universe, so mining the normalized conjunction returns
//!   exactly the answers of the raw one — for post-filtering and
//!   constraint-pushing algorithms alike.
//!
//! Diagnostics carry byte [`Span`]s from the query parser when available,
//! and render both human-readably ([`QueryAnalysis::render`]) and as JSON
//! ([`QueryAnalysis::to_json`]).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fmt::Write as _;

use ccs_stats::MonotonicityClass;
use serde::{Deserialize, Serialize};

use crate::ast::{AggFn, Cmp, Constraint, ConstraintError};
use crate::attr::AttributeTable;
use crate::classify::Monotonicity;
use crate::constraint_set::{ConstraintAnalysis, ConstraintSet};
use crate::interval::{ColumnProfile, Interval};
use crate::selectivity::item_selectivity;
use crate::succinct::{am_allowed_items, ms_witness_classes};

/// A byte range in the query source text, as produced by the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The conjunction cannot be satisfied.
    Error,
    /// A constraint is vacuous and was dropped.
    Warning,
    /// Informational (duplicate/subsumption/merge bookkeeping).
    Note,
}

impl Severity {
    /// Lower-case label (`"error"` / `"warning"` / `"note"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// One finding, anchored to the constraints it concerns.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Indices (into the original conjunction) of involved constraints.
    pub constraints: Vec<usize>,
}

/// The analyzer's overall judgement of the conjunction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryVerdict {
    /// No set of ≥ 2 universe items satisfies the conjunction.
    Unsatisfiable {
        /// A minimal subset of constraint indices that already conflicts.
        core: Vec<usize>,
    },
    /// Every set of ≥ 2 universe items satisfies the conjunction (it
    /// normalizes to the empty conjunction despite being non-empty).
    Trivial,
    /// Not disproven: mining may find answers.
    Satisfiable,
}

impl QueryVerdict {
    /// `true` for [`QueryVerdict::Unsatisfiable`].
    pub fn is_unsatisfiable(&self) -> bool {
        matches!(self, QueryVerdict::Unsatisfiable { .. })
    }
}

/// Where a surviving constraint is exploited in the BMS++/BMS** plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushRole {
    /// Anti-monotone succinct: folded into the allowed item universe,
    /// enforced at candidate *generation* (never re-checked).
    AllowedUniverse,
    /// Anti-monotone, not succinct: checked per candidate set before its
    /// contingency table is counted.
    ResidualAntiMonotone,
    /// Monotone succinct: its witness class seeds `L1⁺`. `captured` means
    /// touching the class already implies the constraint (single-class);
    /// multi-class sources are re-checked at SIG-entry time (footnote 5).
    WitnessClass {
        /// Whether the constraint is fully captured by the class.
        captured: bool,
    },
    /// Monotone, not chosen/capturable: checked at SIG-entry time.
    ResidualMonotone,
    /// Neither monotone (`avg`): only exhaustive post-filtering miners
    /// can honor it.
    PostFilter,
}

/// Per-constraint row of the push-plan report.
#[derive(Debug, Clone)]
pub struct ConstraintReport {
    /// Index in the original conjunction.
    pub index: usize,
    /// Rendered original constraint.
    pub text: String,
    /// Source span, when the conjunction came from the parser.
    pub span: Option<Span>,
    /// Lemma 1 classification.
    pub monotonicity: Monotonicity,
    /// Whether the constraint is succinct.
    pub succinct: bool,
    /// Measured item selectivity, when the constraint has an item-level
    /// footprint.
    pub selectivity: Option<f64>,
    /// Whether the constraint survives into the normalized conjunction.
    pub kept: bool,
    /// Why it was dropped, when it was.
    pub dropped_because: Option<String>,
    /// Rendered merged form, when normalization unioned other
    /// constraints into this one.
    pub merged_text: Option<String>,
    /// Plan role of the surviving (possibly merged) constraint.
    pub role: Option<PushRole>,
}

/// The complete result of analyzing one conjunction.
#[derive(Debug, Clone)]
pub struct QueryAnalysis {
    /// Overall judgement.
    pub verdict: QueryVerdict,
    /// The normalized conjunction miners should run (meaningful for
    /// `Satisfiable`/`Trivial`; echoes the input when `Unsatisfiable`).
    pub normalized: ConstraintSet,
    /// One report row per original constraint.
    pub reports: Vec<ConstraintReport>,
    /// All findings, errors first.
    pub diagnostics: Vec<Diagnostic>,
    /// Theorem 1.2: `true` iff every surviving constraint is
    /// anti-monotone, making `VALID_MIN(Q) = MIN_VALID(Q)` (vacuously
    /// `true` for unsatisfiable queries — both answer sets are empty).
    pub valid_min_eq_min_valid: bool,
    /// The correlation measure's closure direction the push plan was
    /// built for — [`MonotonicityClass::UpwardClosed`] (the paper's χ²)
    /// unless the analysis came from [`analyze_for_measure`]. Constraint
    /// *roles* are measure-independent (universe carving, residual
    /// checks, and witness seeding all happen before any correlation
    /// test), but a downward-closed measure changes the sweep geometry
    /// the plan feeds: minimal correlated sets are pairs, so `VALID_MIN`
    /// miners close at level 2 and `MIN_VALID` sweeps re-check
    /// correlation at every level instead of inheriting it upward.
    pub measure_class: MonotonicityClass,
}

/// Analyzes `cs` against `attrs` without source spans.
///
/// # Errors
///
/// Returns the first [`ConstraintError`] if validation against the table
/// fails (unknown attribute, negative `sum` domain, out-of-universe item).
pub fn analyze(
    cs: &ConstraintSet,
    attrs: &AttributeTable,
) -> Result<QueryAnalysis, ConstraintError> {
    analyze_spanned(cs, &[], attrs)
}

/// Analyzes `cs` with per-constraint source spans (parallel to
/// `cs.constraints()`; missing entries are treated as span-less).
///
/// # Errors
///
/// As [`analyze`].
pub fn analyze_spanned(
    cs: &ConstraintSet,
    spans: &[Span],
    attrs: &AttributeTable,
) -> Result<QueryAnalysis, ConstraintError> {
    analyze_for_measure(cs, spans, attrs, MonotonicityClass::UpwardClosed)
}

/// Analyzes `cs` for a run whose correlation measure has the given
/// closure direction.
///
/// Constraint classification and role assignment are measure-independent;
/// what the class changes is the *sweep geometry* the plan describes.
/// Under a downward-closed (anti-monotone) measure the correlated region
/// itself prunes like an anti-monotone constraint: minimal correlated
/// sets are pairs, `VALID_MIN` miners (BMS/BMS++) close at level 2, and
/// the `MIN_VALID` upward sweeps (BMS*/BMS**) must re-check correlation
/// at every level because it is no longer inherited by supersets. The
/// rendered plan and JSON record the class.
///
/// # Errors
///
/// As [`analyze`].
pub fn analyze_for_measure(
    cs: &ConstraintSet,
    spans: &[Span],
    attrs: &AttributeTable,
    measure_class: MonotonicityClass,
) -> Result<QueryAnalysis, ConstraintError> {
    cs.validate(attrs)?;
    let constraints = cs.constraints();
    let n = constraints.len();

    let grounds: Vec<Grounding> = constraints.iter().map(|c| ground(c, attrs)).collect();
    let open: Vec<usize> = (0..n)
        .filter(|&i| matches!(grounds[i], Grounding::Open))
        .collect();

    // Conflict detection: single-constraint grounding first, then
    // pairwise interval algebra, cardinality counting, and the
    // universe/witness geometry of the succinct constraints.
    let mut conflicts: Vec<Conflict> = grounds
        .iter()
        .enumerate()
        .filter_map(|(i, g)| match g {
            Grounding::Unsat(msg) => Some(Conflict {
                core: vec![i],
                message: msg.clone(),
            }),
            _ => None,
        })
        .collect();
    conflicts.extend(interval_conflicts(constraints, &open, attrs));
    conflicts.extend(cardinality_conflicts(constraints, &open));
    conflicts.extend(universe_conflicts(constraints, &open, attrs));

    let mut diagnostics: Vec<Diagnostic> = conflicts
        .iter()
        .map(|c| Diagnostic {
            severity: Severity::Error,
            message: c.message.clone(),
            constraints: c.core.clone(),
        })
        .collect();
    for (i, g) in grounds.iter().enumerate() {
        if let Grounding::Trivial(msg) = g {
            diagnostics.push(Diagnostic {
                severity: Severity::Warning,
                message: format!("trivially true: {msg}"),
                constraints: vec![i],
            });
        }
    }

    if !conflicts.is_empty() {
        let core = conflicts
            .iter()
            .min_by_key(|c| c.core.len())
            .map(|c| c.core.clone())
            .unwrap_or_default();
        return Ok(QueryAnalysis {
            verdict: QueryVerdict::Unsatisfiable { core },
            normalized: cs.clone(),
            reports: base_reports(constraints, spans, attrs),
            diagnostics,
            valid_min_eq_min_valid: true,
            measure_class,
        });
    }

    let (entries, dropped) = normalize(constraints, &grounds);
    for (i, reason) in dropped.iter().enumerate() {
        if let Some(r) = reason {
            if !matches!(grounds[i], Grounding::Trivial(_)) {
                diagnostics.push(Diagnostic {
                    severity: Severity::Note,
                    message: r.clone(),
                    constraints: vec![i],
                });
            }
        }
    }

    let normalized =
        ConstraintSet::from_vec(entries.iter().map(|e| e.constraint.clone()).collect());
    let analysis = normalized.analyze(attrs);

    let mut reports = base_reports(constraints, spans, attrs);
    for (j, e) in entries.iter().enumerate() {
        let r = &mut reports[e.keeper];
        r.kept = true;
        r.role = Some(role_of(j, &analysis));
        if e.constraint != constraints[e.keeper] {
            r.merged_text = Some(e.constraint.to_string());
        }
    }
    for (i, reason) in dropped.into_iter().enumerate() {
        reports[i].dropped_because = reason;
    }

    let verdict = if n > 0 && normalized.is_empty() {
        diagnostics.push(Diagnostic {
            severity: Severity::Note,
            message: "the conjunction is tautologous over this attribute table: every set of >= 2 \
                      items satisfies it"
                .into(),
            constraints: (0..n).collect(),
        });
        QueryVerdict::Trivial
    } else {
        QueryVerdict::Satisfiable
    };
    if attrs.n_items() < 2 {
        diagnostics.push(Diagnostic {
            severity: Severity::Note,
            message: format!(
                "the universe has only {} item(s): every query answer is empty regardless of \
                 constraints",
                attrs.n_items()
            ),
            constraints: Vec::new(),
        });
    }

    if measure_class.is_downward() {
        diagnostics.push(Diagnostic {
            severity: Severity::Note,
            message: "the correlation measure is downward-closed (anti-monotone): minimal \
                      correlated sets are pairs, so VALID_MIN miners close at level 2 and \
                      MIN_VALID sweeps re-check correlation at every level"
                .into(),
            constraints: Vec::new(),
        });
    }

    Ok(QueryAnalysis {
        verdict,
        valid_min_eq_min_valid: normalized.all_anti_monotone(),
        normalized,
        reports,
        diagnostics,
        measure_class,
    })
}

// ---------------------------------------------------------------------
// Single-constraint grounding against the attribute table.
// ---------------------------------------------------------------------

enum Grounding {
    Open,
    Trivial(String),
    Unsat(String),
}

fn ground(c: &Constraint, attrs: &AttributeTable) -> Grounding {
    use Grounding::{Open, Trivial, Unsat};
    let n = attrs.n_items();
    match c {
        Constraint::Agg {
            agg: AggFn::Count,
            cmp,
            value,
            ..
        } => match cmp {
            Cmp::Le if *value < 2.0 => Unsat(format!(
                "count(S) <= {value} excludes every answer: answers contain at least 2 items"
            )),
            Cmp::Le if *value >= f64::from(n) => Trivial(format!(
                "count(S) <= {value} holds for every subset of the {n}-item universe"
            )),
            Cmp::Ge if *value > f64::from(n) => Unsat(format!(
                "count(S) >= {value} is impossible: the universe has only {n} items"
            )),
            Cmp::Ge if *value <= 2.0 => Trivial(format!(
                "count(S) >= {value} holds for every answer: answers contain at least 2 items"
            )),
            _ => Open,
        },
        Constraint::Agg {
            agg,
            attr,
            cmp,
            value,
        } => {
            let Some(p) = attrs.numeric(attr).and_then(ColumnProfile::of) else {
                return Open;
            };
            match (agg, cmp) {
                (AggFn::Min, Cmp::Le) => {
                    if *value < p.lo {
                        Unsat(format!(
                            "min(S.{attr}) <= {value} is impossible: every {attr} is at least {}",
                            p.lo
                        ))
                    } else if p.hi2.is_some_and(|h2| *value >= h2) {
                        Trivial(format!(
                            "any set of >= 2 items has min(S.{attr}) at most {} <= {value}",
                            p.hi2.unwrap_or(p.hi)
                        ))
                    } else {
                        Open
                    }
                }
                (AggFn::Min, Cmp::Ge) => {
                    if p.hi2.is_some_and(|h2| *value > h2) {
                        Unsat(format!(
                            "min(S.{attr}) >= {value} is impossible: any set of >= 2 items has \
                             min at most {}",
                            p.hi2.unwrap_or(p.hi)
                        ))
                    } else if *value <= p.lo {
                        Trivial(format!("every {attr} is at least {} >= {value}", p.lo))
                    } else {
                        Open
                    }
                }
                (AggFn::Max, Cmp::Le) => {
                    if p.lo2.is_some_and(|l2| *value < l2) {
                        Unsat(format!(
                            "max(S.{attr}) <= {value} is impossible: any set of >= 2 items has \
                             max at least {}",
                            p.lo2.unwrap_or(p.lo)
                        ))
                    } else if *value >= p.hi {
                        Trivial(format!("every {attr} is at most {} <= {value}", p.hi))
                    } else {
                        Open
                    }
                }
                (AggFn::Max, Cmp::Ge) => {
                    if *value > p.hi {
                        Unsat(format!(
                            "max(S.{attr}) >= {value} is impossible: every {attr} is at most {}",
                            p.hi
                        ))
                    } else if p.lo2.is_some_and(|l2| *value <= l2) {
                        Trivial(format!(
                            "any set of >= 2 items has max(S.{attr}) at least {} >= {value}",
                            p.lo2.unwrap_or(p.lo)
                        ))
                    } else {
                        Open
                    }
                }
                // validate() guarantees a non-negative domain for sum.
                (AggFn::Sum, Cmp::Le) => {
                    if p.lo2.is_some_and(|l2| *value < p.lo + l2) {
                        Unsat(format!(
                            "sum(S.{attr}) <= {value} is impossible: the two smallest {attr} \
                             values already sum to {}",
                            p.lo + p.lo2.unwrap_or(0.0)
                        ))
                    } else if *value >= p.total {
                        Trivial(format!("the whole universe sums to {} <= {value}", p.total))
                    } else {
                        Open
                    }
                }
                (AggFn::Sum, Cmp::Ge) => {
                    if *value > p.total {
                        Unsat(format!(
                            "sum(S.{attr}) >= {value} is impossible: the whole universe sums to \
                             only {}",
                            p.total
                        ))
                    } else if p.lo2.is_some_and(|l2| *value <= p.lo + l2) {
                        Trivial(format!(
                            "any set of >= 2 items has sum(S.{attr}) at least {} >= {value}",
                            p.lo + p.lo2.unwrap_or(0.0)
                        ))
                    } else {
                        Open
                    }
                }
                (AggFn::Count, _) => Open, // handled above
            }
        }
        Constraint::Avg { attr, cmp, value } => {
            let Some(p) = attrs.numeric(attr).and_then(ColumnProfile::of) else {
                return Open;
            };
            match cmp {
                Cmp::Le if *value < p.lo => Unsat(format!(
                    "avg(S.{attr}) <= {value} is impossible: every {attr} is at least {}",
                    p.lo
                )),
                Cmp::Le if *value >= p.hi => Trivial(format!(
                    "every {attr} is at most {}, so any average is <= {value}",
                    p.hi
                )),
                Cmp::Ge if *value > p.hi => Unsat(format!(
                    "avg(S.{attr}) >= {value} is impossible: every {attr} is at most {}",
                    p.hi
                )),
                Cmp::Ge if *value <= p.lo => Trivial(format!(
                    "every {attr} is at least {}, so any average is >= {value}",
                    p.lo
                )),
                _ => Open,
            }
        }
        Constraint::CountDistinct { attr, cmp, value } => {
            let Some(col) = attrs.categorical(attr) else {
                return Open;
            };
            let ncat = col.n_categories() as u64;
            match cmp {
                Cmp::Le if *value < 1 => Unsat(format!(
                    "|S.{attr}| <= {value} is impossible: a non-empty set has at least one \
                     distinct category"
                )),
                Cmp::Le if *value >= ncat => Trivial(format!(
                    "the table has only {ncat} distinct {attr} categories"
                )),
                Cmp::Ge if *value > ncat => Unsat(format!(
                    "|S.{attr}| >= {value} is impossible: the table has only {ncat} distinct \
                     {attr} categories"
                )),
                Cmp::Ge if *value <= 1 => Trivial(format!(
                    "a non-empty set has at least 1 distinct {attr} category"
                )),
                _ => Open,
            }
        }
        Constraint::ConstSubset {
            attr,
            categories,
            negated,
        } => {
            let Some(col) = attrs.categorical(attr) else {
                return Open;
            };
            // Interning guarantees every dictionary id occurs for some
            // item, so only out-of-dictionary ids can never be covered.
            let missing = categories
                .iter()
                .find(|&&c| c as usize >= col.n_categories());
            match (negated, categories.is_empty(), missing) {
                (false, true, _) => Trivial("the empty category set is covered by every S".into()),
                (false, false, Some(&m)) => Unsat(format!(
                    "category id {m} never occurs in {attr}: no S can cover the set"
                )),
                (true, true, _) => Unsat(
                    "the empty category set is covered by every S, so 'not subset' never holds"
                        .into(),
                ),
                (true, false, Some(&m)) => Trivial(format!(
                    "category id {m} never occurs in {attr}: no S can cover the set"
                )),
                _ => Open,
            }
        }
        Constraint::Disjoint {
            attr,
            categories,
            negated,
        } => {
            let Some(col) = attrs.categorical(attr) else {
                return Open;
            };
            let any_present = categories
                .iter()
                .any(|&c| (c as usize) < col.n_categories());
            let covers_all =
                n > 0 && (0..col.n_categories() as u32).all(|c| categories.contains(&c));
            match (negated, categories.is_empty() || !any_present, covers_all) {
                // CS ∩ S.A = ∅
                (false, true, _) => {
                    Trivial(format!("no item's {attr} category is in the constant set"))
                }
                (false, false, true) => Unsat(format!(
                    "every item's {attr} category is in the constant set: no non-empty S avoids it"
                )),
                // CS ∩ S.A ≠ ∅
                (true, true, _) => Unsat(format!(
                    "no item's {attr} category is in the constant set: S can never intersect it"
                )),
                (true, false, true) => Trivial(format!(
                    "every item's {attr} category is in the constant set"
                )),
                _ => Open,
            }
        }
        Constraint::ItemSubset { items, negated } => match (negated, items.is_empty()) {
            (false, true) => Trivial("the empty item set is contained in every S".into()),
            (true, true) => Unsat(
                "the empty item set is contained in every S, so 'not subset' never holds".into(),
            ),
            _ => Open,
        },
        Constraint::ItemDisjoint { items, negated } => {
            // validate() guarantees items ⊆ 0..n, so |items| = n means the
            // whole universe.
            let whole = n > 0 && items.len() as u32 == n;
            match (negated, items.is_empty(), whole) {
                (false, true, _) => Trivial("S is always disjoint from the empty set".into()),
                (false, false, true) => {
                    Unsat("the constant set is the whole universe: no non-empty S avoids it".into())
                }
                (true, true, _) => Unsat("S can never intersect the empty set".into()),
                (true, false, true) => Trivial(
                    "the constant set is the whole universe: every non-empty S intersects it"
                        .into(),
                ),
                _ => Open,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Conflict detection across constraints.
// ---------------------------------------------------------------------

struct Conflict {
    core: Vec<usize>,
    message: String,
}

fn conflict(core: Vec<usize>, message: String) -> Conflict {
    let mut core = core;
    core.sort_unstable();
    core.dedup();
    Conflict { core, message }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Qty {
    Min,
    Max,
    Sum,
    Avg,
}

/// Interval algebra across aggregates of the same attribute:
/// `min ≤ avg ≤ max`, `sum ≥ max` and `sum ≥ 2·min` on non-negative
/// domains (which a `sum` constraint implies via validation), and
/// count/sum/distinct couplings.
fn interval_conflicts(
    constraints: &[Constraint],
    open: &[usize],
    attrs: &AttributeTable,
) -> Vec<Conflict> {
    let mut per: BTreeMap<(&str, Qty), Interval> = BTreeMap::new();
    let mut count = Interval::default();
    let mut distinct: BTreeMap<&str, Interval> = BTreeMap::new();
    for &i in open {
        match &constraints[i] {
            Constraint::Agg {
                agg: AggFn::Count,
                cmp,
                value,
                ..
            } => count.tighten(*cmp, *value, i),
            Constraint::Agg {
                agg,
                attr,
                cmp,
                value,
            } => {
                let q = match agg {
                    AggFn::Min => Qty::Min,
                    AggFn::Max => Qty::Max,
                    AggFn::Sum => Qty::Sum,
                    AggFn::Count => continue,
                };
                per.entry((attr.as_str(), q))
                    .or_default()
                    .tighten(*cmp, *value, i);
            }
            Constraint::Avg { attr, cmp, value } => per
                .entry((attr.as_str(), Qty::Avg))
                .or_default()
                .tighten(*cmp, *value, i),
            Constraint::CountDistinct { attr, cmp, value } => distinct
                .entry(attr.as_str())
                .or_default()
                .tighten(*cmp, *value as f64, i),
            _ => {}
        }
    }

    let mut out = Vec::new();

    for ((attr, q), iv) in &per {
        if let Some((lo, hi)) = iv.conflict() {
            let name = match q {
                Qty::Min => "min",
                Qty::Max => "max",
                Qty::Sum => "sum",
                Qty::Avg => "avg",
            };
            out.push(conflict(
                vec![lo.source, hi.source],
                format!(
                    "{name}(S.{attr}) must be at least {} and at most {}: the interval is empty",
                    lo.value, hi.value
                ),
            ));
        }
    }
    if let Some((lo, hi)) = count.conflict() {
        out.push(conflict(
            vec![lo.source, hi.source],
            format!(
                "count(S) must be at least {} and at most {}: the interval is empty",
                lo.value, hi.value
            ),
        ));
    }
    for (attr, iv) in &distinct {
        if let Some((lo, hi)) = iv.conflict() {
            out.push(conflict(
                vec![lo.source, hi.source],
                format!(
                    "|S.{attr}| must be at least {} and at most {}: the interval is empty",
                    lo.value, hi.value
                ),
            ));
        }
    }

    let attrs_used: BTreeSet<&str> = per.keys().map(|&(a, _)| a).collect();
    for a in attrs_used {
        let get = |q: Qty| per.get(&(a, q)).copied().unwrap_or_default();
        let (min_iv, max_iv, sum_iv, avg_iv) =
            (get(Qty::Min), get(Qty::Max), get(Qty::Sum), get(Qty::Avg));
        let profile = attrs.numeric(a).and_then(ColumnProfile::of);

        if let (Some(lo), Some(hi)) = (min_iv.lo, max_iv.hi) {
            if lo.value > hi.value {
                out.push(conflict(
                    vec![lo.source, hi.source],
                    format!(
                        "min(S.{a}) >= {} forces max(S.{a}) >= {}, contradicting max(S.{a}) <= {}",
                        lo.value, lo.value, hi.value
                    ),
                ));
            }
        }
        if let (Some(lo), Some(hi)) = (min_iv.lo, avg_iv.hi) {
            if lo.value > hi.value {
                out.push(conflict(
                    vec![lo.source, hi.source],
                    format!(
                        "avg(S.{a}) is at least min(S.{a}) >= {}, contradicting avg(S.{a}) <= {}",
                        lo.value, hi.value
                    ),
                ));
            }
        }
        if let (Some(lo), Some(hi)) = (avg_iv.lo, max_iv.hi) {
            if lo.value > hi.value {
                out.push(conflict(
                    vec![lo.source, hi.source],
                    format!(
                        "avg(S.{a}) is at most max(S.{a}) <= {}, contradicting avg(S.{a}) >= {}",
                        hi.value, lo.value
                    ),
                ));
            }
        }
        // The presence of a sum bound implies a validated non-negative
        // domain for `a`, grounding the relations below.
        if let (Some(lo), Some(hi)) = (max_iv.lo, sum_iv.hi) {
            if lo.value > hi.value {
                out.push(conflict(
                    vec![lo.source, hi.source],
                    format!(
                        "on the non-negative domain {a}, sum(S.{a}) >= max(S.{a}) >= {}, \
                         contradicting sum(S.{a}) <= {}",
                        lo.value, hi.value
                    ),
                ));
            }
        }
        if let (Some(lo), Some(hi)) = (min_iv.lo, sum_iv.hi) {
            if lo.value > 0.0 && 2.0 * lo.value > hi.value {
                out.push(conflict(
                    vec![lo.source, hi.source],
                    format!(
                        "a set of >= 2 items each with {a} >= {} has sum(S.{a}) >= {}, \
                         contradicting sum(S.{a}) <= {}",
                        lo.value,
                        2.0 * lo.value,
                        hi.value
                    ),
                ));
            }
        }
        if let (Some(p), Some(cl), Some(sh)) = (profile, count.lo, sum_iv.hi) {
            if p.lo > 0.0 && cl.value * p.lo > sh.value {
                out.push(conflict(
                    vec![cl.source, sh.source],
                    format!(
                        "count(S) >= {} items each with {a} >= {} force sum(S.{a}) >= {}, \
                         contradicting sum(S.{a}) <= {}",
                        cl.value,
                        p.lo,
                        cl.value * p.lo,
                        sh.value
                    ),
                ));
            }
        }
        if let (Some(p), Some(sl), Some(ch)) = (profile, sum_iv.lo, count.hi) {
            if sl.value > ch.value * p.hi {
                out.push(conflict(
                    vec![sl.source, ch.source],
                    format!(
                        "at most {} items each with {a} <= {} cap sum(S.{a}) at {}, \
                         contradicting sum(S.{a}) >= {}",
                        ch.value,
                        p.hi,
                        ch.value * p.hi,
                        sl.value
                    ),
                ));
            }
        }
    }

    for (attr, iv) in &distinct {
        if let (Some(dl), Some(ch)) = (iv.lo, count.hi) {
            if dl.value > ch.value {
                out.push(conflict(
                    vec![dl.source, ch.source],
                    format!(
                        "|S.{attr}| >= {} needs more than {} items, contradicting count(S) <= {}",
                        dl.value, ch.value, ch.value
                    ),
                ));
            }
        }
    }
    out
}

/// Counting conflicts that interval algebra cannot see: unions of
/// required items (`CS ⊆ S`) and required categories (`CS ⊆ S.A`) against
/// `count`/`|S.A|` upper bounds.
fn cardinality_conflicts(constraints: &[Constraint], open: &[usize]) -> Vec<Conflict> {
    let mut count_hi: Option<(usize, f64)> = None;
    let mut distinct_hi: BTreeMap<&str, (usize, f64)> = BTreeMap::new();
    let mut item_sets: Vec<(usize, &BTreeSet<u32>)> = Vec::new();
    let mut cat_sets: BTreeMap<&str, Vec<(usize, &BTreeSet<u32>)>> = BTreeMap::new();
    for &i in open {
        match &constraints[i] {
            Constraint::Agg {
                agg: AggFn::Count,
                cmp: Cmp::Le,
                value,
                ..
            } if count_hi.is_none_or(|(_, v)| *value < v) => {
                count_hi = Some((i, *value));
            }
            Constraint::CountDistinct {
                attr,
                cmp: Cmp::Le,
                value,
            } => {
                let v = *value as f64;
                let e = distinct_hi.entry(attr.as_str());
                e.and_modify(|b| {
                    if v < b.1 {
                        *b = (i, v);
                    }
                })
                .or_insert((i, v));
            }
            Constraint::ItemSubset {
                items,
                negated: false,
            } => item_sets.push((i, items)),
            Constraint::ConstSubset {
                attr,
                categories,
                negated: false,
            } => cat_sets
                .entry(attr.as_str())
                .or_default()
                .push((i, categories)),
            _ => {}
        }
    }

    let mut out = Vec::new();
    if let Some((ci, limit)) = count_hi {
        if let Some((core, size)) = union_exceeds(&item_sets, limit) {
            let mut core = core;
            core.push(ci);
            out.push(conflict(
                core,
                format!(
                    "the item-subset constraints force {size} distinct items into S, \
                     contradicting count(S) <= {limit}"
                ),
            ));
        }
        for (attr, sets) in &cat_sets {
            if let Some((core, size)) = union_exceeds(sets, limit) {
                let mut core = core;
                core.push(ci);
                out.push(conflict(
                    core,
                    format!(
                        "covering {size} distinct {attr} categories needs {size} items, \
                         contradicting count(S) <= {limit}"
                    ),
                ));
            }
        }
    }
    for (attr, sets) in &cat_sets {
        if let Some(&(di, limit)) = distinct_hi.get(attr) {
            if let Some((core, size)) = union_exceeds(sets, limit) {
                let mut core = core;
                core.push(di);
                out.push(conflict(
                    core,
                    format!(
                        "the subset constraints force {size} distinct {attr} categories, \
                         contradicting |S.{attr}| <= {limit}"
                    ),
                ));
            }
        }
    }
    out
}

/// If the union of `sets` exceeds `limit`, a greedily minimized core of
/// contributor indices whose union still exceeds it, plus that union's
/// size.
fn union_exceeds(sets: &[(usize, &BTreeSet<u32>)], limit: f64) -> Option<(Vec<usize>, usize)> {
    let union_of = |positions: &[usize]| -> usize {
        let u: BTreeSet<u32> = positions
            .iter()
            .flat_map(|&p| sets[p].1.iter().copied())
            .collect();
        u.len()
    };
    let mut kept: Vec<usize> = (0..sets.len()).collect();
    if union_of(&kept) as f64 <= limit {
        return None;
    }
    for pos in 0..sets.len() {
        let trial: Vec<usize> = kept.iter().copied().filter(|&p| p != pos).collect();
        if union_of(&trial) as f64 > limit {
            kept = trial;
        }
    }
    let size = union_of(&kept);
    Some((kept.iter().map(|&p| sets[p].0).collect(), size))
}

/// Geometry of the succinct constraints: the allowed-universe
/// intersection must keep ≥ 2 items, and every witness class of a
/// monotone succinct constraint must intersect it.
fn universe_conflicts(
    constraints: &[Constraint],
    open: &[usize],
    attrs: &AttributeTable,
) -> Vec<Conflict> {
    let n = attrs.n_items() as usize;
    if n < 2 {
        return Vec::new(); // mining over < 2 items is vacuous regardless
    }
    let contribs: Vec<(usize, Vec<bool>)> = open
        .iter()
        .filter_map(|&i| {
            am_allowed_items(&constraints[i], attrs).map(|items| {
                let mut mask = vec![false; n];
                for it in items {
                    mask[it.index()] = true;
                }
                (i, mask)
            })
        })
        .collect();
    if contribs.is_empty() {
        return Vec::new();
    }

    let intersect = |positions: &[usize]| -> Vec<bool> {
        let mut m = vec![true; n];
        for &p in positions {
            for (a, b) in m.iter_mut().zip(&contribs[p].1) {
                *a &= *b;
            }
        }
        m
    };
    let live = |m: &[bool]| m.iter().filter(|&&b| b).count();

    let all: Vec<usize> = (0..contribs.len()).collect();
    let full = intersect(&all);
    if live(&full) < 2 {
        let mut kept = all;
        for p in 0..contribs.len() {
            let trial: Vec<usize> = kept.iter().copied().filter(|&q| q != p).collect();
            if live(&intersect(&trial)) < 2 {
                kept = trial;
            }
        }
        let survivors = live(&intersect(&kept));
        return vec![conflict(
            kept.iter().map(|&p| contribs[p].0).collect(),
            format!(
                "the allowed universes of these succinct constraints intersect in {survivors} \
                 item(s); answers need at least 2"
            ),
        )];
    }

    let mut out = Vec::new();
    for &i in open {
        let Some(classes) = ms_witness_classes(&constraints[i], attrs) else {
            continue;
        };
        for class in classes {
            if class.is_empty() {
                continue; // caught by single-constraint grounding
            }
            if class.iter().all(|it| !full[it.index()]) {
                let excluded = |positions: &[usize]| {
                    let m = intersect(positions);
                    class.iter().all(|it| !m[it.index()])
                };
                let mut kept: Vec<usize> = (0..contribs.len()).collect();
                for p in 0..contribs.len() {
                    let trial: Vec<usize> = kept.iter().copied().filter(|&q| q != p).collect();
                    if excluded(&trial) {
                        kept = trial;
                    }
                }
                let mut core: Vec<usize> = kept.iter().map(|&p| contribs[p].0).collect();
                core.push(i);
                out.push(conflict(
                    core,
                    format!(
                        "'{}' needs a witness item, but every witness is outside the allowed \
                         universe carved by the anti-monotone succinct constraints",
                        constraints[i]
                    ),
                ));
                break; // one conflict per constraint suffices
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Normalization: duplicates, subsumption, merging.
// ---------------------------------------------------------------------

struct Entry {
    keeper: usize,
    constraint: Constraint,
}

enum Fold {
    Unrelated,
    /// The candidate is implied by the existing entry.
    DropNew(&'static str),
    /// The candidate is strictly tighter: it replaces the entry.
    Replace,
    /// Same mergeable family: union the candidate into the entry.
    Merge,
}

fn normalize(
    constraints: &[Constraint],
    grounds: &[Grounding],
) -> (Vec<Entry>, Vec<Option<String>>) {
    let mut entries: Vec<Entry> = Vec::new();
    let mut dropped: Vec<Option<String>> = vec![None; constraints.len()];

    for (i, g) in grounds.iter().enumerate() {
        match g {
            Grounding::Trivial(msg) => {
                dropped[i] = Some(format!("trivially true: {msg}"));
                continue;
            }
            Grounding::Unsat(_) => continue, // unreachable on this path
            Grounding::Open => {}
        }
        let c = &constraints[i];
        let mut placed = false;
        for e in entries.iter_mut() {
            match fold(&e.constraint, c) {
                Fold::Unrelated => continue,
                Fold::DropNew(why) => {
                    dropped[i] = Some(format!("{why} #{}", e.keeper + 1));
                    placed = true;
                }
                Fold::Replace => {
                    dropped[e.keeper] = Some(format!("subsumed by #{}", i + 1));
                    e.keeper = i;
                    e.constraint = c.clone();
                    placed = true;
                }
                Fold::Merge => {
                    merge_union(&mut e.constraint, c);
                    dropped[i] = Some(format!("merged into #{}", e.keeper + 1));
                    placed = true;
                }
            }
            break;
        }
        if !placed && dropped[i].is_none() {
            entries.push(Entry {
                keeper: i,
                constraint: c.clone(),
            });
        }
    }

    // Replacements and merges can unlock further subsumptions between
    // entries that were incomparable on first contact; run to fixpoint.
    loop {
        let mut victim: Option<(usize, usize, &'static str)> = None;
        'scan: for x in 0..entries.len() {
            for y in 0..entries.len() {
                if x == y {
                    continue;
                }
                if let Fold::DropNew(why) = fold(&entries[x].constraint, &entries[y].constraint) {
                    victim = Some((x, y, why));
                    break 'scan;
                }
            }
        }
        match victim {
            Some((x, y, why)) => {
                dropped[entries[y].keeper] = Some(format!("{why} #{}", entries[x].keeper + 1));
                entries.remove(y);
            }
            None => break,
        }
    }

    (entries, dropped)
}

fn fold(existing: &Constraint, candidate: &Constraint) -> Fold {
    if existing == candidate {
        return Fold::DropNew("duplicate of");
    }
    match (existing, candidate) {
        (
            Constraint::Agg {
                agg: a1,
                attr: t1,
                cmp: m1,
                value: v1,
            },
            Constraint::Agg {
                agg: a2,
                attr: t2,
                cmp: m2,
                value: v2,
            },
        ) if a1 == a2 && m1 == m2 && (*a1 == AggFn::Count || t1 == t2) => tighter(*m1, *v1, *v2),
        (
            Constraint::Avg {
                attr: t1,
                cmp: m1,
                value: v1,
            },
            Constraint::Avg {
                attr: t2,
                cmp: m2,
                value: v2,
            },
        ) if t1 == t2 && m1 == m2 => tighter(*m1, *v1, *v2),
        (
            Constraint::CountDistinct {
                attr: t1,
                cmp: m1,
                value: v1,
            },
            Constraint::CountDistinct {
                attr: t2,
                cmp: m2,
                value: v2,
            },
        ) if t1 == t2 && m1 == m2 => tighter(*m1, *v1 as f64, *v2 as f64),
        (
            Constraint::ConstSubset {
                attr: t1,
                categories: s1,
                negated: n1,
            },
            Constraint::ConstSubset {
                attr: t2,
                categories: s2,
                negated: n2,
            },
        ) if t1 == t2 && n1 == n2 => set_fold(*n1, s1, s2),
        (
            Constraint::Disjoint {
                attr: t1,
                categories: s1,
                negated: n1,
            },
            Constraint::Disjoint {
                attr: t2,
                categories: s2,
                negated: n2,
            },
        ) if t1 == t2 && n1 == n2 => set_fold(*n1, s1, s2),
        (
            Constraint::ItemSubset {
                items: s1,
                negated: n1,
            },
            Constraint::ItemSubset {
                items: s2,
                negated: n2,
            },
        ) if n1 == n2 => set_fold(*n1, s1, s2),
        (
            Constraint::ItemDisjoint {
                items: s1,
                negated: n1,
            },
            Constraint::ItemDisjoint {
                items: s2,
                negated: n2,
            },
        ) if n1 == n2 => set_fold(*n1, s1, s2),
        _ => Fold::Unrelated,
    }
}

/// `≤` keeps the smaller bound, `≥` the larger; the loser is subsumed.
fn tighter(cmp: Cmp, existing: f64, candidate: f64) -> Fold {
    let candidate_tighter = match cmp {
        Cmp::Le => candidate < existing,
        Cmp::Ge => candidate > existing,
    };
    if candidate_tighter {
        Fold::Replace
    } else {
        Fold::DropNew("subsumed by")
    }
}

/// Positive (un-negated) subset/disjoint families conjoin to the union;
/// negated (`⊄` / intersects) families keep the smaller — stronger — set.
fn set_fold(negated: bool, existing: &BTreeSet<u32>, candidate: &BTreeSet<u32>) -> Fold {
    if !negated {
        Fold::Merge
    } else if existing.is_subset(candidate) {
        Fold::DropNew("subsumed by")
    } else if candidate.is_subset(existing) {
        Fold::Replace
    } else {
        Fold::Unrelated
    }
}

fn merge_union(into: &mut Constraint, from: &Constraint) {
    match (into, from) {
        (
            Constraint::ConstSubset { categories: a, .. },
            Constraint::ConstSubset { categories: b, .. },
        )
        | (
            Constraint::Disjoint { categories: a, .. },
            Constraint::Disjoint { categories: b, .. },
        ) => a.extend(b.iter().copied()),
        (Constraint::ItemSubset { items: a, .. }, Constraint::ItemSubset { items: b, .. })
        | (Constraint::ItemDisjoint { items: a, .. }, Constraint::ItemDisjoint { items: b, .. }) => {
            a.extend(b.iter().copied())
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------
// Push-plan roles and reports.
// ---------------------------------------------------------------------

fn role_of(j: usize, analysis: &ConstraintAnalysis) -> PushRole {
    if analysis.universe_contributors().contains(&j) {
        PushRole::AllowedUniverse
    } else if analysis.am_residual_indices().contains(&j) {
        PushRole::ResidualAntiMonotone
    } else if analysis.witness_source() == Some(j) {
        PushRole::WitnessClass {
            captured: analysis.captured_monotone() == Some(j),
        }
    } else if analysis.m_residual_indices().contains(&j) {
        PushRole::ResidualMonotone
    } else {
        PushRole::PostFilter
    }
}

fn base_reports(
    constraints: &[Constraint],
    spans: &[Span],
    attrs: &AttributeTable,
) -> Vec<ConstraintReport> {
    constraints
        .iter()
        .enumerate()
        .map(|(i, c)| ConstraintReport {
            index: i,
            text: c.to_string(),
            span: spans.get(i).copied(),
            monotonicity: c.monotonicity(),
            succinct: c.is_succinct(),
            selectivity: item_selectivity(c, attrs),
            kept: false,
            dropped_because: None,
            merged_text: None,
            role: None,
        })
        .collect()
}

fn mono_str(m: Monotonicity) -> &'static str {
    match m {
        Monotonicity::AntiMonotone => "anti-monotone",
        Monotonicity::Monotone => "monotone",
        Monotonicity::Neither => "neither",
    }
}

fn role_str(role: PushRole) -> &'static str {
    match role {
        PushRole::AllowedUniverse => "allowed universe (pruned at candidate generation)",
        PushRole::ResidualAntiMonotone => "residual anti-monotone check (before counting)",
        PushRole::WitnessClass { captured: true } => "witness class seeding L1+ (fully captured)",
        PushRole::WitnessClass { captured: false } => {
            "witness class seeding L1+ (re-checked at SIG entry)"
        }
        PushRole::ResidualMonotone => "residual monotone check (at SIG entry)",
        PushRole::PostFilter => "post-filter (neither monotone: exhaustive miners only)",
    }
}

fn role_slug(role: PushRole) -> &'static str {
    match role {
        PushRole::AllowedUniverse => "allowed-universe",
        PushRole::ResidualAntiMonotone => "residual-anti-monotone",
        PushRole::WitnessClass { captured: true } => "witness-class-captured",
        PushRole::WitnessClass { captured: false } => "witness-class-residual",
        PushRole::ResidualMonotone => "residual-monotone",
        PushRole::PostFilter => "post-filter",
    }
}

impl QueryAnalysis {
    /// Lower-case verdict label.
    pub fn verdict_str(&self) -> &'static str {
        match self.verdict {
            QueryVerdict::Unsatisfiable { .. } => "unsatisfiable",
            QueryVerdict::Trivial => "trivial",
            QueryVerdict::Satisfiable => "satisfiable",
        }
    }

    /// Human-readable report. When `source` is the original query text,
    /// diagnostics underline the spans they concern (byte-aligned; exact
    /// for ASCII queries).
    pub fn render(&self, source: Option<&str>) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "verdict: {}", self.verdict_str().to_uppercase());
        if let QueryVerdict::Unsatisfiable { core } = &self.verdict {
            let labels: Vec<String> = core.iter().map(|&i| format!("#{}", i + 1)).collect();
            let _ = writeln!(s, "minimal conflicting core: {}", labels.join(", "));
        }

        for d in &self.diagnostics {
            let _ = writeln!(s, "{}: {}", d.severity.as_str(), d.message);
            let spans: Vec<Span> = d
                .constraints
                .iter()
                .filter_map(|&i| self.reports.get(i).and_then(|r| r.span))
                .collect();
            if let (Some(src), false) = (source, spans.is_empty()) {
                let _ = writeln!(s, "  {src}");
                let _ = writeln!(s, "  {}", underline(src, &spans));
            } else {
                for &i in &d.constraints {
                    if let Some(r) = self.reports.get(i) {
                        let _ = writeln!(s, "  #{} {}", i + 1, r.text);
                    }
                }
            }
        }

        if !self.reports.is_empty() {
            let _ = writeln!(s, "constraints:");
            let width = self.reports.iter().map(|r| r.text.len()).max().unwrap_or(0);
            for r in &self.reports {
                let mut line = format!(
                    "  #{} {:width$}  {}{}",
                    r.index + 1,
                    r.text,
                    mono_str(r.monotonicity),
                    if r.succinct { ", succinct" } else { "" },
                );
                if let Some(sel) = r.selectivity {
                    let _ = write!(line, "  selectivity {sel:.2}");
                }
                match (&self.verdict, r.kept, &r.dropped_because, r.role) {
                    (QueryVerdict::Unsatisfiable { .. }, ..) => {}
                    (_, true, _, Some(role)) => {
                        let _ = write!(line, "  -> {}", role_str(role));
                        if let Some(m) = &r.merged_text {
                            let _ = write!(line, " [merged: {m}]");
                        }
                    }
                    (_, false, Some(why), _) => {
                        let _ = write!(line, "  -> dropped: {why}");
                    }
                    _ => {}
                }
                let _ = writeln!(s, "{line}");
            }
        }

        if !self.verdict.is_unsatisfiable() {
            let _ = writeln!(s, "normalized: {}", self.normalized);
        }
        let thm = match (&self.verdict, self.valid_min_eq_min_valid) {
            (QueryVerdict::Unsatisfiable { .. }, _) => "yes (both answer sets are empty)",
            (_, true) => "yes (all surviving constraints are anti-monotone)",
            (_, false) => "no (a non-anti-monotone constraint survives)",
        };
        let _ = writeln!(s, "VALID_MIN == MIN_VALID (Theorem 1.2): {thm}");
        s
    }

    /// The analysis as a single-line JSON object (hand-rolled: the
    /// workspace intentionally carries no JSON dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(s, "\"verdict\":\"{}\"", self.verdict_str());
        if let QueryVerdict::Unsatisfiable { core } = &self.verdict {
            let items: Vec<String> = core.iter().map(usize::to_string).collect();
            let _ = write!(s, ",\"core\":[{}]", items.join(","));
        }
        let _ = write!(
            s,
            ",\"normalized\":\"{}\"",
            json_escape(&self.normalized.to_string())
        );
        let _ = write!(
            s,
            ",\"valid_min_eq_min_valid\":{}",
            self.valid_min_eq_min_valid
        );
        let _ = write!(
            s,
            ",\"measure_class\":\"{}\"",
            if self.measure_class.is_downward() {
                "downward-closed"
            } else {
                "upward-closed"
            }
        );
        s.push_str(",\"constraints\":[");
        for (k, r) in self.reports.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"index\":{},\"text\":\"{}\",\"span\":{},\"monotonicity\":\"{}\",\
                 \"succinct\":{},\"selectivity\":{},\"kept\":{},\"dropped\":{},\
                 \"merged\":{},\"role\":{}}}",
                r.index,
                json_escape(&r.text),
                match r.span {
                    Some(sp) => format!("[{},{}]", sp.start, sp.end),
                    None => "null".into(),
                },
                mono_str(r.monotonicity),
                r.succinct,
                match r.selectivity {
                    Some(v) => format!("{v}"),
                    None => "null".into(),
                },
                r.kept,
                match &r.dropped_because {
                    Some(d) => format!("\"{}\"", json_escape(d)),
                    None => "null".into(),
                },
                match &r.merged_text {
                    Some(m) => format!("\"{}\"", json_escape(m)),
                    None => "null".into(),
                },
                match r.role {
                    Some(role) => format!("\"{}\"", role_slug(role)),
                    None => "null".into(),
                },
            );
        }
        s.push_str("],\"diagnostics\":[");
        for (k, d) in self.diagnostics.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            let spans: Vec<String> = d
                .constraints
                .iter()
                .filter_map(|&i| self.reports.get(i).and_then(|r| r.span))
                .map(|sp| format!("[{},{}]", sp.start, sp.end))
                .collect();
            let cons: Vec<String> = d.constraints.iter().map(usize::to_string).collect();
            let _ = write!(
                s,
                "{{\"severity\":\"{}\",\"message\":\"{}\",\"constraints\":[{}],\"spans\":[{}]}}",
                d.severity.as_str(),
                json_escape(&d.message),
                cons.join(","),
                spans.join(","),
            );
        }
        s.push_str("]}");
        s
    }
}

/// Caret line marking every span (byte-column aligned).
fn underline(source: &str, spans: &[Span]) -> String {
    let mut line = vec![b' '; source.len()];
    for sp in spans {
        for cell in line
            .iter_mut()
            .take(sp.end.min(source.len()))
            .skip(sp.start)
        {
            *cell = b'^';
        }
    }
    let mut out = String::from_utf8(line).unwrap_or_default();
    out.truncate(out.trim_end().len());
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_itemset::Itemset;

    fn attrs() -> AttributeTable {
        let mut t = AttributeTable::new(6);
        t.add_numeric("price", vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        t.add_categorical("type", &["soda", "soda", "snack", "dairy", "dairy", "beer"]);
        t
    }

    fn cat(a: &AttributeTable, labels: &[&str]) -> BTreeSet<u32> {
        let col = a.categorical("type").unwrap();
        labels.iter().map(|l| col.id_of(l).unwrap()).collect()
    }

    fn core_of(qa: &QueryAnalysis) -> Vec<usize> {
        match &qa.verdict {
            QueryVerdict::Unsatisfiable { core } => core.clone(),
            v => panic!("expected unsatisfiable, got {v:?}"),
        }
    }

    /// Normalization must preserve `satisfied()` on every set of >= 2
    /// items over the full universe.
    fn assert_equivalent(cs: &ConstraintSet, qa: &QueryAnalysis, a: &AttributeTable) {
        let n = a.n_items();
        for bits in 0u32..(1 << n) {
            if bits.count_ones() < 2 {
                continue;
            }
            let set = Itemset::from_ids((0..n).filter(|i| bits & (1 << i) != 0));
            assert_eq!(
                cs.satisfied(&set, a),
                qa.normalized.satisfied(&set, a),
                "normalization changed satisfied() for {set}"
            );
        }
    }

    #[test]
    fn min_max_contradiction_yields_minimal_core() {
        let a = attrs();
        let cs = ConstraintSet::new()
            .and(Constraint::sum_ge("price", 3.0)) // irrelevant bystander
            .and(Constraint::max_le("price", 2.0))
            .and(Constraint::min_ge("price", 4.0));
        let qa = analyze(&cs, &a).unwrap();
        assert_eq!(core_of(&qa), vec![1, 2]);
        assert!(qa.valid_min_eq_min_valid); // vacuously
        assert!(qa.diagnostics.iter().any(|d| d.severity == Severity::Error));
    }

    #[test]
    fn single_constraint_impossibilities() {
        let a = attrs();
        for c in [
            Constraint::agg(AggFn::Count, "price", Cmp::Le, 1.0),
            Constraint::agg(AggFn::Count, "price", Cmp::Ge, 7.0),
            Constraint::sum_ge("price", 22.0), // total is 21
            Constraint::sum_le("price", 2.0),  // two smallest sum to 3
            Constraint::min_ge("price", 5.5),  // min of any pair <= 5
            Constraint::max_le("price", 1.5),  // max of any pair >= 2
            Constraint::max_ge("price", 7.0),
            Constraint::Avg {
                attr: "price".into(),
                cmp: Cmp::Ge,
                value: 6.5,
            },
            Constraint::CountDistinct {
                attr: "type".into(),
                cmp: Cmp::Ge,
                value: 5,
            },
            Constraint::ItemSubset {
                items: BTreeSet::new(),
                negated: true,
            },
            Constraint::ItemDisjoint {
                items: (0..6).collect(),
                negated: false,
            },
        ] {
            let cs = ConstraintSet::new().and(c.clone());
            let qa = analyze(&cs, &a).unwrap();
            assert_eq!(core_of(&qa), vec![0], "expected unsat for {c}");
        }
    }

    #[test]
    fn downward_measure_class_is_recorded_without_moving_roles() {
        let a = attrs();
        let cs = ConstraintSet::new()
            .and(Constraint::max_le("price", 4.0))
            .and(Constraint::sum_ge("price", 5.0));
        let up = analyze(&cs, &a).unwrap();
        assert!(up.measure_class.is_upward());
        assert!(up.to_json().contains("\"measure_class\":\"upward-closed\""));
        assert!(!up.render(None).contains("downward-closed"));

        let down = analyze_for_measure(&cs, &[], &a, MonotonicityClass::DownwardClosed).unwrap();
        assert!(down.measure_class.is_downward());
        assert!(down
            .to_json()
            .contains("\"measure_class\":\"downward-closed\""));
        // The note about the flipped sweep geometry reaches the render.
        assert!(down.render(None).contains("close at level 2"));
        // Role assignment itself is measure-independent.
        let roles = |qa: &QueryAnalysis| qa.reports.iter().map(|r| r.role).collect::<Vec<_>>();
        assert_eq!(roles(&up), roles(&down));
        assert_eq!(up.valid_min_eq_min_valid, down.valid_min_eq_min_valid);
    }

    #[test]
    fn trivial_verdict_when_everything_folds_away() {
        let a = attrs();
        let cs = ConstraintSet::new()
            .and(Constraint::max_le("price", 100.0))
            .and(Constraint::agg(AggFn::Count, "price", Cmp::Ge, 2.0))
            .and(Constraint::min_le("price", 5.0)); // any pair has min <= 5
        let qa = analyze(&cs, &a).unwrap();
        assert_eq!(qa.verdict, QueryVerdict::Trivial);
        assert!(qa.normalized.is_empty());
        assert_equivalent(&cs, &qa, &a);
        assert!(qa.reports.iter().all(|r| !r.kept));
    }

    #[test]
    fn duplicates_and_subsumption_keep_tightest() {
        let a = attrs();
        let cs = ConstraintSet::new()
            .and(Constraint::max_le("price", 5.0))
            .and(Constraint::max_le("price", 5.0)) // duplicate
            .and(Constraint::max_le("price", 4.0)) // tighter: replaces
            .and(Constraint::sum_le("price", 9.0))
            .and(Constraint::sum_le("price", 12.0)); // looser: dropped
        let qa = analyze(&cs, &a).unwrap();
        assert_eq!(qa.verdict, QueryVerdict::Satisfiable);
        assert_eq!(qa.normalized.len(), 2);
        assert_eq!(
            qa.normalized.to_string(),
            "max(S.price) <= 4 & sum(S.price) <= 9"
        );
        assert!(qa.reports[0]
            .dropped_because
            .as_deref()
            .unwrap()
            .contains("#3"));
        assert!(qa.reports[1].dropped_because.is_some());
        assert!(qa.reports[2].kept);
        assert!(qa.reports[4]
            .dropped_because
            .as_deref()
            .unwrap()
            .contains("#4"));
        assert_equivalent(&cs, &qa, &a);
        assert!(qa.valid_min_eq_min_valid); // both survivors anti-monotone
    }

    #[test]
    fn disjoint_constraints_merge_to_union() {
        let a = attrs();
        let cs = ConstraintSet::new()
            .and(Constraint::Disjoint {
                attr: "type".into(),
                categories: cat(&a, &["snack"]),
                negated: false,
            })
            .and(Constraint::Disjoint {
                attr: "type".into(),
                categories: cat(&a, &["beer"]),
                negated: false,
            });
        let qa = analyze(&cs, &a).unwrap();
        assert_eq!(qa.normalized.len(), 1);
        assert!(qa.reports[0].merged_text.is_some());
        assert!(qa.reports[1]
            .dropped_because
            .as_deref()
            .unwrap()
            .contains("merged into #1"));
        assert_equivalent(&cs, &qa, &a);
    }

    #[test]
    fn negated_subset_chain_keeps_smallest() {
        let a = attrs();
        let cs = ConstraintSet::new()
            .and(Constraint::ItemSubset {
                items: [0, 1, 2].into(),
                negated: true,
            })
            .and(Constraint::ItemSubset {
                items: [0, 1].into(),
                negated: true,
            });
        let qa = analyze(&cs, &a).unwrap();
        assert_eq!(qa.normalized.len(), 1);
        assert!(qa.reports[1].kept);
        assert!(qa.reports[0].dropped_because.is_some());
        assert_equivalent(&cs, &qa, &a);
    }

    #[test]
    fn universe_intersection_too_small_is_unsat() {
        let a = attrs();
        // price in [3, 3] leaves a single item; answers need two.
        let cs = ConstraintSet::new()
            .and(Constraint::max_le("price", 3.0))
            .and(Constraint::min_ge("price", 3.0));
        let qa = analyze(&cs, &a).unwrap();
        assert_eq!(core_of(&qa), vec![0, 1]);
    }

    #[test]
    fn witness_class_outside_universe_is_unsat() {
        let a = attrs();
        // Universe excludes snacks; a snack witness is still required.
        let cs = ConstraintSet::new()
            .and(Constraint::Disjoint {
                attr: "type".into(),
                categories: cat(&a, &["snack"]),
                negated: false,
            })
            .and(Constraint::Disjoint {
                attr: "type".into(),
                categories: cat(&a, &["snack"]),
                negated: true,
            });
        let qa = analyze(&cs, &a).unwrap();
        assert_eq!(core_of(&qa), vec![0, 1]);
    }

    #[test]
    fn required_items_exceed_count_bound() {
        let a = attrs();
        let cs = ConstraintSet::new()
            .and(Constraint::ItemSubset {
                items: [0, 1].into(),
                negated: false,
            })
            .and(Constraint::ItemSubset {
                items: [2, 3].into(),
                negated: false,
            })
            .and(Constraint::agg(AggFn::Count, "price", Cmp::Le, 3.0));
        let qa = analyze(&cs, &a).unwrap();
        assert_eq!(core_of(&qa), vec![0, 1, 2]);
    }

    #[test]
    fn sum_and_count_couple_through_the_column() {
        let a = attrs();
        // 5 items each priced >= 1 force sum >= 5... but tighter: the
        // count lower bound times the column minimum exceeds the cap.
        let cs = ConstraintSet::new()
            .and(Constraint::agg(AggFn::Count, "price", Cmp::Ge, 5.0))
            .and(Constraint::sum_le("price", 4.0));
        let qa = analyze(&cs, &a).unwrap();
        assert_eq!(core_of(&qa), vec![0, 1]);
    }

    #[test]
    fn avg_bridges_min_and_max() {
        let a = attrs();
        let cs = ConstraintSet::new()
            .and(Constraint::min_ge("price", 4.0))
            .and(Constraint::Avg {
                attr: "price".into(),
                cmp: Cmp::Le,
                value: 3.0,
            });
        let qa = analyze(&cs, &a).unwrap();
        assert_eq!(core_of(&qa), vec![0, 1]);
    }

    #[test]
    fn push_plan_roles_cover_all_shapes() {
        let a = attrs();
        let cs = ConstraintSet::new()
            .and(Constraint::max_le("price", 5.0)) // am succinct
            .and(Constraint::sum_le("price", 9.0)) // am residual
            .and(Constraint::min_le("price", 2.0)) // ms single-class
            .and(Constraint::Avg {
                attr: "price".into(),
                cmp: Cmp::Le,
                value: 4.0,
            }); // neither
        let qa = analyze(&cs, &a).unwrap();
        assert_eq!(qa.verdict, QueryVerdict::Satisfiable);
        assert_eq!(qa.reports[0].role, Some(PushRole::AllowedUniverse));
        assert_eq!(qa.reports[1].role, Some(PushRole::ResidualAntiMonotone));
        assert_eq!(
            qa.reports[2].role,
            Some(PushRole::WitnessClass { captured: true })
        );
        assert_eq!(qa.reports[3].role, Some(PushRole::PostFilter));
        assert!(!qa.valid_min_eq_min_valid);
        assert_eq!(qa.reports[0].selectivity, Some(5.0 / 6.0));
    }

    #[test]
    fn multi_class_witness_source_is_not_captured() {
        let a = attrs();
        let cs = ConstraintSet::new().and(Constraint::ConstSubset {
            attr: "type".into(),
            categories: cat(&a, &["soda", "beer"]),
            negated: false,
        });
        let qa = analyze(&cs, &a).unwrap();
        assert_eq!(
            qa.reports[0].role,
            Some(PushRole::WitnessClass { captured: false })
        );
    }

    #[test]
    fn render_and_json_smoke() {
        let a = attrs();
        let source = "max(S.price) <= 2 & min(S.price) >= 4";
        let cs = ConstraintSet::new()
            .and(Constraint::max_le("price", 2.0))
            .and(Constraint::min_ge("price", 4.0));
        let spans = vec![Span::new(0, 17), Span::new(20, 38)];
        let qa = analyze_spanned(&cs, &spans, &a).unwrap();
        let text = qa.render(Some(source));
        assert!(text.contains("UNSATISFIABLE"), "{text}");
        assert!(text.contains("minimal conflicting core: #1, #2"), "{text}");
        assert!(text.contains('^'), "{text}");
        let json = qa.to_json();
        assert!(json.contains("\"verdict\":\"unsatisfiable\""), "{json}");
        assert!(json.contains("\"core\":[0,1]"), "{json}");
        assert!(json.contains("\"span\":[0,17]"), "{json}");

        let sat = analyze(
            &ConstraintSet::new().and(Constraint::max_le("price", 4.0)),
            &a,
        )
        .unwrap();
        let text = sat.render(None);
        assert!(text.contains("SATISFIABLE"), "{text}");
        assert!(text.contains("allowed universe"), "{text}");
        assert!(text.contains("normalized: max(S.price) <= 4"), "{text}");
        assert!(sat.to_json().contains("\"role\":\"allowed-universe\""));
    }

    #[test]
    fn validation_errors_propagate() {
        let a = attrs();
        let cs = ConstraintSet::new().and(Constraint::max_le("weight", 1.0));
        assert!(analyze(&cs, &a).is_err());
    }

    #[test]
    fn empty_conjunction_is_satisfiable_not_trivial() {
        let a = attrs();
        let qa = analyze(&ConstraintSet::new(), &a).unwrap();
        assert_eq!(qa.verdict, QueryVerdict::Satisfiable);
        assert!(qa.normalized.is_empty());
    }

    #[test]
    fn equivalence_over_mixed_normalizing_conjunction() {
        let a = attrs();
        let cs = ConstraintSet::new()
            .and(Constraint::max_le("price", 5.0))
            .and(Constraint::max_le("price", 6.0)) // trivial (hi = 6)
            .and(Constraint::min_le("price", 2.0))
            .and(Constraint::min_le("price", 2.0)) // duplicate
            .and(Constraint::agg(AggFn::Count, "price", Cmp::Ge, 2.0)) // trivial
            .and(Constraint::Disjoint {
                attr: "type".into(),
                categories: cat(&a, &["beer"]),
                negated: false,
            });
        let qa = analyze(&cs, &a).unwrap();
        assert_eq!(qa.verdict, QueryVerdict::Satisfiable);
        assert_equivalent(&cs, &qa, &a);
    }
}
