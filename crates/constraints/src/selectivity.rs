//! Constraint selectivity: measurement and threshold calibration.
//!
//! The paper's experiments sweep *constraint selectivity* — the proportion
//! of items a constraint leaves usable (its allowed universe for
//! anti-monotone succinct constraints, its witness class for monotone
//! succinct ones). Low selectivity = strong pruning. These helpers measure
//! the selectivity of a constraint over an attribute table and, inversely,
//! calibrate a threshold value that achieves a target selectivity —
//! exactly how the benchmark harness picks `v` for `max(S.price) ≤ v`
//! sweeps.

use crate::ast::Constraint;
use crate::attr::AttributeTable;
use crate::succinct::{am_allowed_items, ms_witness_classes};

/// Fraction of items in the allowed universe (anti-monotone succinct) or
/// in the union of witness classes (monotone succinct). Returns `None`
/// for constraints without an item-level footprint (`sum`, `count`,
/// `avg`, …), whose selectivity the paper parameterizes differently
/// (e.g. by `maxsum` directly in Figure 4).
pub fn item_selectivity(c: &Constraint, attrs: &AttributeTable) -> Option<f64> {
    let n = attrs.n_items() as f64;
    if n == 0.0 {
        return None;
    }
    if let Some(allowed) = am_allowed_items(c, attrs) {
        return Some(allowed.len() as f64 / n);
    }
    if let Some(classes) = ms_witness_classes(c, attrs) {
        let mut mask = vec![false; attrs.n_items() as usize];
        for class in classes {
            for i in class {
                mask[i.index()] = true;
            }
        }
        let count = mask.iter().filter(|&&b| b).count();
        return Some(count as f64 / n);
    }
    None
}

/// The value `v` such that `max(S.attr) ≤ v` has (approximately) the given
/// item selectivity: the `selectivity`-quantile of the attribute column.
///
/// # Panics
///
/// Panics if the attribute is missing, the universe is empty, or
/// `selectivity ∉ [0, 1]`.
pub fn threshold_for_le_selectivity(attrs: &AttributeTable, attr: &str, selectivity: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&selectivity),
        "selectivity must be in [0, 1]"
    );
    let col = attrs
        .numeric(attr)
        .unwrap_or_else(|| panic!("unknown numeric attribute '{attr}'"));
    assert!(!col.is_empty(), "empty item universe");
    let mut sorted: Vec<f64> = col.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b)); // columns are validated finite
    let want = (selectivity * sorted.len() as f64).round() as usize;
    if want == 0 {
        // Below the minimum: nothing qualifies.
        sorted[0] - 1.0
    } else {
        sorted[want - 1]
    }
}

/// The value `v` such that `min(S.attr) ≥ v` (anti-monotone) — or the
/// witness class of `max(S.attr) ≥ v` (monotone) — has the given item
/// selectivity: items with `attr ≥ v`.
///
/// # Panics
///
/// As [`threshold_for_le_selectivity`].
pub fn threshold_for_ge_selectivity(attrs: &AttributeTable, attr: &str, selectivity: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&selectivity),
        "selectivity must be in [0, 1]"
    );
    let col = attrs
        .numeric(attr)
        .unwrap_or_else(|| panic!("unknown numeric attribute '{attr}'"));
    assert!(!col.is_empty(), "empty item universe");
    let mut sorted: Vec<f64> = col.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a)); // descending; columns are validated finite
    let want = (selectivity * sorted.len() as f64).round() as usize;
    if want == 0 {
        sorted[0] + 1.0
    } else {
        sorted[want - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Constraint;

    fn attrs() -> AttributeTable {
        AttributeTable::with_identity_prices(100) // prices 1..=100
    }

    #[test]
    fn le_threshold_hits_target_selectivity() {
        let a = attrs();
        for &sel in &[0.1, 0.25, 0.5, 0.8, 1.0] {
            let v = threshold_for_le_selectivity(&a, "price", sel);
            let c = Constraint::max_le("price", v);
            let measured = item_selectivity(&c, &a).unwrap();
            assert!(
                (measured - sel).abs() < 0.011,
                "target {sel}, got {measured} (v = {v})"
            );
        }
    }

    #[test]
    fn ge_threshold_hits_target_selectivity() {
        let a = attrs();
        for &sel in &[0.1, 0.5, 0.9] {
            let v = threshold_for_ge_selectivity(&a, "price", sel);
            let c = Constraint::min_ge("price", v);
            let measured = item_selectivity(&c, &a).unwrap();
            assert!(
                (measured - sel).abs() < 0.011,
                "target {sel}, got {measured} (v = {v})"
            );
        }
    }

    #[test]
    fn zero_selectivity_excludes_everything() {
        let a = attrs();
        let v = threshold_for_le_selectivity(&a, "price", 0.0);
        assert_eq!(
            item_selectivity(&Constraint::max_le("price", v), &a),
            Some(0.0)
        );
        let v = threshold_for_ge_selectivity(&a, "price", 0.0);
        assert_eq!(
            item_selectivity(&Constraint::min_ge("price", v), &a),
            Some(0.0)
        );
    }

    #[test]
    fn monotone_witness_selectivity() {
        let a = attrs();
        // min(price) ≤ 30: witnesses are the 30 cheapest items.
        let c = Constraint::min_le("price", 30.0);
        assert!((item_selectivity(&c, &a).unwrap() - 0.30).abs() < 1e-9);
    }

    #[test]
    fn non_item_level_constraints_have_no_selectivity() {
        let a = attrs();
        assert_eq!(
            item_selectivity(&Constraint::sum_le("price", 50.0), &a),
            None
        );
        assert_eq!(
            item_selectivity(
                &Constraint::Avg {
                    attr: "price".into(),
                    cmp: crate::ast::Cmp::Le,
                    value: 3.0
                },
                &a
            ),
            None
        );
    }
}
