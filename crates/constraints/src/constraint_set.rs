//! [`ConstraintSet`]: a conjunction of constraints, analyzed for mining.
//!
//! A constrained correlation query carries a conjunction `C` of
//! constraints. The miners never look at raw constraints; they consume a
//! [`ConstraintAnalysis`], which splits the conjunction the way §3 of the
//! paper does:
//!
//! * an **allowed universe** from the anti-monotone succinct constraints
//!   (sets outside it can never satisfy them — pruned at candidate
//!   *generation*),
//! * **residual anti-monotone** checks (e.g. `sum ≤ c`) applied per set
//!   *before* the contingency table is built, like the CT-support test,
//! * a **witness class** from the monotone succinct constraints, seeding
//!   `L1⁺` (every answer must touch it),
//! * **residual monotone** checks applied at SIG-entry time, like the
//!   correlation test,
//! * **neither-monotone** constraints (`avg`), which the level-wise
//!   algorithms reject (§6: the solution space may have holes).

use std::fmt;

use serde::{Deserialize, Serialize};

use ccs_itemset::{Item, Itemset};

use crate::ast::{Constraint, ConstraintError};
use crate::attr::AttributeTable;
use crate::classify::Monotonicity;
use crate::succinct::{am_allowed_items, ms_witness_classes};

/// An ordered conjunction of constraints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// The empty conjunction (always satisfied).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from a vector of constraints.
    pub fn from_vec(constraints: Vec<Constraint>) -> Self {
        ConstraintSet { constraints }
    }

    /// Adds a constraint to the conjunction.
    pub fn push(&mut self, c: Constraint) -> &mut Self {
        self.constraints.push(c);
        self
    }

    /// Builder-style [`ConstraintSet::push`].
    pub fn and(mut self, c: Constraint) -> Self {
        self.constraints.push(c);
        self
    }

    /// The constraints, in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// `true` iff the conjunction is empty.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Validates every constraint against the attribute table.
    pub fn validate(&self, attrs: &AttributeTable) -> Result<(), ConstraintError> {
        self.constraints.iter().try_for_each(|c| c.validate(attrs))
    }

    /// `true` iff `set` satisfies every constraint.
    pub fn satisfied(&self, set: &Itemset, attrs: &AttributeTable) -> bool {
        self.constraints.iter().all(|c| c.satisfied(set, attrs))
    }

    /// `true` iff every constraint is anti-monotone — the condition of
    /// Theorem 1.2 under which `VALID_MIN(Q) = MIN_VALID(Q)`.
    pub fn all_anti_monotone(&self) -> bool {
        self.constraints
            .iter()
            .all(|c| c.monotonicity() == Monotonicity::AntiMonotone)
    }

    /// `true` iff some constraint is neither monotone nor anti-monotone
    /// (an `avg` constraint): only the naive exhaustive miner can handle
    /// such a query, and minimal answers may not characterize the space.
    pub fn has_neither_monotone(&self) -> bool {
        self.constraints
            .iter()
            .any(|c| c.monotonicity() == Monotonicity::Neither)
    }

    /// `true` iff `set` satisfies every *anti-monotone* constraint.
    pub fn anti_monotone_satisfied(&self, set: &Itemset, attrs: &AttributeTable) -> bool {
        self.constraints
            .iter()
            .filter(|c| c.monotonicity() == Monotonicity::AntiMonotone)
            .all(|c| c.satisfied(set, attrs))
    }

    /// `true` iff `set` satisfies every *monotone* constraint.
    pub fn monotone_satisfied(&self, set: &Itemset, attrs: &AttributeTable) -> bool {
        self.constraints
            .iter()
            .filter(|c| c.monotonicity() == Monotonicity::Monotone)
            .all(|c| c.satisfied(set, attrs))
    }

    /// Analyzes the conjunction against `attrs` for use by the
    /// constraint-pushing miners (BMS++ / BMS**).
    pub fn analyze(&self, attrs: &AttributeTable) -> ConstraintAnalysis {
        let n = attrs.n_items() as usize;

        let mut allowed_universe: Option<Vec<bool>> = None;
        let mut universe_contributors = Vec::new();
        let mut am_residual = Vec::new();
        let mut m_residual = Vec::new();
        let mut neither = Vec::new();

        // Candidate witness classes: (constraint index, single-class?, items).
        let mut classes: Vec<(usize, bool, Vec<Item>)> = Vec::new();

        for (idx, c) in self.constraints.iter().enumerate() {
            match c.monotonicity() {
                Monotonicity::AntiMonotone => match am_allowed_items(c, attrs) {
                    Some(items) => {
                        universe_contributors.push(idx);
                        let u = allowed_universe.get_or_insert_with(|| vec![true; n]);
                        let mut mask = vec![false; n];
                        for i in &items {
                            mask[i.index()] = true;
                        }
                        for (a, m) in u.iter_mut().zip(mask) {
                            *a &= m;
                        }
                    }
                    None => am_residual.push(idx),
                },
                Monotonicity::Monotone => match ms_witness_classes(c, attrs) {
                    Some(cls) => {
                        let single = cls.len() == 1;
                        for class in cls {
                            classes.push((idx, single, class));
                        }
                    }
                    None => m_residual.push(idx),
                },
                Monotonicity::Neither => neither.push(idx),
            }
        }

        // Choose the smallest witness class for L1⁺ (tightest pruning).
        // Every answer must intersect every class, so any single class is a
        // sound choice. The contributing constraint is "captured" (its
        // satisfaction is implied by touching the class) only if it is
        // single-class; all other monotone-succinct constraints become
        // residual SIG-time checks (footnote 5 of the paper).
        let mut witness_class: Option<Vec<bool>> = None;
        let mut witness_source: Option<usize> = None;
        let mut captured_m: Option<usize> = None;
        if let Some((idx, single, class)) = classes.iter().min_by_key(|(_, _, class)| class.len()) {
            let mut mask = vec![false; n];
            for i in class {
                mask[i.index()] = true;
            }
            witness_class = Some(mask);
            witness_source = Some(*idx);
            if *single {
                captured_m = Some(*idx);
            }
        }
        for (idx, c) in self.constraints.iter().enumerate() {
            if c.monotonicity() == Monotonicity::Monotone
                && Some(idx) != captured_m
                && !m_residual.contains(&idx)
            {
                m_residual.push(idx);
            }
        }
        m_residual.sort_unstable();

        ConstraintAnalysis {
            constraints: self.constraints.clone(),
            allowed_universe,
            universe_contributors,
            am_residual,
            witness_class,
            witness_source,
            captured_m,
            m_residual,
            neither,
        }
    }
}

impl FromIterator<Constraint> for ConstraintSet {
    fn from_iter<T: IntoIterator<Item = Constraint>>(iter: T) -> Self {
        ConstraintSet {
            constraints: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.constraints.is_empty() {
            return write!(f, "true");
        }
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// The outcome of analyzing a conjunction against an attribute table,
/// consumed by the constraint-pushing miners.
#[derive(Debug, Clone)]
pub struct ConstraintAnalysis {
    constraints: Vec<Constraint>,
    /// `mask[i]` = item `i` may appear in a satisfying set, from the
    /// intersection of all anti-monotone succinct universes. `None` when
    /// no such constraint exists (all items allowed).
    allowed_universe: Option<Vec<bool>>,
    /// Indices of the am-succinct constraints folded into the universe.
    universe_contributors: Vec<usize>,
    /// Indices of anti-monotone constraints requiring per-set checks.
    am_residual: Vec<usize>,
    /// `mask[i]` = item `i` belongs to the chosen `L1⁺` witness class.
    /// `None` when no exploitable monotone-succinct constraint exists.
    witness_class: Option<Vec<bool>>,
    /// Index of the constraint whose class was chosen for `L1⁺`.
    witness_source: Option<usize>,
    /// Index of the monotone constraint fully captured by the witness
    /// class (single-class only; multi-class sources stay residual).
    captured_m: Option<usize>,
    /// Indices of monotone constraints requiring SIG-entry checks.
    m_residual: Vec<usize>,
    /// Indices of neither-monotone constraints (`avg`).
    neither: Vec<usize>,
}

impl ConstraintAnalysis {
    /// `true` iff item `i` is inside every anti-monotone succinct
    /// universe.
    pub fn item_allowed(&self, item: Item) -> bool {
        self.allowed_universe
            .as_ref()
            .is_none_or(|m| m[item.index()])
    }

    /// `true` iff there is an exploitable monotone-succinct witness class.
    pub fn has_witness_class(&self) -> bool {
        self.witness_class.is_some()
    }

    /// `true` iff item `i` is in the chosen witness class. When no class
    /// exists this returns `true` for every item (the degenerate `L1⁺ =
    /// L1` split: no monotone pruning).
    pub fn item_witnesses(&self, item: Item) -> bool {
        self.witness_class.as_ref().is_none_or(|m| m[item.index()])
    }

    /// Per-set check of the residual anti-monotone constraints (applied
    /// before building a contingency table).
    pub fn am_residual_satisfied(&self, set: &Itemset, attrs: &AttributeTable) -> bool {
        self.am_residual
            .iter()
            .all(|&i| self.constraints[i].satisfied(set, attrs))
    }

    /// Per-set check of the residual monotone constraints (applied at
    /// SIG-entry time).
    pub fn m_residual_satisfied(&self, set: &Itemset, attrs: &AttributeTable) -> bool {
        self.m_residual
            .iter()
            .all(|&i| self.constraints[i].satisfied(set, attrs))
    }

    /// `true` iff the conjunction contains a neither-monotone constraint.
    pub fn has_neither_monotone(&self) -> bool {
        !self.neither.is_empty()
    }

    /// Number of residual anti-monotone constraints.
    pub fn n_am_residual(&self) -> usize {
        self.am_residual.len()
    }

    /// Number of residual monotone constraints.
    pub fn n_m_residual(&self) -> usize {
        self.m_residual.len()
    }

    /// Indices (into the analyzed conjunction) of the am-succinct
    /// constraints folded into the allowed universe.
    pub fn universe_contributors(&self) -> &[usize] {
        &self.universe_contributors
    }

    /// Indices of the residual anti-monotone constraints.
    pub fn am_residual_indices(&self) -> &[usize] {
        &self.am_residual
    }

    /// Indices of the residual monotone constraints.
    pub fn m_residual_indices(&self) -> &[usize] {
        &self.m_residual
    }

    /// Indices of the neither-monotone constraints.
    pub fn neither_indices(&self) -> &[usize] {
        &self.neither
    }

    /// Index of the constraint whose witness class seeds `L1⁺`, if any.
    pub fn witness_source(&self) -> Option<usize> {
        self.witness_source
    }

    /// Index of the monotone constraint fully captured by the chosen
    /// witness class (`None` when the source is multi-class and must be
    /// re-checked at SIG-entry time).
    pub fn captured_monotone(&self) -> Option<usize> {
        self.captured_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn attrs() -> AttributeTable {
        let mut t = AttributeTable::new(6);
        t.add_numeric("price", vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        t.add_categorical("type", &["soda", "soda", "snack", "dairy", "dairy", "beer"]);
        t
    }

    #[test]
    fn empty_conjunction_is_always_satisfied() {
        let a = attrs();
        let cs = ConstraintSet::new();
        assert!(cs.satisfied(&Itemset::from_ids([0, 5]), &a));
        assert!(cs.all_anti_monotone()); // vacuously
        let an = cs.analyze(&a);
        assert!(an.item_allowed(Item(0)));
        assert!(!an.has_witness_class());
        assert!(an.item_witnesses(Item(3)));
    }

    #[test]
    fn conjunction_evaluation_and_splits() {
        let a = attrs();
        let cs = ConstraintSet::new()
            .and(Constraint::max_le("price", 5.0)) // anti-monotone
            .and(Constraint::min_le("price", 2.0)); // monotone
        let s_ok = Itemset::from_ids([0, 4]); // prices 1,5
        let s_bad_m = Itemset::from_ids([2, 3]); // min 3 > 2
        let s_bad_am = Itemset::from_ids([0, 5]); // max 6 > 5
        assert!(cs.satisfied(&s_ok, &a));
        assert!(!cs.satisfied(&s_bad_m, &a));
        assert!(!cs.satisfied(&s_bad_am, &a));
        assert!(cs.anti_monotone_satisfied(&s_bad_m, &a));
        assert!(!cs.monotone_satisfied(&s_bad_m, &a));
        assert!(!cs.anti_monotone_satisfied(&s_bad_am, &a));
        assert!(cs.monotone_satisfied(&s_bad_am, &a));
        assert!(!cs.all_anti_monotone());
        assert!(!cs.has_neither_monotone());
    }

    #[test]
    fn analysis_builds_universe_from_am_succinct() {
        let a = attrs();
        let cs = ConstraintSet::new()
            .and(Constraint::max_le("price", 4.0))
            .and(Constraint::min_ge("price", 2.0));
        let an = cs.analyze(&a);
        // Intersection: prices in [2, 4] → items 1, 2, 3.
        assert!(!an.item_allowed(Item(0)));
        assert!(an.item_allowed(Item(1)));
        assert!(an.item_allowed(Item(3)));
        assert!(!an.item_allowed(Item(4)));
        assert_eq!(an.n_am_residual(), 0); // both captured by the universe
    }

    #[test]
    fn analysis_keeps_sum_as_residual() {
        let a = attrs();
        let cs = ConstraintSet::new().and(Constraint::sum_le("price", 7.0));
        let an = cs.analyze(&a);
        assert!(an.item_allowed(Item(5))); // no universe pruning for sum
        assert_eq!(an.n_am_residual(), 1);
        assert!(an.am_residual_satisfied(&Itemset::from_ids([0, 1]), &a)); // 3 ≤ 7
        assert!(!an.am_residual_satisfied(&Itemset::from_ids([2, 4]), &a)); // 8 > 7
    }

    #[test]
    fn analysis_picks_smallest_witness_class() {
        let a = attrs();
        // min ≤ 2 has 2 witnesses (items 0,1); max ≥ 6 has 1 (item 5).
        let cs = ConstraintSet::new()
            .and(Constraint::min_le("price", 2.0))
            .and(Constraint::max_ge("price", 6.0));
        let an = cs.analyze(&a);
        assert!(an.has_witness_class());
        assert!(an.item_witnesses(Item(5)));
        assert!(!an.item_witnesses(Item(0)));
        // The un-chosen monotone constraint must be a residual check.
        assert_eq!(an.n_m_residual(), 1);
        assert!(an.m_residual_satisfied(&Itemset::from_ids([1, 5]), &a)); // min 2 ≤ 2
        assert!(!an.m_residual_satisfied(&Itemset::from_ids([2, 5]), &a)); // min 3 > 2
    }

    #[test]
    fn multi_witness_subset_constraint_is_residual() {
        let a = attrs();
        let col = a.categorical("type").unwrap();
        let need: BTreeSet<u32> = ["soda", "beer"]
            .iter()
            .map(|l| col.id_of(l).unwrap())
            .collect();
        let cs = ConstraintSet::new().and(Constraint::ConstSubset {
            attr: "type".into(),
            categories: need,
            negated: false,
        });
        let an = cs.analyze(&a);
        // A class is still usable for L1⁺ (beer is the smallest class)…
        assert!(an.has_witness_class());
        assert!(an.item_witnesses(Item(5)));
        // …but the constraint itself is NOT captured (footnote 5): it
        // remains a SIG-time residual check.
        assert_eq!(an.n_m_residual(), 1);
        assert!(!an.m_residual_satisfied(&Itemset::from_ids([5]), &a)); // beer only
        assert!(an.m_residual_satisfied(&Itemset::from_ids([0, 5]), &a)); // soda + beer
    }

    #[test]
    fn neither_monotone_detected() {
        let a = attrs();
        let cs = ConstraintSet::new().and(Constraint::Avg {
            attr: "price".into(),
            cmp: crate::ast::Cmp::Le,
            value: 3.0,
        });
        assert!(cs.has_neither_monotone());
        assert!(cs.analyze(&a).has_neither_monotone());
    }

    #[test]
    fn validate_propagates_errors() {
        let a = attrs();
        let cs = ConstraintSet::new()
            .and(Constraint::max_le("price", 1.0))
            .and(Constraint::max_le("weight", 1.0));
        assert!(cs.validate(&a).is_err());
    }

    #[test]
    fn display_joins_with_ampersand() {
        let cs = ConstraintSet::new()
            .and(Constraint::max_le("price", 10.0))
            .and(Constraint::sum_ge("price", 5.0));
        assert_eq!(cs.to_string(), "max(S.price) <= 10 & sum(S.price) >= 5");
        assert_eq!(ConstraintSet::new().to_string(), "true");
    }
}
