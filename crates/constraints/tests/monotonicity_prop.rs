//! Property test for Lemma 1: [`Constraint::monotonicity`] must agree
//! with a brute-force closure check over *every* subset pair of small
//! random universes.
//!
//! For each generated `(attribute table, constraint)`:
//!
//! * `AntiMonotone` claims downward closure — whenever a nonempty `S`
//!   satisfies the constraint, every nonempty `T ⊆ S` does too;
//! * `Monotone` claims upward closure — the same implication with the
//!   roles of `S` and `T` swapped;
//! * `Neither` claims nothing and is vacuously consistent.
//!
//! Universes are capped at 5 items so the subset lattice (2^5 sets, ~1000
//! ordered pairs) is enumerated exhaustively. Numeric columns are
//! non-negative, matching the domain `ConstraintSet::validate` enforces
//! for `sum` — Lemma 1's `sum ≤ v` classification is only sound there.

use std::collections::BTreeSet;

use ccs_constraints::{AggFn, AttributeTable, Cmp, Constraint, Monotonicity};
use ccs_itemset::Itemset;
use proptest::prelude::*;

const MAX_ITEMS: u32 = 5;

/// Labels the categorical column draws from.
const LABELS: [&str; 3] = ["soda", "snack", "dairy"];

fn attrs_strategy() -> impl Strategy<Value = AttributeTable> {
    (
        1u32..=MAX_ITEMS,
        proptest::collection::vec(0u32..80, MAX_ITEMS as usize),
        proptest::collection::vec(0usize..LABELS.len(), MAX_ITEMS as usize),
    )
        .prop_map(|(n, price_units, label_ids)| {
            let mut t = AttributeTable::new(n);
            // Quarter-step non-negative prices: exercises ties and
            // fractional bounds without NaN/infinity risk.
            t.add_numeric(
                "price",
                price_units[..n as usize]
                    .iter()
                    .map(|&u| f64::from(u) / 4.0)
                    .collect(),
            );
            let labels: Vec<&str> = label_ids[..n as usize].iter().map(|&i| LABELS[i]).collect();
            t.add_categorical("type", &labels);
            t
        })
}

fn constraint_strategy() -> impl Strategy<Value = Constraint> {
    (
        0usize..16,
        0.0f64..20.0,
        proptest::collection::btree_set(0u32..MAX_ITEMS, 1..4),
        1u64..4,
    )
        .prop_map(|(kind, v, ids, k)| {
            let cats: BTreeSet<u32> = ids.iter().map(|&x| x % LABELS.len() as u32).collect();
            match kind {
                0 => Constraint::max_le("price", v),
                1 => Constraint::max_ge("price", v),
                2 => Constraint::min_le("price", v),
                3 => Constraint::min_ge("price", v),
                4 => Constraint::sum_le("price", v),
                5 => Constraint::sum_ge("price", v),
                6 => Constraint::agg(AggFn::Count, "price", Cmp::Le, (v / 4.0).floor()),
                7 => Constraint::agg(AggFn::Count, "price", Cmp::Ge, (v / 4.0).floor()),
                8 => Constraint::Avg {
                    attr: "price".into(),
                    cmp: if v < 10.0 { Cmp::Le } else { Cmp::Ge },
                    value: v,
                },
                9 => Constraint::CountDistinct {
                    attr: "type".into(),
                    cmp: if v < 10.0 { Cmp::Le } else { Cmp::Ge },
                    value: k,
                },
                10 | 11 => Constraint::ConstSubset {
                    attr: "type".into(),
                    categories: cats,
                    negated: kind == 11,
                },
                12 | 13 => Constraint::Disjoint {
                    attr: "type".into(),
                    categories: cats,
                    negated: kind == 13,
                },
                14 => Constraint::ItemSubset {
                    items: ids,
                    negated: v < 10.0,
                },
                _ => Constraint::ItemDisjoint {
                    items: ids,
                    negated: v < 10.0,
                },
            }
        })
}

/// All nonempty subsets of `0..n` as itemsets, with their bitmasks.
fn all_subsets(n: u32) -> Vec<(u32, Itemset)> {
    (1u32..1 << n)
        .map(|mask| {
            let ids = (0..n).filter(|&i| mask & (1 << i) != 0);
            (mask, Itemset::from_ids(ids))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn classification_matches_brute_force_closure(
        attrs in attrs_strategy(),
        c in constraint_strategy(),
    ) {
        // Skip constraints referencing items outside this universe —
        // `validate` would reject them, so no classification claim applies.
        if c.validate(&attrs).is_err() {
            continue;
        }
        let n = attrs.n_items();
        let subsets = all_subsets(n);
        let sat: Vec<bool> = subsets.iter().map(|(_, s)| c.satisfied(s, &attrs)).collect();
        let claimed = c.monotonicity();
        for (i, (sub_mask, sub)) in subsets.iter().enumerate() {
            for (j, (sup_mask, sup)) in subsets.iter().enumerate() {
                if sub_mask & sup_mask != *sub_mask {
                    continue; // not a subset pair
                }
                match claimed {
                    Monotonicity::AntiMonotone => prop_assert!(
                        !sat[j] || sat[i],
                        "{c} claims anti-monotone but {sup} satisfies and its subset {sub} does not"
                    ),
                    Monotonicity::Monotone => prop_assert!(
                        !sat[i] || sat[j],
                        "{c} claims monotone but {sub} satisfies and its superset {sup} does not"
                    ),
                    Monotonicity::Neither => {}
                }
            }
        }
    }
}
