//! The exhaustive reference miner.
//!
//! Enumerates *every* itemset over the item basis (up to `max_level`),
//! evaluates correlation, CT-support, and validity directly from the
//! definitions, and derives `VALID_MIN` / `MIN_VALID` by explicit
//! minimality checks against all proper subsets. Exponential in the
//! number of items — usable only on small universes — but it is the
//! ground truth every level-wise algorithm is tested against, and the
//! only miner that accepts neither-monotone (`avg`) constraints, whose
//! holey solution spaces defeat level-wise pruning (§6 of the paper).

use std::collections::HashMap;

use ccs_constraints::AttributeTable;
use ccs_itemset::{Item, Itemset, MintermCounter, TransactionDb};

use crate::engine::{Engine, Verdict};
use crate::guard::{ResumeInner, RunGuard};
use crate::kernel::{
    run_levelwise, AlgorithmPolicy, GuardMode, KernelConfig, LevelMark, LevelSeed, MinerScope,
};
use crate::metrics::MiningMetrics;
use crate::miner::Algorithm;
use crate::prep::frequent_items;
use crate::query::{CorrelationQuery, MiningError, MiningResult, Semantics};

#[derive(Debug, Clone, Copy, Default)]
struct Flags {
    ct_supported: bool,
    correlated: bool,
    valid: bool,
}

/// The largest item basis the exhaustive miner accepts.
pub const NAIVE_MAX_ITEMS: usize = 20;

/// Runs the exhaustive reference miner under the given semantics.
///
/// Unlike the level-wise miners this accepts any constraint, including
/// `avg`. Note that for neither-monotone constraints the minimal answer
/// sets do not characterize the full solution space (it may have holes);
/// they are still well-defined and computed literally.
///
/// # Errors
///
/// Returns [`MiningError::Constraint`] if the constraints fail
/// validation, or [`MiningError::UniverseTooLarge`] if the item basis
/// exceeds [`NAIVE_MAX_ITEMS`].
pub fn run_naive<C: MintermCounter>(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    semantics: Semantics,
    counter: &mut C,
) -> Result<MiningResult, MiningError> {
    run_naive_guarded(
        db,
        attrs,
        query,
        semantics,
        counter,
        &RunGuard::unlimited(),
        None,
    )
}

/// [`run_naive`] under a resource guard.
///
/// The exhaustive sweep holds no frontier worth snapshotting — every
/// level is the full `k`-combination space — so its resume state is a
/// plain restart marker. Truncated answers are still sound: a set's
/// minimality is decided by its proper subsets, all of which live at
/// completed lower levels.
pub(crate) fn run_naive_guarded(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    semantics: Semantics,
    counter: &mut dyn MintermCounter,
    guard: &RunGuard,
    resume: Option<ResumeInner>,
) -> Result<MiningResult, MiningError> {
    query.validate(attrs)?;
    match resume {
        None | Some(ResumeInner::NaiveRestart) => {}
        Some(_) => return Err(MiningError::foreign_snapshot(Algorithm::Naive.name())),
    }
    let scope = MinerScope::begin(counter.stats());
    let mut metrics = MiningMetrics::default();
    let mut engine = Engine::with_guard(counter, &query.params, guard.clone());

    // Same item basis as the level-wise miners.
    let basis: Vec<Item> = frequent_items(db, &query.params);
    if basis.len() > NAIVE_MAX_ITEMS {
        return Err(MiningError::UniverseTooLarge {
            basis: basis.len(),
            limit: NAIVE_MAX_ITEMS,
        });
    }

    let top = query.params.max_level.min(basis.len());
    // The snapshot must pin the semantics too, or resuming a MIN_VALID
    // run would silently restart under VALID_MIN.
    let algorithm = match semantics {
        Semantics::ValidMin => Algorithm::Naive,
        Semantics::MinValid => Algorithm::NaiveMinValid,
    };
    let mut policy = NaivePolicy {
        basis: &basis,
        constraints: &query.constraints,
        attrs,
        flags: HashMap::new(),
    };
    let trip = run_levelwise(
        &mut engine,
        &mut policy,
        KernelConfig::new(algorithm, LevelMark::Untouched),
        GuardMode::Checked,
        2,
        top,
        &mut metrics,
    );
    let flags = policy.flags;

    let in_space = |f: &Flags, semantics: Semantics| match semantics {
        // The "space" minimality quantifies over differs per semantics:
        // VALID_MIN is minimal in {correlated ∧ CT-supported}, MIN_VALID
        // in {correlated ∧ CT-supported ∧ valid}.
        Semantics::ValidMin => f.ct_supported && f.correlated,
        Semantics::MinValid => f.ct_supported && f.correlated && f.valid,
    };

    let mut answers = Vec::new();
    for (set, f) in &flags {
        if !in_space(f, semantics) {
            continue;
        }
        // For VALID_MIN the set itself must additionally be valid.
        if semantics == Semantics::ValidMin && !f.valid {
            continue;
        }
        let minimal = set
            .proper_subsets()
            .into_iter()
            .filter(|s| s.len() >= 2)
            .all(|s| flags.get(&s).is_none_or(|sf| !in_space(sf, semantics)));
        if minimal {
            answers.push(set.clone());
        }
    }

    metrics.max_level_reached = match &trip {
        None => top,
        Some(t) => t.frontier_level,
    };
    Ok(scope.seal(&engine, metrics, answers, semantics, trip))
}

/// The exhaustive sweep as a kernel policy: every `k`-combination of the
/// basis is a candidate; verdicts and validity land in a flag table the
/// epilogue derives both semantics from. The resume snapshot is a plain
/// restart marker — the full combination space is its own frontier.
struct NaivePolicy<'a> {
    basis: &'a [Item],
    constraints: &'a ccs_constraints::ConstraintSet,
    attrs: &'a AttributeTable,
    flags: HashMap<Itemset, Flags>,
}

impl AlgorithmPolicy for NaivePolicy<'_> {
    fn candidates(&mut self, k: usize) -> LevelSeed {
        LevelSeed::Cands(combinations(self.basis, k))
    }

    fn snapshot(&self, _level: usize, _cands: &[Itemset]) -> ResumeInner {
        ResumeInner::NaiveRestart
    }

    fn absorb(&mut self, _level: usize, survivors: Vec<Itemset>, verdicts: Vec<Verdict>) {
        for (set, v) in survivors.into_iter().zip(verdicts) {
            let valid = self.constraints.satisfied(&set, self.attrs);
            self.flags.insert(
                set,
                Flags {
                    ct_supported: v.ct_supported,
                    correlated: v.correlated,
                    valid,
                },
            );
        }
    }
}

/// All `k`-combinations of `items`, in lexicographic order.
fn combinations(items: &[Item], k: usize) -> Vec<Itemset> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    combine_rec(items, k, 0, &mut current, &mut out);
    out
}

fn combine_rec(
    items: &[Item],
    k: usize,
    start: usize,
    current: &mut Vec<Item>,
    out: &mut Vec<Itemset>,
) {
    if current.len() == k {
        out.push(Itemset::from_items(current.iter().copied()));
        return;
    }
    let needed = k - current.len();
    for i in start..=items.len().saturating_sub(needed) {
        current.push(items[i]);
        combine_rec(items, k, i + 1, current, out);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MiningParams;
    use ccs_constraints::{Constraint, ConstraintSet};
    use ccs_itemset::HorizontalCounter;

    fn db() -> TransactionDb {
        let mut txns = Vec::new();
        for i in 0..60 {
            let mut t = Vec::new();
            if i % 2 == 0 {
                t.extend([0u32, 1]);
            }
            if i % 3 == 0 {
                t.extend([2, 3]);
            }
            if i % 5 == 0 {
                t.push(4);
            }
            txns.push(t);
        }
        TransactionDb::from_ids(5, txns)
    }

    fn query(constraints: ConstraintSet) -> CorrelationQuery {
        CorrelationQuery {
            params: MiningParams {
                confidence: 0.9,
                support_fraction: 0.1,
                max_level: 4,
                ..MiningParams::paper()
            },
            constraints,
        }
    }

    #[test]
    fn combinations_enumerate_binomials() {
        let items: Vec<Item> = (0..5).map(Item::new).collect();
        assert_eq!(combinations(&items, 2).len(), 10);
        assert_eq!(combinations(&items, 3).len(), 10);
        assert_eq!(combinations(&items, 5).len(), 1);
        assert_eq!(combinations(&items, 6).len(), 0);
    }

    #[test]
    fn unconstrained_semantics_coincide() {
        let db = db();
        let attrs = AttributeTable::with_identity_prices(5);
        let q = query(ConstraintSet::new());
        let mut c1 = HorizontalCounter::new(&db);
        let vm = run_naive(&db, &attrs, &q, Semantics::ValidMin, &mut c1).unwrap();
        let mut c2 = HorizontalCounter::new(&db);
        let mv = run_naive(&db, &attrs, &q, Semantics::MinValid, &mut c2).unwrap();
        assert_eq!(vm.answers, mv.answers);
        assert!(vm.contains(&Itemset::from_ids([0, 1])));
        assert!(vm.contains(&Itemset::from_ids([2, 3])));
    }

    #[test]
    fn valid_min_is_subset_of_min_valid() {
        let db = db();
        let attrs = AttributeTable::with_identity_prices(5);
        // Monotone constraint: total price at least 6.
        let q = query(ConstraintSet::new().and(Constraint::sum_ge("price", 6.0)));
        let mut c1 = HorizontalCounter::new(&db);
        let vm = run_naive(&db, &attrs, &q, Semantics::ValidMin, &mut c1).unwrap();
        let mut c2 = HorizontalCounter::new(&db);
        let mv = run_naive(&db, &attrs, &q, Semantics::MinValid, &mut c2).unwrap();
        for s in &vm.answers {
            assert!(
                mv.contains(s),
                "VALID_MIN member {s} missing from MIN_VALID"
            );
        }
    }

    #[test]
    fn anti_monotone_constraints_make_semantics_coincide() {
        // Theorem 1.2.
        let db = db();
        let attrs = AttributeTable::with_identity_prices(5);
        let q = query(ConstraintSet::new().and(Constraint::max_le("price", 4.0)));
        let mut c1 = HorizontalCounter::new(&db);
        let vm = run_naive(&db, &attrs, &q, Semantics::ValidMin, &mut c1).unwrap();
        let mut c2 = HorizontalCounter::new(&db);
        let mv = run_naive(&db, &attrs, &q, Semantics::MinValid, &mut c2).unwrap();
        assert_eq!(vm.answers, mv.answers);
    }

    #[test]
    fn avg_constraint_is_supported() {
        let db = db();
        let attrs = AttributeTable::with_identity_prices(5);
        let q = query(ConstraintSet::new().and(Constraint::Avg {
            attr: "price".into(),
            cmp: ccs_constraints::Cmp::Le,
            value: 2.0,
        }));
        let mut c = HorizontalCounter::new(&db);
        let r = run_naive(&db, &attrs, &q, Semantics::MinValid, &mut c).unwrap();
        // {0,1} has avg price 1.5 ≤ 2; {2,3} has avg 3.5.
        assert!(r.contains(&Itemset::from_ids([0, 1])));
        assert!(!r.contains(&Itemset::from_ids([2, 3])));
    }

    #[test]
    fn answers_are_mutually_minimal() {
        let db = db();
        let attrs = AttributeTable::with_identity_prices(5);
        let q = query(ConstraintSet::new().and(Constraint::sum_ge("price", 3.0)));
        let mut c = HorizontalCounter::new(&db);
        let r = run_naive(&db, &attrs, &q, Semantics::MinValid, &mut c).unwrap();
        for (i, a) in r.answers.iter().enumerate() {
            for b in &r.answers[i + 1..] {
                assert!(!a.is_subset_of(b) && !b.is_subset_of(a));
            }
        }
    }
}
