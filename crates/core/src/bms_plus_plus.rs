//! Algorithm BMS++ — constraint-pushing miner for `VALID_MIN` answers.
//!
//! Modifies Algorithm BMS in the three ways of §3.1 of the paper:
//!
//! I. **Preprocessing.** `GOOD₁` = items whose singleton satisfies every
//!    anti-monotone constraint (this subsumes the succinct universes: an
//!    item outside `σ_{A≤c}(Item)` fails `max(S.A) ≤ c` as a singleton).
//!    `L1⁺` = frequent `GOOD₁` items in the chosen monotone-succinct
//!    witness class; `L1⁻` = the remaining frequent `GOOD₁` items.
//!
//! II. **Candidate formation.** `CAND₂ = {{i₁,i₂} | i₁ ∈ L1⁺, i₂ ∈ L1⁺ ∪
//!     L1⁻}`. For `k > 2`, a `k`-set is a candidate when every
//!     `(k−1)`-subset that intersects `L1⁺` is in the previous level's
//!     `NOTSIG`. Candidates are produced by single-item extension of
//!     `NOTSIG` sets (the symmetric Apriori join is incomplete here: a
//!     candidate may legitimately have subsets that were never candidates
//!     because they miss `L1⁺`).
//!
//! III. **SIG/NOTSIG.** Residual (non-succinct) anti-monotone constraints
//!      are checked *before* the contingency table is built; residual
//!      monotone constraints are checked at SIG-entry, like correlation.
//!
//! One soundness amendment beyond the paper's pseudo-code (see DESIGN.md
//! "Fidelity notes"): when a SIG candidate `S` contains exactly one
//! witness `w`, the subset `S \ {w}` was never examined (it misses
//! `L1⁺`), yet if it is correlated then `S` is not a *minimal* correlated
//! set and must not be reported. One extra contingency table per such SIG
//! candidate closes the hole exactly.

use std::collections::HashSet;
use std::time::Instant;

use ccs_constraints::AttributeTable;
use ccs_itemset::{candidate, Item, Itemset, MintermCounter, TransactionDb};

use crate::engine::Engine;
use crate::guard::{ResumeInner, ResumeState, RunGuard, TruncationReason};
use crate::metrics::MiningMetrics;
use crate::miner::Algorithm;
use crate::query::{CorrelationQuery, MiningError, MiningResult, Semantics};

/// Runs Algorithm BMS++ and returns `VALID_MIN(Q)`.
///
/// # Errors
///
/// Returns [`MiningError`] if the constraints fail validation or contain
/// a neither-monotone (`avg`) constraint.
pub fn run_bms_plus_plus<C: MintermCounter>(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    counter: &mut C,
) -> Result<MiningResult, MiningError> {
    run_bms_plus_plus_guarded(db, attrs, query, counter, &RunGuard::unlimited(), None)
}

/// [`run_bms_plus_plus`] under a resource guard, optionally re-entering a
/// truncated run's level frontier.
///
/// When the guard trips mid-sweep the accumulated SIG candidates still go
/// through the single-witness verification epilogue (a bounded number of
/// extra tables), so truncated answers get the same minimality guarantee
/// as complete ones.
pub(crate) fn run_bms_plus_plus_guarded<C: MintermCounter>(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    counter: &mut C,
    guard: &RunGuard,
    resume: Option<ResumeInner>,
) -> Result<MiningResult, MiningError> {
    query.validate(attrs)?;
    if query.constraints.has_neither_monotone() {
        return Err(MiningError::NonMonotoneConstraint);
    }
    let restart = match resume {
        None => None,
        Some(ResumeInner::PlusPlus {
            level,
            cands,
            sig_candidates,
        }) => Some((level, cands, sig_candidates)),
        Some(_) => {
            return Err(MiningError::ResumeMismatch {
                expected: "another algorithm",
                requested: Algorithm::BmsPlusPlus.name(),
            })
        }
    };
    let start = Instant::now();
    let mut metrics = MiningMetrics::default();
    let base_stats = counter.stats();
    let analysis = query.constraints.analyze(attrs);
    let mut engine = Engine::with_guard(counter, &query.params, guard.clone());

    // I. Preprocessing: GOOD₁ and the L1⁺ / L1⁻ split.
    let item_threshold = query.params.item_support_abs(db.len());
    let supports = db.item_supports();
    let good1: Vec<Item> = (0..db.n_items())
        .map(Item::new)
        .filter(|&i| {
            supports[i.index()] as u64 >= item_threshold
                && query
                    .constraints
                    .anti_monotone_satisfied(&Itemset::singleton(i), attrs)
        })
        .collect();
    let l1_plus: Vec<Item> = good1
        .iter()
        .copied()
        .filter(|&i| analysis.item_witnesses(i))
        .collect();
    let l1_minus: Vec<Item> = good1
        .iter()
        .copied()
        .filter(|&i| !analysis.item_witnesses(i))
        .collect();
    let witness_set: HashSet<Item> = l1_plus.iter().copied().collect();

    // II + III. The level-wise sweep — or its resumed frontier.
    let (mut level, mut cands, mut sig_candidates) = match restart {
        Some(state) => state,
        None => (
            2usize,
            candidate::pairs_from(&l1_plus, &l1_minus),
            Vec::new(),
        ),
    };
    let mut truncation: Option<(TruncationReason, ResumeState)> = None;
    while !cands.is_empty() && level <= query.params.max_level {
        let snapshot = engine.guard().is_armed().then(|| ResumeInner::PlusPlus {
            level,
            cands: cands.clone(),
            sig_candidates: sig_candidates.clone(),
        });
        metrics.candidates_generated += cands.len() as u64;
        metrics.max_level_reached = level;
        let mut notsig_level: HashSet<Itemset> = HashSet::new();
        // III (first half): residual anti-monotone checks happen before
        // any counting, so pruned sets never enter the level batch.
        let mut survivors: Vec<Itemset> = Vec::with_capacity(cands.len());
        for set in cands {
            if analysis.am_residual_satisfied(&set, attrs) {
                survivors.push(set);
            } else {
                metrics.pruned_before_count += 1;
            }
        }
        let verdicts = match engine.evaluate_level(&survivors) {
            Ok(v) => v,
            Err(reason) => {
                metrics.max_level_reached = level - 1;
                #[allow(clippy::expect_used)] // invariant: a trip implies an armed guard
                let snap = snapshot.expect("a trip implies an armed guard");
                truncation = Some((
                    reason,
                    ResumeState {
                        algorithm: Algorithm::BmsPlusPlus,
                        inner: snap,
                    },
                ));
                break;
            }
        };
        for (set, v) in survivors.iter().zip(verdicts) {
            if !v.ct_supported {
                continue;
            }
            if v.correlated {
                if analysis.m_residual_satisfied(set, attrs) {
                    sig_candidates.push(set.clone());
                }
            } else {
                notsig_level.insert(set.clone());
            }
        }
        cands = candidate::extend_gen(&notsig_level, &good1, |cand| {
            cand.subsets_dropping_one()
                .all(|s| !s.iter().any(|i| witness_set.contains(&i)) || notsig_level.contains(&s))
        });
        level += 1;
    }

    // Soundness verification: for a SIG candidate with a single witness,
    // check that removing the witness does not leave a correlated set.
    let mut answers = Vec::with_capacity(sig_candidates.len());
    if analysis.has_witness_class() {
        for set in sig_candidates {
            let witnesses: Vec<Item> = set.iter().filter(|i| witness_set.contains(i)).collect();
            if witnesses.len() == 1 && set.len() >= 3 {
                let residue = set.without_item(witnesses[0]);
                let v = engine.evaluate(&residue);
                if v.correlated && v.ct_supported {
                    continue; // `set` is not a minimal correlated set.
                }
            }
            answers.push(set);
        }
    } else {
        answers = sig_candidates;
    }

    metrics.sig_size = answers.len() as u64;
    let end = engine.counting_stats();
    metrics.absorb_counting(end.since(&base_stats));
    metrics.elapsed = start.elapsed();
    match truncation {
        None => Ok(MiningResult::new(answers, Semantics::ValidMin, metrics)),
        Some((reason, resume)) => {
            let frontier_level = metrics.max_level_reached;
            Ok(MiningResult::truncated(
                answers,
                Semantics::ValidMin,
                metrics,
                reason,
                frontier_level,
                resume,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bms_plus::run_bms_plus;
    use crate::params::MiningParams;
    use ccs_constraints::{Constraint, ConstraintSet};
    use ccs_itemset::HorizontalCounter;

    fn db() -> TransactionDb {
        let mut txns = Vec::new();
        for i in 0..60 {
            let mut t = Vec::new();
            if i % 2 == 0 {
                t.extend([0u32, 1]);
            }
            if i % 3 == 0 {
                t.extend([2, 3]);
            }
            if i % 5 == 0 {
                t.push(4);
            }
            txns.push(t);
        }
        TransactionDb::from_ids(5, txns)
    }

    fn query(constraints: ConstraintSet) -> CorrelationQuery {
        CorrelationQuery {
            params: MiningParams {
                confidence: 0.9,
                support_fraction: 0.1,
                ct_fraction: 0.25,
                min_item_support: 0.0,
                max_level: 5,
            },
            constraints,
        }
    }

    fn attrs() -> AttributeTable {
        AttributeTable::with_identity_prices(5)
    }

    /// BMS++ must agree with BMS+ on every constraint mix (Theorem 2.1).
    fn assert_agrees_with_bms_plus(cs: ConstraintSet) {
        let db = db();
        let attrs = attrs();
        let q = query(cs);
        let mut c1 = HorizontalCounter::new(&db);
        let plus = run_bms_plus(&db, &attrs, &q, &mut c1).unwrap();
        let mut c2 = HorizontalCounter::new(&db);
        let pp = run_bms_plus_plus(&db, &attrs, &q, &mut c2).unwrap();
        assert_eq!(
            plus.answers, pp.answers,
            "BMS+ vs BMS++ for {}",
            q.constraints
        );
        // BMS++ never considers more sets, up to the one verification
        // table a single-witness SIG candidate may cost (see the module
        // docs) — a bounded overhead of at most one table per answer.
        assert!(
            pp.metrics.tables_built <= plus.metrics.tables_built + pp.answers.len() as u64,
            "|BMS++| = {} > |BMS+| = {} + {} answers",
            pp.metrics.tables_built,
            plus.metrics.tables_built,
            pp.answers.len()
        );
    }

    #[test]
    fn agrees_unconstrained() {
        assert_agrees_with_bms_plus(ConstraintSet::new());
    }

    #[test]
    fn agrees_with_am_succinct_constraint() {
        assert_agrees_with_bms_plus(ConstraintSet::new().and(Constraint::max_le("price", 2.0)));
        assert_agrees_with_bms_plus(ConstraintSet::new().and(Constraint::max_le("price", 4.0)));
        assert_agrees_with_bms_plus(ConstraintSet::new().and(Constraint::min_ge("price", 3.0)));
    }

    #[test]
    fn agrees_with_am_nonsuccinct_constraint() {
        assert_agrees_with_bms_plus(ConstraintSet::new().and(Constraint::sum_le("price", 3.0)));
        assert_agrees_with_bms_plus(ConstraintSet::new().and(Constraint::sum_le("price", 7.0)));
    }

    #[test]
    fn agrees_with_monotone_succinct_constraint() {
        assert_agrees_with_bms_plus(ConstraintSet::new().and(Constraint::min_le("price", 1.0)));
        assert_agrees_with_bms_plus(ConstraintSet::new().and(Constraint::min_le("price", 3.0)));
        assert_agrees_with_bms_plus(ConstraintSet::new().and(Constraint::max_ge("price", 4.0)));
    }

    #[test]
    fn agrees_with_monotone_nonsuccinct_constraint() {
        assert_agrees_with_bms_plus(ConstraintSet::new().and(Constraint::sum_ge("price", 5.0)));
    }

    #[test]
    fn agrees_with_mixed_constraints() {
        assert_agrees_with_bms_plus(
            ConstraintSet::new()
                .and(Constraint::max_le("price", 4.0))
                .and(Constraint::sum_ge("price", 3.0)),
        );
        assert_agrees_with_bms_plus(
            ConstraintSet::new()
                .and(Constraint::sum_le("price", 7.0))
                .and(Constraint::min_le("price", 2.0)),
        );
    }

    #[test]
    fn succinct_am_constraint_prunes_tables() {
        let db = db();
        let attrs = attrs();
        // Only items 0,1 allowed: BMS++ builds 1 pair table (+ nothing
        // above), BMS+ builds all 10.
        let q = query(ConstraintSet::new().and(Constraint::max_le("price", 2.0)));
        let mut c2 = HorizontalCounter::new(&db);
        let pp = run_bms_plus_plus(&db, &attrs, &q, &mut c2).unwrap();
        let mut c1 = HorizontalCounter::new(&db);
        let plus = run_bms_plus(&db, &attrs, &q, &mut c1).unwrap();
        assert!(pp.metrics.tables_built < plus.metrics.tables_built / 2);
    }

    #[test]
    fn avg_constraint_is_rejected() {
        let db = db();
        let attrs = attrs();
        let q = query(ConstraintSet::new().and(Constraint::Avg {
            attr: "price".into(),
            cmp: ccs_constraints::Cmp::Le,
            value: 2.0,
        }));
        let mut c = HorizontalCounter::new(&db);
        assert_eq!(
            run_bms_plus_plus(&db, &attrs, &q, &mut c),
            Err(MiningError::NonMonotoneConstraint)
        );
    }
}
