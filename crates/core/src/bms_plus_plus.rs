//! Algorithm BMS++ — constraint-pushing miner for `VALID_MIN` answers.
//!
//! Modifies Algorithm BMS in the three ways of §3.1 of the paper
//! (DESIGN.md §11 maps them onto the kernel's policy hooks):
//!
//! I. **Preprocessing.** `GOOD₁`, `L1⁺`, `L1⁻` — see [`crate::prep`].
//!
//! II. **Candidate formation.** `CAND₂ = {{i₁,i₂} | i₁ ∈ L1⁺, i₂ ∈ L1⁺ ∪
//!     L1⁻}`. For `k > 2`, a `k`-set is a candidate when every
//!     `(k−1)`-subset that intersects `L1⁺` is in the previous level's
//!     `NOTSIG`. Candidates are produced by single-item extension of
//!     `NOTSIG` sets (the symmetric Apriori join is incomplete here: a
//!     candidate may legitimately have subsets that were never candidates
//!     because they miss `L1⁺`).
//!
//! III. **SIG/NOTSIG.** Residual (non-succinct) anti-monotone constraints
//!      are checked *before* the contingency table is built; residual
//!      monotone constraints are checked at SIG-entry, like correlation.
//!
//! One soundness amendment beyond the paper's pseudo-code (see DESIGN.md
//! "Fidelity notes"): when a SIG candidate `S` contains exactly one
//! witness `w`, the subset `S \ {w}` was never examined (it misses
//! `L1⁺`), yet if it is correlated then `S` is not a *minimal* correlated
//! set and must not be reported. One extra contingency table per such SIG
//! candidate closes the hole exactly.

use std::collections::HashSet;

use ccs_constraints::{AttributeTable, ConstraintAnalysis};
use ccs_itemset::{candidate, Item, Itemset, MintermCounter, TransactionDb};
use ccs_stats::MonotonicityClass;

use crate::engine::{Engine, Verdict};
use crate::guard::{ResumeInner, RunGuard};
use crate::kernel::{
    admit, prune_am_residual, run_levelwise, staged, AlgorithmPolicy, GuardMode, KernelConfig,
    LevelMark, LevelSeed, MinerScope,
};
use crate::metrics::MiningMetrics;
use crate::miner::Algorithm;
use crate::prep::preprocess;
use crate::query::{CorrelationQuery, MiningError, MiningResult, Semantics};

/// The §3.1 sweep as a kernel policy: residual anti-monotone constraints
/// prune in `prefilter` (before any counting); residual monotone
/// constraints gate SIG entry in `absorb`; `NOTSIG` extension respects
/// the witness-subset candidate rule (modification II).
pub(crate) struct PlusPlusPolicy<'a> {
    pub(crate) analysis: &'a ConstraintAnalysis,
    pub(crate) attrs: &'a AttributeTable,
    pub(crate) good1: Vec<Item>,
    pub(crate) witness_set: HashSet<Item>,
    pub(crate) sig_candidates: Vec<Itemset>,
    pub(crate) cands: Vec<Itemset>,
    /// The measure's closure direction; under a downward-closed measure
    /// `VALID_MIN` answers are all pairs (see [`crate::bms`]), so
    /// `NOTSIG` extension is futile and the sweep stops after level 2.
    pub(crate) class: MonotonicityClass,
}

impl AlgorithmPolicy for PlusPlusPolicy<'_> {
    fn candidates(&mut self, _level: usize) -> LevelSeed {
        staged(&mut self.cands)
    }

    fn snapshot(&self, level: usize, cands: &[Itemset]) -> ResumeInner {
        ResumeInner::PlusPlus {
            level,
            cands: cands.to_vec(),
            sig_candidates: self.sig_candidates.clone(),
        }
    }

    fn prefilter(
        &mut self,
        _level: usize,
        cands: Vec<Itemset>,
        metrics: &mut MiningMetrics,
    ) -> Vec<Itemset> {
        prune_am_residual(self.analysis, self.attrs, cands, metrics)
    }

    fn absorb(&mut self, _level: usize, survivors: Vec<Itemset>, verdicts: Vec<Verdict>) {
        let mut notsig_level: HashSet<Itemset> = HashSet::new();
        for (set, v) in survivors.into_iter().zip(verdicts) {
            if !v.ct_supported {
                continue;
            }
            if v.correlated {
                if self.analysis.m_residual_satisfied(&set, self.attrs) {
                    self.sig_candidates.push(set);
                }
            } else {
                notsig_level.insert(set);
            }
        }
        if self.class.is_downward() {
            // Supersets of uncorrelated sets stay uncorrelated and
            // supersets of correlated sets are non-minimal: no answer
            // exists above this level.
            self.cands = Vec::new();
            return;
        }
        let witness_set = &self.witness_set;
        self.cands = candidate::extend_gen(&notsig_level, &self.good1, |cand| {
            cand.subsets_dropping_one()
                .all(|s| !s.iter().any(|i| witness_set.contains(&i)) || notsig_level.contains(&s))
        });
    }
}

/// The single-witness minimality verification epilogue (shared between
/// complete and truncated runs; see the module docs).
pub(crate) fn verify_single_witness(
    engine: &mut Engine<'_>,
    analysis: &ConstraintAnalysis,
    witness_set: &HashSet<Item>,
    sig_candidates: Vec<Itemset>,
) -> Vec<Itemset> {
    if !analysis.has_witness_class() {
        return sig_candidates;
    }
    let mut answers = Vec::with_capacity(sig_candidates.len());
    for set in sig_candidates {
        let witnesses: Vec<Item> = set.iter().filter(|i| witness_set.contains(i)).collect();
        if witnesses.len() == 1 && set.len() >= 3 {
            let residue = set.without_item(witnesses[0]);
            let v = engine.evaluate(&residue);
            if v.correlated && v.ct_supported {
                continue; // `set` is not a minimal correlated set.
            }
        }
        answers.push(set);
    }
    answers
}

/// Runs Algorithm BMS++ and returns `VALID_MIN(Q)`.
///
/// # Errors
///
/// Returns [`MiningError`] if the constraints fail validation or contain
/// a neither-monotone (`avg`) constraint.
pub fn run_bms_plus_plus<C: MintermCounter>(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    counter: &mut C,
) -> Result<MiningResult, MiningError> {
    run_bms_plus_plus_guarded(db, attrs, query, counter, &RunGuard::unlimited(), None)
}

/// [`run_bms_plus_plus`] under a resource guard, optionally re-entering a
/// truncated run's level frontier.
///
/// When the guard trips mid-sweep the accumulated SIG candidates still go
/// through the single-witness verification epilogue (a bounded number of
/// extra tables), so truncated answers get the same minimality guarantee
/// as complete ones.
pub(crate) fn run_bms_plus_plus_guarded(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    counter: &mut dyn MintermCounter,
    guard: &RunGuard,
    resume: Option<ResumeInner>,
) -> Result<MiningResult, MiningError> {
    admit(query, attrs)?;
    let restart = match resume {
        None => None,
        Some(ResumeInner::PlusPlus {
            level,
            cands,
            sig_candidates,
        }) => Some((level, cands, sig_candidates)),
        Some(_) => return Err(MiningError::foreign_snapshot(Algorithm::BmsPlusPlus.name())),
    };
    let scope = MinerScope::begin(counter.stats());
    let mut metrics = MiningMetrics::default();
    let analysis = query.constraints.analyze(attrs);
    let mut engine = Engine::with_guard(counter, &query.params, guard.clone());

    // I. Preprocessing: GOOD₁ and the L1⁺ / L1⁻ split.
    let prep = preprocess(db, attrs, query, &analysis);

    // II + III. The level-wise sweep — or its resumed frontier.
    let (level, cands, sig_candidates) = match restart {
        Some(state) => state,
        None => (
            2usize,
            candidate::pairs_from(&prep.l1_plus, &prep.l1_minus),
            Vec::new(),
        ),
    };
    let mut policy = PlusPlusPolicy {
        analysis: &analysis,
        attrs,
        good1: prep.good1,
        witness_set: prep.witness_set,
        sig_candidates,
        cands,
        class: query.params.measure.monotonicity(),
    };
    let trip = run_levelwise(
        &mut engine,
        &mut policy,
        KernelConfig::new(Algorithm::BmsPlusPlus, LevelMark::Eager),
        GuardMode::Checked,
        level,
        query.params.max_level,
        &mut metrics,
    );

    // Soundness verification: for a SIG candidate with a single witness,
    // check that removing the witness does not leave a correlated set.
    let answers = verify_single_witness(
        &mut engine,
        &analysis,
        &policy.witness_set,
        policy.sig_candidates,
    );
    Ok(scope.seal(&engine, metrics, answers, Semantics::ValidMin, trip))
}
