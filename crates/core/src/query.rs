//! Constrained correlation queries and their answer-set semantics.

use std::fmt;

use ccs_constraints::{AttributeTable, ConstraintError, ConstraintSet};
use ccs_itemset::Itemset;

use crate::metrics::MiningMetrics;
use crate::params::MiningParams;

/// A constrained correlation query:
/// `{ S | S is CT-supported and correlated & S satisfies C }`,
/// with the statistical parameters `(α, s, p%)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CorrelationQuery {
    /// Statistical parameters.
    pub params: MiningParams,
    /// The constraint conjunction `C`.
    pub constraints: ConstraintSet,
}

impl CorrelationQuery {
    /// An unconstrained query with the given parameters (plain Brin et
    /// al. mining).
    pub fn unconstrained(params: MiningParams) -> Self {
        CorrelationQuery {
            params,
            constraints: ConstraintSet::new(),
        }
    }

    /// A query with the paper's default parameters and the given
    /// constraints.
    pub fn with_constraints(constraints: ConstraintSet) -> Self {
        CorrelationQuery {
            params: MiningParams::paper(),
            constraints,
        }
    }

    /// Validates parameters and constraints against an attribute table.
    pub fn validate(&self, attrs: &AttributeTable) -> Result<(), ConstraintError> {
        self.params.validate();
        self.constraints.validate(attrs)
    }
}

/// Which answer set a mining run computes (Definitions 1 and 2 of the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Semantics {
    /// `VALID_MIN(Q)`: minimal correlated + CT-supported sets that are
    /// also valid. Computed by BMS+ and BMS++.
    ValidMin,
    /// `MIN_VALID(Q)`: minimal sets among the correlated + CT-supported +
    /// valid ones. Computed by BMS* and BMS**. Always a superset of
    /// `VALID_MIN(Q)`; equal when all constraints are anti-monotone
    /// (Theorem 1).
    MinValid,
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Semantics::ValidMin => write!(f, "VALID_MIN"),
            Semantics::MinValid => write!(f, "MIN_VALID"),
        }
    }
}

/// The outcome of a mining run: the answer set and the work performed.
#[derive(Debug, Clone, PartialEq)]
pub struct MiningResult {
    /// The answer itemsets, sorted for determinism.
    pub answers: Vec<Itemset>,
    /// Which semantics `answers` follows.
    pub semantics: Semantics,
    /// Work accounting.
    pub metrics: MiningMetrics,
}

impl MiningResult {
    /// Builds a result, sorting the answers.
    pub fn new(mut answers: Vec<Itemset>, semantics: Semantics, metrics: MiningMetrics) -> Self {
        answers.sort_unstable();
        answers.dedup();
        MiningResult {
            answers,
            semantics,
            metrics,
        }
    }

    /// `true` iff `set` is among the answers.
    pub fn contains(&self, set: &Itemset) -> bool {
        self.answers.binary_search(set).is_ok()
    }
}

/// Errors a mining run can report.
#[derive(Debug, Clone, PartialEq)]
pub enum MiningError {
    /// A constraint references a missing or ill-typed attribute.
    Constraint(ConstraintError),
    /// The query contains a constraint that is neither monotone nor
    /// anti-monotone (`avg`): the level-wise algorithms cannot handle it
    /// (§6 of the paper); use the naive miner.
    NonMonotoneConstraint,
    /// The exhaustive reference miner was asked to enumerate a basis
    /// larger than it can handle.
    UniverseTooLarge {
        /// Items in the (filtered) basis.
        basis: usize,
        /// The miner's hard cap.
        limit: usize,
    },
}

impl fmt::Display for MiningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiningError::Constraint(e) => write!(f, "constraint error: {e}"),
            MiningError::NonMonotoneConstraint => write!(
                f,
                "query contains a constraint that is neither monotone nor anti-monotone \
                 (e.g. avg); only the naive miner supports such queries"
            ),
            MiningError::UniverseTooLarge { basis, limit } => write!(
                f,
                "the exhaustive miner is limited to {limit} items, but the basis has {basis}; \
                 use a level-wise algorithm or add pruning constraints"
            ),
        }
    }
}

impl std::error::Error for MiningError {}

impl From<ConstraintError> for MiningError {
    fn from(e: ConstraintError) -> Self {
        MiningError::Constraint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_constraints::Constraint;

    #[test]
    fn query_validation() {
        let attrs = AttributeTable::with_identity_prices(10);
        let q = CorrelationQuery::with_constraints(
            ConstraintSet::new().and(Constraint::max_le("price", 5.0)),
        );
        assert!(q.validate(&attrs).is_ok());
        let bad = CorrelationQuery::with_constraints(
            ConstraintSet::new().and(Constraint::max_le("weight", 5.0)),
        );
        assert!(bad.validate(&attrs).is_err());
    }

    #[test]
    fn result_sorts_and_dedups() {
        let r = MiningResult::new(
            vec![
                Itemset::from_ids([2, 3]),
                Itemset::from_ids([0, 1]),
                Itemset::from_ids([2, 3]),
            ],
            Semantics::ValidMin,
            MiningMetrics::default(),
        );
        assert_eq!(r.answers.len(), 2);
        assert!(r.contains(&Itemset::from_ids([0, 1])));
        assert!(!r.contains(&Itemset::from_ids([0, 2])));
    }

    #[test]
    fn semantics_display() {
        assert_eq!(Semantics::ValidMin.to_string(), "VALID_MIN");
        assert_eq!(Semantics::MinValid.to_string(), "MIN_VALID");
    }
}
