//! Constrained correlation queries and their answer-set semantics.

use std::fmt;

use ccs_constraints::{AttributeTable, ConstraintError, ConstraintSet};
use ccs_itemset::Itemset;
use thiserror::Error;

use crate::guard::{Completion, ResumeState, TruncationReason};
use crate::metrics::MiningMetrics;
use crate::params::MiningParams;

/// A constrained correlation query:
/// `{ S | S is CT-supported and correlated & S satisfies C }`,
/// with the statistical parameters `(α, s, p%)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CorrelationQuery {
    /// Statistical parameters.
    pub params: MiningParams,
    /// The constraint conjunction `C`.
    pub constraints: ConstraintSet,
}

impl CorrelationQuery {
    /// An unconstrained query with the given parameters (plain Brin et
    /// al. mining).
    pub fn unconstrained(params: MiningParams) -> Self {
        CorrelationQuery {
            params,
            constraints: ConstraintSet::new(),
        }
    }

    /// A query with the paper's default parameters and the given
    /// constraints.
    pub fn with_constraints(constraints: ConstraintSet) -> Self {
        CorrelationQuery {
            params: MiningParams::paper(),
            constraints,
        }
    }

    /// Validates parameters and constraints against an attribute table.
    pub fn validate(&self, attrs: &AttributeTable) -> Result<(), ConstraintError> {
        self.params.validate();
        self.constraints.validate(attrs)
    }
}

/// Which answer set a mining run computes (Definitions 1 and 2 of the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Semantics {
    /// `VALID_MIN(Q)`: minimal correlated + CT-supported sets that are
    /// also valid. Computed by BMS+ and BMS++.
    ValidMin,
    /// `MIN_VALID(Q)`: minimal sets among the correlated + CT-supported +
    /// valid ones. Computed by BMS* and BMS**. Always a superset of
    /// `VALID_MIN(Q)`; equal when all constraints are anti-monotone
    /// (Theorem 1).
    MinValid,
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Semantics::ValidMin => write!(f, "VALID_MIN"),
            Semantics::MinValid => write!(f, "MIN_VALID"),
        }
    }
}

/// The outcome of a mining run: the answer set and the work performed.
#[derive(Debug, Clone, PartialEq)]
pub struct MiningResult {
    /// The answer itemsets, sorted for determinism.
    pub answers: Vec<Itemset>,
    /// Which semantics `answers` follows.
    pub semantics: Semantics,
    /// Work accounting.
    pub metrics: MiningMetrics,
    /// Whether the run covered the whole search space or stopped at a
    /// guard checkpoint. Truncated runs still carry a *sound* answer set:
    /// every reported set is an answer of the complete run.
    pub completion: Completion,
    /// For truncated runs, the frontier from which
    /// [`crate::session::MiningSession::resume`] continues the sweep.
    pub resume: Option<ResumeState>,
}

impl MiningResult {
    /// Builds a complete result, sorting the answers.
    pub fn new(mut answers: Vec<Itemset>, semantics: Semantics, metrics: MiningMetrics) -> Self {
        answers.sort_unstable();
        answers.dedup();
        MiningResult {
            answers,
            semantics,
            metrics,
            completion: Completion::Complete,
            resume: None,
        }
    }

    /// Builds a truncated result: a sound partial answer set, the level
    /// frontier it is complete up to, and the resume snapshot.
    pub(crate) fn truncated(
        answers: Vec<Itemset>,
        semantics: Semantics,
        metrics: MiningMetrics,
        reason: TruncationReason,
        frontier_level: usize,
        resume: ResumeState,
    ) -> Self {
        let completion = Completion::Truncated {
            reason,
            frontier_level,
            sets_evaluated: metrics.tables_built,
        };
        let mut result = MiningResult::new(answers, semantics, metrics);
        result.completion = completion;
        result.resume = Some(resume);
        result
    }

    /// `true` iff `set` is among the answers.
    pub fn contains(&self, set: &Itemset) -> bool {
        self.answers.binary_search(set).is_ok()
    }
}

/// Errors a mining run can report.
#[derive(Debug, Clone, PartialEq, Error)]
pub enum MiningError {
    /// A constraint references a missing or ill-typed attribute.
    #[error("constraint error: {0}")]
    Constraint(#[from] ConstraintError),
    /// The query contains a constraint that is neither monotone nor
    /// anti-monotone (`avg`): the level-wise algorithms cannot handle it
    /// (§6 of the paper); use the naive miner.
    #[error("query contains a constraint that is neither monotone nor anti-monotone (e.g. avg); only the naive miner supports such queries")]
    NonMonotoneConstraint,
    /// The exhaustive reference miner was asked to enumerate a basis
    /// larger than it can handle.
    #[error("the exhaustive miner is limited to {limit} items, but the basis has {basis}; use a level-wise algorithm or add pruning constraints")]
    UniverseTooLarge {
        /// Items in the (filtered) basis.
        basis: usize,
        /// The miner's hard cap.
        limit: usize,
    },
    /// A resume snapshot was handed to a different algorithm (or phase)
    /// than the one that produced it.
    #[error("resume state was produced by {expected}, not {requested}")]
    ResumeMismatch {
        /// The algorithm the snapshot belongs to.
        expected: &'static str,
        /// The algorithm that was asked to consume it.
        requested: &'static str,
    },
    /// A resume snapshot carries a format tag from a different build
    /// generation (e.g. a pre-kernel snapshot); its loop state cannot be
    /// interpreted safely, so the run must be restarted from scratch.
    #[error("resume state has format {found}, but this build expects {expected}; restart the run instead of resuming")]
    ResumeFormatMismatch {
        /// The tag the snapshot carries.
        found: u16,
        /// The tag this build stamps and accepts.
        expected: u16,
    },
}

impl MiningError {
    /// The [`MiningError::ResumeMismatch`] a miner reports when handed a
    /// snapshot whose loop state belongs to some other algorithm.
    pub(crate) fn foreign_snapshot(requested: &'static str) -> MiningError {
        MiningError::ResumeMismatch {
            expected: "another algorithm",
            requested,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_constraints::Constraint;

    #[test]
    fn query_validation() {
        let attrs = AttributeTable::with_identity_prices(10);
        let q = CorrelationQuery::with_constraints(
            ConstraintSet::new().and(Constraint::max_le("price", 5.0)),
        );
        assert!(q.validate(&attrs).is_ok());
        let bad = CorrelationQuery::with_constraints(
            ConstraintSet::new().and(Constraint::max_le("weight", 5.0)),
        );
        assert!(bad.validate(&attrs).is_err());
    }

    #[test]
    fn result_sorts_and_dedups() {
        let r = MiningResult::new(
            vec![
                Itemset::from_ids([2, 3]),
                Itemset::from_ids([0, 1]),
                Itemset::from_ids([2, 3]),
            ],
            Semantics::ValidMin,
            MiningMetrics::default(),
        );
        assert_eq!(r.answers.len(), 2);
        assert!(r.contains(&Itemset::from_ids([0, 1])));
        assert!(!r.contains(&Itemset::from_ids([0, 2])));
    }

    #[test]
    fn semantics_display() {
        assert_eq!(Semantics::ValidMin.to_string(), "VALID_MIN");
        assert_eq!(Semantics::MinValid.to_string(), "MIN_VALID");
    }
}
