//! # ccs-core — constrained correlated set mining
//!
//! A from-scratch Rust implementation of *Efficient Mining of Constrained
//! Correlated Sets* (Grahne, Lakshmanan & Wang, ICDE 2000): the four
//! constrained variants of the Brin–Motwani–Silverstein correlation miner,
//! the baseline itself, and an exhaustive reference.
//!
//! | Algorithm | Answer set | Constraint pushing |
//! |-----------|------------|--------------------|
//! | [`bms`] (baseline) | minimal correlated + CT-supported | — |
//! | [`bms_plus`] | `VALID_MIN` | none (post-filter) |
//! | [`bms_plus_plus`] | `VALID_MIN` | full (§3.1) |
//! | [`bms_star`] | `MIN_VALID` | none (BMS + upward sweep) |
//! | [`bms_star_star`] | `MIN_VALID` | full (§3.2) |
//! | [`naive`] | either | exhaustive ground truth |
//!
//! Start from [`MiningSession`]: build a [`MineRequest`] naming an
//! algorithm (plus counting strategy and resource guard, if you need
//! them) and get a [`MineOutcome`] back. All algorithms run on one
//! level-wise kernel (`kernel`), differing only in their policy.
//! [`border`] computes both borders of the solution space — the
//! complete characterization §5 of the paper calls for.

#![warn(missing_docs)]

pub mod bms;
pub mod bms_plus;
pub mod bms_plus_plus;
pub mod bms_star;
pub mod bms_star_star;
pub mod border;
pub mod causality;
mod engine;
pub mod guard;
mod kernel;
pub mod metrics;
pub mod miner;
pub mod naive;
pub mod params;
pub mod persist;
mod prep;
pub mod query;
pub mod session;

pub use bms::{run_bms, BmsOutput};
pub use bms_plus::run_bms_plus;
pub use bms_plus_plus::run_bms_plus_plus;
pub use bms_star::run_bms_star;
pub use bms_star_star::run_bms_star_star;
pub use border::{solution_space, SolutionSpace};
pub use causality::{discover_causality, CausalAnalysis, CausalFinding};
pub use guard::{Completion, GuardLimits, ResumeState, RunGuard, TruncationReason};
pub use metrics::MiningMetrics;
pub use miner::{Algorithm, CountingStrategy, MiningOptions};
pub use naive::{run_naive, NAIVE_MAX_ITEMS};
pub use params::MiningParams;
pub use persist::{
    fingerprint_db, load_checkpoint, read_checkpoint_file, save_checkpoint, write_checkpoint_file,
    Checkpoint, CheckpointCadence, CheckpointError, CheckpointPolicy, CheckpointReport,
    CheckpointSink, CheckpointStatus, DbFingerprint, FileSink, MemorySink,
};
pub use query::{CorrelationQuery, MiningError, MiningResult, Semantics};
pub use session::{mine_on, resume_on, MineOutcome, MineRequest, MiningSession};
