//! The session entry point: one builder-style API over every miner.
//!
//! [`MiningSession`] replaces the former `mine` / `mine_with_strategy` /
//! `mine_with_options` / `mine_with_counter*` / `resume_with_*` matrix
//! with a single surface: build a [`MineRequest`] (algorithm, counting
//! options, guard), hand it to [`MiningSession::mine`] or
//! [`MiningSession::resume`], get a [`MineOutcome`] back.
//!
//! A session owns the counting substrate and keeps it **warm across
//! queries**: the vertical index (or worker pool) built for the first
//! query is reused by every later query with the same resolved strategy,
//! which is the iterative-session pattern of *Interactive Constrained
//! Association Rule Mining* (Goethals & Van den Bussche) — in an
//! exploration loop the analyst re-mines the same database under
//! shifting constraints, and the index build must not be paid per query.
//!
//! For callers that need to own the counter (fault injection, custom
//! substrates, post-run stats inspection), [`mine_on`] and [`resume_on`]
//! run one request against a borrowed counter.

use ccs_constraints::AttributeTable;
use ccs_itemset::{
    FpTreeCounter, HorizontalCounter, MintermCounter, ParallelCounter, ParallelVerticalCounter,
    ShardedVerticalCounter, TransactionDb, VerticalCounter,
};

use crate::bms_plus::run_bms_plus_guarded;
use crate::bms_plus_plus::run_bms_plus_plus_guarded;
use crate::bms_star::run_bms_star_guarded;
use crate::bms_star_star::run_bms_star_star_guarded;
use std::sync::Arc;

use crate::guard::{GuardLimits, ResumeInner, ResumeState, RunGuard, RESUME_FORMAT};
use crate::metrics::MiningMetrics;
use crate::miner::{Algorithm, CountingStrategy, MiningOptions};
use crate::naive::run_naive_guarded;
use crate::persist::{fingerprint_db, CheckpointPolicy, CheckpointRecorder, CheckpointReport};
use crate::query::{CorrelationQuery, MiningError, MiningResult, Semantics};

/// One mining request: the algorithm to run, the counting configuration,
/// and the resource guard. Built fluently:
///
/// ```ignore
/// MineRequest::new(Algorithm::BmsPlusPlus)
///     .strategy(CountingStrategy::Auto)
///     .threads(4)
///     .guard(guard)
/// ```
#[derive(Debug, Clone)]
pub struct MineRequest {
    /// The algorithm to run. `None` (the [`MineRequest::default`] for
    /// resume requests, where the snapshot pins the algorithm) makes
    /// [`MiningSession::mine`] run BMS++, the paper's best `VALID_MIN`
    /// algorithm.
    pub algorithm: Option<Algorithm>,
    /// Counting strategy and thread override.
    pub options: MiningOptions,
    /// Resource governor; defaults to the inert unlimited guard.
    pub guard: RunGuard,
    /// Durability: where (and how often) the run stamps crash-safe
    /// checkpoints. `None` (the default) keeps runs purely in-memory.
    /// Checkpointing requires resume snapshots, so a request with an
    /// unarmed guard is silently armed with empty limits — proven
    /// answer-preserving by the guard fault suite.
    pub checkpoint: Option<CheckpointPolicy>,
}

impl Default for MineRequest {
    fn default() -> Self {
        MineRequest {
            algorithm: None,
            options: MiningOptions::default(),
            guard: RunGuard::unlimited(),
            checkpoint: None,
        }
    }
}

impl MineRequest {
    /// A request for `algorithm` with default counting (paper-faithful
    /// horizontal) and no resource limits.
    pub fn new(algorithm: Algorithm) -> Self {
        MineRequest {
            algorithm: Some(algorithm),
            options: MiningOptions::default(),
            guard: RunGuard::unlimited(),
            checkpoint: None,
        }
    }

    /// Names (or, with `None`, un-names) the algorithm to run.
    #[must_use]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// Sets the counting strategy (`Auto` resolves per database).
    #[must_use]
    pub fn strategy(mut self, strategy: CountingStrategy) -> Self {
        self.options.strategy = strategy;
        self
    }

    /// Overrides the worker-thread count for pooled strategies.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = Some(threads);
        self
    }

    /// Overrides the tid-range shard count for the sharded strategy
    /// (and routes `Auto` to it — see [`CountingStrategy::resolve`]).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.options.shards = Some(shards);
        self
    }

    /// Replaces the full counting options.
    #[must_use]
    pub fn options(mut self, options: MiningOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches a resource guard (deadline / work / memory budgets,
    /// cancellation).
    #[must_use]
    pub fn guard(mut self, guard: RunGuard) -> Self {
        self.guard = guard;
        self
    }

    /// Attaches a durability policy: the run stamps crash-safe
    /// checkpoints through the policy's sink at its cadence, and always
    /// on a guard trip.
    #[must_use]
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }
}

/// What a session run produced: the mining result plus the request
/// echo — which algorithm ran and which concrete counting strategy the
/// request's (possibly `Auto`) strategy resolved to.
#[derive(Debug, Clone)]
pub struct MineOutcome {
    /// Answers, metrics, completion status, resume snapshot.
    pub result: MiningResult,
    /// The algorithm that ran.
    pub algorithm: Algorithm,
    /// The concrete strategy the run counted with (never `Auto`).
    pub strategy: CountingStrategy,
    /// The durability summary, when the request carried a
    /// [`CheckpointPolicy`]: snapshots committed and the first write
    /// error, if any. Checkpoint I/O failures degrade durability, never
    /// the mining result.
    pub checkpoint: Option<CheckpointReport>,
}

/// A reusable mining session over one database: the single entry point
/// for every algorithm, counting strategy, guard, and resume path.
///
/// The counting substrate is cached between queries (keyed by resolved
/// strategy + thread override), so an interactive loop that re-mines
/// under changing constraints pays the vertical index or pool spin-up
/// once. Statistics are delta-based per run, so reuse never skews
/// metrics.
pub struct MiningSession<'a> {
    db: &'a TransactionDb,
    attrs: &'a AttributeTable,
    counter: Option<CachedCounter<'a>>,
}

struct CachedCounter<'a> {
    strategy: CountingStrategy,
    threads: Option<usize>,
    shards: Option<usize>,
    counter: Box<dyn MintermCounter + 'a>,
}

impl<'a> MiningSession<'a> {
    /// Opens a session over `db` with item attributes `attrs`.
    pub fn new(db: &'a TransactionDb, attrs: &'a AttributeTable) -> Self {
        MiningSession {
            db,
            attrs,
            counter: None,
        }
    }

    /// The session's database.
    pub fn db(&self) -> &TransactionDb {
        self.db
    }

    /// The session's attribute table.
    pub fn attrs(&self) -> &AttributeTable {
        self.attrs
    }

    /// Runs one query.
    ///
    /// # Errors
    ///
    /// [`MiningError::Constraint`] on invalid constraints,
    /// [`MiningError::NonMonotoneConstraint`] when an `avg` constraint
    /// reaches a level-wise algorithm, or the naive miner's
    /// [`MiningError::UniverseTooLarge`]. Resource exhaustion is **not**
    /// an error — it yields a truncated [`MineOutcome`].
    pub fn mine(
        &mut self,
        query: &CorrelationQuery,
        request: &MineRequest,
    ) -> Result<MineOutcome, MiningError> {
        let algorithm = request.algorithm.unwrap_or(Algorithm::BmsPlusPlus);
        self.run(query, request, algorithm, None)
    }

    /// Continues a truncated run from its [`ResumeState`] snapshot. The
    /// snapshot pins the algorithm; a request naming a different one is
    /// rejected, as is a snapshot from a different format generation.
    /// Database, attributes, and query must be the ones the original run
    /// used.
    ///
    /// # Errors
    ///
    /// As [`MiningSession::mine`], plus
    /// [`MiningError::ResumeFormatMismatch`] and
    /// [`MiningError::ResumeMismatch`].
    pub fn resume(
        &mut self,
        query: &CorrelationQuery,
        request: &MineRequest,
        state: ResumeState,
    ) -> Result<MineOutcome, MiningError> {
        let algorithm = check_resume(&state, request.algorithm)?;
        self.run(query, request, algorithm, Some(state.inner))
    }

    fn run(
        &mut self,
        query: &CorrelationQuery,
        request: &MineRequest,
        algorithm: Algorithm,
        resume: Option<ResumeInner>,
    ) -> Result<MineOutcome, MiningError> {
        let strategy = request.options.strategy.resolve(
            self.db,
            request.options.threads,
            request.options.shards,
        );
        let threads = request.options.threads;
        let shards = request.options.shards;
        let reusable = matches!(
            &self.counter,
            Some(c) if c.strategy == strategy && c.threads == threads && c.shards == shards
        );
        if !reusable {
            self.counter = Some(CachedCounter {
                strategy,
                threads,
                shards,
                counter: make_counter(self.db, strategy, threads, shards),
            });
        }
        #[allow(clippy::expect_used)] // just installed above
        let cached = self.counter.as_mut().expect("counter installed above");
        let (guard, recorder) = checkpoint_setup(self.db, query, request);
        let result = dispatch(
            self.db,
            self.attrs,
            query,
            algorithm,
            &mut *cached.counter,
            &guard,
            resume,
        )?;
        Ok(MineOutcome {
            checkpoint: recorder.map(|r| {
                r.stamp_trip(&result);
                r.report()
            }),
            result,
            algorithm,
            strategy,
        })
    }
}

/// Resolves a request's durability configuration into the guard to run
/// with: no policy passes the request's guard through untouched; a policy
/// builds the per-run recorder (pinning the *original* query, so resume
/// re-normalizes identically) and rides it on the guard — arming an
/// unarmed guard with empty limits first, because only armed guards take
/// the resume snapshots checkpoints are made of.
fn checkpoint_setup(
    db: &TransactionDb,
    query: &CorrelationQuery,
    request: &MineRequest,
) -> (RunGuard, Option<Arc<CheckpointRecorder>>) {
    let Some(policy) = &request.checkpoint else {
        return (request.guard.clone(), None);
    };
    let recorder = policy.recorder(query.clone(), fingerprint_db(db));
    let guard = if request.guard.is_armed() {
        request.guard.clone()
    } else {
        RunGuard::with_cancel_flag(GuardLimits::default(), request.guard.cancel_flag())
    };
    (guard.with_recorder(Arc::clone(&recorder)), Some(recorder))
}

/// Runs one request against a caller-owned counter — the expert path for
/// custom substrates, fault injection, and post-run counter inspection.
/// The request's counting options are ignored (the counter *is* the
/// strategy).
///
/// # Errors
///
/// As [`MiningSession::mine`].
pub fn mine_on(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    request: &MineRequest,
    counter: &mut dyn MintermCounter,
) -> Result<MiningResult, MiningError> {
    let algorithm = request.algorithm.unwrap_or(Algorithm::BmsPlusPlus);
    dispatch_with_checkpoint(db, attrs, query, algorithm, counter, request, None)
}

/// [`mine_on`] for resuming a truncated run from its snapshot.
///
/// # Errors
///
/// As [`MiningSession::resume`].
pub fn resume_on(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    request: &MineRequest,
    counter: &mut dyn MintermCounter,
    state: ResumeState,
) -> Result<MiningResult, MiningError> {
    let algorithm = check_resume(&state, request.algorithm)?;
    dispatch_with_checkpoint(
        db,
        attrs,
        query,
        algorithm,
        counter,
        request,
        Some(state.inner),
    )
}

/// [`dispatch`] plus the request's durability wiring — the borrowed-
/// counter analogue of [`MiningSession::run`]'s checkpoint handling.
fn dispatch_with_checkpoint(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    algorithm: Algorithm,
    counter: &mut dyn MintermCounter,
    request: &MineRequest,
    resume: Option<ResumeInner>,
) -> Result<MiningResult, MiningError> {
    let (guard, recorder) = checkpoint_setup(db, query, request);
    let result = dispatch(db, attrs, query, algorithm, counter, &guard, resume)?;
    if let Some(recorder) = recorder {
        recorder.stamp_trip(&result);
    }
    Ok(result)
}

/// Validates a resume snapshot against the current build's format tag
/// and the request's algorithm (if it names one), returning the
/// algorithm to run.
fn check_resume(
    state: &ResumeState,
    requested: Option<Algorithm>,
) -> Result<Algorithm, MiningError> {
    if state.format() != RESUME_FORMAT {
        return Err(MiningError::ResumeFormatMismatch {
            found: state.format(),
            expected: RESUME_FORMAT,
        });
    }
    let algorithm = state.algorithm();
    if let Some(requested) = requested {
        if requested != algorithm {
            return Err(MiningError::ResumeMismatch {
                expected: algorithm.name(),
                requested: requested.name(),
            });
        }
    }
    Ok(algorithm)
}

/// Builds the counter for a resolved strategy. The single place the
/// strategy enum turns into a concrete counter — every mine/resume
/// entry point funnels through here.
fn make_counter<'a>(
    db: &'a TransactionDb,
    strategy: CountingStrategy,
    threads: Option<usize>,
    shards: Option<usize>,
) -> Box<dyn MintermCounter + 'a> {
    match strategy {
        CountingStrategy::Horizontal => Box::new(HorizontalCounter::new(db)),
        CountingStrategy::Vertical => Box::new(VerticalCounter::new(db)),
        CountingStrategy::Parallel => match threads {
            Some(n) => Box::new(ParallelCounter::new(db, n)),
            None => Box::new(ParallelCounter::with_available_parallelism(db)),
        },
        CountingStrategy::VerticalPar => match threads {
            Some(n) => Box::new(ParallelVerticalCounter::with_workers(db, n)),
            None => Box::new(ParallelVerticalCounter::new(db)),
        },
        CountingStrategy::Sharded => match (shards, threads) {
            (Some(s), Some(t)) => {
                Box::new(ShardedVerticalCounter::with_shards_and_workers(db, s, t))
            }
            (Some(s), None) => Box::new(ShardedVerticalCounter::with_shards(db, s)),
            (None, Some(t)) => Box::new(ShardedVerticalCounter::with_shards_and_workers(db, t, t)),
            (None, None) => Box::new(ShardedVerticalCounter::new(db)),
        },
        CountingStrategy::FpTree => Box::new(FpTreeCounter::new(db)),
        CountingStrategy::Auto => unreachable!("resolve() never returns Auto"),
    }
}

/// The single dispatch point every entry funnels into: one algorithm,
/// one counter, one guard, and (for resumed runs) the snapshot to
/// re-enter from.
///
/// Before any counting, the constraint conjunction goes through the
/// static analyzer ([`ccs_constraints::analyze`]): a provably
/// unsatisfiable conjunction short-circuits to an empty complete answer
/// set with zero cells counted, and a satisfiable one is replaced by its
/// equivalent normalized form so the miners work from the tightest
/// non-redundant bounds. Normalization preserves `satisfied()` on every
/// set of ≥ 2 items, so answer sets are unchanged for all algorithms.
pub(crate) fn dispatch(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    algorithm: Algorithm,
    counter: &mut dyn MintermCounter,
    guard: &RunGuard,
    resume: Option<ResumeInner>,
) -> Result<MiningResult, MiningError> {
    let analysis = ccs_constraints::analyze(&query.constraints, attrs)?;
    if analysis.verdict.is_unsatisfiable() {
        return Ok(MiningResult::new(
            Vec::new(),
            algorithm.semantics(),
            MiningMetrics::default(),
        ));
    }
    let normalized = CorrelationQuery {
        params: query.params,
        constraints: analysis.normalized,
    };
    let query = &normalized;
    match algorithm {
        Algorithm::BmsPlus => run_bms_plus_guarded(db, attrs, query, counter, guard, resume),
        Algorithm::BmsPlusPlus => {
            run_bms_plus_plus_guarded(db, attrs, query, counter, guard, resume)
        }
        Algorithm::BmsStar => run_bms_star_guarded(db, attrs, query, counter, guard, resume),
        Algorithm::BmsStarStar => {
            run_bms_star_star_guarded(db, attrs, query, counter, guard, resume)
        }
        Algorithm::Naive => run_naive_guarded(
            db,
            attrs,
            query,
            Semantics::ValidMin,
            counter,
            guard,
            resume,
        ),
        Algorithm::NaiveMinValid => run_naive_guarded(
            db,
            attrs,
            query,
            Semantics::MinValid,
            counter,
            guard,
            resume,
        ),
    }
}
