//! Mining parameters shared by every algorithm.

use ccs_stats::{Measure, MeasureContext, MeasureError};

/// The statistical parameters of a correlation query: the correlation
/// measure and its threshold, the cell-support threshold `s` (as a
/// fraction of the database size), and the cell fraction `p` of the
/// CT-support test — the `(α, s, p%)` triple of Brin et al. that the
/// paper keeps, generalized over the measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiningParams {
    /// The correlation measure the run tests ([`Measure::Chi2`] is the
    /// paper's, and the default).
    pub measure: Measure,
    /// The measure threshold, validated per measure at
    /// [`MiningParams::measure_context`]. For χ² this is the confidence
    /// level — the field keeps the paper's spelling (the experiments
    /// use 0.9: an itemset is correlated when its statistic exceeds the
    /// 90% quantile); for all-confidence/bond it is the ratio cutoff in
    /// `(0, 1]`.
    pub confidence: f64,
    /// Cell-support threshold `s` as a fraction of the number of baskets
    /// (0.25 in the paper's experiments).
    pub support_fraction: f64,
    /// Fraction `p` of contingency cells that must reach `s` for
    /// CT-support (0.25 in the paper's experiments).
    pub ct_fraction: f64,
    /// Minimum relative support an item needs to participate at all
    /// (the `O(i) ≥ s` filter of the paper's pseudo-code). `0.0` disables
    /// the filter, which matches the 25%-threshold experiments where a
    /// literal reading would prune every item of a sparse basket
    /// database.
    pub min_item_support: f64,
    /// Safety cap on the lattice level (inclusive). The paper's
    /// experiments never see answers above level 4; the cap bounds
    /// runaway sweeps on adversarial inputs.
    pub max_level: usize,
}

impl MiningParams {
    /// The paper's experimental configuration: confidence 0.9, `s` = 25%
    /// of baskets, `p` = 25% of cells.
    pub fn paper() -> Self {
        MiningParams {
            measure: Measure::Chi2,
            confidence: 0.9,
            support_fraction: 0.25,
            ct_fraction: 0.25,
            min_item_support: 0.0,
            max_level: 8,
        }
    }

    /// The validated per-run measure criterion: the single place the
    /// threshold is range-checked and the critical values precomputed.
    ///
    /// # Errors
    ///
    /// [`MeasureError`] when `confidence` is outside the measure's
    /// range.
    pub fn measure_context(&self) -> Result<MeasureContext, MeasureError> {
        MeasureContext::new(self.measure, self.confidence)
    }

    /// Validates the parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values; parameters are programmer input,
    /// not user data.
    pub fn validate(&self) {
        if let Err(e) = self.measure_context() {
            panic!("confidence: {e}");
        }
        assert!(
            (0.0..=1.0).contains(&self.support_fraction),
            "support_fraction must be in [0, 1], got {}",
            self.support_fraction
        );
        assert!(
            (0.0..=1.0).contains(&self.ct_fraction),
            "ct_fraction must be in [0, 1], got {}",
            self.ct_fraction
        );
        assert!(
            (0.0..=1.0).contains(&self.min_item_support),
            "min_item_support must be in [0, 1], got {}",
            self.min_item_support
        );
        assert!(self.max_level >= 2, "max_level must be at least 2");
    }

    /// The absolute cell-support threshold for a database of `n` baskets.
    pub fn support_abs(&self, n: usize) -> u64 {
        (self.support_fraction * n as f64).ceil() as u64
    }

    /// The absolute item-support threshold for a database of `n` baskets.
    pub fn item_support_abs(&self, n: usize) -> u64 {
        (self.min_item_support * n as f64).ceil() as u64
    }
}

impl Default for MiningParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = MiningParams::paper();
        p.validate();
        assert_eq!(p.measure, Measure::Chi2);
        assert_eq!(p.confidence, 0.9);
        assert_eq!(p.support_fraction, 0.25);
        assert_eq!(p.ct_fraction, 0.25);
    }

    #[test]
    fn thresholds_validate_per_measure() {
        // 1.0 is invalid as a χ² confidence but the top of the ratio
        // measures' range; 0.0 is the reverse.
        for measure in [Measure::AllConfidence, Measure::Bond] {
            MiningParams {
                measure,
                confidence: 1.0,
                ..MiningParams::paper()
            }
            .validate();
            assert!(MiningParams {
                measure,
                confidence: 0.0,
                ..MiningParams::paper()
            }
            .measure_context()
            .is_err());
        }
        MiningParams {
            confidence: 0.0,
            ..MiningParams::paper()
        }
        .validate();
    }

    #[test]
    fn absolute_thresholds_round_up() {
        let p = MiningParams {
            support_fraction: 0.25,
            ..MiningParams::paper()
        };
        assert_eq!(p.support_abs(100), 25);
        assert_eq!(p.support_abs(101), 26);
        assert_eq!(p.support_abs(0), 0);
        let q = MiningParams {
            min_item_support: 0.1,
            ..MiningParams::paper()
        };
        assert_eq!(q.item_support_abs(95), 10);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn confidence_of_one_rejected() {
        MiningParams {
            confidence: 1.0,
            ..MiningParams::paper()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "max_level")]
    fn tiny_max_level_rejected() {
        MiningParams {
            max_level: 1,
            ..MiningParams::paper()
        }
        .validate();
    }
}
