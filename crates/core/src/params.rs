//! Mining parameters shared by every algorithm.

/// The statistical parameters of a correlation query: the chi-squared
/// confidence level `α`, the cell-support threshold `s` (as a fraction of
/// the database size), and the cell fraction `p` of the CT-support test —
/// the `(α, s, p%)` triple of Brin et al. that the paper keeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiningParams {
    /// Chi-squared confidence level for the correlation test (the paper's
    /// experiments use 0.9: an itemset is correlated when its statistic
    /// exceeds the 90% quantile).
    pub confidence: f64,
    /// Cell-support threshold `s` as a fraction of the number of baskets
    /// (0.25 in the paper's experiments).
    pub support_fraction: f64,
    /// Fraction `p` of contingency cells that must reach `s` for
    /// CT-support (0.25 in the paper's experiments).
    pub ct_fraction: f64,
    /// Minimum relative support an item needs to participate at all
    /// (the `O(i) ≥ s` filter of the paper's pseudo-code). `0.0` disables
    /// the filter, which matches the 25%-threshold experiments where a
    /// literal reading would prune every item of a sparse basket
    /// database.
    pub min_item_support: f64,
    /// Safety cap on the lattice level (inclusive). The paper's
    /// experiments never see answers above level 4; the cap bounds
    /// runaway sweeps on adversarial inputs.
    pub max_level: usize,
}

impl MiningParams {
    /// The paper's experimental configuration: confidence 0.9, `s` = 25%
    /// of baskets, `p` = 25% of cells.
    pub fn paper() -> Self {
        MiningParams {
            confidence: 0.9,
            support_fraction: 0.25,
            ct_fraction: 0.25,
            min_item_support: 0.0,
            max_level: 8,
        }
    }

    /// Validates the parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values; parameters are programmer input,
    /// not user data.
    pub fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.confidence),
            "confidence must be in [0, 1), got {}",
            self.confidence
        );
        assert!(
            (0.0..=1.0).contains(&self.support_fraction),
            "support_fraction must be in [0, 1], got {}",
            self.support_fraction
        );
        assert!(
            (0.0..=1.0).contains(&self.ct_fraction),
            "ct_fraction must be in [0, 1], got {}",
            self.ct_fraction
        );
        assert!(
            (0.0..=1.0).contains(&self.min_item_support),
            "min_item_support must be in [0, 1], got {}",
            self.min_item_support
        );
        assert!(self.max_level >= 2, "max_level must be at least 2");
    }

    /// The absolute cell-support threshold for a database of `n` baskets.
    pub fn support_abs(&self, n: usize) -> u64 {
        (self.support_fraction * n as f64).ceil() as u64
    }

    /// The absolute item-support threshold for a database of `n` baskets.
    pub fn item_support_abs(&self, n: usize) -> u64 {
        (self.min_item_support * n as f64).ceil() as u64
    }
}

impl Default for MiningParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = MiningParams::paper();
        p.validate();
        assert_eq!(p.confidence, 0.9);
        assert_eq!(p.support_fraction, 0.25);
        assert_eq!(p.ct_fraction, 0.25);
    }

    #[test]
    fn absolute_thresholds_round_up() {
        let p = MiningParams {
            support_fraction: 0.25,
            ..MiningParams::paper()
        };
        assert_eq!(p.support_abs(100), 25);
        assert_eq!(p.support_abs(101), 26);
        assert_eq!(p.support_abs(0), 0);
        let q = MiningParams {
            min_item_support: 0.1,
            ..MiningParams::paper()
        };
        assert_eq!(q.item_support_abs(95), 10);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn confidence_of_one_rejected() {
        MiningParams {
            confidence: 1.0,
            ..MiningParams::paper()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "max_level")]
    fn tiny_max_level_rejected() {
        MiningParams {
            max_level: 1,
            ..MiningParams::paper()
        }
        .validate();
    }
}
