//! Preprocessing shared by the kernel's policies.
//!
//! Every miner seeds its sweep from the frequent-item basis; the
//! constraint-pushing pair (BMS++, BMS**) additionally restricts it to
//! `GOOD₁` and splits that into the witness class `L1⁺` and the rest
//! `L1⁻` (preprocessing step I of §3.1).

use std::collections::HashSet;

use ccs_constraints::{AttributeTable, ConstraintAnalysis};
use ccs_itemset::{Item, Itemset, TransactionDb};

use crate::params::MiningParams;
use crate::query::CorrelationQuery;

/// The frequent-item basis: the `O(i) ≥ s` filter of the pseudo-code,
/// with `s = min_item_support` (0 ⇒ all items participate).
pub(crate) fn frequent_items(db: &TransactionDb, params: &MiningParams) -> Vec<Item> {
    let threshold = params.item_support_abs(db.len());
    let supports = db.item_supports();
    (0..db.n_items())
        .map(Item::new)
        .filter(|i| supports[i.index()] as u64 >= threshold)
        .collect()
}

/// `GOOD₁` — the frequent items whose singletons pass every anti-monotone
/// constraint (this subsumes the succinct universes: an item outside
/// `σ_{A≤c}(Item)` fails `max(S.A) ≤ c` as a singleton).
pub(crate) fn good1_items(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
) -> Vec<Item> {
    frequent_items(db, &query.params)
        .into_iter()
        .filter(|&i| {
            query
                .constraints
                .anti_monotone_satisfied(&Itemset::singleton(i), attrs)
        })
        .collect()
}

/// Splits `GOOD₁` into the witness class `L1⁺` and the rest `L1⁻`.
pub(crate) fn witness_split(
    good1: &[Item],
    analysis: &ConstraintAnalysis,
) -> (Vec<Item>, Vec<Item>) {
    let l1_plus: Vec<Item> = good1
        .iter()
        .copied()
        .filter(|&i| analysis.item_witnesses(i))
        .collect();
    let l1_minus = good1
        .iter()
        .copied()
        .filter(|&i| !analysis.item_witnesses(i))
        .collect();
    (l1_plus, l1_minus)
}

/// `GOOD₁`, its witness split, and the witness membership set — the full
/// preprocessing step I bundle BMS++ and BMS** both start from.
pub(crate) struct Preprocessed {
    pub(crate) good1: Vec<Item>,
    pub(crate) l1_plus: Vec<Item>,
    pub(crate) l1_minus: Vec<Item>,
    pub(crate) witness_set: HashSet<Item>,
}

pub(crate) fn preprocess(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    analysis: &ConstraintAnalysis,
) -> Preprocessed {
    let good1 = good1_items(db, attrs, query);
    let (l1_plus, l1_minus) = witness_split(&good1, analysis);
    let witness_set = l1_plus.iter().copied().collect();
    Preprocessed {
        good1,
        l1_plus,
        l1_minus,
        witness_set,
    }
}
