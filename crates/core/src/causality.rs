//! Constrained causal discovery — the paper's §6 "how can constraints
//! help in mining causations?" made concrete.
//!
//! Implements the two local causal-inference rules of Silverstein, Brin,
//! Motwani & Ullman ("Scalable Techniques for Mining Causal Structures",
//! VLDB 1998), which the paper cites as the natural next step beyond
//! correlations:
//!
//! * **CCU rule** — for a triple where `A–B` and `A–C` are correlated
//!   but `B–C` is *not*: under the no-hidden-variables assumption `A`
//!   cannot cause both `B` and `C` (that would correlate them through
//!   `A`), so the only consistent structure is the collider
//!   `B → A ← C`: two fully *directed* causal edges.
//! * **CCC rule** — for a pairwise-correlated triple where additionally
//!   `A ⊥ C | B` (conditional independence given `B`, tested on the
//!   two `B`-slices of the triple's contingency table): `B` mediates
//!   between `A` and `C` (`A–B–C` is a chain or fork through `B`; the
//!   direct `A–C` edge is spurious). Orientation stays unknown.
//!
//! Constraints enter exactly as in the miners: the anti-monotone ones
//! prune the item universe and the candidate triples before any
//! counting, and only *valid* triples are examined — user focus, pushed
//! into causal discovery.

use crate::guard::wall_now;
use std::fmt;

use ccs_constraints::AttributeTable;
use ccs_itemset::{Item, Itemset, MintermCounter, TransactionDb};

use crate::engine::Engine;
use crate::metrics::MiningMetrics;
use crate::query::{CorrelationQuery, MiningError};

/// A causal conclusion about a valid triple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CausalFinding {
    /// CCU: `cause_1 → effect ← cause_2`, with `cause_1 ⊥ cause_2`.
    Collider {
        /// First (independent) cause.
        cause_1: Item,
        /// Second (independent) cause.
        cause_2: Item,
        /// The common effect.
        effect: Item,
    },
    /// CCC + conditional independence: `mediator` sits between `a` and
    /// `c`; the `a–c` correlation is explained away.
    Mediator {
        /// One endpoint.
        a: Item,
        /// The mediating item.
        mediator: Item,
        /// The other endpoint.
        c: Item,
    },
}

impl fmt::Display for CausalFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CausalFinding::Collider {
                cause_1,
                cause_2,
                effect,
            } => {
                write!(f, "{cause_1} -> {effect} <- {cause_2}")
            }
            CausalFinding::Mediator { a, mediator, c } => {
                write!(f, "{a} - {mediator} - {c} (mediated)")
            }
        }
    }
}

/// The outcome of a constrained causal-discovery run.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalAnalysis {
    /// Correlated, CT-supported item pairs over the pruned universe.
    pub correlated_pairs: Vec<Itemset>,
    /// Causal findings, sorted for determinism.
    pub findings: Vec<CausalFinding>,
    /// Work accounting.
    pub metrics: MiningMetrics,
}

/// Runs constrained causal discovery.
///
/// The query's statistical parameters drive the correlation,
/// CT-support, and conditional-independence tests; its constraints
/// restrict the universe (anti-monotone, as singletons) and the
/// examined triples (full validity).
///
/// Cost: one contingency table per surviving pair, plus one per
/// candidate triple — quadratic/cubic in the pruned universe, which is
/// precisely why pushing constraints matters here too.
///
/// # Errors
///
/// Returns [`MiningError`] on invalid constraints or a neither-monotone
/// constraint.
pub fn discover_causality<C: MintermCounter>(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    counter: &mut C,
) -> Result<CausalAnalysis, MiningError> {
    query.validate(attrs)?;
    if query.constraints.has_neither_monotone() {
        return Err(MiningError::NonMonotoneConstraint);
    }
    let start = wall_now();
    let mut metrics = MiningMetrics::default();
    let base_stats = counter.stats();
    let analysis = query.constraints.analyze(attrs);
    let mut engine = Engine::new(counter, &query.params);

    // Universe pruning, exactly as in BMS++ preprocessing.
    let item_threshold = query.params.item_support_abs(db.len());
    let supports = db.item_supports();
    let universe: Vec<Item> = (0..db.n_items())
        .map(Item::new)
        .filter(|&i| {
            supports[i.index()] as u64 >= item_threshold
                && query
                    .constraints
                    .anti_monotone_satisfied(&Itemset::singleton(i), attrs)
        })
        .collect();

    // Pairwise screen: which pairs are correlated (and CT-supported)?
    let n = universe.len();
    let mut correlated = vec![false; n * n];
    let mut correlated_pairs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let pair = Itemset::from_items([universe[i], universe[j]]);
            metrics.candidates_generated += 1;
            if !analysis.am_residual_satisfied(&pair, attrs) {
                metrics.pruned_before_count += 1;
                continue;
            }
            let v = engine.evaluate(&pair);
            if v.ct_supported && v.correlated {
                correlated[i * n + j] = true;
                correlated[j * n + i] = true;
                correlated_pairs.push(pair);
            }
        }
    }

    // Conditional-independence critical value: two pooled 2×2 slices ⇒
    // df = 2. Validated and precomputed at `MeasureContext` construction
    // (this used to call `chi2_quantile` directly, which panics on an
    // out-of-range confidence); under a non-χ² measure the CI test stays
    // χ²-based at the context's standard fallback confidence.
    let ci_crit = engine.measure_context().ci_critical_value();

    let mut findings = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            for c in (b + 1)..n {
                let (ab, ac, bc) = (
                    correlated[a * n + b],
                    correlated[a * n + c],
                    correlated[b * n + c],
                );
                let n_corr = usize::from(ab) + usize::from(ac) + usize::from(bc);
                if n_corr < 2 {
                    continue;
                }
                let triple = Itemset::from_items([universe[a], universe[b], universe[c]]);
                // The user's focus: only valid triples are examined.
                if !query.constraints.satisfied(&triple, attrs) {
                    metrics.pruned_before_count += 1;
                    continue;
                }
                if n_corr == 2 {
                    // CCU: the endpoint shared by the two correlated
                    // pairs is the effect.
                    let (effect, cause_1, cause_2) = if !bc {
                        (a, b, c)
                    } else if !ac {
                        (b, a, c)
                    } else {
                        (c, a, b)
                    };
                    findings.push(CausalFinding::Collider {
                        cause_1: universe[cause_1.min(cause_2)],
                        cause_2: universe[cause_1.max(cause_2)],
                        effect: universe[effect],
                    });
                    continue;
                }
                // CCC: all three correlated — try each item as mediator.
                metrics.candidates_generated += 1;
                metrics.max_level_reached = metrics.max_level_reached.max(3);
                let counts = engine.minterm_counts(&triple);
                // Positions of a, b, c within the sorted triple; the
                // triple was built from exactly these three items.
                #[allow(clippy::expect_used)]
                let pos = |item: Item| {
                    triple
                        .items()
                        .iter()
                        .position(|&x| x == item)
                        .expect("member of triple")
                };
                for (x, m, z) in [(a, b, c), (b, a, c), (a, c, b)] {
                    let chi2 = conditional_chi2(
                        &counts,
                        pos(universe[x]),
                        pos(universe[m]),
                        pos(universe[z]),
                    );
                    if chi2 < ci_crit {
                        findings.push(CausalFinding::Mediator {
                            a: universe[x.min(z)],
                            mediator: universe[m],
                            c: universe[x.max(z)],
                        });
                    }
                }
            }
        }
    }

    findings.sort_by_key(|f| format!("{f}"));
    findings.dedup();
    correlated_pairs.sort_unstable();

    let end = engine.counting_stats();
    metrics.absorb_counting(end.since(&base_stats));
    metrics.sig_size = findings.len() as u64;
    metrics.elapsed = start.elapsed();
    Ok(CausalAnalysis {
        correlated_pairs,
        findings,
        metrics,
    })
}

/// Pooled chi-squared of the `x`–`z` dependence within both slices of
/// the mediator `m`, from a triple's 8 minterm counts. `x_bit`, `m_bit`,
/// `z_bit` are the items' bit positions in the cell index.
fn conditional_chi2(counts: &[u64], x_bit: usize, m_bit: usize, z_bit: usize) -> f64 {
    let mut total = 0.0;
    for m_val in [0usize, 1] {
        // 2×2 table of (x, z) within this m-slice.
        let mut cell = [[0f64; 2]; 2];
        for (idx, &count) in counts.iter().enumerate() {
            if (idx >> m_bit) & 1 != m_val {
                continue;
            }
            let xv = (idx >> x_bit) & 1;
            let zv = (idx >> z_bit) & 1;
            cell[xv][zv] += count as f64;
        }
        let slice_n: f64 = cell.iter().flatten().sum();
        if slice_n == 0.0 {
            continue;
        }
        let px = (cell[1][0] + cell[1][1]) / slice_n;
        let pz = (cell[0][1] + cell[1][1]) / slice_n;
        for (xv, row) in cell.iter().enumerate() {
            for (zv, &observed) in row.iter().enumerate() {
                let e = slice_n
                    * (if xv == 1 { px } else { 1.0 - px })
                    * (if zv == 1 { pz } else { 1.0 - pz });
                if e > 0.0 {
                    let d = observed - e;
                    total += d * d / e;
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MiningParams;
    use ccs_constraints::{Constraint, ConstraintSet};
    use ccs_itemset::HorizontalCounter;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn params() -> MiningParams {
        MiningParams {
            confidence: 0.95,
            support_fraction: 0.05,
            ct_fraction: 0.25,
            min_item_support: 0.0,
            max_level: 4,
            ..MiningParams::paper()
        }
    }

    /// Collider data: B and C independent coins, A ≈ B OR C.
    fn collider_db(n: usize, seed: u64) -> TransactionDb {
        let mut rng = StdRng::seed_from_u64(seed);
        let txns: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let b = rng.gen_bool(0.4);
                let c = rng.gen_bool(0.4);
                let a = (b || c) && rng.gen_bool(0.9);
                let mut t = Vec::new();
                if a {
                    t.push(0);
                }
                if b {
                    t.push(1);
                }
                if c {
                    t.push(2);
                }
                t
            })
            .collect();
        TransactionDb::from_ids(3, txns)
    }

    /// Chain data: A coin, B ≈ A, C ≈ B — so A ⊥ C | B.
    fn chain_db(n: usize, seed: u64) -> TransactionDb {
        let mut rng = StdRng::seed_from_u64(seed);
        let txns: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let a = rng.gen_bool(0.5);
                let b = if a {
                    rng.gen_bool(0.85)
                } else {
                    rng.gen_bool(0.15)
                };
                let c = if b {
                    rng.gen_bool(0.85)
                } else {
                    rng.gen_bool(0.15)
                };
                let mut t = Vec::new();
                if a {
                    t.push(0);
                }
                if b {
                    t.push(1);
                }
                if c {
                    t.push(2);
                }
                t
            })
            .collect();
        TransactionDb::from_ids(3, txns)
    }

    #[test]
    fn ccu_rule_finds_the_collider() {
        let db = collider_db(4000, 7);
        let attrs = AttributeTable::with_identity_prices(3);
        let q = CorrelationQuery {
            params: params(),
            constraints: ConstraintSet::new(),
        };
        let mut c = HorizontalCounter::new(&db);
        let out = discover_causality(&db, &attrs, &q, &mut c).unwrap();
        assert!(
            out.findings.contains(&CausalFinding::Collider {
                cause_1: Item(1),
                cause_2: Item(2),
                effect: Item(0),
            }),
            "collider not found: {:?}",
            out.findings
        );
    }

    #[test]
    fn ccc_rule_finds_the_mediator() {
        let db = chain_db(6000, 9);
        let attrs = AttributeTable::with_identity_prices(3);
        let q = CorrelationQuery {
            params: params(),
            constraints: ConstraintSet::new(),
        };
        let mut c = HorizontalCounter::new(&db);
        let out = discover_causality(&db, &attrs, &q, &mut c).unwrap();
        // All three pairs correlate (A–C through B), but B explains the
        // A–C dependence away.
        assert!(
            out.findings.contains(&CausalFinding::Mediator {
                a: Item(0),
                mediator: Item(1),
                c: Item(2),
            }),
            "mediator not found: {:?}",
            out.findings
        );
        // And neither endpoint is reported as a mediator.
        assert!(!out.findings.iter().any(
            |f| matches!(f, CausalFinding::Mediator { mediator, .. } if *mediator != Item(1))
        ));
    }

    #[test]
    fn constraints_prune_causal_search() {
        // The same collider, but a constraint excluding item 2 means the
        // triple is never examined.
        let db = collider_db(4000, 7);
        let attrs = AttributeTable::with_identity_prices(3); // prices 1,2,3
        let q = CorrelationQuery {
            params: params(),
            constraints: ConstraintSet::new().and(Constraint::max_le("price", 2.0)),
        };
        let mut c = HorizontalCounter::new(&db);
        let out = discover_causality(&db, &attrs, &q, &mut c).unwrap();
        assert!(out.findings.is_empty(), "findings: {:?}", out.findings);
        // And the pruning happened before counting: only the {0,1} pair
        // was ever counted.
        assert_eq!(out.metrics.tables_built, 1);
    }

    #[test]
    fn avg_constraints_are_rejected() {
        let db = collider_db(200, 1);
        let attrs = AttributeTable::with_identity_prices(3);
        let q = CorrelationQuery {
            params: params(),
            constraints: ConstraintSet::new().and(Constraint::Avg {
                attr: "price".into(),
                cmp: ccs_constraints::Cmp::Le,
                value: 2.0,
            }),
        };
        let mut c = HorizontalCounter::new(&db);
        assert!(matches!(
            discover_causality(&db, &attrs, &q, &mut c),
            Err(MiningError::NonMonotoneConstraint)
        ));
    }

    #[test]
    fn ci_cutoff_survives_thresholds_invalid_as_confidences() {
        // A bond threshold of 1.0 is valid for the measure but out of
        // range for `chi2_quantile`; before the `MeasureContext` fix the
        // df = 2 call at the CI test site would have panicked on it.
        let db = chain_db(2000, 3);
        let attrs = AttributeTable::with_identity_prices(3);
        let q = CorrelationQuery {
            params: MiningParams {
                measure: ccs_stats::Measure::Bond,
                confidence: 1.0,
                ..params()
            },
            constraints: ConstraintSet::new(),
        };
        let mut c = HorizontalCounter::new(&db);
        let out = discover_causality(&db, &attrs, &q, &mut c).unwrap();
        // Nothing co-occurs perfectly in noisy chain data; the point is
        // the run completes rather than panicking in the quantile.
        assert!(out.findings.is_empty(), "findings: {:?}", out.findings);
    }

    #[test]
    fn conditional_chi2_detects_dependence_within_slices() {
        // x = z always, regardless of m: strongly dependent given m.
        // Cells: index bits (0: x, 1: m, 2: z).
        let mut counts = vec![0u64; 8];
        counts[0b000] = 100; // x=0,m=0,z=0
        counts[0b101] = 100; // x=1,m=0,z=1
        counts[0b010] = 100; // x=0,m=1,z=0
        counts[0b111] = 100; // x=1,m=1,z=1
        assert!(conditional_chi2(&counts, 0, 1, 2) > 100.0);
        // x and z independent in both slices: chi2 ≈ 0.
        let uniform = vec![50u64; 8];
        assert!(conditional_chi2(&uniform, 0, 1, 2) < 1e-9);
    }
}
