//! Shared candidate evaluation machinery for the level-wise miners.
//!
//! Two batching layers live here:
//!
//! * [`Engine::evaluate_level`] hands a whole level of candidates to the
//!   counting layer at once ([`MintermCounter::minterm_counts_batch`]),
//!   so a horizontal strategy pays one scan per *level* rather than per
//!   *candidate*, the vertical strategy can share prefix intersections
//!   across candidates, and the parallel-vertical strategy can fan the
//!   level's prefix-equivalence classes out over its worker pool.
//! * A verdict memo-cache keyed by [`Itemset`]: once a set has been
//!   judged, any later evaluation — typically a BMS*/BMS** border sweep
//!   revisiting sets the BMS phase already classified — is answered from
//!   the cache without rebuilding the contingency table. Hits are
//!   reported via [`CountingStats::cache_hits`].

use std::collections::{HashMap, HashSet};

use ccs_itemset::{CountingStats, Itemset, MintermCounter};
use ccs_stats::{ContingencyTable, MeasureContext};

use crate::guard::{RunGuard, TruncationReason};
use crate::params::MiningParams;

/// The verdict on one candidate set after building its contingency table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Verdict {
    /// CT-support test outcome.
    pub ct_supported: bool,
    /// Correlation test outcome under the run's measure.
    pub correlated: bool,
    /// The raw measure statistic (the chi-squared statistic under the
    /// paper's measure).
    pub statistic: f64,
}

/// Wraps a counting strategy with the query's statistical tests and the
/// precomputed measure criterion.
///
/// The counter is held as a trait object so one concrete `Engine` type
/// serves every strategy — which in turn lets the levelwise kernel and
/// the policy trait stay non-generic.
pub(crate) struct Engine<'a> {
    counter: &'a mut dyn MintermCounter,
    /// Absolute cell-support threshold.
    pub s_abs: u64,
    /// CT-support cell fraction.
    pub p: f64,
    /// The run's validated measure criterion. For χ² the critical value
    /// is the df = 1 quantile at *every* level, following Brin et al.
    /// (and §2.1 of the paper: "a degree of freedom, which is always 1
    /// for boolean variables") — the fixed cutoff that makes being
    /// correlated upward closed; see the fidelity notes in DESIGN.md.
    ctx: MeasureContext,
    /// Memoised verdicts: a set is counted at most once per engine.
    cache: HashMap<Itemset, Verdict>,
    /// Evaluations answered from `cache` without building a table.
    cache_hits: u64,
    /// The run's resource governor, consulted at level boundaries and
    /// passed into the counting layer as its interruption probe.
    guard: RunGuard,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(counter: &'a mut dyn MintermCounter, params: &MiningParams) -> Self {
        Self::with_guard(counter, params, RunGuard::unlimited())
    }

    pub(crate) fn with_guard(
        counter: &'a mut dyn MintermCounter,
        params: &MiningParams,
        guard: RunGuard,
    ) -> Self {
        let n = counter.n_transactions();
        let ctx = match params.measure_context() {
            Ok(ctx) => ctx,
            // Every mining entry point validates params first, which
            // performs this same construction; re-surfacing the message
            // keeps the engine usable on its own.
            Err(e) => panic!("confidence: {e}"),
        };
        Engine {
            counter,
            s_abs: params.support_abs(n),
            p: params.ct_fraction,
            ctx,
            cache: HashMap::new(),
            cache_hits: 0,
            guard,
        }
    }

    /// The guard governing this engine's run.
    pub(crate) fn guard(&self) -> &RunGuard {
        &self.guard
    }

    /// The run's validated measure criterion.
    pub(crate) fn measure_context(&self) -> &MeasureContext {
        &self.ctx
    }

    /// Applies both tests to an already-built contingency table.
    fn judge(&mut self, table: &ContingencyTable) -> Verdict {
        let ct_supported = table.is_ct_supported(self.s_abs, self.p);
        let statistic = self.ctx.statistic(table);
        let correlated = statistic >= self.ctx.critical_value();
        Verdict {
            ct_supported,
            correlated,
            statistic,
        }
    }

    /// Evaluates one candidate: answers from the memo-cache if the set
    /// was judged before, otherwise builds its contingency table (one
    /// accounted table) and caches the verdict. Absorb
    /// [`Engine::counting_stats`] into the run's metrics once at the end.
    pub(crate) fn evaluate(&mut self, set: &Itemset) -> Verdict {
        debug_assert!(set.len() >= 2, "tests are degenerate below pairs");
        if let Some(&v) = self.cache.get(set) {
            self.cache_hits += 1;
            return v;
        }
        let table = ContingencyTable::build(&mut *self.counter, set);
        let v = self.judge(&table);
        self.cache.insert(set.clone(), v);
        v
    }

    /// Evaluates a whole level of candidates in one counting batch.
    ///
    /// Sets with cached verdicts (and in-batch duplicates) are answered
    /// from the memo-cache; the rest go to the counting layer as a single
    /// guarded [`MintermCounter::minterm_counts_batch_guarded`] call, so
    /// horizontal strategies pay one scan per level and the vertical
    /// strategy shares prefix work across candidates. Verdicts come back
    /// in input order.
    ///
    /// This is also a guard checkpoint — one at entry (the level
    /// boundary) and, via the probe, inside the counting loops. On a
    /// trip, the batch's partial counts are discarded (its completed work
    /// is still in the statistics) and the truncation reason is returned;
    /// the caller abandons the level and reports a truncated result. With
    /// an unarmed guard this never fails.
    pub(crate) fn evaluate_level(
        &mut self,
        sets: &[Itemset],
    ) -> Result<Vec<Verdict>, TruncationReason> {
        self.guard.checkpoint()?;
        let mut fresh: Vec<Itemset> = Vec::new();
        let mut queued: HashSet<&Itemset> = HashSet::new();
        for set in sets {
            debug_assert!(set.len() >= 2, "tests are degenerate below pairs");
            if self.cache.contains_key(set) || !queued.insert(set) {
                self.cache_hits += 1;
            } else {
                fresh.push(set.clone());
            }
        }
        if !fresh.is_empty() {
            let batch = self
                .counter
                .minterm_counts_batch_guarded(&fresh, &self.guard);
            let counts = match batch {
                Ok(counts) => counts,
                // A counter only abandons a batch when the probe asks it
                // to. Re-running the checkpoint classifies the cause —
                // including a cancellation flag that was raised but not
                // yet converted into a trip; the fallback covers
                // misbehaving counters that interrupt unprompted.
                Err(_) => {
                    return Err(match self.guard.checkpoint() {
                        Err(reason) => reason,
                        Ok(()) => TruncationReason::WorkBudget,
                    })
                }
            };
            for (set, cells) in fresh.into_iter().zip(counts) {
                let table = ContingencyTable::from_counts(set.clone(), cells);
                let v = self.judge(&table);
                self.cache.insert(set, v);
            }
        }
        Ok(sets.iter().map(|s| self.cache[s]).collect())
    }

    /// Raw minterm counts for `set` (one accounted table), for callers
    /// that need the cells themselves (conditional-independence tests).
    pub(crate) fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64> {
        self.counter.minterm_counts(set)
    }

    /// Final counting statistics — the counting layer's numbers plus this
    /// engine's cache hits — to be absorbed into metrics once at the end
    /// of a run.
    pub(crate) fn counting_stats(&self) -> CountingStats {
        let mut stats = self.counter.stats();
        // ccs-lint: allow(counting-stats-merge-via-addassign, reason = "folds the engine's own hit counter into one field; not a stats-to-stats merge")
        stats.cache_hits += self.cache_hits;
        stats
    }
}
