//! Shared per-candidate evaluation machinery for the level-wise miners.

use ccs_itemset::{Itemset, MintermCounter};
use ccs_stats::{chi2_quantile, ContingencyTable};

use crate::params::MiningParams;

/// The verdict on one candidate set after building its contingency table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Verdict {
    /// CT-support test outcome.
    pub ct_supported: bool,
    /// Correlation (chi-squared) test outcome.
    pub correlated: bool,
    /// The raw chi-squared statistic.
    pub chi2: f64,
}

/// Wraps a counting strategy with the query's statistical tests and the
/// (cached) chi-squared critical value.
pub(crate) struct Engine<'a, C: MintermCounter> {
    counter: &'a mut C,
    /// Absolute cell-support threshold.
    pub s_abs: u64,
    /// CT-support cell fraction.
    pub p: f64,
    confidence: f64,
    crit: Option<f64>,
}

impl<'a, C: MintermCounter> Engine<'a, C> {
    pub(crate) fn new(counter: &'a mut C, params: &MiningParams) -> Self {
        let n = counter.n_transactions();
        Engine {
            counter,
            s_abs: params.support_abs(n),
            p: params.ct_fraction,
            confidence: params.confidence,
            crit: None,
        }
    }

    /// The chi-squared critical value of the correlation test.
    ///
    /// Following Brin et al. (and §2.1 of the paper: "a degree of
    /// freedom, which is always 1 for boolean variables"), the cutoff is
    /// the df = 1 quantile at *every* level. This fixed cutoff is what
    /// makes being correlated *monotone* — the statistic never decreases
    /// when an item is added, so a superset compared against the same
    /// cutoff stays correlated. A level-dependent cutoff (e.g. the
    /// full-independence df = 2^k − k − 1) would break the upward
    /// closure the whole algorithm family builds on; see the fidelity
    /// notes in DESIGN.md.
    pub(crate) fn critical_value(&mut self) -> f64 {
        *self.crit.get_or_insert_with(|| chi2_quantile(self.confidence, 1))
    }

    /// Builds the contingency table for `set` and applies both tests.
    /// The table is accounted by the counting layer; absorb
    /// [`Engine::counting_stats`] into the run's metrics once at the end.
    pub(crate) fn evaluate(&mut self, set: &Itemset) -> Verdict {
        debug_assert!(set.len() >= 2, "tests are degenerate below pairs");
        let table = ContingencyTable::build(self.counter, set);
        let ct_supported = table.is_ct_supported(self.s_abs, self.p);
        let chi2 = table.chi_squared();
        let correlated = chi2 >= self.critical_value();
        Verdict { ct_supported, correlated, chi2 }
    }

    /// Raw minterm counts for `set` (one accounted table), for callers
    /// that need the cells themselves (conditional-independence tests).
    pub(crate) fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64> {
        self.counter.minterm_counts(set)
    }

    /// Final counting statistics, to be absorbed into metrics once at the
    /// end of a run.
    pub(crate) fn counting_stats(&self) -> ccs_itemset::CountingStats {
        self.counter.stats()
    }
}
