//! Crash-safe persistence for governed mining runs.
//!
//! PR 2/PR 5 gave every guarded run an exact in-memory [`ResumeState`]
//! at each level boundary; this module makes those snapshots **durable**.
//! A checkpoint file carries everything a fresh process needs to continue
//! an interrupted sweep: the resume snapshot itself, the original query
//! (parameters + constraint AST), a fingerprint of the database the run
//! was mining, the metrics accumulated so far, and the answers already
//! known at the stamp.
//!
//! ## File format (version 2)
//!
//! All integers are little-endian; `f64` is stored as its IEEE-754 bit
//! pattern, so parameters round-trip exactly. Version 2 prepends a
//! one-byte correlation-measure tag to the QUERY section; version 1
//! files (written before the measure layer existed) are still read, and
//! decode as the paper's χ² measure.
//!
//! | offset | bytes | field |
//! |--------|-------|-------|
//! | 0      | 8     | magic `"CCSCKPT\n"` |
//! | 8      | 2     | file format version ([`CHECKPOINT_FILE_VERSION`]) |
//! | 10     | 2     | resume format generation ([`RESUME_FORMAT`]) |
//! | 12     | 4     | section count |
//! | 16     | …     | sections |
//! | end−4  | 4     | CRC32 of every preceding byte |
//!
//! Each section is self-describing — `u16` tag, `u16` reserved, `u64`
//! payload length, payload, `u32` CRC32 of the payload — so a reader can
//! skip tags it does not know (within a format generation) and corruption
//! is localized to a section. The trailing whole-file CRC32 makes every
//! torn prefix detectable: truncating the file at *any* byte boundary
//! fails the load with [`CheckpointError::Corrupt`], never a panic and
//! never a silently wrong resume.
//!
//! ## Atomicity
//!
//! [`FileSink`] commits a snapshot by writing to a sibling temporary
//! file, `fsync`ing it, and atomically renaming it over the destination
//! (then syncing the directory). A crash at any point leaves either the
//! previous complete snapshot or the new complete snapshot on disk —
//! never a torn hybrid. The fault-injection suite (`tests/durability.rs`)
//! drives short writes, `ENOSPC`, fsync failures, and kill-after-K-bytes
//! truncation through the [`CheckpointSink`] seam to prove it.
//!
//! ## Corruption handling
//!
//! Loading validates, in order: the magic header, the file and resume
//! format tags, the whole-file checksum, each section checksum, and
//! finally the payload grammar. Every failure maps to a typed
//! [`CheckpointError`]; a corrupt or version-skewed checkpoint is a
//! recoverable condition ("restart from scratch with a warning"), not a
//! panic.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ccs_constraints::{AggFn, Cmp, Constraint, ConstraintSet};
use ccs_itemset::{Itemset, TransactionDb};
use ccs_stats::Measure;
use thiserror::Error;

use crate::guard::{BmsSnapshot, Completion};
use crate::guard::{ResumeInner, ResumeState, TruncationReason, RESUME_FORMAT};
use crate::metrics::MiningMetrics;
use crate::miner::Algorithm;
use crate::params::MiningParams;
use crate::query::{CorrelationQuery, MiningResult};

/// The eight magic bytes every checkpoint file starts with.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"CCSCKPT\n";

/// The on-disk container version this build writes. Bumped only when
/// the header/section layout itself changes; snapshot *content*
/// evolution is tracked by [`RESUME_FORMAT`]. Version 2 added the
/// correlation-measure tag to the QUERY section.
pub const CHECKPOINT_FILE_VERSION: u16 = 2;

/// The oldest container version this build still reads. Version 1
/// predates the measure layer; its queries decode as χ².
pub const CHECKPOINT_MIN_FILE_VERSION: u16 = 1;

const TAG_META: u16 = 1;
const TAG_QUERY: u16 = 2;
const TAG_DBFP: u16 = 3;
const TAG_METRICS: u16 = 4;
const TAG_ANSWERS: u16 = 5;
const TAG_RESUME: u16 = 6;

/// Why a checkpoint could not be written or read back.
///
/// Deliberately *not* `Clone`/`PartialEq` (it carries an
/// [`std::io::Error`]); match on the variant instead.
#[derive(Debug, Error)]
pub enum CheckpointError {
    /// The bytes are not a complete, checksum-valid checkpoint: garbled
    /// magic, a torn prefix, a failed CRC, or an ill-formed section
    /// payload. The message pinpoints the first violation.
    #[error("corrupt checkpoint: {0}")]
    Corrupt(String),
    /// The checkpoint was stamped by a different format generation
    /// (container or resume format); its content cannot be interpreted
    /// safely, so the run must be restarted instead of resumed.
    #[error("checkpoint format {found} is not the {expected} this build reads; restart the run instead of resuming")]
    FormatMismatch {
        /// The tag found in the file.
        found: u16,
        /// The tag this build stamps and accepts.
        expected: u16,
    },
    /// The checkpoint was taken against a different database (size or
    /// content fingerprint differs); resuming would silently mine the
    /// wrong data.
    #[error("checkpoint does not match this database: {field} is {actual} here but was {stored} at stamp time; resume against the original database")]
    DbMismatch {
        /// Which fingerprint component disagreed.
        field: &'static str,
        /// The value recorded in the checkpoint.
        stored: u64,
        /// The value computed from the present database.
        actual: u64,
    },
    /// The underlying I/O failed (write, fsync, rename, or read).
    #[error("checkpoint I/O failed while {context}: {source}")]
    Io {
        /// What the sink was doing when the operation failed.
        context: String,
        /// The operating-system error.
        #[source]
        source: io::Error,
    },
}

impl CheckpointError {
    fn corrupt(msg: impl Into<String>) -> CheckpointError {
        CheckpointError::Corrupt(msg.into())
    }

    fn io(context: impl Into<String>, source: io::Error) -> CheckpointError {
        CheckpointError::Io {
            context: context.into(),
            source,
        }
    }
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320)
// ---------------------------------------------------------------------

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        // ccs-lint: allow(no-panic-in-io-paths, reason = "const-evaluated table build; i < 256 by the loop bound")
        table[i] = c;
        i += 1;
    }
    table
};

/// The CRC32 checksum (IEEE) used for both the per-section and the
/// whole-file integrity checks.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        // ccs-lint: allow(no-panic-in-io-paths, reason = "index is masked to 0xFF and the table has 256 entries")
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Database fingerprint
// ---------------------------------------------------------------------

/// A cheap identity check for "is this the database the checkpoint was
/// stamped against": the shape (transaction count, item-universe size)
/// plus an FNV-1a hash of the full transaction content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbFingerprint {
    /// Number of transactions.
    pub n_transactions: u64,
    /// Size of the item universe.
    pub n_items: u32,
    /// FNV-1a 64-bit hash over every transaction's item ids, in order.
    pub content_hash: u64,
}

/// Computes the [`DbFingerprint`] of `db`. One full pass over the
/// transactions; called once per save and once per load.
pub fn fingerprint_db(db: &TransactionDb) -> DbFingerprint {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |b: u8| h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
    for txn in db.transactions() {
        for item in txn {
            for b in item.id().to_le_bytes() {
                eat(b);
            }
        }
        eat(0xFF); // transaction separator
    }
    DbFingerprint {
        n_transactions: db.len() as u64,
        n_items: db.n_items(),
        content_hash: h,
    }
}

// ---------------------------------------------------------------------
// Checkpoint value
// ---------------------------------------------------------------------

/// Where the run stood when the checkpoint was stamped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointStatus {
    /// A mid-run stamp at a level boundary: the run was still going, and
    /// `level` is the one about to be evaluated. The embedded metrics
    /// cover the work up to that boundary (counting-layer totals are
    /// folded in at run end, so mid-run stamps may under-report them),
    /// and the answer section is empty — answers are recomputed exactly
    /// on resume.
    InProgress {
        /// The lattice level the interrupted sweep would evaluate next.
        level: usize,
    },
    /// The final stamp of a truncated run: the guard tripped, the run
    /// sealed a sound partial answer set, and this checkpoint is its
    /// durable continuation.
    Tripped {
        /// Why the run stopped.
        reason: TruncationReason,
        /// The deepest fully-completed lattice level.
        frontier_level: usize,
        /// Contingency tables built before stopping.
        sets_evaluated: u64,
    },
}

/// One durable snapshot of a governed mining run: everything a fresh
/// process needs to validate, report on, and continue the interrupted
/// sweep. Serialize with [`Checkpoint::to_bytes`]; parse and validate
/// with [`Checkpoint::from_bytes`].
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The *original* (pre-normalization) query, so a resumed run passes
    /// through exactly the same admission and analysis pipeline.
    pub query: CorrelationQuery,
    /// Fingerprint of the database the run was mining.
    pub fingerprint: DbFingerprint,
    /// Metrics accumulated up to the stamp.
    pub metrics: MiningMetrics,
    /// Answers known at the stamp: empty for mid-run stamps (they are
    /// recomputed exactly on resume), the sealed sound partial answer
    /// set for trip stamps.
    pub answers: Vec<Itemset>,
    /// Where the run stood.
    pub status: CheckpointStatus,
    /// The snapshot to re-enter the sweep from.
    pub resume: ResumeState,
}

impl Checkpoint {
    /// The algorithm that was running (pinned by the resume snapshot).
    pub fn algorithm(&self) -> Algorithm {
        self.resume.algorithm()
    }

    /// Serializes the checkpoint. Deterministic: the same checkpoint
    /// always produces identical bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_FILE_VERSION.to_le_bytes());
        out.extend_from_slice(&self.resume.format().to_le_bytes());
        out.extend_from_slice(&6u32.to_le_bytes());
        push_section(&mut out, TAG_META, &encode_meta(self));
        push_section(&mut out, TAG_QUERY, &encode_query(&self.query));
        push_section(&mut out, TAG_DBFP, &encode_fingerprint(&self.fingerprint));
        push_section(&mut out, TAG_METRICS, &encode_metrics(&self.metrics));
        push_section(&mut out, TAG_ANSWERS, &encode_itemsets(&self.answers));
        push_section(&mut out, TAG_RESUME, &encode_resume(&self.resume.inner));
        let file_crc = crc32(&out);
        out.extend_from_slice(&file_crc.to_le_bytes());
        out
    }

    /// Parses and validates a checkpoint.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] on a garbled magic header, torn
    /// prefix, checksum failure, or ill-formed payload;
    /// [`CheckpointError::FormatMismatch`] when the file or resume
    /// format tag belongs to a different build generation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        if bytes.len() < CHECKPOINT_MAGIC.len() {
            return Err(CheckpointError::corrupt(format!(
                "{} bytes is shorter than the magic header",
                bytes.len()
            )));
        }
        if !bytes.starts_with(&CHECKPOINT_MAGIC) {
            return Err(CheckpointError::corrupt("bad magic header"));
        }
        if bytes.len() < 16 {
            return Err(CheckpointError::corrupt("truncated header"));
        }
        // ccs-lint: allow(no-panic-in-io-paths, reason = "len >= 16 checked above; fault-injection tests cover truncation")
        let file_version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if !(CHECKPOINT_MIN_FILE_VERSION..=CHECKPOINT_FILE_VERSION).contains(&file_version) {
            return Err(CheckpointError::FormatMismatch {
                found: file_version,
                expected: CHECKPOINT_FILE_VERSION,
            });
        }
        // ccs-lint: allow(no-panic-in-io-paths, reason = "len >= 16 checked above; fault-injection tests cover truncation")
        let resume_format = u16::from_le_bytes([bytes[10], bytes[11]]);
        if resume_format != RESUME_FORMAT {
            return Err(CheckpointError::FormatMismatch {
                found: resume_format,
                expected: RESUME_FORMAT,
            });
        }
        // Whole-file checksum: catches every torn prefix and any byte
        // flip anywhere, before section parsing trusts a single length.
        if bytes.len() < 20 {
            return Err(CheckpointError::corrupt("truncated before trailer"));
        }
        // ccs-lint: allow(no-panic-in-io-paths, reason = "len >= 20 checked above; the trailer is present")
        let body = &bytes[..bytes.len() - 4];
        let stored = read_u32_at(bytes, bytes.len() - 4);
        let actual = crc32(body);
        if stored != actual {
            return Err(CheckpointError::corrupt(format!(
                "file checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
            )));
        }
        let n_sections = read_u32_at(bytes, 12) as usize;
        // ccs-lint: allow(no-panic-in-io-paths, reason = "len >= 20 checked above, so body holds the 16-byte header")
        let mut dec = Dec::new(&body[16..]);
        let mut meta = None;
        let mut query = None;
        let mut fingerprint = None;
        let mut metrics = None;
        let mut answers = None;
        let mut resume = None;
        for _ in 0..n_sections {
            let tag = dec.u16()?;
            let _reserved = dec.u16()?;
            let len = dec.len_prefixed()?;
            let payload = dec.bytes(len)?;
            let section_crc = dec.u32()?;
            let computed = crc32(payload);
            if section_crc != computed {
                return Err(CheckpointError::corrupt(format!(
                    "section {tag} checksum mismatch"
                )));
            }
            let mut p = Dec::new(payload);
            match tag {
                TAG_META => set_once(&mut meta, decode_meta(&mut p)?, "META")?,
                TAG_QUERY => set_once(&mut query, decode_query(&mut p, file_version)?, "QUERY")?,
                TAG_DBFP => set_once(&mut fingerprint, decode_fingerprint(&mut p)?, "DBFP")?,
                TAG_METRICS => set_once(&mut metrics, decode_metrics(&mut p)?, "METRICS")?,
                TAG_ANSWERS => set_once(&mut answers, decode_itemsets(&mut p)?, "ANSWERS")?,
                TAG_RESUME => set_once(&mut resume, decode_resume(&mut p)?, "RESUME")?,
                // Unknown sections from a same-generation writer with
                // extra data: checksum-verified above, then skipped.
                _ => continue,
            }
            p.finish(tag)?;
        }
        if !dec.is_empty() {
            return Err(CheckpointError::corrupt(
                "trailing bytes after the last section",
            ));
        }
        let (algorithm, status) = section(meta, "META")?;
        let inner = section(resume, "RESUME")?;
        Ok(Checkpoint {
            query: section(query, "QUERY")?,
            fingerprint: section(fingerprint, "DBFP")?,
            metrics: section(metrics, "METRICS")?,
            answers: section(answers, "ANSWERS")?,
            status,
            resume: ResumeState {
                format: resume_format,
                algorithm,
                inner,
            },
        })
    }

    /// Checks that `db` is the database this checkpoint was stamped
    /// against.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::DbMismatch`] naming the first fingerprint
    /// component that disagrees.
    pub fn verify_db(&self, db: &TransactionDb) -> Result<(), CheckpointError> {
        let actual = fingerprint_db(db);
        let stored = self.fingerprint;
        if stored.n_transactions != actual.n_transactions {
            return Err(CheckpointError::DbMismatch {
                field: "transaction count",
                stored: stored.n_transactions,
                actual: actual.n_transactions,
            });
        }
        if stored.n_items != actual.n_items {
            return Err(CheckpointError::DbMismatch {
                field: "item universe size",
                stored: stored.n_items as u64,
                actual: actual.n_items as u64,
            });
        }
        if stored.content_hash != actual.content_hash {
            return Err(CheckpointError::DbMismatch {
                field: "content hash",
                stored: stored.content_hash,
                actual: actual.content_hash,
            });
        }
        Ok(())
    }
}

fn set_once<T>(slot: &mut Option<T>, value: T, name: &str) -> Result<(), CheckpointError> {
    if slot.is_some() {
        return Err(CheckpointError::corrupt(format!(
            "duplicate {name} section"
        )));
    }
    *slot = Some(value);
    Ok(())
}

fn section<T>(slot: Option<T>, name: &str) -> Result<T, CheckpointError> {
    slot.ok_or_else(|| CheckpointError::corrupt(format!("missing {name} section")))
}

fn read_u32_at(bytes: &[u8], at: usize) -> u32 {
    // ccs-lint: allow(no-panic-in-io-paths, reason = "both callers sit behind from_bytes's header length checks")
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

fn push_section(out: &mut Vec<u8>, tag: u16, payload: &[u8]) {
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

// ---------------------------------------------------------------------
// Payload encoding / decoding
// ---------------------------------------------------------------------

/// Bounded little-endian reader over one payload; every primitive is
/// range-checked, so an ill-formed payload is a typed `Corrupt` error,
/// never a panic or a huge allocation.
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Dec<'a> {
        Dec { bytes, pos: 0 }
    }

    fn is_empty(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn finish(&self, tag: u16) -> Result<(), CheckpointError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CheckpointError::corrupt(format!(
                "section {tag} has trailing bytes"
            )))
        }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| CheckpointError::corrupt("payload overruns its section"))?;
        // ccs-lint: allow(no-panic-in-io-paths, reason = "end is checked_add-validated against len on the lines above")
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// A fixed-size prefix of the remaining payload, as an array. The
    /// `try_into` can only fail if `bytes(N)` returned the wrong length,
    /// which it never does — but failing as `Corrupt` keeps this path
    /// panic-free without trusting that argument.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], CheckpointError> {
        self.bytes(N)?
            .try_into()
            .map_err(|_| CheckpointError::corrupt("internal length mismatch"))
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(u8::from_le_bytes(self.array()?))
    }

    fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize(&mut self) -> Result<usize, CheckpointError> {
        usize::try_from(self.u64()?)
            .map_err(|_| CheckpointError::corrupt("value exceeds this platform's usize"))
    }

    /// A `u64` length that must still fit in the remaining bytes (each
    /// counted element is at least one byte), bounding allocations.
    fn len_prefixed(&mut self) -> Result<usize, CheckpointError> {
        let len = self.usize()?;
        if len > self.bytes.len() - self.pos {
            return Err(CheckpointError::corrupt(
                "length prefix exceeds the remaining payload",
            ));
        }
        Ok(len)
    }

    fn string(&mut self) -> Result<String, CheckpointError> {
        let len = self.u32()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| CheckpointError::corrupt("string is not valid UTF-8"))
    }

    fn u32_set(&mut self) -> Result<std::collections::BTreeSet<u32>, CheckpointError> {
        let n = self.u32()? as usize;
        let mut set = std::collections::BTreeSet::new();
        for _ in 0..n {
            set.insert(self.u32()?);
        }
        Ok(set)
    }

    fn itemset(&mut self) -> Result<Itemset, CheckpointError> {
        let n = self.u32()? as usize;
        if n * 4 > self.bytes.len() - self.pos {
            return Err(CheckpointError::corrupt("itemset overruns its section"));
        }
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(self.u32()?);
        }
        Ok(Itemset::from_ids(ids))
    }

    fn itemsets(&mut self) -> Result<Vec<Itemset>, CheckpointError> {
        let n = self.len_prefixed()?;
        let mut sets = Vec::with_capacity(n);
        for _ in 0..n {
            sets.push(self.itemset()?);
        }
        Ok(sets)
    }

    fn levels(&mut self) -> Result<Vec<(usize, Vec<Itemset>)>, CheckpointError> {
        let n = self.len_prefixed()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let k = self.usize()?;
            out.push((k, self.itemsets()?));
        }
        Ok(out)
    }
}

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn u32_set(&mut self, set: &std::collections::BTreeSet<u32>) {
        self.u32(set.len() as u32);
        for &v in set {
            self.u32(v);
        }
    }

    fn itemset(&mut self, set: &Itemset) {
        self.u32(set.len() as u32);
        for item in set.iter() {
            self.u32(item.id());
        }
    }

    fn itemsets(&mut self, sets: &[Itemset]) {
        self.usize(sets.len());
        for s in sets {
            self.itemset(s);
        }
    }

    fn levels(&mut self, levels: &[(usize, Vec<Itemset>)]) {
        self.usize(levels.len());
        for (k, sets) in levels {
            self.usize(*k);
            self.itemsets(sets);
        }
    }
}

fn algorithm_code(a: Algorithm) -> u8 {
    match a {
        Algorithm::BmsPlus => 0,
        Algorithm::BmsPlusPlus => 1,
        Algorithm::BmsStar => 2,
        Algorithm::BmsStarStar => 3,
        Algorithm::Naive => 4,
        Algorithm::NaiveMinValid => 5,
    }
}

fn code_algorithm(code: u8) -> Result<Algorithm, CheckpointError> {
    Ok(match code {
        0 => Algorithm::BmsPlus,
        1 => Algorithm::BmsPlusPlus,
        2 => Algorithm::BmsStar,
        3 => Algorithm::BmsStarStar,
        4 => Algorithm::Naive,
        5 => Algorithm::NaiveMinValid,
        other => {
            return Err(CheckpointError::corrupt(format!(
                "unknown algorithm code {other}"
            )))
        }
    })
}

fn reason_code(reason: TruncationReason) -> u8 {
    match reason {
        TruncationReason::Deadline => 1,
        TruncationReason::WorkBudget => 2,
        TruncationReason::MemoryBudget => 3,
        TruncationReason::Cancelled => 4,
    }
}

fn code_reason(code: u8) -> Result<TruncationReason, CheckpointError> {
    Ok(match code {
        1 => TruncationReason::Deadline,
        2 => TruncationReason::WorkBudget,
        3 => TruncationReason::MemoryBudget,
        4 => TruncationReason::Cancelled,
        other => {
            return Err(CheckpointError::corrupt(format!(
                "unknown truncation reason code {other}"
            )))
        }
    })
}

fn encode_meta(ckpt: &Checkpoint) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(algorithm_code(ckpt.algorithm()));
    match ckpt.status {
        CheckpointStatus::InProgress { level } => {
            e.u8(0);
            e.usize(level);
        }
        CheckpointStatus::Tripped {
            reason,
            frontier_level,
            sets_evaluated,
        } => {
            e.u8(1);
            e.u8(reason_code(reason));
            e.usize(frontier_level);
            e.u64(sets_evaluated);
        }
    }
    e.buf
}

fn decode_meta(d: &mut Dec<'_>) -> Result<(Algorithm, CheckpointStatus), CheckpointError> {
    let algorithm = code_algorithm(d.u8()?)?;
    let status = match d.u8()? {
        0 => CheckpointStatus::InProgress { level: d.usize()? },
        1 => CheckpointStatus::Tripped {
            reason: code_reason(d.u8()?)?,
            frontier_level: d.usize()?,
            sets_evaluated: d.u64()?,
        },
        other => {
            return Err(CheckpointError::corrupt(format!(
                "unknown checkpoint status code {other}"
            )))
        }
    };
    Ok((algorithm, status))
}

fn encode_query(query: &CorrelationQuery) -> Vec<u8> {
    let mut e = Enc::new();
    let p = &query.params;
    e.u8(p.measure.tag());
    e.f64(p.confidence);
    e.f64(p.support_fraction);
    e.f64(p.ct_fraction);
    e.f64(p.min_item_support);
    e.usize(p.max_level);
    let constraints = query.constraints.constraints();
    e.u32(constraints.len() as u32);
    for c in constraints {
        encode_constraint(&mut e, c);
    }
    e.buf
}

fn decode_query(d: &mut Dec<'_>, file_version: u16) -> Result<CorrelationQuery, CheckpointError> {
    // Version 1 predates the measure layer: every v1 run was χ².
    let measure = if file_version >= 2 {
        let tag = d.u8()?;
        Measure::from_tag(tag)
            .ok_or_else(|| CheckpointError::corrupt(format!("unknown measure tag {tag}")))?
    } else {
        Measure::Chi2
    };
    let params = MiningParams {
        measure,
        confidence: d.f64()?,
        support_fraction: d.f64()?,
        ct_fraction: d.f64()?,
        min_item_support: d.f64()?,
        max_level: d.usize()?,
    };
    let n = d.u32()? as usize;
    let mut constraints = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        constraints.push(decode_constraint(d)?);
    }
    Ok(CorrelationQuery {
        params,
        constraints: ConstraintSet::from_vec(constraints),
    })
}

fn agg_code(agg: AggFn) -> u8 {
    match agg {
        AggFn::Min => 0,
        AggFn::Max => 1,
        AggFn::Sum => 2,
        AggFn::Count => 3,
    }
}

fn code_agg(code: u8) -> Result<AggFn, CheckpointError> {
    Ok(match code {
        0 => AggFn::Min,
        1 => AggFn::Max,
        2 => AggFn::Sum,
        3 => AggFn::Count,
        other => {
            return Err(CheckpointError::corrupt(format!(
                "unknown aggregate code {other}"
            )))
        }
    })
}

fn cmp_code(cmp: Cmp) -> u8 {
    match cmp {
        Cmp::Le => 0,
        Cmp::Ge => 1,
    }
}

fn code_cmp(code: u8) -> Result<Cmp, CheckpointError> {
    Ok(match code {
        0 => Cmp::Le,
        1 => Cmp::Ge,
        other => {
            return Err(CheckpointError::corrupt(format!(
                "unknown comparison code {other}"
            )))
        }
    })
}

fn encode_constraint(e: &mut Enc, c: &Constraint) {
    match c {
        Constraint::Agg {
            agg,
            attr,
            cmp,
            value,
        } => {
            e.u8(0);
            e.u8(agg_code(*agg));
            e.string(attr);
            e.u8(cmp_code(*cmp));
            e.f64(*value);
        }
        Constraint::ConstSubset {
            attr,
            categories,
            negated,
        } => {
            e.u8(1);
            e.string(attr);
            e.u32_set(categories);
            e.u8(*negated as u8);
        }
        Constraint::Disjoint {
            attr,
            categories,
            negated,
        } => {
            e.u8(2);
            e.string(attr);
            e.u32_set(categories);
            e.u8(*negated as u8);
        }
        Constraint::CountDistinct { attr, cmp, value } => {
            e.u8(3);
            e.string(attr);
            e.u8(cmp_code(*cmp));
            e.u64(*value);
        }
        Constraint::Avg { attr, cmp, value } => {
            e.u8(4);
            e.string(attr);
            e.u8(cmp_code(*cmp));
            e.f64(*value);
        }
        Constraint::ItemSubset { items, negated } => {
            e.u8(5);
            e.u32_set(items);
            e.u8(*negated as u8);
        }
        Constraint::ItemDisjoint { items, negated } => {
            e.u8(6);
            e.u32_set(items);
            e.u8(*negated as u8);
        }
    }
}

fn decode_bool(d: &mut Dec<'_>) -> Result<bool, CheckpointError> {
    match d.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(CheckpointError::corrupt(format!(
            "invalid boolean byte {other}"
        ))),
    }
}

fn decode_constraint(d: &mut Dec<'_>) -> Result<Constraint, CheckpointError> {
    Ok(match d.u8()? {
        0 => Constraint::Agg {
            agg: code_agg(d.u8()?)?,
            attr: d.string()?,
            cmp: code_cmp(d.u8()?)?,
            value: d.f64()?,
        },
        1 => Constraint::ConstSubset {
            attr: d.string()?,
            categories: d.u32_set()?,
            negated: decode_bool(d)?,
        },
        2 => Constraint::Disjoint {
            attr: d.string()?,
            categories: d.u32_set()?,
            negated: decode_bool(d)?,
        },
        3 => Constraint::CountDistinct {
            attr: d.string()?,
            cmp: code_cmp(d.u8()?)?,
            value: d.u64()?,
        },
        4 => Constraint::Avg {
            attr: d.string()?,
            cmp: code_cmp(d.u8()?)?,
            value: d.f64()?,
        },
        5 => Constraint::ItemSubset {
            items: d.u32_set()?,
            negated: decode_bool(d)?,
        },
        6 => Constraint::ItemDisjoint {
            items: d.u32_set()?,
            negated: decode_bool(d)?,
        },
        other => {
            return Err(CheckpointError::corrupt(format!(
                "unknown constraint code {other}"
            )))
        }
    })
}

fn encode_fingerprint(fp: &DbFingerprint) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(fp.n_transactions);
    e.u32(fp.n_items);
    e.u64(fp.content_hash);
    e.buf
}

fn decode_fingerprint(d: &mut Dec<'_>) -> Result<DbFingerprint, CheckpointError> {
    Ok(DbFingerprint {
        n_transactions: d.u64()?,
        n_items: d.u32()?,
        content_hash: d.u64()?,
    })
}

fn encode_metrics(m: &MiningMetrics) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(m.candidates_generated);
    e.u64(m.tables_built);
    e.u64(m.pruned_before_count);
    e.u64(m.db_scans);
    e.u64(m.transactions_visited);
    e.u64(m.cells_counted);
    e.u64(m.cache_hits);
    e.u64(m.degraded_batches);
    e.usize(m.max_level_reached);
    e.u64(m.sig_size);
    e.u64(m.notsig_size);
    e.u64(m.elapsed.as_secs());
    e.u32(m.elapsed.subsec_nanos());
    e.buf
}

fn decode_metrics(d: &mut Dec<'_>) -> Result<MiningMetrics, CheckpointError> {
    Ok(MiningMetrics {
        candidates_generated: d.u64()?,
        tables_built: d.u64()?,
        pruned_before_count: d.u64()?,
        db_scans: d.u64()?,
        transactions_visited: d.u64()?,
        cells_counted: d.u64()?,
        cache_hits: d.u64()?,
        degraded_batches: d.u64()?,
        max_level_reached: d.usize()?,
        sig_size: d.u64()?,
        notsig_size: d.u64()?,
        elapsed: std::time::Duration::new(d.u64()?, {
            let nanos = d.u32()?;
            if nanos >= 1_000_000_000 {
                return Err(CheckpointError::corrupt("elapsed nanoseconds out of range"));
            }
            nanos
        }),
    })
}

fn encode_itemsets(sets: &[Itemset]) -> Vec<u8> {
    let mut e = Enc::new();
    e.itemsets(sets);
    e.buf
}

fn decode_itemsets(d: &mut Dec<'_>) -> Result<Vec<Itemset>, CheckpointError> {
    d.itemsets()
}

fn encode_bms_snapshot(e: &mut Enc, s: &BmsSnapshot) {
    e.usize(s.level);
    e.itemsets(&s.cands);
    e.itemsets(&s.sig);
    e.itemsets(&s.notsig);
}

fn decode_bms_snapshot(d: &mut Dec<'_>) -> Result<BmsSnapshot, CheckpointError> {
    Ok(BmsSnapshot {
        level: d.usize()?,
        cands: d.itemsets()?,
        sig: d.itemsets()?,
        notsig: d.itemsets()?,
    })
}

fn encode_resume(inner: &ResumeInner) -> Vec<u8> {
    let mut e = Enc::new();
    match inner {
        ResumeInner::Bms(s) => {
            e.u8(0);
            encode_bms_snapshot(&mut e, s);
        }
        ResumeInner::PlusPlus {
            level,
            cands,
            sig_candidates,
        } => {
            e.u8(1);
            e.usize(*level);
            e.itemsets(cands);
            e.itemsets(sig_candidates);
        }
        ResumeInner::StarPhase1(s) => {
            e.u8(2);
            encode_bms_snapshot(&mut e, s);
        }
        ResumeInner::StarPhase2 {
            k,
            sig,
            frontier,
            seen,
        } => {
            e.u8(3);
            e.usize(*k);
            e.itemsets(sig);
            e.levels(frontier);
            e.itemsets(seen);
        }
        ResumeInner::StarStarPhase1 { level, cands, supp } => {
            e.u8(4);
            e.usize(*level);
            e.itemsets(cands);
            e.levels(supp);
        }
        ResumeInner::StarStarPhase2 {
            k,
            current,
            sig,
            supp,
        } => {
            e.u8(5);
            e.usize(*k);
            e.itemsets(current);
            e.itemsets(sig);
            e.levels(supp);
        }
        ResumeInner::NaiveRestart => e.u8(6),
    }
    e.buf
}

fn decode_resume(d: &mut Dec<'_>) -> Result<ResumeInner, CheckpointError> {
    Ok(match d.u8()? {
        0 => ResumeInner::Bms(decode_bms_snapshot(d)?),
        1 => ResumeInner::PlusPlus {
            level: d.usize()?,
            cands: d.itemsets()?,
            sig_candidates: d.itemsets()?,
        },
        2 => ResumeInner::StarPhase1(decode_bms_snapshot(d)?),
        3 => ResumeInner::StarPhase2 {
            k: d.usize()?,
            sig: d.itemsets()?,
            frontier: d.levels()?,
            seen: d.itemsets()?,
        },
        4 => ResumeInner::StarStarPhase1 {
            level: d.usize()?,
            cands: d.itemsets()?,
            supp: d.levels()?,
        },
        5 => ResumeInner::StarStarPhase2 {
            k: d.usize()?,
            current: d.itemsets()?,
            sig: d.itemsets()?,
            supp: d.levels()?,
        },
        6 => ResumeInner::NaiveRestart,
        other => {
            return Err(CheckpointError::corrupt(format!(
                "unknown resume snapshot code {other}"
            )))
        }
    })
}

// ---------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------

/// Where committed checkpoint bytes go. The seam the fault-injection
/// suite plugs into: production uses [`FileSink`]; tests wrap it (or
/// replace it) with sinks that inject short writes, `ENOSPC`, fsync
/// failures, and torn-write truncation.
///
/// A `commit` must be **atomic**: after it returns (success *or*
/// failure), a subsequent [`CheckpointSink::load`] observes either the
/// previous complete snapshot or the new complete snapshot, never a torn
/// hybrid.
pub trait CheckpointSink: Send {
    /// Durably replaces the current snapshot with `bytes`.
    ///
    /// # Errors
    ///
    /// Any I/O failure; the previous snapshot must survive it.
    fn commit(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Reads back the current snapshot, or `None` if nothing has been
    /// committed yet.
    ///
    /// # Errors
    ///
    /// Any I/O failure other than the snapshot not existing.
    fn load(&mut self) -> io::Result<Option<Vec<u8>>>;
}

/// The production sink: write-to-temp + fsync + atomic rename (+
/// directory sync), so the destination path always holds a complete
/// snapshot.
#[derive(Debug, Clone)]
pub struct FileSink {
    path: PathBuf,
}

impl FileSink {
    /// A sink committing to `path` (conventionally `*.ccs`); the sibling
    /// temporary file is `path` + `.tmp`.
    pub fn new(path: impl Into<PathBuf>) -> FileSink {
        FileSink { path: path.into() }
    }

    /// The destination path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn tmp_path(&self) -> PathBuf {
        let mut os = self.path.as_os_str().to_os_string();
        os.push(".tmp");
        PathBuf::from(os)
    }
}

impl CheckpointSink for FileSink {
    fn commit(&mut self, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.tmp_path();
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        // Make the rename itself durable. Failure to sync the directory
        // is not a torn state (the rename was atomic), so best-effort.
        #[cfg(unix)]
        if let Some(dir) = self.path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    fn load(&mut self) -> io::Result<Option<Vec<u8>>> {
        match fs::read(&self.path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// An in-memory sink for tests and embedders: `commit` replaces the
/// stored snapshot wholesale (atomic by construction).
#[derive(Debug, Default)]
pub struct MemorySink {
    snapshot: Option<Vec<u8>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// The current snapshot, if one has been committed.
    pub fn snapshot(&self) -> Option<&[u8]> {
        self.snapshot.as_deref()
    }
}

impl CheckpointSink for MemorySink {
    fn commit(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.snapshot = Some(bytes.to_vec());
        Ok(())
    }

    fn load(&mut self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.snapshot.clone())
    }
}

/// Saves `ckpt` through a sink, mapping sink failures to
/// [`CheckpointError::Io`].
///
/// # Errors
///
/// [`CheckpointError::Io`] when the sink's commit fails.
pub fn save_checkpoint(
    sink: &mut dyn CheckpointSink,
    ckpt: &Checkpoint,
) -> Result<(), CheckpointError> {
    sink.commit(&ckpt.to_bytes())
        .map_err(|e| CheckpointError::io("committing the snapshot", e))
}

/// Loads and validates the sink's current snapshot; `Ok(None)` when the
/// sink holds nothing yet.
///
/// # Errors
///
/// [`CheckpointError::Io`] on read failure, plus every
/// [`Checkpoint::from_bytes`] validation error.
pub fn load_checkpoint(
    sink: &mut dyn CheckpointSink,
) -> Result<Option<Checkpoint>, CheckpointError> {
    match sink
        .load()
        .map_err(|e| CheckpointError::io("reading the snapshot", e))?
    {
        None => Ok(None),
        Some(bytes) => Checkpoint::from_bytes(&bytes).map(Some),
    }
}

/// Reads and validates the checkpoint file at `path`.
///
/// # Errors
///
/// [`CheckpointError::Io`] when the file cannot be read (including when
/// it does not exist), plus every [`Checkpoint::from_bytes`] validation
/// error.
pub fn read_checkpoint_file(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
    let path = path.as_ref();
    let bytes = fs::read(path)
        .map_err(|e| CheckpointError::io(format!("reading {}", path.display()), e))?;
    Checkpoint::from_bytes(&bytes)
}

/// Atomically writes `ckpt` to `path` via a [`FileSink`].
///
/// # Errors
///
/// [`CheckpointError::Io`] when the write, fsync, or rename fails.
pub fn write_checkpoint_file(
    path: impl AsRef<Path>,
    ckpt: &Checkpoint,
) -> Result<(), CheckpointError> {
    save_checkpoint(&mut FileSink::new(path.as_ref()), ckpt)
}

// ---------------------------------------------------------------------
// Checkpoint policy and recorder
// ---------------------------------------------------------------------

/// When a governed run stamps durable checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointCadence {
    /// At every level boundary where the kernel takes a resume snapshot.
    EveryLevel,
    /// At every `n`-th level boundary (1 behaves like
    /// [`CheckpointCadence::EveryLevel`]; 0 is treated as 1).
    EveryLevels(usize),
    /// Only the final stamp of a truncated run (cheapest; a hard crash
    /// before the trip leaves no checkpoint).
    OnTrip,
}

impl CheckpointCadence {
    fn stamps_level(self, stamp_index: u64) -> bool {
        match self {
            CheckpointCadence::EveryLevel => true,
            CheckpointCadence::EveryLevels(n) => stamp_index.is_multiple_of(n.max(1) as u64),
            CheckpointCadence::OnTrip => false,
        }
    }
}

/// Durability configuration for a [`crate::MineRequest`]: where
/// checkpoints go and how often they are stamped. Whatever the cadence,
/// a guard trip always stamps a final checkpoint — the durable
/// continuation behind `ccs resume`.
#[derive(Clone)]
pub struct CheckpointPolicy {
    cadence: CheckpointCadence,
    sink: Arc<Mutex<Box<dyn CheckpointSink>>>,
}

impl CheckpointPolicy {
    /// A policy committing through `sink` at `cadence`.
    pub fn new(sink: Box<dyn CheckpointSink>, cadence: CheckpointCadence) -> CheckpointPolicy {
        CheckpointPolicy {
            cadence,
            sink: Arc::new(Mutex::new(sink)),
        }
    }

    /// A policy committing atomically to the file at `path`.
    pub fn file(path: impl Into<PathBuf>, cadence: CheckpointCadence) -> CheckpointPolicy {
        CheckpointPolicy::new(Box::new(FileSink::new(path)), cadence)
    }

    /// The stamping cadence.
    pub fn cadence(&self) -> CheckpointCadence {
        self.cadence
    }

    /// Builds the per-run recorder the session threads through the guard.
    pub(crate) fn recorder(
        &self,
        query: CorrelationQuery,
        fingerprint: DbFingerprint,
    ) -> Arc<CheckpointRecorder> {
        Arc::new(CheckpointRecorder {
            cadence: self.cadence,
            sink: Arc::clone(&self.sink),
            query,
            fingerprint,
            stamps_seen: AtomicU64::new(0),
            written: AtomicU64::new(0),
            first_error: Mutex::new(None),
        })
    }
}

impl fmt::Debug for CheckpointPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointPolicy")
            .field("cadence", &self.cadence)
            .finish_non_exhaustive()
    }
}

/// What a run's durability layer did: how many snapshots were committed
/// and the first write error, if any. Checkpoint writes are best-effort —
/// a failing sink degrades durability, never the mining result — so the
/// error is reported here instead of aborting the run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckpointReport {
    /// Snapshots committed successfully.
    pub written: u64,
    /// The first commit failure, rendered; later stamps are still
    /// attempted (a transient `ENOSPC` may clear).
    pub error: Option<String>,
}

/// The per-run stamping state: pre-baked run-constant sections (query,
/// fingerprint), the sink, and the cadence counter. Carried by the
/// [`crate::RunGuard`] so the kernel can stamp at exactly the points it
/// takes resume snapshots, without widening any miner signature.
pub(crate) struct CheckpointRecorder {
    cadence: CheckpointCadence,
    sink: Arc<Mutex<Box<dyn CheckpointSink>>>,
    query: CorrelationQuery,
    fingerprint: DbFingerprint,
    stamps_seen: AtomicU64,
    written: AtomicU64,
    first_error: Mutex<Option<String>>,
}

impl CheckpointRecorder {
    /// A mid-run stamp at a level boundary, gated by the cadence.
    pub(crate) fn stamp_level(&self, state: ResumeState, level: usize, metrics: &MiningMetrics) {
        let index = self.stamps_seen.fetch_add(1, Ordering::Relaxed);
        if !self.cadence.stamps_level(index) {
            return;
        }
        self.write(Checkpoint {
            query: self.query.clone(),
            fingerprint: self.fingerprint,
            metrics: metrics.clone(),
            answers: Vec::new(),
            status: CheckpointStatus::InProgress { level },
            resume: state,
        });
    }

    /// The final stamp of a truncated run — written under every cadence,
    /// so exit code 2 always leaves a durable continuation. A no-op for
    /// complete runs (their checkpoint file, if any, goes stale but
    /// still resumes to the same final answer).
    pub(crate) fn stamp_trip(&self, result: &MiningResult) {
        let (
            Completion::Truncated {
                reason,
                frontier_level,
                sets_evaluated,
            },
            Some(resume),
        ) = (result.completion, &result.resume)
        else {
            return;
        };
        self.write(Checkpoint {
            query: self.query.clone(),
            fingerprint: self.fingerprint,
            metrics: result.metrics.clone(),
            answers: result.answers.clone(),
            status: CheckpointStatus::Tripped {
                reason,
                frontier_level,
                sets_evaluated,
            },
            resume: resume.clone(),
        });
    }

    fn write(&self, ckpt: Checkpoint) {
        let bytes = ckpt.to_bytes();
        let committed = match self.sink.lock() {
            Ok(mut sink) => sink.commit(&bytes),
            Err(_) => Err(io::Error::other("checkpoint sink mutex poisoned")),
        };
        match committed {
            Ok(()) => {
                self.written.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                if let Ok(mut slot) = self.first_error.lock() {
                    slot.get_or_insert_with(|| e.to_string());
                }
            }
        }
    }

    /// The run's durability summary.
    pub(crate) fn report(&self) -> CheckpointReport {
        CheckpointReport {
            written: self.written.load(Ordering::Relaxed),
            error: self.first_error.lock().ok().and_then(|slot| slot.clone()),
        }
    }
}

impl fmt::Debug for CheckpointRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointRecorder")
            .field("cadence", &self.cadence)
            .field("written", &self.written.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::GuardLimits;
    use crate::RunGuard;

    fn sample_state() -> ResumeState {
        ResumeState {
            format: RESUME_FORMAT,
            algorithm: Algorithm::BmsStarStar,
            inner: ResumeInner::StarStarPhase2 {
                k: 3,
                current: vec![Itemset::from_ids([0, 1, 2])],
                sig: vec![Itemset::from_ids([4, 5])],
                supp: vec![(
                    2,
                    vec![Itemset::from_ids([0, 1]), Itemset::from_ids([1, 2])],
                )],
            },
        }
    }

    fn sample_checkpoint() -> Checkpoint {
        let query = CorrelationQuery {
            params: MiningParams {
                measure: Measure::Chi2,
                confidence: 0.9,
                support_fraction: 0.1,
                ct_fraction: 0.25,
                min_item_support: 0.0,
                max_level: 4,
            },
            constraints: ConstraintSet::new()
                .and(Constraint::max_le("price", 7.0))
                .and(Constraint::sum_ge("price", 3.0))
                .and(Constraint::ItemSubset {
                    items: [1, 3].into_iter().collect(),
                    negated: true,
                }),
        };
        Checkpoint {
            query,
            fingerprint: DbFingerprint {
                n_transactions: 160,
                n_items: 8,
                content_hash: 0xDEAD_BEEF_CAFE_F00D,
            },
            metrics: MiningMetrics {
                candidates_generated: 42,
                tables_built: 17,
                max_level_reached: 3,
                elapsed: std::time::Duration::new(1, 234_567_890),
                ..MiningMetrics::default()
            },
            answers: vec![Itemset::from_ids([0, 1]), Itemset::from_ids([2, 4, 5])],
            status: CheckpointStatus::Tripped {
                reason: TruncationReason::WorkBudget,
                frontier_level: 2,
                sets_evaluated: 17,
            },
            resume: sample_state(),
        }
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let ckpt = sample_checkpoint();
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.algorithm(), Algorithm::BmsStarStar);
    }

    #[test]
    fn serialization_is_byte_stable() {
        let ckpt = sample_checkpoint();
        assert_eq!(ckpt.to_bytes(), ckpt.to_bytes());
    }

    #[test]
    fn every_resume_variant_round_trips() {
        let bms = BmsSnapshot {
            level: 2,
            cands: vec![Itemset::from_ids([0, 1])],
            sig: vec![],
            notsig: vec![Itemset::from_ids([3])],
        };
        let variants = [
            (ResumeInner::Bms(bms.clone()), Algorithm::BmsPlus),
            (
                ResumeInner::PlusPlus {
                    level: 3,
                    cands: vec![Itemset::from_ids([0, 1, 2])],
                    sig_candidates: vec![Itemset::from_ids([4, 5])],
                },
                Algorithm::BmsPlusPlus,
            ),
            (ResumeInner::StarPhase1(bms), Algorithm::BmsStar),
            (
                ResumeInner::StarPhase2 {
                    k: 3,
                    sig: vec![Itemset::from_ids([0, 1])],
                    frontier: vec![(3, vec![Itemset::from_ids([0, 1, 2])])],
                    seen: vec![Itemset::from_ids([0, 1])],
                },
                Algorithm::BmsStar,
            ),
            (
                ResumeInner::StarStarPhase1 {
                    level: 2,
                    cands: vec![],
                    supp: vec![(2, vec![Itemset::from_ids([6, 7])])],
                },
                Algorithm::BmsStarStar,
            ),
            (ResumeInner::NaiveRestart, Algorithm::Naive),
        ];
        for (inner, algorithm) in variants {
            let mut ckpt = sample_checkpoint();
            ckpt.resume = ResumeState {
                format: RESUME_FORMAT,
                algorithm,
                inner,
            };
            let back = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
            assert_eq!(back.resume, ckpt.resume);
        }
    }

    #[test]
    fn every_torn_prefix_is_rejected_cleanly() {
        let bytes = sample_checkpoint().to_bytes();
        for cut in 0..bytes.len() {
            match Checkpoint::from_bytes(&bytes[..cut]) {
                Err(CheckpointError::Corrupt(_)) => {}
                other => panic!("prefix of {cut} bytes: expected Corrupt, got {other:?}"),
            }
        }
        assert!(Checkpoint::from_bytes(&bytes).is_ok());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample_checkpoint().to_bytes();
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x01;
            assert!(
                Checkpoint::from_bytes(&mutated).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    /// Serializes `ckpt` exactly as the version-1 writer did: file
    /// version 1 in the header and no measure tag in the QUERY section.
    fn to_bytes_v1(ckpt: &Checkpoint) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&1u16.to_le_bytes());
        out.extend_from_slice(&ckpt.resume.format().to_le_bytes());
        out.extend_from_slice(&6u32.to_le_bytes());
        let mut q = Enc::new();
        let p = &ckpt.query.params;
        q.f64(p.confidence);
        q.f64(p.support_fraction);
        q.f64(p.ct_fraction);
        q.f64(p.min_item_support);
        q.usize(p.max_level);
        let constraints = ckpt.query.constraints.constraints();
        q.u32(constraints.len() as u32);
        for c in constraints {
            encode_constraint(&mut q, c);
        }
        push_section(&mut out, TAG_META, &encode_meta(ckpt));
        push_section(&mut out, TAG_QUERY, &q.buf);
        push_section(&mut out, TAG_DBFP, &encode_fingerprint(&ckpt.fingerprint));
        push_section(&mut out, TAG_METRICS, &encode_metrics(&ckpt.metrics));
        push_section(&mut out, TAG_ANSWERS, &encode_itemsets(&ckpt.answers));
        push_section(&mut out, TAG_RESUME, &encode_resume(&ckpt.resume.inner));
        let file_crc = crc32(&out);
        out.extend_from_slice(&file_crc.to_le_bytes());
        out
    }

    #[test]
    fn version_1_checkpoints_decode_as_chi_squared() {
        let ckpt = sample_checkpoint();
        let v1 = to_bytes_v1(&ckpt);
        let back = Checkpoint::from_bytes(&v1).unwrap();
        assert_eq!(back.query.params.measure, Measure::Chi2);
        assert_eq!(back, ckpt);
    }

    #[test]
    fn measure_round_trips_through_version_2() {
        for measure in Measure::ALL {
            let mut ckpt = sample_checkpoint();
            ckpt.query.params.measure = measure;
            if measure != Measure::Chi2 {
                ckpt.query.params.confidence = 0.6;
            }
            let back = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
            assert_eq!(back.query.params.measure, measure, "{measure}");
            assert_eq!(back, ckpt);
        }
    }

    #[test]
    fn future_file_version_is_format_mismatch() {
        let mut bytes = sample_checkpoint().to_bytes();
        let future = (CHECKPOINT_FILE_VERSION + 1).to_le_bytes();
        bytes[8] = future[0];
        bytes[9] = future[1];
        match Checkpoint::from_bytes(&bytes) {
            Err(CheckpointError::FormatMismatch { found, expected }) => {
                assert_eq!(found, CHECKPOINT_FILE_VERSION + 1);
                assert_eq!(expected, CHECKPOINT_FILE_VERSION);
            }
            other => panic!("expected FormatMismatch, got {other:?}"),
        }
    }

    #[test]
    fn unknown_measure_tag_is_corrupt() {
        let ckpt = sample_checkpoint();
        let bytes = ckpt.to_bytes();
        // The QUERY payload begins with the measure tag; find it by
        // re-encoding the section and locating its payload in the file.
        let payload = encode_query(&ckpt.query);
        let pos = bytes
            .windows(payload.len())
            .position(|w| w == &payload[..])
            .expect("QUERY payload present");
        let mut mutated = bytes.clone();
        mutated[pos] = 250; // no such measure
                            // Fix the section CRC (4 bytes after the payload) and file CRC.
        let section_crc = crc32(&mutated[pos..pos + payload.len()]);
        mutated[pos + payload.len()..pos + payload.len() + 4]
            .copy_from_slice(&section_crc.to_le_bytes());
        let len = mutated.len();
        let file_crc = crc32(&mutated[..len - 4]);
        mutated[len - 4..].copy_from_slice(&file_crc.to_le_bytes());
        match Checkpoint::from_bytes(&mutated) {
            Err(CheckpointError::Corrupt(msg)) => {
                assert!(msg.contains("measure tag"), "{msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn future_resume_format_is_format_mismatch() {
        let mut bytes = sample_checkpoint().to_bytes();
        let future = (RESUME_FORMAT + 1).to_le_bytes();
        bytes[10] = future[0];
        bytes[11] = future[1];
        match Checkpoint::from_bytes(&bytes) {
            Err(CheckpointError::FormatMismatch { found, expected }) => {
                assert_eq!(found, RESUME_FORMAT + 1);
                assert_eq!(expected, RESUME_FORMAT);
            }
            other => panic!("expected FormatMismatch, got {other:?}"),
        }
    }

    #[test]
    fn garbled_magic_is_corrupt() {
        let mut bytes = sample_checkpoint().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn db_fingerprint_verification() {
        let db = TransactionDb::from_ids(4, vec![vec![0, 1], vec![2, 3]]);
        let other = TransactionDb::from_ids(4, vec![vec![0, 1], vec![2]]);
        let mut ckpt = sample_checkpoint();
        ckpt.fingerprint = fingerprint_db(&db);
        assert!(ckpt.verify_db(&db).is_ok());
        assert!(matches!(
            ckpt.verify_db(&other),
            Err(CheckpointError::DbMismatch { .. })
        ));
    }

    #[test]
    fn fingerprint_is_content_sensitive() {
        let a = TransactionDb::from_ids(4, vec![vec![0, 1], vec![2, 3]]);
        let b = TransactionDb::from_ids(4, vec![vec![0, 1], vec![2, 3]]);
        let c = TransactionDb::from_ids(4, vec![vec![0, 1], vec![3, 2]]);
        let d = TransactionDb::from_ids(4, vec![vec![0], vec![1, 2, 3]]);
        assert_eq!(fingerprint_db(&a), fingerprint_db(&b));
        // Transactions are stored sorted, so order within one is identity.
        assert_eq!(fingerprint_db(&a), fingerprint_db(&c));
        assert_ne!(
            fingerprint_db(&a).content_hash,
            fingerprint_db(&d).content_hash
        );
    }

    #[test]
    fn memory_sink_save_load_round_trip() {
        let mut sink = MemorySink::new();
        assert!(load_checkpoint(&mut sink).unwrap().is_none());
        let ckpt = sample_checkpoint();
        save_checkpoint(&mut sink, &ckpt).unwrap();
        assert_eq!(load_checkpoint(&mut sink).unwrap(), Some(ckpt));
    }

    #[test]
    fn file_sink_commits_atomically_and_reloads() {
        let dir = std::env::temp_dir().join(format!("ccs-persist-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ccs");
        let mut sink = FileSink::new(&path);
        assert!(sink.load().unwrap().is_none());
        let ckpt = sample_checkpoint();
        save_checkpoint(&mut sink, &ckpt).unwrap();
        assert!(!sink.tmp_path().exists(), "temp file must be renamed away");
        assert_eq!(read_checkpoint_file(&path).unwrap(), ckpt);
        let mut second = sample_checkpoint();
        second.answers.clear();
        write_checkpoint_file(&path, &second).unwrap();
        assert_eq!(read_checkpoint_file(&path).unwrap(), second);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_checkpoint_file("/nonexistent/dir/run.ccs"),
            Err(CheckpointError::Io { .. })
        ));
    }

    #[test]
    fn cadence_gating() {
        assert!(CheckpointCadence::EveryLevel.stamps_level(0));
        assert!(CheckpointCadence::EveryLevel.stamps_level(7));
        assert!(CheckpointCadence::EveryLevels(3).stamps_level(0));
        assert!(!CheckpointCadence::EveryLevels(3).stamps_level(1));
        assert!(CheckpointCadence::EveryLevels(3).stamps_level(3));
        assert!(
            CheckpointCadence::EveryLevels(0).stamps_level(1),
            "0 behaves like 1"
        );
        assert!(!CheckpointCadence::OnTrip.stamps_level(0));
    }

    #[test]
    fn recorder_gates_by_cadence_and_reports() {
        let policy = CheckpointPolicy::new(
            Box::new(MemorySink::new()),
            CheckpointCadence::EveryLevels(2),
        );
        let ckpt = sample_checkpoint();
        let recorder = policy.recorder(ckpt.query.clone(), ckpt.fingerprint);
        let metrics = MiningMetrics::default();
        recorder.stamp_level(sample_state(), 2, &metrics); // index 0: written
        recorder.stamp_level(sample_state(), 3, &metrics); // index 1: skipped
        recorder.stamp_level(sample_state(), 4, &metrics); // index 2: written
        let report = recorder.report();
        assert_eq!(report.written, 2);
        assert_eq!(report.error, None);
    }

    #[test]
    fn recorder_records_first_sink_error_without_aborting() {
        struct FailingSink;
        impl CheckpointSink for FailingSink {
            fn commit(&mut self, _bytes: &[u8]) -> io::Result<()> {
                Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"))
            }
            fn load(&mut self) -> io::Result<Option<Vec<u8>>> {
                Ok(None)
            }
        }
        let policy = CheckpointPolicy::new(Box::new(FailingSink), CheckpointCadence::EveryLevel);
        let ckpt = sample_checkpoint();
        let recorder = policy.recorder(ckpt.query.clone(), ckpt.fingerprint);
        recorder.stamp_level(sample_state(), 2, &MiningMetrics::default());
        let report = recorder.report();
        assert_eq!(report.written, 0);
        assert!(report.error.unwrap().contains("disk full"));
    }

    #[test]
    fn trip_stamp_writes_under_every_cadence() {
        let result = MiningResult::truncated(
            vec![Itemset::from_ids([0, 1])],
            crate::query::Semantics::ValidMin,
            MiningMetrics::default(),
            TruncationReason::Deadline,
            2,
            sample_state(),
        );
        for cadence in [
            CheckpointCadence::EveryLevel,
            CheckpointCadence::EveryLevels(5),
            CheckpointCadence::OnTrip,
        ] {
            let policy = CheckpointPolicy::new(Box::new(MemorySink::new()), cadence);
            let ckpt = sample_checkpoint();
            let recorder = policy.recorder(ckpt.query.clone(), ckpt.fingerprint);
            recorder.stamp_trip(&result);
            assert_eq!(recorder.report().written, 1, "{cadence:?}");
        }
    }

    #[test]
    fn trip_stamp_ignores_complete_results() {
        let result = MiningResult::new(
            vec![],
            crate::query::Semantics::ValidMin,
            MiningMetrics::default(),
        );
        let policy =
            CheckpointPolicy::new(Box::new(MemorySink::new()), CheckpointCadence::EveryLevel);
        let ckpt = sample_checkpoint();
        let recorder = policy.recorder(ckpt.query.clone(), ckpt.fingerprint);
        recorder.stamp_trip(&result);
        assert_eq!(recorder.report().written, 0);
    }

    #[test]
    fn unknown_sections_are_skipped_when_checksummed() {
        let ckpt = sample_checkpoint();
        let mut bytes = ckpt.to_bytes();
        // Rebuild: bump the section count, append an unknown section
        // before the trailer, re-seal both checksums.
        bytes.truncate(bytes.len() - 4);
        let count = read_u32_at(&bytes, 12) + 1;
        bytes[12..16].copy_from_slice(&count.to_le_bytes());
        push_section(&mut bytes, 0x7FFF, b"future data");
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn guard_carries_recorder_to_clones() {
        let policy =
            CheckpointPolicy::new(Box::new(MemorySink::new()), CheckpointCadence::EveryLevel);
        let ckpt = sample_checkpoint();
        let recorder = policy.recorder(ckpt.query.clone(), ckpt.fingerprint);
        let guard = RunGuard::new(GuardLimits::default()).with_recorder(Arc::clone(&recorder));
        assert!(guard.recorder().is_some());
        assert!(guard.clone().recorder().is_some());
        assert!(RunGuard::unlimited().recorder().is_none());
    }
}
