//! Algorithm BMS** — constraint-pushing miner for `MIN_VALID` answers.
//!
//! Per Figure G of the paper, the work splits into two phases (DESIGN.md
//! §11 maps them onto the kernel's policy hooks):
//!
//! 1. **SUPP enumeration.** A level-wise sweep that applies only the
//!    *anti-monotone* machinery — the `L1⁺`/`L1⁻` preprocessing and
//!    candidate formation of BMS++, the pre-count residual anti-monotone
//!    checks, and the CT-support test — but *no* chi-squared test. Each
//!    level is counted as one batch, and every verdict — including the
//!    chi-squared outcome — lands in the engine's memo-cache.
//!
//! 2. **Upward SIG sweep.** Starting from `SUPP₂`, sets that are
//!    correlated and satisfy the monotone constraints become answers
//!    (after a minimality check against already-found answers); the rest
//!    seed single-item extensions *within SUPP* for the next level. No
//!    contingency table is ever rebuilt — every phase-2 evaluation is a
//!    memo-cache hit, which is exactly why the §3.3 analysis charges
//!    BMS** only `Σᵢ vᵢ` tables.
//!
//! The candidate-generation and minimality amendments of
//! [`crate::bms_star`] apply here too (DESIGN.md "Fidelity notes");
//! unlike BMS++ no extra verification tables are needed, because every
//! minimality violation goes through witness-touching subsets phase 2
//! has already classified.
//!
//! Both phases are kernel policies over one shared engine; after a
//! phase-1 trip, phase 2 re-enters in [`GuardMode::Bypass`] so the
//! cache-only sweep survives the already-tripped guard.

use std::collections::{HashMap, HashSet};

use ccs_constraints::{AttributeTable, ConstraintAnalysis};
use ccs_itemset::{candidate, Item, Itemset, MintermCounter, TransactionDb};
use ccs_stats::MonotonicityClass;

use crate::engine::Verdict;
use crate::guard::{freeze_levels, sorted_sets, thaw_levels, ResumeInner, RunGuard};
use crate::kernel::{
    admit, prune_am_residual, prune_non_minimal, run_levelwise, staged, AlgorithmPolicy, GuardMode,
    KernelConfig, KernelTrip, LevelMark, LevelSeed, MinerScope,
};
use crate::metrics::MiningMetrics;
use crate::miner::Algorithm;
use crate::prep::preprocess;
use crate::query::{CorrelationQuery, MiningError, MiningResult, Semantics};

/// Phase 1 (SUPP enumeration) as a kernel policy: BMS++ candidate
/// formation and pre-count pruning, CT-support-only acceptance.
struct StarStarPhase1Policy<'a> {
    analysis: &'a ConstraintAnalysis,
    attrs: &'a AttributeTable,
    good1: &'a [Item],
    witness_set: &'a HashSet<Item>,
    supp: HashMap<usize, HashSet<Itemset>>,
    cands: Vec<Itemset>,
}

impl AlgorithmPolicy for StarStarPhase1Policy<'_> {
    fn candidates(&mut self, _level: usize) -> LevelSeed {
        staged(&mut self.cands)
    }

    fn snapshot(&self, level: usize, cands: &[Itemset]) -> ResumeInner {
        ResumeInner::StarStarPhase1 {
            level,
            cands: cands.to_vec(),
            supp: freeze_levels(&self.supp),
        }
    }

    fn prefilter(
        &mut self,
        _level: usize,
        cands: Vec<Itemset>,
        metrics: &mut MiningMetrics,
    ) -> Vec<Itemset> {
        prune_am_residual(self.analysis, self.attrs, cands, metrics)
    }

    fn absorb(&mut self, level: usize, survivors: Vec<Itemset>, verdicts: Vec<Verdict>) {
        let mut supp_level: HashSet<Itemset> = HashSet::new();
        for (set, v) in survivors.into_iter().zip(verdicts) {
            if v.ct_supported {
                supp_level.insert(set);
            }
        }
        let witness_set = self.witness_set;
        self.cands = candidate::extend_gen(&supp_level, self.good1, |cand| {
            cand.subsets_dropping_one()
                .all(|s| !s.iter().any(|i| witness_set.contains(&i)) || supp_level.contains(&s))
        });
        self.supp.insert(level, supp_level);
    }
}

/// Phase 2 (upward SIG sweep within SUPP) as a kernel policy: every
/// evaluation is a memo-cache hit; minimality prefilters against
/// already-reported answers; residual monotone constraints gate SIG
/// entry.
struct StarStarPhase2Policy<'a> {
    analysis: &'a ConstraintAnalysis,
    attrs: &'a AttributeTable,
    good1: &'a [Item],
    supp: HashMap<usize, HashSet<Itemset>>,
    sig: Vec<Itemset>,
    current: Vec<Itemset>,
    /// The measure's closure direction; under a downward-closed measure
    /// an uncorrelated set never seeds extensions (its supersets are
    /// uncorrelated too), so only correlated-but-monotone-failing sets
    /// stay on the frontier.
    class: MonotonicityClass,
}

impl AlgorithmPolicy for StarStarPhase2Policy<'_> {
    fn candidates(&mut self, _k: usize) -> LevelSeed {
        staged(&mut self.current)
    }

    fn snapshot(&self, k: usize, cands: &[Itemset]) -> ResumeInner {
        ResumeInner::StarStarPhase2 {
            k,
            current: sorted_sets(cands.iter().cloned()),
            sig: self.sig.clone(),
            supp: freeze_levels(&self.supp),
        }
    }

    fn prefilter(
        &mut self,
        _k: usize,
        cands: Vec<Itemset>,
        _metrics: &mut MiningMetrics,
    ) -> Vec<Itemset> {
        prune_non_minimal(&self.sig, cands)
    }

    fn absorb(&mut self, k: usize, survivors: Vec<Itemset>, verdicts: Vec<Verdict>) {
        let mut notsig_level: HashSet<Itemset> = HashSet::new();
        for (set, v) in survivors.into_iter().zip(verdicts) {
            if self.class.is_downward() && !v.correlated {
                continue; // dead: supersets within SUPP are uncorrelated too
            }
            if v.correlated && self.analysis.m_residual_satisfied(&set, self.attrs) {
                self.sig.push(set);
            } else {
                notsig_level.insert(set);
            }
        }
        self.current = match self.supp.get(&(k + 1)) {
            None => Vec::new(),
            Some(next_supp) => {
                candidate::extend_gen(&notsig_level, self.good1, |cand| next_supp.contains(cand))
            }
        };
    }
}

/// Runs Algorithm BMS** and returns `MIN_VALID(Q)`.
///
/// # Errors
///
/// Returns [`MiningError`] if the constraints fail validation or contain
/// a neither-monotone (`avg`) constraint.
pub fn run_bms_star_star<C: MintermCounter>(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    counter: &mut C,
) -> Result<MiningResult, MiningError> {
    run_bms_star_star_guarded(db, attrs, query, counter, &RunGuard::unlimited(), None)
}

/// [`run_bms_star_star`] under a resource guard, optionally re-entering a
/// truncated run's snapshot (either phase).
///
/// A phase-1 (SUPP enumeration) trip still runs the full phase-2 sweep
/// over the *completed* SUPP levels (memo-cache hits: no new tables);
/// it yields the complete run's answers up to the truncated level.
/// Phase 2 checkpoints the guard once per level.
pub(crate) fn run_bms_star_star_guarded(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    counter: &mut dyn MintermCounter,
    guard: &RunGuard,
    resume: Option<ResumeInner>,
) -> Result<MiningResult, MiningError> {
    admit(query, attrs)?;
    // Split the snapshot by the phase it re-enters.
    let (phase1_resume, phase2_resume) = match resume {
        None => (None, None),
        Some(ResumeInner::StarStarPhase1 { level, cands, supp }) => {
            (Some((level, cands, thaw_levels(supp))), None)
        }
        Some(ResumeInner::StarStarPhase2 {
            k,
            current,
            sig,
            supp,
        }) => (None, Some((k, current, sig, thaw_levels(supp)))),
        Some(_) => return Err(MiningError::foreign_snapshot(Algorithm::BmsStarStar.name())),
    };
    let scope = MinerScope::begin(counter.stats());
    let mut metrics = MiningMetrics::default();
    let analysis = query.constraints.analyze(attrs);
    let mut engine = crate::engine::Engine::with_guard(counter, &query.params, guard.clone());

    // Preprocessing, identical to BMS++.
    let prep = preprocess(db, attrs, query, &analysis);

    // Phase 1: SUPP levels, one counting batch per level; verdicts stay
    // in the memo-cache for phase 2 (skipped on a phase-2 resume).
    let mut trip: Option<KernelTrip> = None;
    let (supp, phase2_start) = match phase2_resume {
        Some((k, current, sig, supp)) => (supp, Some((k, current, sig))),
        None => {
            let (level, cands, supp) = phase1_resume.unwrap_or_else(|| {
                (
                    2usize,
                    candidate::pairs_from(&prep.l1_plus, &prep.l1_minus),
                    HashMap::new(),
                )
            });
            let mut policy = StarStarPhase1Policy {
                analysis: &analysis,
                attrs,
                good1: &prep.good1,
                witness_set: &prep.witness_set,
                supp,
                cands,
            };
            trip = run_levelwise(
                &mut engine,
                &mut policy,
                KernelConfig::new(Algorithm::BmsStarStar, LevelMark::Eager),
                GuardMode::Checked,
                level,
                query.params.max_level,
                &mut metrics,
            );
            (policy.supp, None)
        }
    };

    // Phase 2: upward SIG sweep over SUPP — pure memo-cache work, no new
    // tables. After a phase-1 trip it still completes over the finished
    // SUPP levels; bypass mode keeps the tripped guard out of it.
    let (k, current, sig) = phase2_start.unwrap_or_else(|| {
        let current = sorted_sets(supp.get(&2).into_iter().flatten().cloned());
        (2usize, current, Vec::new())
    });
    let mut policy = StarStarPhase2Policy {
        analysis: &analysis,
        attrs,
        good1: &prep.good1,
        supp,
        sig,
        current,
        class: query.params.measure.monotonicity(),
    };
    let mode = trip
        .as_ref()
        .map_or(GuardMode::Checked, |_| GuardMode::Bypass);
    let phase2_trip = run_levelwise(
        &mut engine,
        &mut policy,
        KernelConfig::new(Algorithm::BmsStarStar, LevelMark::Untouched).uncounted(),
        mode,
        k,
        query.params.max_level,
        &mut metrics,
    );
    Ok(scope.seal(
        &engine,
        metrics,
        policy.sig,
        Semantics::MinValid,
        trip.or(phase2_trip),
    ))
}
