//! Algorithm BMS** — constraint-pushing miner for `MIN_VALID` answers.
//!
//! Per Figure G of the paper, the work splits into two phases:
//!
//! 1. **SUPP enumeration.** A level-wise sweep that applies only the
//!    *anti-monotone* machinery — the `L1⁺`/`L1⁻` preprocessing and
//!    candidate formation of BMS++, the pre-count residual anti-monotone
//!    checks, and the CT-support test — but *no* chi-squared test. The
//!    result is `SUPP_k`: every CT-supported, anti-monotone-valid,
//!    witness-touching set per level. Each level is counted as one batch
//!    ([`Engine::evaluate_level`]), and every verdict — including the
//!    chi-squared outcome — lands in the engine's memo-cache.
//!
//! 2. **Upward SIG sweep.** Starting from `SUPP₂`, sets that are
//!    correlated and satisfy the monotone constraints become answers
//!    (after a minimality check against already-found answers); the rest
//!    seed single-item extensions *within SUPP* for the next level. No
//!    contingency table is ever rebuilt — every phase-2 evaluation is a
//!    memo-cache hit (visible as `cache_hits` in the metrics), which is
//!    exactly why the §3.3 analysis charges BMS** only `Σᵢ vᵢ` tables.
//!
//! The candidate-generation and minimality amendments of
//! [`crate::bms_star`] apply here too (DESIGN.md "Fidelity notes"). Every
//! set in SUPP touches `L1⁺`, and every valid set must, so unlike BMS++
//! no extra verification tables are needed: a minimal valid set's
//! minimality violations always go through witness-touching subsets that
//! phase 2 has already classified.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use ccs_constraints::AttributeTable;
use ccs_itemset::{candidate, Item, Itemset, MintermCounter, TransactionDb};

use crate::engine::Engine;
use crate::guard::{sorted_sets, ResumeInner, ResumeState, RunGuard, TruncationReason};
use crate::metrics::MiningMetrics;
use crate::miner::Algorithm;
use crate::query::{CorrelationQuery, MiningError, MiningResult, Semantics};

/// Deterministic snapshot form of the SUPP levels (levels sorted, sets
/// within a level sorted).
fn freeze_supp(supp: &HashMap<usize, HashSet<Itemset>>) -> Vec<(usize, Vec<Itemset>)> {
    let mut out: Vec<(usize, Vec<Itemset>)> = supp
        .iter()
        .map(|(&k, sets)| (k, sorted_sets(sets.iter().cloned())))
        .collect();
    out.sort_unstable_by_key(|&(k, _)| k);
    out
}

fn thaw_supp(supp: Vec<(usize, Vec<Itemset>)>) -> HashMap<usize, HashSet<Itemset>> {
    supp.into_iter()
        .map(|(k, sets)| (k, sets.into_iter().collect()))
        .collect()
}

/// Runs Algorithm BMS** and returns `MIN_VALID(Q)`.
///
/// # Errors
///
/// Returns [`MiningError`] if the constraints fail validation or contain
/// a neither-monotone (`avg`) constraint.
pub fn run_bms_star_star<C: MintermCounter>(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    counter: &mut C,
) -> Result<MiningResult, MiningError> {
    run_bms_star_star_guarded(db, attrs, query, counter, &RunGuard::unlimited(), None)
}

/// [`run_bms_star_star`] under a resource guard, optionally re-entering a
/// truncated run's snapshot (either phase).
///
/// A phase-1 (SUPP enumeration) trip still runs the full phase-2 sweep
/// over the *completed* SUPP levels — those evaluations are memo-cache
/// hits, so the epilogue costs no new tables — and the answers it yields
/// are the complete run's answers up to the truncated level. Phase 2
/// checkpoints the guard once per level.
pub(crate) fn run_bms_star_star_guarded<C: MintermCounter>(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    counter: &mut C,
    guard: &RunGuard,
    resume: Option<ResumeInner>,
) -> Result<MiningResult, MiningError> {
    query.validate(attrs)?;
    if query.constraints.has_neither_monotone() {
        return Err(MiningError::NonMonotoneConstraint);
    }
    enum StarStarEntry {
        Fresh,
        Phase1 {
            level: usize,
            cands: Vec<Itemset>,
            supp: HashMap<usize, HashSet<Itemset>>,
        },
        Phase2 {
            k: usize,
            current: Vec<Itemset>,
            sig: Vec<Itemset>,
            supp: HashMap<usize, HashSet<Itemset>>,
        },
    }
    let entry = match resume {
        None => StarStarEntry::Fresh,
        Some(ResumeInner::StarStarPhase1 { level, cands, supp }) => StarStarEntry::Phase1 {
            level,
            cands,
            supp: thaw_supp(supp),
        },
        Some(ResumeInner::StarStarPhase2 {
            k,
            current,
            sig,
            supp,
        }) => StarStarEntry::Phase2 {
            k,
            current,
            sig,
            supp: thaw_supp(supp),
        },
        Some(_) => {
            return Err(MiningError::ResumeMismatch {
                expected: "another algorithm",
                requested: Algorithm::BmsStarStar.name(),
            })
        }
    };
    let start = Instant::now();
    let mut metrics = MiningMetrics::default();
    let base_stats = counter.stats();
    let analysis = query.constraints.analyze(attrs);
    let mut engine = Engine::with_guard(counter, &query.params, guard.clone());

    // Preprocessing, identical to BMS++.
    let item_threshold = query.params.item_support_abs(db.len());
    let supports = db.item_supports();
    let good1: Vec<Item> = (0..db.n_items())
        .map(Item::new)
        .filter(|&i| {
            supports[i.index()] as u64 >= item_threshold
                && query
                    .constraints
                    .anti_monotone_satisfied(&Itemset::singleton(i), attrs)
        })
        .collect();
    let l1_plus: Vec<Item> = good1
        .iter()
        .copied()
        .filter(|&i| analysis.item_witnesses(i))
        .collect();
    let l1_minus: Vec<Item> = good1
        .iter()
        .copied()
        .filter(|&i| !analysis.item_witnesses(i))
        .collect();
    let witness_set: HashSet<Item> = l1_plus.iter().copied().collect();

    // Phase 1: SUPP levels, one counting batch per level. Verdicts stay
    // in the engine's memo-cache for phase 2. Skipped entirely when
    // resuming into phase 2.
    let mut truncation: Option<(TruncationReason, ResumeState)> = None;
    let (supp, phase2_start) = match entry {
        StarStarEntry::Phase2 {
            k,
            current,
            sig,
            supp,
        } => (supp, Some((k, current, sig))),
        fresh_or_phase1 => {
            let (mut level, mut cands, mut supp) = match fresh_or_phase1 {
                StarStarEntry::Phase1 { level, cands, supp } => (level, cands, supp),
                _ => (
                    2usize,
                    candidate::pairs_from(&l1_plus, &l1_minus),
                    HashMap::new(),
                ),
            };
            while !cands.is_empty() && level <= query.params.max_level {
                let snapshot = engine
                    .guard()
                    .is_armed()
                    .then(|| ResumeInner::StarStarPhase1 {
                        level,
                        cands: cands.clone(),
                        supp: freeze_supp(&supp),
                    });
                metrics.candidates_generated += cands.len() as u64;
                metrics.max_level_reached = level;
                let mut survivors: Vec<Itemset> = Vec::with_capacity(cands.len());
                for set in cands {
                    if analysis.am_residual_satisfied(&set, attrs) {
                        survivors.push(set);
                    } else {
                        metrics.pruned_before_count += 1;
                    }
                }
                let verdicts = match engine.evaluate_level(&survivors) {
                    Ok(v) => v,
                    Err(reason) => {
                        metrics.max_level_reached = level - 1;
                        #[allow(clippy::expect_used)] // invariant: a trip implies an armed guard
                        let snap = snapshot.expect("a trip implies an armed guard");
                        truncation = Some((
                            reason,
                            ResumeState {
                                algorithm: Algorithm::BmsStarStar,
                                inner: snap,
                            },
                        ));
                        break;
                    }
                };
                let mut supp_level: HashSet<Itemset> = HashSet::new();
                for (set, v) in survivors.into_iter().zip(verdicts) {
                    if v.ct_supported {
                        supp_level.insert(set);
                    }
                }
                cands = candidate::extend_gen(&supp_level, &good1, |cand| {
                    cand.subsets_dropping_one().all(|s| {
                        !s.iter().any(|i| witness_set.contains(&i)) || supp_level.contains(&s)
                    })
                });
                supp.insert(level, supp_level);
                level += 1;
            }
            (supp, None)
        }
    };

    // Phase 2: upward SIG sweep over SUPP — every set here was judged in
    // phase 1, so each evaluation is a memo-cache hit: no new tables.
    // Even when phase 1 was truncated, the sweep runs to completion over
    // the *completed* SUPP levels (pure cache work, no counting) — the
    // answers it yields are the complete run's answers up to that level.
    let (mut k, mut current, mut sig) = match phase2_start {
        Some((k, current, sig)) => (k, current, sig),
        None => {
            let mut current: Vec<Itemset> = supp
                .get(&2)
                .map(|m| m.iter().cloned().collect())
                .unwrap_or_default();
            current.sort_unstable();
            (2usize, current, Vec::new())
        }
    };
    while !current.is_empty() {
        // The between-phase / per-level checkpoint: only consulted while
        // the run is still live — after a phase-1 trip the sweep over the
        // sound prefix must not be abandoned.
        if truncation.is_none() {
            let snapshot = engine
                .guard()
                .is_armed()
                .then(|| ResumeInner::StarStarPhase2 {
                    k,
                    current: sorted_sets(current.iter().cloned()),
                    sig: sig.clone(),
                    supp: freeze_supp(&supp),
                });
            if let Err(reason) = engine.guard().checkpoint() {
                #[allow(clippy::expect_used)] // invariant: a trip implies an armed guard
                let snap = snapshot.expect("a trip implies an armed guard");
                truncation = Some((
                    reason,
                    ResumeState {
                        algorithm: Algorithm::BmsStarStar,
                        inner: snap,
                    },
                ));
                break;
            }
        }
        let mut notsig_level: HashSet<Itemset> = HashSet::new();
        for set in &current {
            if sig.iter().any(|a| a.is_subset_of(set)) {
                continue; // not minimal, and no superset can be either
            }
            let v = engine.evaluate(set);
            if v.correlated && analysis.m_residual_satisfied(set, attrs) {
                sig.push(set.clone());
            } else {
                notsig_level.insert(set.clone());
            }
        }
        k += 1;
        let Some(next_supp) = supp.get(&k) else { break };
        current = candidate::extend_gen(&notsig_level, &good1, |cand| next_supp.contains(cand));
    }

    metrics.sig_size = sig.len() as u64;
    let end = engine.counting_stats();
    metrics.absorb_counting(end.since(&base_stats));
    metrics.elapsed = start.elapsed();
    match truncation {
        None => Ok(MiningResult::new(sig, Semantics::MinValid, metrics)),
        Some((reason, resume)) => {
            let frontier_level = match &resume.inner {
                ResumeInner::StarStarPhase1 { level, .. } => level - 1,
                ResumeInner::StarStarPhase2 { k, .. } => k - 1,
                _ => unreachable!("BMS** trips carry BMS** snapshots"),
            };
            Ok(MiningResult::truncated(
                sig,
                Semantics::MinValid,
                metrics,
                reason,
                frontier_level,
                resume,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bms_star::run_bms_star;
    use crate::naive::run_naive;
    use crate::params::MiningParams;
    use ccs_constraints::{Constraint, ConstraintSet};
    use ccs_itemset::HorizontalCounter;

    fn db() -> TransactionDb {
        let mut txns = Vec::new();
        for i in 0..60 {
            let mut t = Vec::new();
            if i % 2 == 0 {
                t.extend([0u32, 1]);
            }
            if i % 3 == 0 {
                t.extend([2, 3]);
            }
            if i % 5 == 0 {
                t.push(4);
            }
            txns.push(t);
        }
        TransactionDb::from_ids(5, txns)
    }

    fn query(constraints: ConstraintSet) -> CorrelationQuery {
        CorrelationQuery {
            params: MiningParams {
                confidence: 0.9,
                support_fraction: 0.1,
                ct_fraction: 0.25,
                min_item_support: 0.0,
                max_level: 5,
            },
            constraints,
        }
    }

    fn assert_agrees(cs: ConstraintSet) {
        let db = db();
        let attrs = AttributeTable::with_identity_prices(5);
        let q = query(cs);
        let mut c1 = HorizontalCounter::new(&db);
        let ss = run_bms_star_star(&db, &attrs, &q, &mut c1).unwrap();
        let mut c2 = HorizontalCounter::new(&db);
        let naive = run_naive(&db, &attrs, &q, Semantics::MinValid, &mut c2).unwrap();
        assert_eq!(
            ss.answers, naive.answers,
            "BMS** vs naive for {}",
            q.constraints
        );
        let mut c3 = HorizontalCounter::new(&db);
        let star = run_bms_star(&db, &attrs, &q, &mut c3).unwrap();
        assert_eq!(
            ss.answers, star.answers,
            "BMS** vs BMS* for {}",
            q.constraints
        );
    }

    #[test]
    fn agrees_unconstrained() {
        assert_agrees(ConstraintSet::new());
    }

    #[test]
    fn agrees_with_anti_monotone_constraints() {
        assert_agrees(ConstraintSet::new().and(Constraint::max_le("price", 4.0)));
        assert_agrees(ConstraintSet::new().and(Constraint::sum_le("price", 5.0)));
        assert_agrees(ConstraintSet::new().and(Constraint::min_ge("price", 2.0)));
    }

    #[test]
    fn agrees_with_monotone_constraints() {
        assert_agrees(ConstraintSet::new().and(Constraint::min_le("price", 2.0)));
        assert_agrees(ConstraintSet::new().and(Constraint::max_ge("price", 4.0)));
        assert_agrees(ConstraintSet::new().and(Constraint::sum_ge("price", 5.0)));
        assert_agrees(ConstraintSet::new().and(Constraint::sum_ge("price", 8.0)));
    }

    #[test]
    fn agrees_with_mixed_constraints() {
        assert_agrees(
            ConstraintSet::new()
                .and(Constraint::max_le("price", 4.0))
                .and(Constraint::sum_ge("price", 4.0)),
        );
        assert_agrees(
            ConstraintSet::new()
                .and(Constraint::sum_le("price", 9.0))
                .and(Constraint::min_le("price", 3.0)),
        );
    }

    #[test]
    fn high_selectivity_makes_star_star_consider_more_sets() {
        // With a barely-selective monotone constraint, BMS** enumerates
        // the whole CT-supported region while BMS* stops at the
        // correlation border — the §3.3 crossover, seen from the BMS*
        // side.
        let db = db();
        let attrs = AttributeTable::with_identity_prices(5);
        let q = query(ConstraintSet::new().and(Constraint::min_le("price", 5.0)));
        let mut c1 = HorizontalCounter::new(&db);
        let ss = run_bms_star_star(&db, &attrs, &q, &mut c1).unwrap();
        let mut c2 = HorizontalCounter::new(&db);
        let star = run_bms_star(&db, &attrs, &q, &mut c2).unwrap();
        assert_eq!(ss.answers, star.answers);
        assert!(
            ss.metrics.tables_built >= star.metrics.tables_built,
            "expected |BMS**| ≥ |BMS*| at selectivity 1.0: {} vs {}",
            ss.metrics.tables_built,
            star.metrics.tables_built
        );
    }

    #[test]
    fn phase_2_answers_from_the_verdict_cache() {
        let db = db();
        let attrs = AttributeTable::with_identity_prices(5);
        let q = query(ConstraintSet::new());
        let mut c = HorizontalCounter::new(&db);
        let ss = run_bms_star_star(&db, &attrs, &q, &mut c).unwrap();
        // Every phase-2 evaluation revisits a set phase 1 judged, so the
        // sweep must be answered entirely from the verdict memo-cache...
        assert!(
            ss.metrics.cache_hits > 0,
            "phase 2 built tables instead of hitting the cache"
        );
        // ...and the counting layer itself never sees those hits: the
        // counter's raw table count equals the metrics' table count.
        assert_eq!(ss.metrics.tables_built, c.stats().tables_built);
        assert_eq!(c.stats().cache_hits, 0);
    }

    #[test]
    fn avg_constraint_is_rejected() {
        let db = db();
        let attrs = AttributeTable::with_identity_prices(5);
        let q = query(ConstraintSet::new().and(Constraint::Avg {
            attr: "price".into(),
            cmp: ccs_constraints::Cmp::Le,
            value: 2.0,
        }));
        let mut c = HorizontalCounter::new(&db);
        assert_eq!(
            run_bms_star_star(&db, &attrs, &q, &mut c),
            Err(MiningError::NonMonotoneConstraint)
        );
    }
}
