//! Algorithm BMS — the unconstrained baseline of Brin, Motwani &
//! Silverstein (SIGMOD 1997), as a policy on the levelwise kernel.
//!
//! A level-wise sweep of the itemset lattice that exploits two closure
//! properties:
//!
//! * CT-support is *anti-monotone*: a candidate is only considered when
//!   every maximal proper subset survived as CT-supported,
//! * being correlated is *monotone* under the paper's χ² measure: the
//!   answer set is the *minimal* correlated sets, so a correlated set is
//!   reported (added to `SIG`) and never expanded; only CT-supported
//!   **un**correlated sets (`NOTSIG`) seed the next level. Under a
//!   *downward*-closed measure (all-confidence, bond) every minimal
//!   correlated set is a pair, so the sweep stops after level 2.
//!
//! The constrained algorithms of the paper (BMS+, BMS++, BMS*, BMS**) are
//! all modifications of this sweep.

use std::collections::HashSet;

use ccs_itemset::{candidate, Item, Itemset, MintermCounter, TransactionDb};
use ccs_stats::MonotonicityClass;

use crate::engine::{Engine, Verdict};
use crate::guard::{sorted_sets, wall_now, BmsSnapshot, ResumeInner};
use crate::kernel::{
    run_levelwise, staged, AlgorithmPolicy, GuardMode, KernelConfig, KernelTrip, LevelMark,
    LevelSeed,
};
use crate::metrics::MiningMetrics;
use crate::miner::Algorithm;
use crate::params::MiningParams;
use crate::prep::frequent_items;

/// The complete state Algorithm BMS leaves behind: `SIG` (all minimal
/// correlated and CT-supported sets), `NOTSIG` (every CT-supported but
/// uncorrelated set encountered, at any level), and work metrics.
///
/// BMS* consumes both sets (renamed `SIG'` / `NOTSIG'` in the paper) to
/// seed its upward sweep.
#[derive(Debug, Clone)]
pub struct BmsOutput {
    /// Minimal correlated and CT-supported sets, sorted.
    pub sig: Vec<Itemset>,
    /// CT-supported, uncorrelated sets from every level.
    pub notsig: HashSet<Itemset>,
    /// The frequent 1-items the sweep was seeded with.
    pub level1: Vec<Item>,
    /// Work accounting.
    pub metrics: MiningMetrics,
}

/// A BMS run plus its governance outcome: `trip` is `Some` when the
/// run's guard stopped the sweep, carrying the reason and the stamped
/// resume snapshot from the last completed level boundary.
pub(crate) struct BmsRun {
    pub(crate) output: BmsOutput,
    pub(crate) trip: Option<KernelTrip>,
}

/// The BMS sweep as a kernel policy: classify CT-supported survivors
/// into `SIG` (correlated, reported and never expanded) or the level's
/// `NOTSIG` (uncorrelated, seeds the next level via apriori-gen).
///
/// `wrap` chooses the [`ResumeInner`] variant a trip stamps, because the
/// same sweep runs standalone (BMS/BMS+) and as BMS* phase 1.
struct BmsPolicy {
    sig: Vec<Itemset>,
    notsig_all: HashSet<Itemset>,
    /// Candidates staged for the next `candidates()` call.
    cands: Vec<Itemset>,
    /// The measure's closure direction. Under a downward-closed measure
    /// every minimal correlated set is a pair (correlation and
    /// CT-support are both inherited by subsets), so the sweep never
    /// extends beyond level 2.
    class: MonotonicityClass,
    wrap: fn(BmsSnapshot) -> ResumeInner,
}

impl AlgorithmPolicy for BmsPolicy {
    fn candidates(&mut self, _level: usize) -> LevelSeed {
        staged(&mut self.cands)
    }

    fn snapshot(&self, level: usize, cands: &[Itemset]) -> ResumeInner {
        (self.wrap)(BmsSnapshot {
            level,
            cands: cands.to_vec(),
            sig: self.sig.clone(),
            notsig: sorted_sets(self.notsig_all.iter().cloned()),
        })
    }

    fn absorb(&mut self, _level: usize, survivors: Vec<Itemset>, verdicts: Vec<Verdict>) {
        let mut notsig_level: HashSet<Itemset> = HashSet::new();
        for (set, v) in survivors.into_iter().zip(verdicts) {
            if v.ct_supported {
                if v.correlated {
                    self.sig.push(set);
                } else {
                    notsig_level.insert(set);
                }
            }
        }
        self.cands = if self.class.is_downward() {
            // A superset of an uncorrelated set is uncorrelated, and a
            // superset of a SIG member is non-minimal: nothing above
            // this level can be an answer.
            Vec::new()
        } else {
            candidate::apriori_gen(&notsig_level)
        };
        self.notsig_all.extend(notsig_level);
    }
}

/// Runs Algorithm BMS over `db` with the given statistical parameters.
pub fn run_bms<C: MintermCounter>(
    db: &TransactionDb,
    params: &MiningParams,
    counter: &mut C,
) -> BmsOutput {
    let mut engine = Engine::new(counter, params);
    run_bms_with_engine(
        db,
        params,
        &mut engine,
        None,
        Algorithm::BmsPlus,
        ResumeInner::Bms,
    )
    .output
}

/// [`run_bms`] over a caller-owned [`Engine`], so a two-phase algorithm
/// (BMS*) can keep the verdict memo-cache warm across phases: its upward
/// sweep then answers revisited sets from the cache instead of
/// rebuilding their contingency tables.
///
/// `start` re-enters the level loop from a truncated run's snapshot
/// instead of from the all-pairs seed. A trip stamps `algorithm` and the
/// `wrap`ped snapshot into the resume state, so the same sweep serves
/// BMS/BMS+ and BMS* phase 1.
pub(crate) fn run_bms_with_engine(
    db: &TransactionDb,
    params: &MiningParams,
    engine: &mut Engine<'_>,
    start: Option<BmsSnapshot>,
    algorithm: Algorithm,
    wrap: fn(BmsSnapshot) -> ResumeInner,
) -> BmsRun {
    params.validate();
    let start_time = wall_now();
    let mut metrics = MiningMetrics::default();
    let base_stats = engine.counting_stats();

    // Level 1: the item basis.
    let level1: Vec<Item> = frequent_items(db, params);

    // Level 2 candidates: all pairs of basis items — or the resumed
    // frontier.
    let (sig, notsig_all, cands, level) = match start {
        Some(s) => (
            s.sig,
            s.notsig.into_iter().collect::<HashSet<Itemset>>(),
            s.cands,
            s.level,
        ),
        None => (
            Vec::new(),
            HashSet::new(),
            candidate::all_pairs(&level1),
            2usize,
        ),
    };

    let mut policy = BmsPolicy {
        sig,
        notsig_all,
        cands,
        class: params.measure.monotonicity(),
        wrap,
    };
    let trip = run_levelwise(
        engine,
        &mut policy,
        KernelConfig::new(algorithm, LevelMark::Eager),
        GuardMode::Checked,
        level,
        params.max_level,
        &mut metrics,
    );

    let BmsPolicy {
        mut sig,
        notsig_all,
        ..
    } = policy;
    sig.sort_unstable();
    metrics.sig_size = sig.len() as u64;
    metrics.notsig_size = notsig_all.len() as u64;
    let end_stats = engine.counting_stats();
    metrics.absorb_counting(end_stats.since(&base_stats));
    metrics.elapsed = start_time.elapsed();

    BmsRun {
        output: BmsOutput {
            sig,
            notsig: notsig_all,
            level1,
            metrics,
        },
        trip,
    }
}
