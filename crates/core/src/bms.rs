//! Algorithm BMS — the unconstrained baseline of Brin, Motwani &
//! Silverstein (SIGMOD 1997).
//!
//! A level-wise sweep of the itemset lattice that exploits two closure
//! properties:
//!
//! * CT-support is *anti-monotone*: a candidate is only considered when
//!   every maximal proper subset survived as CT-supported,
//! * being correlated is *monotone*: the answer set is the *minimal*
//!   correlated sets, so a correlated set is reported (added to `SIG`) and
//!   never expanded; only CT-supported **un**correlated sets (`NOTSIG`)
//!   seed the next level.
//!
//! The constrained algorithms of the paper (BMS+, BMS++, BMS*, BMS**) are
//! all modifications of this sweep.

use std::collections::HashSet;
use std::time::Instant;

use ccs_itemset::{candidate, Item, Itemset, MintermCounter, TransactionDb};

use crate::engine::Engine;
use crate::guard::{sorted_sets, BmsSnapshot, TruncationReason};
use crate::metrics::MiningMetrics;
use crate::params::MiningParams;

/// The complete state Algorithm BMS leaves behind: `SIG` (all minimal
/// correlated and CT-supported sets), `NOTSIG` (every CT-supported but
/// uncorrelated set encountered, at any level), and work metrics.
///
/// BMS* consumes both sets (renamed `SIG'` / `NOTSIG'` in the paper) to
/// seed its upward sweep.
#[derive(Debug, Clone)]
pub struct BmsOutput {
    /// Minimal correlated and CT-supported sets, sorted.
    pub sig: Vec<Itemset>,
    /// CT-supported, uncorrelated sets from every level.
    pub notsig: HashSet<Itemset>,
    /// The frequent 1-items the sweep was seeded with.
    pub level1: Vec<Item>,
    /// Work accounting.
    pub metrics: MiningMetrics,
}

/// A BMS run plus its governance outcome: `truncation` is `Some` when the
/// run's guard stopped the sweep, carrying the reason and the loop state
/// at the last completed level boundary (the interrupted level's
/// candidates, un-evaluated, ready to be re-entered on resume).
pub(crate) struct BmsRun {
    pub(crate) output: BmsOutput,
    pub(crate) truncation: Option<(TruncationReason, BmsSnapshot)>,
}

/// Runs Algorithm BMS over `db` with the given statistical parameters.
pub fn run_bms<C: MintermCounter>(
    db: &TransactionDb,
    params: &MiningParams,
    counter: &mut C,
) -> BmsOutput {
    let mut engine = Engine::new(counter, params);
    run_bms_with_engine(db, params, &mut engine, None).output
}

/// [`run_bms`] over a caller-owned [`Engine`], so a two-phase algorithm
/// (BMS*) can keep the verdict memo-cache warm across phases: its upward
/// sweep then answers revisited sets from the cache instead of
/// rebuilding their contingency tables.
///
/// `start` re-enters the level loop from a truncated run's snapshot
/// instead of from the all-pairs seed. When the engine's guard is armed,
/// a snapshot is taken at every level boundary so a mid-level trip can
/// report the state needed to resume; unarmed runs skip the clone
/// entirely.
pub(crate) fn run_bms_with_engine<C: MintermCounter>(
    db: &TransactionDb,
    params: &MiningParams,
    engine: &mut Engine<'_, C>,
    start: Option<BmsSnapshot>,
) -> BmsRun {
    params.validate();
    let start_time = Instant::now();
    let mut metrics = MiningMetrics::default();
    let base_stats = engine.counting_stats();

    // Level 1: the item basis. The O(i) ≥ s filter of the pseudo-code,
    // with s = min_item_support (0 ⇒ all items participate; see
    // MiningParams).
    let item_threshold = params.item_support_abs(db.len());
    let supports = db.item_supports();
    let level1: Vec<Item> = (0..db.n_items())
        .map(Item::new)
        .filter(|i| supports[i.index()] as u64 >= item_threshold)
        .collect();

    // Level 2 candidates: all pairs of basis items — or the resumed
    // frontier.
    let (mut sig, mut notsig_all, mut cands, mut level) = match start {
        Some(s) => (
            s.sig,
            s.notsig.into_iter().collect::<HashSet<Itemset>>(),
            s.cands,
            s.level,
        ),
        None => (
            Vec::new(),
            HashSet::new(),
            candidate::all_pairs(&level1),
            2usize,
        ),
    };

    let mut truncation = None;
    while !cands.is_empty() && level <= params.max_level {
        let snapshot = engine.guard().is_armed().then(|| BmsSnapshot {
            level,
            cands: cands.clone(),
            sig: sig.clone(),
            notsig: sorted_sets(notsig_all.iter().cloned()),
        });
        metrics.candidates_generated += cands.len() as u64;
        metrics.max_level_reached = level;
        let mut notsig_level: HashSet<Itemset> = HashSet::new();
        let verdicts = match engine.evaluate_level(&cands) {
            Ok(v) => v,
            Err(reason) => {
                metrics.max_level_reached = level - 1;
                #[allow(clippy::expect_used)] // invariant: a trip implies an armed guard
                let snap = snapshot.expect("a trip implies an armed guard");
                truncation = Some((reason, snap));
                break;
            }
        };
        for (set, v) in cands.iter().zip(verdicts) {
            if v.ct_supported {
                if v.correlated {
                    sig.push(set.clone());
                } else {
                    notsig_level.insert(set.clone());
                }
            }
        }
        cands = candidate::apriori_gen(&notsig_level);
        notsig_all.extend(notsig_level);
        level += 1;
    }

    sig.sort_unstable();
    metrics.sig_size = sig.len() as u64;
    metrics.notsig_size = notsig_all.len() as u64;
    let end_stats = engine.counting_stats();
    metrics.absorb_counting(end_stats.since(&base_stats));
    metrics.elapsed = start_time.elapsed();

    BmsRun {
        output: BmsOutput {
            sig,
            notsig: notsig_all,
            level1,
            metrics,
        },
        truncation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_itemset::HorizontalCounter;

    /// A database where items 0 and 1 are perfectly correlated and item 2
    /// is independent noise.
    fn correlated_db() -> TransactionDb {
        let mut txns = Vec::new();
        for i in 0..40 {
            let mut t = if i % 2 == 0 { vec![0u32, 1] } else { vec![] };
            if i % 3 == 0 {
                t.push(2);
            }
            txns.push(t);
        }
        TransactionDb::from_ids(3, txns)
    }

    fn params() -> MiningParams {
        MiningParams {
            confidence: 0.9,
            support_fraction: 0.1,
            ct_fraction: 0.25,
            min_item_support: 0.0,
            max_level: 6,
        }
    }

    #[test]
    fn finds_the_planted_pair() {
        let db = correlated_db();
        let mut counter = HorizontalCounter::new(&db);
        let out = run_bms(&db, &params(), &mut counter);
        assert!(
            out.sig.contains(&Itemset::from_ids([0, 1])),
            "planted pair not found; SIG = {:?}",
            out.sig
        );
    }

    #[test]
    fn independent_pairs_land_in_notsig() {
        let db = correlated_db();
        let mut counter = HorizontalCounter::new(&db);
        let out = run_bms(&db, &params(), &mut counter);
        // {0,2} is independent: must not be in SIG.
        assert!(!out.sig.contains(&Itemset::from_ids([0, 2])));
    }

    #[test]
    fn sig_sets_are_minimal() {
        let db = correlated_db();
        let mut counter = HorizontalCounter::new(&db);
        let out = run_bms(&db, &params(), &mut counter);
        for (i, a) in out.sig.iter().enumerate() {
            for b in &out.sig[i + 1..] {
                assert!(
                    !a.is_subset_of(b) && !b.is_subset_of(a),
                    "SIG contains nested sets {a} ⊆ {b}"
                );
            }
        }
    }

    #[test]
    fn metrics_count_tables() {
        let db = correlated_db();
        let mut counter = HorizontalCounter::new(&db);
        let out = run_bms(&db, &params(), &mut counter);
        // 3 items → 3 pairs at level 2, plus whatever level 3 considered.
        assert!(out.metrics.tables_built >= 3);
        // Level-batched counting: at most one scan per level, never more
        // scans than tables.
        assert!(out.metrics.db_scans >= 1);
        assert!(out.metrics.db_scans <= out.metrics.tables_built);
        assert!(out.metrics.db_scans <= out.metrics.max_level_reached as u64);
        assert!(out.metrics.candidates_generated >= out.metrics.tables_built);
        assert!(out.metrics.max_level_reached >= 2);
    }

    #[test]
    fn item_support_filter_prunes_basis() {
        let db = correlated_db(); // item 2 support ~1/3, items 0,1 = 1/2
        let p = MiningParams {
            min_item_support: 0.4,
            ..params()
        };
        let mut counter = HorizontalCounter::new(&db);
        let out = run_bms(&db, &p, &mut counter);
        assert_eq!(out.level1, vec![Item(0), Item(1)]);
    }

    #[test]
    fn empty_database_yields_nothing() {
        let db = TransactionDb::from_ids(4, Vec::<Vec<u32>>::new());
        let mut counter = HorizontalCounter::new(&db);
        let out = run_bms(&db, &params(), &mut counter);
        // With zero transactions every table is all-zeros: chi2 = 0, so
        // nothing is correlated.
        assert!(out.sig.is_empty());
    }
}
