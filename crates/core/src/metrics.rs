//! Work accounting for the §3.3 cost analysis.
//!
//! The paper argues that the number of sets an algorithm *considers*
//! (builds a contingency table for) dominates its cost, since each table
//! historically meant a database scan. Every miner in this crate reports
//! a [`MiningMetrics`] so experiments can compare `|BMS+|`, `|BMS++|`,
//! `|BMS*|`, and `|BMS**|` directly, alongside wall-clock time.

use std::time::Duration;

use ccs_itemset::CountingStats;

/// Work performed by one mining run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MiningMetrics {
    /// Candidate itemsets generated across all levels (before any per-set
    /// constraint check).
    pub candidates_generated: u64,
    /// Sets for which a contingency table was built — the paper's
    /// "number of sets considered", the dominating cost term.
    pub tables_built: u64,
    /// Candidate sets discarded by a residual anti-monotone constraint
    /// check *before* counting (the pre-table pruning of BMS++/BMS**).
    pub pruned_before_count: u64,
    /// Database scans performed by the counting layer.
    pub db_scans: u64,
    /// Transactions visited by the counting layer, across all scans.
    pub transactions_visited: u64,
    /// Contingency cells computed by the counting layer (`2^k` per
    /// `k`-itemset table).
    pub cells_counted: u64,
    /// Evaluations answered from the engine's verdict cache (no table
    /// was rebuilt).
    pub cache_hits: u64,
    /// Counting batches a vertical strategy answered below its preferred
    /// rung of the degradation ladder (vertical-parallel → vertical →
    /// horizontal) because the run's memory budget could not fit the
    /// scratch arena(s).
    pub degraded_batches: u64,
    /// Highest lattice level reached.
    pub max_level_reached: usize,
    /// Number of sets placed in SIG (answers, before/after filtering
    /// depending on algorithm).
    pub sig_size: u64,
    /// Number of sets placed in NOTSIG across the run.
    pub notsig_size: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl MiningMetrics {
    /// The counting-layer subset of these metrics, viewed as the
    /// [`CountingStats`] shape it was absorbed from.
    pub fn counting(&self) -> CountingStats {
        CountingStats {
            tables_built: self.tables_built,
            db_scans: self.db_scans,
            transactions_visited: self.transactions_visited,
            cells_counted: self.cells_counted,
            cache_hits: self.cache_hits,
            degraded_batches: self.degraded_batches,
        }
    }

    /// Folds the counting layer's statistics into the metrics. This is
    /// the only place a counting delta crosses into mining metrics —
    /// [`MiningMetrics::merge`] routes through it too.
    pub fn absorb_counting(&mut self, stats: CountingStats) {
        let mut counting = self.counting();
        counting += stats;
        self.tables_built = counting.tables_built;
        self.db_scans = counting.db_scans;
        self.transactions_visited = counting.transactions_visited;
        self.cells_counted = counting.cells_counted;
        self.cache_hits = counting.cache_hits;
        self.degraded_batches = counting.degraded_batches;
    }

    /// Merges another metrics record into this one (durations add;
    /// `max_level_reached` takes the max). Used when an algorithm is a
    /// pipeline of phases (BMS* = BMS + upward sweep).
    pub fn merge(&mut self, other: &MiningMetrics) {
        self.candidates_generated += other.candidates_generated;
        self.pruned_before_count += other.pruned_before_count;
        self.absorb_counting(other.counting());
        self.max_level_reached = self.max_level_reached.max(other.max_level_reached);
        self.sig_size += other.sig_size;
        self.notsig_size += other.notsig_size;
        self.elapsed += other.elapsed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_counting_accumulates() {
        let mut m = MiningMetrics::default();
        m.absorb_counting(CountingStats {
            tables_built: 3,
            db_scans: 3,
            transactions_visited: 30,
            cells_counted: 12,
            cache_hits: 1,
            degraded_batches: 1,
        });
        m.absorb_counting(CountingStats {
            tables_built: 2,
            db_scans: 2,
            transactions_visited: 20,
            cells_counted: 8,
            cache_hits: 0,
            degraded_batches: 0,
        });
        assert_eq!(m.tables_built, 5);
        assert_eq!(m.db_scans, 5);
        assert_eq!(m.transactions_visited, 50);
        assert_eq!(m.cells_counted, 20);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.degraded_batches, 1);
    }

    #[test]
    fn merge_combines_phases() {
        let a = MiningMetrics {
            candidates_generated: 10,
            tables_built: 8,
            db_scans: 2,
            cache_hits: 7,
            degraded_batches: 1,
            max_level_reached: 3,
            sig_size: 2,
            elapsed: Duration::from_millis(5),
            ..MiningMetrics::default()
        };
        let mut b = MiningMetrics {
            candidates_generated: 4,
            tables_built: 4,
            db_scans: 3,
            max_level_reached: 5,
            elapsed: Duration::from_millis(7),
            ..MiningMetrics::default()
        };
        b.merge(&a);
        assert_eq!(b.candidates_generated, 14);
        assert_eq!(b.tables_built, 12);
        assert_eq!(b.db_scans, 5);
        assert_eq!(b.cache_hits, 7);
        assert_eq!(b.degraded_batches, 1);
        assert_eq!(b.max_level_reached, 5);
        assert_eq!(b.sig_size, 2);
        assert_eq!(b.elapsed, Duration::from_millis(12));
    }

    #[test]
    fn counting_view_round_trips_through_absorb() {
        let stats = CountingStats {
            tables_built: 3,
            db_scans: 1,
            transactions_visited: 30,
            cells_counted: 12,
            cache_hits: 2,
            degraded_batches: 1,
        };
        let mut m = MiningMetrics::default();
        m.absorb_counting(stats);
        assert_eq!(m.counting(), stats);
    }
}
