//! Algorithm and counting-strategy vocabulary.
//!
//! The `mine*` / `resume*` free-function matrix that used to live here
//! grew a row per option axis (strategy × guard × counter × resume) and
//! was collapsed into the builder-style session API —
//! [`crate::session::MiningSession`] with a
//! [`crate::session::MineRequest`] — with one-release `#[deprecated]`
//! shims since removed.

use ccs_itemset::TransactionDb;

use crate::query::Semantics;

/// The mining algorithms of the paper, plus the exhaustive reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// BMS+ — naive `VALID_MIN`: run BMS, filter by constraints.
    BmsPlus,
    /// BMS++ — constraint-pushing `VALID_MIN`.
    BmsPlusPlus,
    /// BMS* — naive `MIN_VALID`: run BMS, then sweep upward.
    BmsStar,
    /// BMS** — constraint-pushing `MIN_VALID`.
    BmsStarStar,
    /// Exhaustive enumeration (ground truth; accepts `avg` constraints;
    /// exponential — small universes only).
    Naive,
    /// Exhaustive enumeration under `MIN_VALID` semantics.
    NaiveMinValid,
}

impl Algorithm {
    /// The answer-set semantics the algorithm computes.
    pub fn semantics(self) -> Semantics {
        match self {
            Algorithm::BmsPlus | Algorithm::BmsPlusPlus | Algorithm::Naive => Semantics::ValidMin,
            Algorithm::BmsStar | Algorithm::BmsStarStar | Algorithm::NaiveMinValid => {
                Semantics::MinValid
            }
        }
    }

    /// All four level-wise algorithms of the paper, in presentation
    /// order.
    pub fn paper_algorithms() -> [Algorithm; 4] {
        [
            Algorithm::BmsPlus,
            Algorithm::BmsPlusPlus,
            Algorithm::BmsStar,
            Algorithm::BmsStarStar,
        ]
    }

    /// Short display name matching the paper's notation.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::BmsPlus => "BMS+",
            Algorithm::BmsPlusPlus => "BMS++",
            Algorithm::BmsStar => "BMS*",
            Algorithm::BmsStarStar => "BMS**",
            Algorithm::Naive => "naive",
            Algorithm::NaiveMinValid => "naive(MIN_VALID)",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// How contingency tables are counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CountingStrategy {
    /// One database scan per table — the paper's cost model. Default.
    #[default]
    Horizontal,
    /// Tid-set intersections over a one-pass vertical index — the fast
    /// path (DESIGN.md ablation).
    Vertical,
    /// Horizontal scans fanned out over all available cores — identical
    /// cost model to `Horizontal`, divided across threads (an extension
    /// beyond the paper's single-core testbed).
    Parallel,
    /// Vertical batch counting fanned out over prefix-equivalence
    /// classes on a persistent worker pool, with a vertical →
    /// horizontal degradation ladder under memory pressure
    /// (DESIGN.md §6.2).
    VerticalPar,
    /// Vertical batch counting over horizontally sharded tid ranges:
    /// each worker owns a disjoint transaction slice with its own cores
    /// and arena, and per-shard contingency tables merge elementwise
    /// into exact whole-database tables (DESIGN.md §6.3). The shard
    /// count comes from [`MiningOptions::shards`] (default: one shard
    /// per worker).
    Sharded,
    /// Pattern-growth counting over a compressed FP-tree: conditional
    /// projections are memoized across a batch, so a dense level pays
    /// one projection per header item instead of one tid-set
    /// intersection per candidate (DESIGN.md §6.4). Wins on dense,
    /// low-cardinality databases whose transactions collapse into few
    /// distinct profiles; degrades FpTree → Vertical → Horizontal
    /// under memory pressure.
    FpTree,
    /// Picks a concrete strategy from the database shape and available
    /// parallelism at mining time; see [`CountingStrategy::resolve`].
    Auto,
}

/// `Auto` routes to the FP-tree counter only when the item universe is
/// small enough that conditional projections stay compact…
const FPTREE_MAX_ITEMS: u32 = 512;
/// …and transactions are long enough that they collapse into shared
/// tree prefixes…
const FPTREE_MIN_AVG_LEN: f64 = 8.0;
/// …and the database is dense enough (avg transaction length / items)
/// that tid-set intersection pays per transaction for work the tree
/// answers per distinct profile.
const FPTREE_MIN_DENSITY: f64 = 0.2;

impl CountingStrategy {
    /// Resolves `Auto` to a concrete strategy from database shape.
    /// Non-`Auto` strategies return themselves.
    ///
    /// The heuristic favours the measured-fastest substrate that the
    /// shape supports: an empty database counts nothing (horizontal
    /// avoids even the index build); a database whose per-item bitmaps
    /// would be enormous *and* nearly empty (huge sparse universe) stays
    /// horizontal; a database big enough to amortise pool dispatch uses
    /// the parallel vertical engine when more than one worker is
    /// available; everything else uses the sequential vertical index,
    /// which dominates horizontal scanning by orders of magnitude on the
    /// benchmark shapes (`results/BENCH_counting.json`).
    ///
    /// Shard-awareness: an explicit shard request (`shards` is `Some`)
    /// routes `Auto` to the sharded substrate — the caller asked for a
    /// specific horizontal partitioning, which only that engine
    /// honours — but only when more than one worker is available: every
    /// pool-backed strategy loses outright on a single-CPU box
    /// (`vertical_par/batch` is 0.70× `vertical/batch` and 8-shard is
    /// 0.64× 1-shard in `results/BENCH_counting.json`), so with one
    /// worker the hint is ignored in favour of the sequential engines.
    /// Without a hint, sharding is chosen over class-parallelism only
    /// when the database is large enough (`n ≥ 65536`) that each
    /// worker's tid slice still spans many cache-line superblocks.
    ///
    /// Dense low-cardinality shapes — a small item universe with long
    /// transactions, where baskets collapse into few distinct profiles —
    /// route to the FP-tree pattern-growth counter, whose cost tracks
    /// distinct profiles rather than transactions (DESIGN.md §6.4).
    pub fn resolve(
        self,
        db: &TransactionDb,
        threads: Option<usize>,
        shards: Option<usize>,
    ) -> CountingStrategy {
        if self != CountingStrategy::Auto {
            return self;
        }
        let n = db.len();
        if n == 0 {
            return CountingStrategy::Horizontal;
        }
        // Vertical index footprint: one n-bit bitmap per item.
        let bitmap_bytes = (db.n_items() as usize).saturating_mul(n.div_ceil(64) * 8);
        let density = db.avg_transaction_len() / f64::from(db.n_items().max(1));
        if bitmap_bytes > (1 << 30) && density < 0.005 {
            return CountingStrategy::Horizontal;
        }
        let workers = threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|w| w.get())
                .unwrap_or(1)
        });
        if workers > 1 && shards.is_some() {
            return CountingStrategy::Sharded;
        }
        if db.n_items() <= FPTREE_MAX_ITEMS
            && db.avg_transaction_len() >= FPTREE_MIN_AVG_LEN
            && density >= FPTREE_MIN_DENSITY
        {
            return CountingStrategy::FpTree;
        }
        if workers > 1 && n >= 65536 {
            return CountingStrategy::Sharded;
        }
        if workers > 1 && n >= 4096 {
            return CountingStrategy::VerticalPar;
        }
        CountingStrategy::Vertical
    }

    /// The CLI-facing name (also what [`std::str::FromStr`] accepts).
    pub fn name(self) -> &'static str {
        match self {
            CountingStrategy::Horizontal => "horizontal",
            CountingStrategy::Vertical => "vertical",
            CountingStrategy::Parallel => "parallel",
            CountingStrategy::VerticalPar => "vertical-par",
            CountingStrategy::Sharded => "sharded",
            CountingStrategy::FpTree => "fp-tree",
            CountingStrategy::Auto => "auto",
        }
    }
}

impl std::fmt::Display for CountingStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl std::str::FromStr for CountingStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "horizontal" => Ok(CountingStrategy::Horizontal),
            "vertical" => Ok(CountingStrategy::Vertical),
            "parallel" => Ok(CountingStrategy::Parallel),
            "vertical-par" | "vertical_par" => Ok(CountingStrategy::VerticalPar),
            "sharded" => Ok(CountingStrategy::Sharded),
            "fp-tree" | "fptree" => Ok(CountingStrategy::FpTree),
            "auto" => Ok(CountingStrategy::Auto),
            other => Err(format!(
                "unknown counting strategy '{other}' \
                 (expected horizontal, vertical, parallel, vertical-par, \
                 sharded, fp-tree, or auto)"
            )),
        }
    }
}

/// Counting configuration for a mining run: the strategy plus an
/// optional worker-thread override for the pooled strategies.
#[derive(Debug, Clone, Copy, Default)]
pub struct MiningOptions {
    /// Counting strategy (`Auto` resolves per database at run time).
    pub strategy: CountingStrategy,
    /// Worker threads for `Parallel` / `VerticalPar` / `Sharded` /
    /// `Auto`. `None` uses the process-wide pool sized to the machine's
    /// available parallelism; `Some(n)` builds a private `n`-worker pool
    /// for this run (created once, reused across every level).
    pub threads: Option<usize>,
    /// Tid-range shard count for `Sharded` (and a routing hint for
    /// `Auto` — see [`CountingStrategy::resolve`]). `None` uses one
    /// shard per worker; `Some(n)` splits the tid range into `n`
    /// contiguous shards (clamped to the transaction count, so empty
    /// shards are never minted).
    pub shards: Option<usize>,
}

impl MiningOptions {
    /// Options for a strategy with the default thread policy.
    pub fn with_strategy(strategy: CountingStrategy) -> Self {
        MiningOptions {
            strategy,
            threads: None,
            shards: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MiningParams;
    use crate::query::CorrelationQuery;
    use crate::session::{MineRequest, MiningSession};
    use ccs_constraints::{AttributeTable, Constraint, ConstraintSet};

    fn db() -> TransactionDb {
        let mut txns = Vec::new();
        for i in 0..50 {
            let mut t = Vec::new();
            if i % 2 == 0 {
                t.extend([0u32, 1]);
            }
            if i % 5 == 0 {
                t.push(2);
            }
            txns.push(t);
        }
        TransactionDb::from_ids(3, txns)
    }

    fn query() -> CorrelationQuery {
        CorrelationQuery {
            params: MiningParams {
                confidence: 0.9,
                support_fraction: 0.1,
                max_level: 4,
                ..MiningParams::paper()
            },
            constraints: ConstraintSet::new().and(Constraint::max_le("price", 3.0)),
        }
    }

    #[test]
    fn semantics_mapping() {
        assert_eq!(Algorithm::BmsPlus.semantics(), Semantics::ValidMin);
        assert_eq!(Algorithm::BmsPlusPlus.semantics(), Semantics::ValidMin);
        assert_eq!(Algorithm::BmsStar.semantics(), Semantics::MinValid);
        assert_eq!(Algorithm::BmsStarStar.semantics(), Semantics::MinValid);
    }

    #[test]
    fn all_algorithms_agree_on_anti_monotone_query() {
        // Theorem 1.2: with only anti-monotone constraints the two
        // semantics coincide, so all four paper algorithms agree.
        let db = db();
        let attrs = AttributeTable::with_identity_prices(3);
        let q = query();
        let mut session = MiningSession::new(&db, &attrs);
        let results: Vec<_> = Algorithm::paper_algorithms()
            .iter()
            .map(|&a| {
                session
                    .mine(&q, &MineRequest::new(a))
                    .unwrap()
                    .result
                    .answers
            })
            .collect();
        for r in &results[1..] {
            assert_eq!(&results[0], r);
        }
    }

    /// A database with two overlapping correlated modules over 8 items,
    /// so mining levels carry many same-prefix candidates: the
    /// level-batched evaluation paths (one-scan horizontal batch,
    /// prefix-sharing vertical batch, parallel fan-out) and the verdict
    /// memo-cache all see real traffic.
    fn modular_db() -> TransactionDb {
        let mut txns = Vec::new();
        for i in 0..120u32 {
            let mut t = Vec::new();
            if i % 2 == 0 {
                t.extend([0, 1, 2, 3]);
            }
            if i % 3 == 0 {
                t.extend([3, 4, 5, 6]);
            }
            if i % 5 == 0 {
                t.push(7);
            }
            if i % 7 == 0 {
                t.extend([1, 5]);
            }
            t.sort_unstable();
            t.dedup();
            txns.push(t);
        }
        TransactionDb::from_ids(8, txns)
    }

    #[test]
    fn all_counting_strategies_agree() {
        // Every algorithm routes candidates through the level-batched
        // `Engine::evaluate_level`, so this compares the horizontal
        // batch, the prefix-sharing vertical batch, and the parallel
        // fan-out — plus the memo-cache in front of all three — against
        // each other on both databases, byte for byte.
        let attrs = AttributeTable::with_identity_prices(8);
        let q = query();
        for db in [db(), modular_db()] {
            let mut session = MiningSession::new(&db, &attrs);
            for &a in &Algorithm::paper_algorithms() {
                let h = session
                    .mine(&q, &MineRequest::new(a))
                    .unwrap()
                    .result
                    .answers;
                for strategy in [
                    CountingStrategy::Vertical,
                    CountingStrategy::Parallel,
                    CountingStrategy::VerticalPar,
                    CountingStrategy::FpTree,
                    CountingStrategy::Auto,
                ] {
                    let v = session
                        .mine(&q, &MineRequest::new(a).strategy(strategy))
                        .unwrap()
                        .result
                        .answers;
                    assert_eq!(h, v, "{strategy:?} mismatch for {a}");
                }
            }
        }
    }

    #[test]
    fn vertical_par_agrees_across_explicit_thread_counts() {
        // The pooled vertical counter must be bit-identical to the
        // horizontal reference regardless of how many workers the run
        // is given — including a degenerate 1-worker pool.
        let attrs = AttributeTable::with_identity_prices(8);
        let q = query();
        let db = modular_db();
        let mut session = MiningSession::new(&db, &attrs);
        for &a in &Algorithm::paper_algorithms() {
            let h = session
                .mine(&q, &MineRequest::new(a))
                .unwrap()
                .result
                .answers;
            for threads in [1, 2, 4] {
                let request = MineRequest::new(a)
                    .strategy(CountingStrategy::VerticalPar)
                    .threads(threads);
                let v = session.mine(&q, &request).unwrap().result.answers;
                assert_eq!(h, v, "vertical-par({threads}) mismatch for {a}");
            }
        }
    }

    #[test]
    fn auto_resolves_from_database_shape() {
        use CountingStrategy::*;
        let small = db(); // 50 transactions: below the pool floor.
        assert_eq!(Auto.resolve(&small, Some(8), None), Vertical);
        assert_eq!(Auto.resolve(&small, Some(1), None), Vertical);
        let empty = TransactionDb::from_ids(3, Vec::<Vec<u32>>::new());
        assert_eq!(Auto.resolve(&empty, Some(8), None), Horizontal);
        // Concrete strategies are fixed points.
        for s in [Horizontal, Vertical, Parallel, VerticalPar, Sharded, FpTree] {
            assert_eq!(s.resolve(&small, None, None), s);
        }
        // A big database with workers to spare goes parallel-vertical.
        let big = TransactionDb::from_ids(4, (0..5000u32).map(|t| vec![t % 4, (t + 1) % 4]));
        assert_eq!(Auto.resolve(&big, Some(4), None), VerticalPar);
        assert_eq!(Auto.resolve(&big, Some(1), None), Vertical);
        // An explicit shard request routes Auto to the sharded engine —
        // but only with workers to run it: pool-backed strategies lose
        // outright on a single-CPU box (BENCH_counting.json), so a
        // 1-worker run ignores the hint and stays sequential.
        assert_eq!(Auto.resolve(&big, Some(4), Some(3)), Sharded);
        assert_eq!(Auto.resolve(&big, Some(1), Some(3)), Vertical);
        // A huge database shards even without a hint.
        let huge = TransactionDb::from_ids(4, (0..70_000u32).map(|t| vec![t % 4, (t + 1) % 4]));
        assert_eq!(Auto.resolve(&huge, Some(4), None), Sharded);
        assert_eq!(Auto.resolve(&huge, Some(1), None), Vertical);
        // Dense low-cardinality: long transactions over a small item
        // universe collapse into few profiles — pattern growth wins
        // regardless of worker count, so it outranks the pool routes.
        let dense = TransactionDb::from_ids(
            33,
            (0..5000u32).map(|t| (0..16).map(|j| (t % 3) + 2 * j).collect::<Vec<_>>()),
        );
        assert_eq!(Auto.resolve(&dense, Some(8), None), FpTree);
        assert_eq!(Auto.resolve(&dense, Some(1), None), FpTree);
    }

    #[test]
    fn strategy_names_round_trip_through_fromstr() {
        use CountingStrategy::*;
        for s in [
            Horizontal,
            Vertical,
            Parallel,
            VerticalPar,
            Sharded,
            FpTree,
            Auto,
        ] {
            assert_eq!(s.name().parse::<CountingStrategy>().unwrap(), s);
        }
        assert!("simd".parse::<CountingStrategy>().is_err());
        assert_eq!(VerticalPar.to_string(), "vertical-par");
        assert_eq!(Sharded.to_string(), "sharded");
        assert_eq!(FpTree.to_string(), "fp-tree");
        // The underscore-free alias parses too.
        assert_eq!("fptree".parse::<CountingStrategy>().unwrap(), FpTree);
    }

    #[test]
    fn unsatisfiable_query_short_circuits_without_counting() {
        // `max ≤ 1 & min ≥ 2` is provably empty, so every algorithm
        // returns a complete empty answer with zero counting work.
        let db = db();
        let attrs = AttributeTable::with_identity_prices(3);
        let mut q = query();
        q.constraints = ConstraintSet::new()
            .and(Constraint::max_le("price", 1.0))
            .and(Constraint::min_ge("price", 2.0));
        let mut session = MiningSession::new(&db, &attrs);
        for &a in &Algorithm::paper_algorithms() {
            let r = session.mine(&q, &MineRequest::new(a)).unwrap().result;
            assert!(r.answers.is_empty(), "{a} returned answers");
            assert_eq!(r.completion, crate::guard::Completion::Complete);
            assert_eq!(r.metrics.cells_counted, 0);
            assert_eq!(r.metrics.db_scans, 0);
        }
    }

    #[test]
    fn names_match_paper_notation() {
        assert_eq!(Algorithm::BmsPlus.name(), "BMS+");
        assert_eq!(Algorithm::BmsStarStar.to_string(), "BMS**");
    }

    #[test]
    fn default_request_counts_horizontally() {
        let db = db();
        let attrs = AttributeTable::with_identity_prices(3);
        let via_session = MiningSession::new(&db, &attrs)
            .mine(&query(), &MineRequest::new(Algorithm::BmsPlusPlus))
            .unwrap();
        assert_eq!(via_session.strategy, CountingStrategy::Horizontal);
    }
}
