//! Algorithm BMS+ — the naive miner for `VALID_MIN` answers.
//!
//! Runs Algorithm BMS unmodified (ignoring the constraints' pruning
//! power entirely) and filters the resulting `SIG` by the query
//! constraints. Its cost is therefore exactly `|BMS|` — the §3.3 analysis
//! gives `|BMS+| = Σ_{i=1}^{k} c_i`, independent of constraint
//! selectivity, which is what Figures 2, 6 and 8 of the paper show as the
//! flat curves.

use ccs_constraints::AttributeTable;
use ccs_itemset::{MintermCounter, TransactionDb};

use crate::bms::run_bms_with_engine;
use crate::engine::Engine;
use crate::guard::{ResumeInner, RunGuard};
use crate::kernel::{admit, MinerScope};
use crate::miner::Algorithm;
use crate::query::{CorrelationQuery, MiningError, MiningResult, Semantics};

/// Runs Algorithm BMS+ and returns `VALID_MIN(Q)`.
///
/// # Errors
///
/// Returns [`MiningError`] if the constraints fail validation or contain
/// a neither-monotone (`avg`) constraint.
pub fn run_bms_plus<C: MintermCounter>(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    counter: &mut C,
) -> Result<MiningResult, MiningError> {
    run_bms_plus_guarded(db, attrs, query, counter, &RunGuard::unlimited(), None)
}

/// [`run_bms_plus`] under a resource guard, optionally re-entering a
/// truncated run's level frontier.
///
/// On truncation the partial `SIG` is still filtered by the constraints:
/// level-wise growth means every set in it belongs to the complete
/// `VALID_MIN(Q)` too.
pub(crate) fn run_bms_plus_guarded(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    counter: &mut dyn MintermCounter,
    guard: &RunGuard,
    resume: Option<ResumeInner>,
) -> Result<MiningResult, MiningError> {
    admit(query, attrs)?;
    let start = match resume {
        None => None,
        Some(ResumeInner::Bms(s)) => Some(s),
        Some(_) => return Err(MiningError::foreign_snapshot(Algorithm::BmsPlus.name())),
    };
    let mut scope = MinerScope::begin(counter.stats());
    let mut engine = Engine::with_guard(counter, &query.params, guard.clone());
    let run = run_bms_with_engine(
        db,
        &query.params,
        &mut engine,
        start,
        Algorithm::BmsPlus,
        ResumeInner::Bms,
    );
    // The BMS run already absorbed its own counting into its metrics.
    scope.rebase(engine.counting_stats());
    let answers: Vec<_> = run
        .output
        .sig
        .into_iter()
        .filter(|s| query.constraints.satisfied(s, attrs))
        .collect();
    Ok(scope.seal(
        &engine,
        run.output.metrics,
        answers,
        Semantics::ValidMin,
        run.trip,
    ))
}
