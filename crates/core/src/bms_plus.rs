//! Algorithm BMS+ — the naive miner for `VALID_MIN` answers.
//!
//! Runs Algorithm BMS unmodified (ignoring the constraints' pruning
//! power entirely) and filters the resulting `SIG` by the query
//! constraints. Its cost is therefore exactly `|BMS|` — the §3.3 analysis
//! gives `|BMS+| = Σ_{i=1}^{k} c_i`, independent of constraint
//! selectivity, which is what Figures 2, 6 and 8 of the paper show as the
//! flat curves.

use ccs_constraints::AttributeTable;
use ccs_itemset::{MintermCounter, TransactionDb};

use crate::bms::run_bms_with_engine;
use crate::engine::Engine;
use crate::guard::{ResumeInner, ResumeState, RunGuard};
use crate::miner::Algorithm;
use crate::query::{CorrelationQuery, MiningError, MiningResult, Semantics};

/// Runs Algorithm BMS+ and returns `VALID_MIN(Q)`.
///
/// # Errors
///
/// Returns [`MiningError`] if the constraints fail validation or contain
/// a neither-monotone (`avg`) constraint.
pub fn run_bms_plus<C: MintermCounter>(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    counter: &mut C,
) -> Result<MiningResult, MiningError> {
    run_bms_plus_guarded(db, attrs, query, counter, &RunGuard::unlimited(), None)
}

/// [`run_bms_plus`] under a resource guard, optionally re-entering a
/// truncated run's level frontier.
///
/// On truncation the partial `SIG` is still filtered by the constraints:
/// level-wise growth means every set in it belongs to the complete
/// `VALID_MIN(Q)` too.
pub(crate) fn run_bms_plus_guarded<C: MintermCounter>(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    counter: &mut C,
    guard: &RunGuard,
    resume: Option<ResumeInner>,
) -> Result<MiningResult, MiningError> {
    query.validate(attrs)?;
    if query.constraints.has_neither_monotone() {
        return Err(MiningError::NonMonotoneConstraint);
    }
    let start = match resume {
        None => None,
        Some(ResumeInner::Bms(s)) => Some(s),
        Some(_) => {
            return Err(MiningError::ResumeMismatch {
                expected: "another algorithm",
                requested: Algorithm::BmsPlus.name(),
            })
        }
    };
    let mut engine = Engine::with_guard(counter, &query.params, guard.clone());
    let run = run_bms_with_engine(db, &query.params, &mut engine, start);
    let answers: Vec<_> = run
        .output
        .sig
        .into_iter()
        .filter(|s| query.constraints.satisfied(s, attrs))
        .collect();
    let mut metrics = run.output.metrics;
    metrics.sig_size = answers.len() as u64;
    match run.truncation {
        None => Ok(MiningResult::new(answers, Semantics::ValidMin, metrics)),
        Some((reason, snapshot)) => {
            let frontier_level = snapshot.level - 1;
            Ok(MiningResult::truncated(
                answers,
                Semantics::ValidMin,
                metrics,
                reason,
                frontier_level,
                ResumeState {
                    algorithm: Algorithm::BmsPlus,
                    inner: ResumeInner::Bms(snapshot),
                },
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MiningParams;
    use ccs_constraints::{Constraint, ConstraintSet};
    use ccs_itemset::{HorizontalCounter, Itemset};

    /// Items 0–1 and 2–3 perfectly correlated pairs; price of item i = i+1.
    fn db() -> TransactionDb {
        let mut txns = Vec::new();
        for i in 0..60 {
            let mut t = Vec::new();
            if i % 2 == 0 {
                t.extend([0u32, 1]);
            }
            if i % 3 == 0 {
                t.extend([2, 3]);
            }
            txns.push(t);
        }
        TransactionDb::from_ids(4, txns)
    }

    fn query(constraints: ConstraintSet) -> CorrelationQuery {
        CorrelationQuery {
            params: MiningParams {
                confidence: 0.9,
                support_fraction: 0.1,
                ct_fraction: 0.25,
                min_item_support: 0.0,
                max_level: 5,
            },
            constraints,
        }
    }

    #[test]
    fn unconstrained_returns_all_minimal_correlated() {
        let db = db();
        let attrs = ccs_constraints::AttributeTable::with_identity_prices(4);
        let mut c = HorizontalCounter::new(&db);
        let r = run_bms_plus(&db, &attrs, &query(ConstraintSet::new()), &mut c).unwrap();
        assert!(r.contains(&Itemset::from_ids([0, 1])));
        assert!(r.contains(&Itemset::from_ids([2, 3])));
    }

    #[test]
    fn constraints_filter_answers() {
        let db = db();
        let attrs = ccs_constraints::AttributeTable::with_identity_prices(4);
        // max price ≤ 2 keeps only items {0, 1} (prices 1, 2).
        let cs = ConstraintSet::new().and(Constraint::max_le("price", 2.0));
        let mut c = HorizontalCounter::new(&db);
        let r = run_bms_plus(&db, &attrs, &query(cs), &mut c).unwrap();
        assert!(r.contains(&Itemset::from_ids([0, 1])));
        assert!(!r.contains(&Itemset::from_ids([2, 3])));
    }

    #[test]
    fn avg_constraint_is_rejected() {
        let db = db();
        let attrs = ccs_constraints::AttributeTable::with_identity_prices(4);
        let cs = ConstraintSet::new().and(Constraint::Avg {
            attr: "price".into(),
            cmp: ccs_constraints::Cmp::Le,
            value: 2.0,
        });
        let mut c = HorizontalCounter::new(&db);
        assert_eq!(
            run_bms_plus(&db, &attrs, &query(cs), &mut c),
            Err(MiningError::NonMonotoneConstraint)
        );
    }

    #[test]
    fn work_is_independent_of_constraints() {
        let db = db();
        let attrs = ccs_constraints::AttributeTable::with_identity_prices(4);
        let mut c1 = HorizontalCounter::new(&db);
        let r1 = run_bms_plus(&db, &attrs, &query(ConstraintSet::new()), &mut c1).unwrap();
        let cs = ConstraintSet::new().and(Constraint::max_le("price", 1.0));
        let mut c2 = HorizontalCounter::new(&db);
        let r2 = run_bms_plus(&db, &attrs, &query(cs), &mut c2).unwrap();
        assert_eq!(r1.metrics.tables_built, r2.metrics.tables_built);
    }
}
