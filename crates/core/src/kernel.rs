//! The shared levelwise kernel every miner runs on.
//!
//! The paper's five algorithms — BMS and its four constrained variants —
//! are all the *same* level-wise sweep of the itemset lattice, differing
//! only in where constraints apply and which minimality semantics governs
//! acceptance. This module owns that sweep exactly once:
//!
//! * the level loop and its termination/skip protocol ([`LevelSeed`]),
//! * batch submission to [`Engine::evaluate_level`] (one counting batch
//!   per level, verdict memo-cache in front),
//! * guard probing and the trip path: per-level [`ResumeState`] stamping,
//!   `max_level_reached` bookkeeping ([`LevelMark`]), and the
//!   `frontier_level = level − 1` contract the fault-injection harness
//!   checks,
//! * the guard-bypassing epilogue mode ([`GuardMode::Bypass`]) that lets
//!   BMS** finish its cache-only phase-2 sweep after a phase-1 trip.
//!
//! Each algorithm contributes only an [`AlgorithmPolicy`]: candidate
//! seeding, the pre-count constraint phase, the post-count acceptance
//! rule, and the shape of its resume snapshot. This is the seam the
//! interactive-session work (Goethals & Van den Bussche) and future
//! condensed-representation policies plug into.
//!
//! **Invariant enforced by CI:** no level loop and no [`ResumeState`]
//! construction exists outside this module.

use std::time::Instant;

use ccs_constraints::{AttributeTable, ConstraintAnalysis};
use ccs_itemset::{CountingStats, Itemset};

use crate::engine::{Engine, Verdict};
use crate::guard::{wall_now, ResumeInner, ResumeState, TruncationReason, RESUME_FORMAT};
use crate::metrics::MiningMetrics;
use crate::miner::Algorithm;
use crate::query::{CorrelationQuery, MiningError, MiningResult, Semantics};

/// What a policy feeds the kernel at the top of each level.
pub(crate) enum LevelSeed {
    /// The sweep is finished; leave the loop.
    Done,
    /// Nothing to do at this level, but deeper levels may still have
    /// work (BMS* phase 2 skips gap levels without a checkpoint).
    Skip,
    /// Evaluate these candidates. An empty vector is *processed*, not
    /// skipped: the level still checkpoints the guard, exactly like the
    /// hand-rolled loops did.
    Cands(Vec<Itemset>),
}

/// How the kernel maintains `metrics.max_level_reached`.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum LevelMark {
    /// Mark the level as reached before counting; roll back to
    /// `level − 1` if the guard trips mid-level (the BMS-family loops).
    Eager,
    /// Mark only when the level has post-prefilter survivors, keeping the
    /// running maximum; never roll back (the BMS* upward sweep).
    Survivors,
    /// Leave the field alone; the wrapper sets it in its epilogue
    /// (naive, BMS** phase 2).
    Untouched,
}

/// Whether the kernel consults the guard.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum GuardMode {
    /// Normal operation: snapshot at each level boundary, evaluate the
    /// level as one guarded batch, trip on guard exhaustion.
    Checked,
    /// Post-trip epilogue: no snapshots, no checkpoints, per-set
    /// evaluation straight from the verdict cache. Used by BMS** phase 2
    /// after its phase-1 SUPP enumeration was truncated — the sweep over
    /// the *completed* SUPP levels is pure cache work and must not be
    /// abandoned by the already-tripped guard.
    Bypass,
}

/// Per-policy kernel configuration.
pub(crate) struct KernelConfig {
    /// Stamped into every [`ResumeState`] the kernel produces.
    pub(crate) algorithm: Algorithm,
    /// Whether candidate counts accrue to `metrics.candidates_generated`
    /// (BMS** phase 2 revisits phase-1 sets and must not double-count).
    pub(crate) count_candidates: bool,
    /// `max_level_reached` bookkeeping mode.
    pub(crate) mark: LevelMark,
}

impl KernelConfig {
    /// Candidate-counting configuration for `algorithm` with the given
    /// `max_level_reached` bookkeeping mode.
    pub(crate) fn new(algorithm: Algorithm, mark: LevelMark) -> KernelConfig {
        KernelConfig {
            algorithm,
            count_candidates: true,
            mark,
        }
    }

    /// Stops candidates from accruing to `metrics.candidates_generated`
    /// (BMS** phase 2 revisits phase-1 sets).
    pub(crate) fn uncounted(mut self) -> KernelConfig {
        self.count_candidates = false;
        self
    }
}

/// A guard trip, as the kernel reports it: the reason, the resume
/// snapshot taken at the interrupted level's boundary, and the deepest
/// fully-completed level (`trip level − 1`, uniformly across all
/// algorithms and phases).
pub(crate) struct KernelTrip {
    pub(crate) reason: TruncationReason,
    pub(crate) state: ResumeState,
    pub(crate) frontier_level: usize,
}

/// The paper-specific decisions of one algorithm (or one phase of a
/// two-phase algorithm). The kernel drives the loop; the policy supplies
/// candidates, constraint phases, and acceptance.
pub(crate) trait AlgorithmPolicy {
    /// Candidates for `level`, or [`LevelSeed::Done`]/[`LevelSeed::Skip`].
    /// Called once per level, in increasing level order.
    fn candidates(&mut self, level: usize) -> LevelSeed;

    /// The resume snapshot for a trip at this level boundary. Called
    /// *before* [`AlgorithmPolicy::prefilter`] mutates any policy state,
    /// so the snapshot re-enters the level from scratch.
    fn snapshot(&self, level: usize, cands: &[Itemset]) -> ResumeInner;

    /// The pre-count constraint phase: return the candidates that go
    /// into the counting batch, accounting any pruning in `metrics`
    /// (BMS++/BMS** residual anti-monotone checks, BMS* minimality
    /// prefilter). Defaults to pass-through.
    fn prefilter(
        &mut self,
        level: usize,
        cands: Vec<Itemset>,
        metrics: &mut MiningMetrics,
    ) -> Vec<Itemset> {
        let _ = (level, metrics);
        cands
    }

    /// The post-count phase: classify each survivor from its verdict
    /// (SIG entry, NOTSIG seeding, frontier growth) and stage the next
    /// level's state.
    fn absorb(&mut self, level: usize, survivors: Vec<Itemset>, verdicts: Vec<Verdict>);
}

/// Runs the levelwise sweep from `start_level` through `max_level`
/// (inclusive). Returns `Some` if the guard tripped; the policy then
/// holds the sound partial state accumulated through the last completed
/// level, and the trip carries the snapshot to resume from. In
/// [`GuardMode::Bypass`] the sweep never trips.
pub(crate) fn run_levelwise(
    engine: &mut Engine<'_>,
    policy: &mut dyn AlgorithmPolicy,
    config: KernelConfig,
    mode: GuardMode,
    start_level: usize,
    max_level: usize,
    metrics: &mut MiningMetrics,
) -> Option<KernelTrip> {
    let mut level = start_level;
    while level <= max_level {
        let cands = match policy.candidates(level) {
            LevelSeed::Done => break,
            LevelSeed::Skip => {
                level += 1;
                continue;
            }
            LevelSeed::Cands(c) => c,
        };
        let snapshot = (mode == GuardMode::Checked && engine.guard().is_armed())
            .then(|| policy.snapshot(level, &cands));
        // Durability: stamp a checkpoint at exactly the points a resume
        // snapshot exists — the same level-boundary contract, so a crash
        // replays the interrupted level from scratch, like a trip does.
        if let (Some(inner), Some(recorder)) = (&snapshot, engine.guard().recorder()) {
            recorder.stamp_level(
                ResumeState {
                    format: RESUME_FORMAT,
                    algorithm: config.algorithm,
                    inner: inner.clone(),
                },
                level,
                metrics,
            );
        }
        if config.count_candidates {
            metrics.candidates_generated += cands.len() as u64;
        }
        if config.mark == LevelMark::Eager {
            metrics.max_level_reached = level;
        }
        let survivors = policy.prefilter(level, cands, metrics);
        if config.mark == LevelMark::Survivors && !survivors.is_empty() {
            metrics.max_level_reached = metrics.max_level_reached.max(level);
        }
        let verdicts = match mode {
            GuardMode::Bypass => survivors.iter().map(|s| engine.evaluate(s)).collect(),
            GuardMode::Checked => match engine.evaluate_level(&survivors) {
                Ok(v) => v,
                Err(reason) => {
                    if config.mark == LevelMark::Eager {
                        metrics.max_level_reached = level - 1;
                    }
                    #[allow(clippy::expect_used)] // invariant: a trip implies an armed guard
                    let inner = snapshot.expect("a trip implies an armed guard");
                    return Some(KernelTrip {
                        reason,
                        state: ResumeState {
                            format: RESUME_FORMAT,
                            algorithm: config.algorithm,
                            inner,
                        },
                        frontier_level: level - 1,
                    });
                }
            },
        };
        policy.absorb(level, survivors, verdicts);
        level += 1;
    }
    None
}

/// The shared admission check of every constrained miner: the query must
/// validate against the attribute table, and the level-wise sweeps cannot
/// push a neither-monotone (`avg`) constraint.
pub(crate) fn admit(query: &CorrelationQuery, attrs: &AttributeTable) -> Result<(), MiningError> {
    query.validate(attrs)?;
    if query.constraints.has_neither_monotone() {
        return Err(MiningError::NonMonotoneConstraint);
    }
    Ok(())
}

/// The staged-candidate protocol most policies use for `candidates()`:
/// drain the vector `absorb` staged, or finish when it is empty.
pub(crate) fn staged(cands: &mut Vec<Itemset>) -> LevelSeed {
    if cands.is_empty() {
        LevelSeed::Done
    } else {
        LevelSeed::Cands(std::mem::take(cands))
    }
}

/// The pre-count residual anti-monotone prune of BMS++ / BMS** phase 1
/// (modification III): failing candidates never reach the counter, and
/// each is accounted in `metrics.pruned_before_count`.
pub(crate) fn prune_am_residual(
    analysis: &ConstraintAnalysis,
    attrs: &AttributeTable,
    cands: Vec<Itemset>,
    metrics: &mut MiningMetrics,
) -> Vec<Itemset> {
    let mut survivors = Vec::with_capacity(cands.len());
    for set in cands {
        if analysis.am_residual_satisfied(&set, attrs) {
            survivors.push(set);
        } else {
            metrics.pruned_before_count += 1;
        }
    }
    survivors
}

/// The minimality prefilter of the upward sweeps: a candidate containing
/// an already-reported answer cannot be minimal. Exact when applied
/// against the pre-level `sig`: all candidates at a level have the same
/// size, so a same-level answer is never a proper subset of another
/// candidate.
pub(crate) fn prune_non_minimal(sig: &[Itemset], cands: Vec<Itemset>) -> Vec<Itemset> {
    cands
        .into_iter()
        .filter(|set| !sig.iter().any(|a| a.is_subset_of(set)))
        .collect()
}

/// The wall-clock / counting-stats bracket around one mining run,
/// shared by every `run_*_guarded` wrapper: [`MinerScope::begin`] at
/// entry, [`MinerScope::seal`] at exit. Owning it here keeps the
/// since-baseline discipline (counters are cumulative across a session)
/// and the trip-to-result conversion in one place.
pub(crate) struct MinerScope {
    start: Instant,
    base: CountingStats,
}

impl MinerScope {
    /// Starts the clock with the counting baseline to subtract at seal
    /// time (counters accumulate across runs; see `CountingStats::since`).
    pub(crate) fn begin(base: CountingStats) -> MinerScope {
        MinerScope {
            start: wall_now(),
            base,
        }
    }

    /// Re-bases the counting baseline mid-run. Two-phase miners whose
    /// phase 1 already absorbed its own counting (BMS* delegating to
    /// BMS) re-base before phase 2 so seal-time absorption only covers
    /// the second phase.
    pub(crate) fn rebase(&mut self, base: CountingStats) {
        self.base = base;
    }

    /// Finalizes `metrics` (answer count, counting delta, wall clock) and
    /// converts the kernel's trip report into a complete or truncated
    /// [`MiningResult`].
    pub(crate) fn seal(
        self,
        engine: &Engine<'_>,
        mut metrics: MiningMetrics,
        answers: Vec<Itemset>,
        semantics: Semantics,
        trip: Option<KernelTrip>,
    ) -> MiningResult {
        metrics.sig_size = answers.len() as u64;
        metrics.absorb_counting(engine.counting_stats().since(&self.base));
        metrics.elapsed = self.start.elapsed();
        match trip {
            None => MiningResult::new(answers, semantics, metrics),
            Some(t) => MiningResult::truncated(
                answers,
                semantics,
                metrics,
                t.reason,
                t.frontier_level,
                t.state,
            ),
        }
    }
}
