//! Algorithm BMS with batched level counting — one database scan per
//! *level* instead of one per contingency table.
//!
//! The paper's cost model charges one scan per set considered, which is
//! how [`crate::bms`] is written (and why its measured time tracks the
//! §3.3 analysis). Real Apriori-family implementations instead count
//! every candidate of a level in a single pass: each transaction updates
//! each candidate's table. Same tables, same answers, `L`-levels-many
//! scans total. This module provides that engine for the baseline BMS
//! sweep, as the scan-batching ablation of DESIGN.md — the
//! `bench/mining.rs` group `mine/scan_batching` measures the gap.

use std::collections::HashSet;
use std::time::Instant;

use ccs_itemset::{candidate, HorizontalCounter, Item, Itemset, MintermCounter, TransactionDb};
use ccs_stats::ContingencyTable;

use crate::bms::BmsOutput;
use crate::metrics::MiningMetrics;
use crate::params::MiningParams;

/// Runs Algorithm BMS with one scan per level. Answer-equivalent to
/// [`crate::bms::run_bms`]; only the scan count (and wall-clock) differ.
pub fn run_bms_batched(db: &TransactionDb, params: &MiningParams) -> BmsOutput {
    params.validate();
    let start = Instant::now();
    let mut metrics = MiningMetrics::default();
    let mut counter = HorizontalCounter::new(db);
    let s_abs = params.support_abs(db.len());
    let crit = ccs_stats::chi2_quantile(params.confidence, 1);

    let item_threshold = params.item_support_abs(db.len());
    let supports = db.item_supports();
    let level1: Vec<Item> = (0..db.n_items())
        .map(Item::new)
        .filter(|i| supports[i.index()] as u64 >= item_threshold)
        .collect();

    let mut sig: Vec<Itemset> = Vec::new();
    let mut notsig_all: HashSet<Itemset> = HashSet::new();
    let mut cands = candidate::all_pairs(&level1);
    let mut level = 2usize;
    while !cands.is_empty() && level <= params.max_level {
        metrics.candidates_generated += cands.len() as u64;
        metrics.max_level_reached = level;
        let tables = counter.minterm_counts_batch(&cands);
        let mut notsig_level: HashSet<Itemset> = HashSet::new();
        for (set, counts) in cands.iter().zip(tables) {
            let table = ContingencyTable::from_counts(set.clone(), counts);
            if !table.is_ct_supported(s_abs, params.ct_fraction) {
                continue;
            }
            if table.chi_squared() >= crit {
                sig.push(set.clone());
            } else {
                notsig_level.insert(set.clone());
            }
        }
        cands = candidate::apriori_gen(&notsig_level);
        notsig_all.extend(notsig_level);
        level += 1;
    }

    sig.sort_unstable();
    metrics.sig_size = sig.len() as u64;
    metrics.notsig_size = notsig_all.len() as u64;
    metrics.absorb_counting(counter.stats());
    metrics.elapsed = start.elapsed();
    BmsOutput { sig, notsig: notsig_all, level1, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bms::run_bms;

    fn db() -> TransactionDb {
        let mut txns = Vec::new();
        for i in 0..70u32 {
            let mut t = Vec::new();
            if i % 2 == 0 {
                t.extend([0, 1]);
            }
            if i % 3 == 0 {
                t.extend([2, 3]);
            }
            if i % 7 == 0 {
                t.push(4);
            }
            txns.push(t);
        }
        TransactionDb::from_ids(5, txns)
    }

    fn params() -> MiningParams {
        MiningParams {
            confidence: 0.9,
            support_fraction: 0.1,
            ct_fraction: 0.25,
            min_item_support: 0.0,
            max_level: 5,
        }
    }

    #[test]
    fn batched_and_per_set_bms_agree_exactly() {
        let db = db();
        let batched = run_bms_batched(&db, &params());
        let mut counter = HorizontalCounter::new(&db);
        let per_set = run_bms(&db, &params(), &mut counter);
        assert_eq!(batched.sig, per_set.sig);
        assert_eq!(batched.notsig, per_set.notsig);
        assert_eq!(batched.level1, per_set.level1);
        assert_eq!(batched.metrics.tables_built, per_set.metrics.tables_built);
    }

    #[test]
    fn batched_scans_once_per_level() {
        let db = db();
        let out = run_bms_batched(&db, &params());
        let levels = out.metrics.max_level_reached - 1; // levels 2..=max
        assert_eq!(out.metrics.db_scans as usize, levels);
        assert!(out.metrics.db_scans < out.metrics.tables_built);
    }

    #[test]
    fn empty_database_is_handled() {
        let db = TransactionDb::from_ids(3, Vec::<Vec<u32>>::new());
        let out = run_bms_batched(&db, &params());
        assert!(out.sig.is_empty());
    }
}
